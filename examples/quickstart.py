"""Quickstart: simulate a small crowdsourcing market and audit it.

Builds a deliberately unfair platform (premium tasks hidden from one
demographic group), replays it, and runs the seven-axiom audit — the
core loop of the paper's proposal.

Run::

    python examples/quickstart.py
"""

from repro import AuditEngine
from repro.core.entities import Requester, Task
from repro.platform.behavior import DiligentBehavior
from repro.platform.market import CrowdsourcingPlatform
from repro.platform.visibility import BiasedVisibility
from repro.workloads.skills import standard_vocabulary
from repro.workloads.workers import worker


def main() -> None:
    vocabulary = standard_vocabulary()

    # A platform whose browse view hides well-paid tasks from 'green'
    # workers — the ad-delivery discrimination of the paper's intro.
    platform = CrowdsourcingPlatform(
        visibility=BiasedVisibility(
            attribute="group", disadvantaged_value="green",
            reward_ceiling=0.2,
        ),
        seed=0,
    )
    platform.register_requester(
        Requester(
            requester_id="r0001", name="acme research",
            hourly_wage=6.0, payment_delay=5,
            recruitment_criteria="anyone with the survey skill",
            rejection_criteria="quality below 0.5",
        )
    )

    # Two workers identical in every respect except the protected group.
    blue = worker("w-blue", vocabulary, skills=("survey",),
                  declared={"group": "blue"})
    green = worker("w-green", vocabulary, skills=("survey",),
                   declared={"group": "green"})
    platform.register_worker(blue)
    platform.register_worker(green)

    # One cheap and one premium task.
    for task_id, reward in (("t-cheap", 0.05), ("t-premium", 0.50)):
        platform.post_task(
            Task(
                task_id=task_id, requester_id="r0001",
                required_skills=vocabulary.vector(("survey",)),
                reward=reward,
            )
        )

    # Both workers browse at the same instant...
    blue_view = platform.browse("w-blue")
    green_view = platform.browse("w-green")
    print("blue sees: ", sorted(t.task_id for t in blue_view))
    print("green sees:", sorted(t.task_id for t in green_view))

    # ...and the blue worker completes the premium task.
    platform.start_work("w-blue", "t-premium")
    platform.process_contribution("w-blue", "t-premium", DiligentBehavior())

    # Audit the full trace against Axioms 1-7.
    report = AuditEngine().audit(platform.trace)
    print()
    print(*report.summary_lines(), sep="\n")
    print()
    for violation in report.violations:
        print(violation.describe())


if __name__ == "__main__":
    main()
