"""Authoring, comparing, and enforcing transparency policies.

Demonstrates the declarative language of Section 3.3.2 end to end:

1. write a custom policy in the DSL and validate it;
2. render it to the worker-facing English the paper asks for;
3. diff it against the Turkopticon-augmented AMT preset;
4. enforce it in a simulated market and measure the retention gain
   over an opaque platform (the Section 4.1 protocol).

Run::

    python examples/transparency_policies.py
"""

from repro.core.entities import Requester
from repro.platform.review import SilentRejectReview
from repro.platform.session import Session, SessionConfig
from repro.transparency import (
    PolicyEnforcer,
    TransparencyPolicy,
    compare_policies,
    preset,
    render_policy,
)
from repro.workloads.skills import standard_vocabulary
from repro.workloads.tasks import TaskStream
from repro.workloads.workers import PopulationSpec, population

CUSTOM_POLICY = """
policy "my-platform" {
  # Axiom 6: requester working conditions, gated on a decent rating.
  disclose requester.hourly_wage to workers;
  disclose requester.payment_delay to workers;
  disclose requester.recruitment_criteria to workers;
  disclose requester.rejection_criteria to workers;
  disclose requester.rating to workers when requester.rating >= 2.0;

  # Axiom 7: each worker's own computed attributes.
  disclose worker.acceptance_ratio to self;
  disclose worker.tasks_completed to self;
  disclose worker.mean_quality to self when worker.tasks_completed >= 5;

  # Context that Turkopticon-style tools scrape from the outside.
  disclose task.reward to public;
  disclose platform.estimated_hourly_wage to workers;
}
"""


def run_market(transparency):
    vocabulary = standard_vocabulary()
    spec = PopulationSpec(size=80, seed=21,
                          behavior_mix={"diligent": 0.7, "sloppy": 0.3})
    workers, behaviors = population(spec, vocabulary)
    stream = TaskStream(vocabulary=vocabulary, tasks_per_round=40,
                        skills_per_task=1)
    session = Session(
        config=SessionConfig(
            rounds=18, tasks_per_round=40, seed=21,
            review_policy=SilentRejectReview(threshold=0.55),
            transparency=transparency,
        ),
        workers=workers,
        behaviors=behaviors,
        requesters=[
            Requester(
                requester_id="r0001", name="acme", hourly_wage=6.0,
                payment_delay=5, recruitment_criteria="any",
                rejection_criteria="quality below 0.55", rating=4.1,
            )
        ],
        task_factory=stream,
    )
    return session.run()


def main() -> None:
    policy = TransparencyPolicy.from_source(CUSTOM_POLICY)
    print(f"policy '{policy.name}': {policy.rule_count} rules, "
          f"mandated coverage {policy.mandated_coverage():.0%}\n")

    # 2. The human-readable description workers would see.
    print(render_policy(policy.ast))
    print()

    # 3. Cross-platform comparison against the Turkopticon preset.
    diff = compare_policies(preset("amt_turkopticon"), policy)
    print(*diff.summary_lines(), sep="\n")
    print()

    # 4. Enforce it and measure retention vs an opaque platform.
    stats = {"estimated_hourly_wage": 5.5}
    opaque = run_market(None)
    transparent = run_market(PolicyEnforcer(policy, platform_stats=stats))
    print("retention after 18 rounds:")
    print(f"  opaque platform:      {opaque.retention:.0%}")
    print(f"  with '{policy.name}': {transparent.retention:.0%}")


if __name__ == "__main__":
    main()
