"""Auditing an *existing* platform from its exported event log.

Section 3.3.1 aims the framework at existing crowdsourcing systems:
a platform (or a watchdog with API access) exports its event log as
JSON, and anyone can replay the audit and check the platform's own
declared fairness contract — no access to the platform's code needed.

This example plays both roles: a simulated "production" platform with
a subtle wage-theft problem exports its trace; the auditor loads the
JSON, runs the seven-axiom audit, and evaluates the platform's public
policy (which *commits* to fair compensation) against it.

Run::

    python examples/audit_exported_platform.py
"""

from repro.compensation.discriminatory import WageTheftScheme
from repro.core.audit import AuditEngine
from repro.core.entities import Requester
from repro.core.serialize import trace_from_json, trace_to_json
from repro.platform.behavior import DiligentBehavior
from repro.platform.market import CrowdsourcingPlatform
from repro.platform.review import QualityThresholdReview
from repro.transparency import AuditContract, TransparencyPolicy
from repro.workloads.skills import standard_vocabulary
from repro.workloads.tasks import uniform_tasks
from repro.workloads.workers import homogeneous_population

#: The platform's *public* policy: full disclosure plus hard fairness
#: commitments.  The audit will test whether reality honours it.
PUBLIC_POLICY = """
policy "production-platform" {
  disclose requester.hourly_wage to workers;
  disclose requester.payment_delay to workers;
  disclose requester.recruitment_criteria to workers;
  disclose requester.rejection_criteria to workers;
  disclose worker.acceptance_ratio to self;
  disclose worker.tasks_completed to self;
  require axiom 3 score >= 0.99;   # equal pay for similar work
  require axiom 5 score >= 1.0;    # never interrupt started work
}
"""


def run_production_platform() -> str:
    """The 'remote' platform: looks compliant, steals wages. Returns its
    exported JSON event log."""
    vocabulary = standard_vocabulary()
    platform = CrowdsourcingPlatform(
        review_policy=QualityThresholdReview(threshold=0.3),
        pricing=WageTheftScheme(theft_probability=0.3, seed=1),
        seed=1,
    )
    requester = Requester(
        requester_id="r0001", name="acme", hourly_wage=6.0, payment_delay=5,
        recruitment_criteria="any", rejection_criteria="quality below 0.3",
    )
    platform.register_requester(requester)
    for field_name, value in requester.disclosable_fields().items():
        platform.disclose(f"requester:{requester.requester_id}",
                          field_name, value)
    workers = homogeneous_population(
        6, vocabulary, skills=("survey",), declared={"group": "blue"}
    )
    for entity in workers:
        platform.register_worker(entity)
    behavior = DiligentBehavior(base_quality=1.0)
    tasks = uniform_tasks(8, vocabulary, "r0001", reward=0.25,
                          skills=("survey",))
    for task in tasks:
        platform.post_task(task)
        for entity in workers:
            platform.browse(entity.worker_id)
        for entity in workers[:3]:  # three workers answer each task
            platform.start_work(entity.worker_id, task.task_id)
            platform.process_contribution(entity.worker_id, task.task_id,
                                          behavior)
        platform.close_task(task.task_id)
    for worker_id, entity in platform.workers.items():
        for field_name in ("acceptance_ratio", "tasks_completed"):
            if field_name in entity.computed:
                platform.disclose(f"worker:{worker_id}", field_name,
                                  entity.computed[field_name],
                                  audience_worker_id=worker_id)
    return trace_to_json(platform.trace)


def main() -> None:
    exported_json = run_production_platform()
    print(f"exported event log: {len(exported_json):,} bytes of JSON\n")

    # --- The auditor's side: only the JSON and the public policy. ---
    trace = trace_from_json(exported_json)
    report = AuditEngine().audit(trace)
    print(*report.summary_lines(), sep="\n")
    print()

    policy = TransparencyPolicy.from_source(PUBLIC_POLICY)
    outcome = AuditContract(policy).evaluate(report)
    print(*outcome.summary_lines(), sep="\n")
    print()
    if not outcome.honoured:
        print("evidence (first 3 violations):")
        for violation in report.result_for(3).violations[:3]:
            print(f"  {violation.describe()}")


if __name__ == "__main__":
    main()
