"""Spam defense: detecting the 40 % malicious crowd of Vuurens et al.

Axiom 4 requires the platform to let requesters detect malicious
workers.  This example runs a redundant-labelling market where 40 % of
the crowd is spamming or adversarial, scores each detector against
ground truth, flags the ensemble's suspects on the platform trace, and
shows that the Axiom 4 checker is satisfied *only after* the flags are
recorded.

Run::

    python examples/spam_defense.py
"""

from repro.core.axiom_completion import RequesterFairnessInCompletion
from repro.core.events import MaliceFlagged
from repro.core.trace import PlatformTrace
from repro.experiments.e5_malice_detection import labelled_market_trace
from repro.experiments.tables import Table
from repro.malice import (
    AgreementDetector,
    EnsembleDetector,
    GoldStandardDetector,
    TimingDetector,
    evaluate_detector,
    flag_workers,
)


def main() -> None:
    trace, malicious = labelled_market_trace(
        n_workers=40, n_tasks=60, spam_fraction=0.4, redundancy=5, seed=7
    )
    print(f"market: {len(trace.worker_ids)} workers, "
          f"{len(malicious)} truly malicious "
          f"({len(malicious) / len(trace.worker_ids):.0%})\n")

    table = Table(
        title="Detector performance at 40% malicious workers",
        columns=("detector", "precision", "recall", "f1"),
    )
    detectors = [
        GoldStandardDetector(),
        AgreementDetector(),
        TimingDetector(),
        EnsembleDetector(),
    ]
    for detector in detectors:
        outcome = evaluate_detector(detector, trace, malicious, threshold=0.5)
        table.add_row(detector.name, outcome.precision, outcome.recall,
                      outcome.f1)
    print(table.render())
    print()

    # Axiom 4 before flagging: the platform exposed nothing.
    checker = RequesterFairnessInCompletion()
    before = checker.check(trace)
    print(f"axiom 4 before flagging: {before.violation_count} violation(s) "
          f"over {before.opportunities} suspicious worker(s)")

    # A compliant platform records the ensemble's flags in its trace.
    # The flag threshold trades precision for recall; sweep down from
    # the strict 0.5 until the audit is satisfied.
    for threshold in (0.5, 0.4, 0.3):
        flagged = flag_workers(EnsembleDetector(), trace, threshold=threshold)
        extended = PlatformTrace(list(trace.events))
        for worker_id in sorted(flagged):
            extended.append(
                MaliceFlagged(time=trace.end_time, worker_id=worker_id,
                              detector="ensemble", score=1.0)
            )
        after = checker.check(extended)
        verdict = "PASS" if after.passed else "FAIL"
        print(f"axiom 4 with flag threshold {threshold}: "
              f"{len(flagged)} flagged, {after.violation_count} "
              f"violation(s) -> {verdict}")
        if after.passed:
            break


if __name__ == "__main__":
    main()
