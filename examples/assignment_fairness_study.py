"""Assignment-fairness study: who wins, and who gets left behind.

The intro workload of the paper: a marketplace where one demographic
group carries historically depressed reputation scores.  We run the
full catalogue of assignment algorithms on the same instance and
report, per algorithm, requester gain vs demographic parity — then
sweep the epsilon-fair assigner to show the price of fairness.

Run::

    python examples/assignment_fairness_study.py
"""

import random

from repro.assignment import (
    AssignmentInstance,
    EpsilonFairAssigner,
    FairnessConstrainedAssigner,
    HungarianAssigner,
    RequesterCentricAssigner,
    RoundRobinAssigner,
    SelfAppointmentAssigner,
    WorkerCentricAssigner,
)
from repro.experiments.e1_assignment_discrimination import (
    biased_reputation_population,
)
from repro.experiments.tables import Table
from repro.metrics.inequality import gini_coefficient
from repro.metrics.parity import disparate_impact
from repro.workloads.skills import standard_vocabulary
from repro.workloads.tasks import uniform_tasks


def measure(assigner, instance, group_of, group_sizes, seed=0):
    result = assigner.assign(instance, random.Random(seed))
    counts = {w.worker_id: 0 for w in instance.workers}
    for pair in result.pairs:
        counts[pair.worker_id] += 1
    per_group = {g: 0.0 for g in group_sizes}
    for worker_id, count in counts.items():
        per_group[group_of[worker_id]] += count
    rates = {g: per_group[g] / group_sizes[g] for g in group_sizes}
    return (
        result.requester_gain,
        disparate_impact(rates),
        gini_coefficient(list(counts.values())),
    )


def main() -> None:
    vocabulary = standard_vocabulary()
    workers = biased_reputation_population(100, seed=1, reliability_gap=0.3)
    tasks = uniform_tasks(
        75, vocabulary, reward=0.2, skills=("image_recognition",), gold=False
    )
    instance = AssignmentInstance(
        workers=tuple(workers), tasks=tuple(tasks), capacity=2
    )
    group_of = {w.worker_id: str(w.declared["group"]) for w in workers}
    group_sizes: dict[str, int] = {}
    for group in group_of.values():
        group_sizes[group] = group_sizes.get(group, 0) + 1

    catalogue = Table(
        title="Assignment algorithms: requester gain vs demographic parity",
        columns=("assigner", "requester_gain", "disparate_impact", "gini"),
    )
    for assigner in (
        RequesterCentricAssigner(),
        HungarianAssigner(),
        SelfAppointmentAssigner(),
        RoundRobinAssigner(),
        WorkerCentricAssigner(),
        FairnessConstrainedAssigner("group", epsilon=0.05),
    ):
        gain, impact, gini = measure(assigner, instance, group_of, group_sizes)
        catalogue.add_row(assigner.name, gain, impact, gini)
    print(catalogue.render())

    frontier = Table(
        title="The price of fairness: epsilon-fair sweep",
        columns=("epsilon", "requester_gain", "disparate_impact"),
    )
    for epsilon in (0.0, 0.25, 0.5, 0.75, 1.0):
        gain, impact, _ = measure(
            EpsilonFairAssigner(epsilon=epsilon), instance, group_of,
            group_sizes,
        )
        frontier.add_row(epsilon, gain, impact)
    print()
    print(frontier.render())


if __name__ == "__main__":
    main()
