"""Bench E7: the utility/fairness Pareto frontier.

Regenerates the E7 epsilon sweep for both fairness-by-design assigners
and asserts the trade-off shape: requester gain falls monotonically as
the epsilon-fair weight rises, while disparate impact improves toward
parity (and symmetrically for the constrained assigner, whose epsilon
is the allowed disparity).
"""

from benchmarks.conftest import run_once
from repro.experiments.e7_frontier import run as run_e7


def test_bench_e7_fairness_frontier(benchmark):
    result = run_once(
        benchmark, run_e7,
        n_workers=60, n_tasks=45, capacity=2, seed=5,
        epsilons=(0.0, 0.2, 0.4, 0.6, 0.8, 1.0),
    )
    print()
    print(result.render())
    rows = result.table().rows_as_dicts()
    epsilon_fair = [r for r in rows if r["assigner"] == "epsilon_fair"]
    gains = [r["requester_gain"] for r in epsilon_fair]
    assert all(a >= b - 1e-9 for a, b in zip(gains, gains[1:]))
    assert epsilon_fair[-1]["disparate_impact"] >= (
        epsilon_fair[0]["disparate_impact"]
    )
    constrained = [r for r in rows if r["assigner"] == "fairness_constrained"]
    assert constrained[0]["disparate_impact"] >= (
        constrained[-1]["disparate_impact"]
    )
