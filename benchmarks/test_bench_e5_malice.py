"""Bench E5: malicious-worker detection across spam regimes.

Regenerates the E5 detector table over the spam-fraction sweep and
asserts: the ensemble dominates the timing-only signal, and detection
remains useful at the ~40 % malicious regime of Vuurens et al. [20].
"""

from benchmarks.conftest import run_once
from repro.experiments.e5_malice_detection import run as run_e5


def test_bench_e5_malice_detection(benchmark):
    result = run_once(
        benchmark, run_e5,
        n_workers=30, n_tasks=40, redundancy=5,
        spam_fractions=(0.0, 0.1, 0.2, 0.3, 0.4, 0.5), seed=3,
    )
    print()
    print(result.render())
    rows = result.table().rows_as_dicts()
    by_key = {(r["spam_fraction"], r["detector"]): r for r in rows}
    for fraction in (0.2, 0.3, 0.4):
        assert by_key[(fraction, "ensemble")]["f1"] >= (
            by_key[(fraction, "timing")]["f1"] - 1e-9
        )
    assert by_key[(0.4, "ensemble")]["f1"] > 0.6
