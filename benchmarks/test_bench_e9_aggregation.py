"""Bench E9: redundancy/accuracy curves and aggregator comparison.

Regenerates the KOS-premise figure (majority accuracy vs redundancy,
against the Chernoff bound) and the aggregator table, asserting the
expected ordering: accuracy increases with redundancy, and
reliability-aware aggregation dominates plain majority on a market
with a large malicious fraction.
"""

from benchmarks.conftest import run_once
from repro.experiments.e9_aggregation import run as run_e9


def test_bench_e9_redundancy_and_aggregation(benchmark):
    result = run_once(
        benchmark, run_e9,
        accuracies=(0.6, 0.7, 0.8), redundancies=(1, 3, 5, 7, 9),
        n_tasks=400, market_workers=30, market_tasks=40, seed=3,
    )
    print()
    print(result.render())
    curve = result.table()
    for column in ("p=0.6", "p=0.7", "p=0.8"):
        values = curve.column(column)
        assert values[-1] > values[0]
    comparison = {r["aggregator"]: r for r in result.tables[1].rows_as_dicts()}
    assert comparison["weighted"]["accuracy"] >= (
        comparison["majority"]["accuracy"] - 1e-9
    )
