"""Bench E4: the per-axiom fairness-check benchmark suite.

Regenerates the E4 precision/recall table over the labelled Section 3.1
scenario suite and asserts the headline: every axiom checker achieves
perfect precision and recall, and the clean control stays silent.
"""

from benchmarks.conftest import run_once
from repro.experiments.e4_axiom_benchmarks import run as run_e4


def test_bench_e4_axiom_check_suite(benchmark):
    result = run_once(benchmark, run_e4, seed=0)
    print()
    print(result.render())
    per_axiom = result.table()
    assert all(p == 1.0 for p in per_axiom.column("precision"))
    assert all(r == 1.0 for r in per_axiom.column("recall"))
    detail = result.tables[1]
    assert all(detail.column("exact_match"))
    clean_row = next(
        r for r in detail.rows_as_dicts() if r["scenario"] == "clean"
    )
    assert clean_row["fired_axioms"] == "-"
