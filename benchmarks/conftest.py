"""Benchmark-suite configuration.

Each ``test_bench_e*.py`` module regenerates one experiment from the
DESIGN.md index: it runs the experiment once under pytest-benchmark
timing, prints the regenerated table(s) so the run's output contains
the same rows the paper-style report shows, and asserts the expected
qualitative shape.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations


def run_once(benchmark, func, *args, **kwargs):
    """Benchmark an expensive experiment with a single timed round."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
