"""Benchmark-suite configuration.

Each ``test_bench_e*.py`` module regenerates one experiment from the
DESIGN.md index: it runs the experiment once under pytest-benchmark
timing, prints the regenerated table(s) so the run's output contains
the same rows the paper-style report shows, and asserts the expected
qualitative shape.

Run with::

    pytest benchmarks/ --benchmark-only

``--bench-record PATH`` (available when pytest is invoked on the
``benchmarks/`` tree, where this conftest loads at startup) writes the
machine-readable numbers the gated comparisons measured — the committed
``BENCH_pipeline.json`` at the repo root is produced this way::

    pytest benchmarks/test_bench_pipeline.py --bench-record BENCH_pipeline.json
"""

from __future__ import annotations

import json

#: Records appended by :func:`record_bench` during the session, flushed
#: to ``--bench-record PATH`` (if given) at session end.
_BENCH_RECORDS: list[dict] = []


def pytest_addoption(parser):
    # Only honoured when this conftest is *initial* (pytest invoked on
    # benchmarks/...); under a whole-repo run pytest skips the hook, and
    # record_bench degrades to collecting records nobody flushes.
    parser.addoption(
        "--bench-record", action="store", default=None, metavar="PATH",
        dest="bench_record",
        help="write measured benchmark numbers to PATH as JSON",
    )


def record_bench(config, bench_id: str, **fields) -> None:
    """Queue one benchmark's measured numbers for ``--bench-record``."""
    _BENCH_RECORDS.append({"bench": bench_id, **fields})


def pytest_sessionfinish(session, exitstatus):
    try:
        path = session.config.getoption("bench_record")
    except ValueError:  # whole-repo run: option never registered
        return
    if not path or not _BENCH_RECORDS:
        return
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(
            {"format_version": 1, "benches": list(_BENCH_RECORDS)},
            handle, indent=2,
        )
        handle.write("\n")


def run_once(benchmark, func, *args, **kwargs):
    """Benchmark an expensive experiment with a single timed round."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
