"""Benchmarks for the forensics sweep and the report sinks.

Three costs worth tracking as the store grows:

* **Deep verification** — ``verify_store`` re-decodes every payload and
  cross-checks the sqlite entity index (or every JSONL segment line)
  against it, so it is O(events); the sweep over a >= 2k-event store is
  the number to watch.
* **Salvage** — ``repair_store`` replays every verifiable record into a
  fresh store; a lossless pass bounds the worst-case repair time an
  operator pays after a crash.
* **Report rendering** — all four sinks flatten the same audit
  document; rendering must stay cheap enough to re-roll after every
  ingest batch.

Under ``--benchmark-disable`` each test still runs once and asserts the
result's shape, so CI smoke keeps the paths covered without timing.
"""

import pytest

from repro.core.audit import AuditEngine
from repro.core.store import PersistentTraceStore, SQLiteTraceStore
from repro.core.trace import PlatformTrace
from repro.forensics import repair_store, verify_store
from repro.report import audit_document, render_report
from repro.workloads.scenarios import clean_scenario

_ROUNDS = 22  # 2026 events — matches the ingest benchmark's scale


@pytest.fixture(scope="module")
def big_events():
    events = list(clean_scenario(rounds=_ROUNDS, n_workers=12).trace)
    assert len(events) >= 2000
    return events


@pytest.fixture(scope="module")
def sqlite_path(big_events, tmp_path_factory):
    path = tmp_path_factory.mktemp("bench-forensics") / "trace.db"
    with SQLiteTraceStore.create(path) as store:
        store.append_batch(big_events)
    return path


@pytest.fixture(scope="module")
def log_path(big_events, tmp_path_factory):
    path = tmp_path_factory.mktemp("bench-forensics") / "trace-log"
    with PersistentTraceStore.create(path, segment_events=256) as store:
        store.append_batch(big_events)
    return path


def test_bench_verify_sqlite(benchmark, sqlite_path, big_events):
    result = benchmark.pedantic(
        lambda: verify_store(sqlite_path),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    assert result.clean
    assert result.events_valid == len(big_events)


def test_bench_verify_persistent(benchmark, log_path, big_events):
    result = benchmark.pedantic(
        lambda: verify_store(log_path),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    assert result.clean
    assert result.events_valid == len(big_events)


def test_bench_repair_sqlite_lossless(benchmark, sqlite_path, tmp_path):
    counter = iter(range(1_000_000))
    result = benchmark.pedantic(
        lambda: repair_store(
            sqlite_path, tmp_path / f"salvaged-{next(counter)}.db"
        ),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    assert result.ok
    assert result.manifest.lossless


def test_bench_render_all_report_formats(benchmark, big_events):
    trace = PlatformTrace(big_events)
    document = audit_document(
        AuditEngine().audit(trace), trace, source="bench://clean"
    )

    def render_all():
        return {
            fmt: render_report(document, fmt)
            for fmt in ("csv", "jsonl", "md", "html")
        }

    rendered = benchmark.pedantic(
        render_all, rounds=1, iterations=1, warmup_rounds=0,
    )
    assert all(rendered.values())
