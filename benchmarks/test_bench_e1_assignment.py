"""Bench E1: discriminatory power of assignment algorithms.

Regenerates the E1 table (one row per assigner: disparate impact,
parity difference, Gini, requester gain) and asserts the headline
shape: requester-centric is discriminatory, round-robin is fair, the
fairness-constrained assigner closes the gap.
"""

from benchmarks.conftest import run_once
from repro.experiments.e1_assignment_discrimination import run as run_e1


def test_bench_e1_assignment_discrimination(benchmark):
    result = run_once(
        benchmark, run_e1, n_workers=80, n_tasks=60, capacity=2, seed=0
    )
    print()
    print(result.render())
    rows = {r["assigner"]: r for r in result.table().rows_as_dicts()}
    assert rows["requester_centric"]["disparate_impact"] < 0.8
    assert rows["round_robin"]["disparate_impact"] > 0.8
    constrained = next(
        v for k, v in rows.items() if k.startswith("fairness_constrained")
    )
    assert constrained["disparate_impact"] > (
        rows["requester_centric"]["disparate_impact"]
    )
    assert rows["hungarian_requester"]["requester_gain"] >= (
        rows["round_robin"]["requester_gain"]
    )
