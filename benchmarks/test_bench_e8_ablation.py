"""Bench E8: similarity-threshold ablation of the Axiom 1 checker.

Regenerates the threshold-sensitivity table (DESIGN.md design choice
ablation 1) and asserts the separating behaviour: strict thresholds
flag harmless noise, lax thresholds miss nothing noisy but real bias
is caught throughout the strict-to-moderate band.
"""

from benchmarks.conftest import run_once
from repro.experiments.e8_threshold_ablation import run as run_e8


def test_bench_e8_threshold_ablation(benchmark):
    result = run_once(
        benchmark, run_e8,
        n_workers=12, n_rounds=4, seed=2,
        thresholds=(1.0, 0.9, 0.8, 0.6, 0.4, 0.2),
    )
    print()
    print(result.render())
    rows = {r["threshold"]: r for r in result.table().rows_as_dicts()}
    assert rows[1.0]["noisy_violations"] > rows[0.4]["noisy_violations"]
    assert rows[0.2]["noisy_violations"] == 0
    assert rows[0.6]["biased_violations"] > 0
