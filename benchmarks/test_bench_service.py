"""Audit-service concurrency: >= 100 tenant sessions on one box.

The tentpole claim for the service layer is multi-tenancy, not raw
single-stream speed: one `AuditService` must sustain append + delta
audit + query traffic from at least 100 concurrent tenant sessions —
each with its own store, its own audit session, and its own lock — on
one box, with every tenant's verdict identical to a local batch audit
of the same events.

Each tenant thread drives the real HTTP stack (ThreadingHTTPServer +
urllib `ServiceClient`, no shortcuts through `ServiceApp.dispatch`):
create the tenant, stream one labelled scenario in batches with a
delta audit per batch, then pull the latest verdict and a couple of
queries.  The recorded number is aggregate appended-events/second
across all tenants.

Under ``--benchmark-disable`` (the CI smoke step) the same 100 tenants
run a single batch+audit round each — concurrency and correctness are
still exercised; wall-clock claims belong to timed runs.
"""

import threading
import time

import pytest

from conftest import record_bench

from repro.core.audit import AuditEngine
from repro.core.serialize import event_to_dict
from repro.service import AuditService, ServiceClient
from repro.service.wire import report_to_dict
from repro.workloads.scenarios import all_scenarios

#: The concurrency floor the ISSUE gates on.
TENANTS = 100

#: Events appended per HTTP batch in the timed run.
BATCH_EVENTS = 16


@pytest.fixture(scope="module")
def scenario_records():
    """The 12 labelled scenarios as (name, wire records, local verdict)."""
    engine = AuditEngine()
    prepared = []
    for scenario in all_scenarios(0):
        records = [event_to_dict(event) for event in scenario.trace]
        verdict = report_to_dict(engine.audit(scenario.trace))
        prepared.append((scenario.name, records, verdict))
    assert len(prepared) == 12
    return prepared


def _drive_tenant(client, name, records, batch_events):
    """One tenant session: create, stream batches, audit, query."""
    client.create_tenant(name, backend="memory")
    appended = 0
    for start in range(0, len(records), batch_events):
        batch = records[start:start + batch_events]
        client.append(name, batch)
        appended += len(batch)
        client.run_audit(name)
    count = client.query(name, count=True)["count"]
    assert count == appended == len(records)
    latest = client.latest_audit(name)
    return appended, latest


def _hammer(service, scenario_records, batch_events):
    """All tenants concurrently; returns (events, elapsed, failures)."""
    client = ServiceClient(service.url, timeout=120.0)
    results: list[tuple] = [None] * TENANTS
    failures: list[tuple] = []
    barrier = threading.Barrier(TENANTS)

    def session(index):
        name, records, verdict = scenario_records[
            index % len(scenario_records)
        ]
        try:
            barrier.wait(timeout=60)
            results[index] = (
                verdict, _drive_tenant(
                    client, f"tenant-{index:03d}-{name}", records,
                    batch_events,
                )
            )
        except Exception as error:  # noqa: BLE001 - collected and asserted
            failures.append((index, repr(error)))

    threads = [
        threading.Thread(target=session, args=(i,), daemon=True)
        for i in range(TENANTS)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=300)
    elapsed = time.perf_counter() - start
    assert not failures, f"{len(failures)} tenant session(s) failed: " \
                         f"{failures[:3]}"
    total_events = 0
    for verdict, (appended, latest) in results:
        total_events += appended
        assert latest == verdict, (
            "service verdict diverged from the local batch audit"
        )
    return total_events, elapsed


def test_service_sustains_100_concurrent_tenants(request, scenario_records):
    """>= 100 tenant sessions, verdicts identical to local audits.

    The recorded throughput is aggregate events/second across every
    tenant's append+audit stream.  Under ``--benchmark-disable`` each
    tenant sends its scenario as one batch (cheap, still concurrent);
    the timed run streams real batch cadences.
    """
    disabled = request.config.getoption("benchmark_disable")
    batch_events = 10_000 if disabled else BATCH_EVENTS
    with AuditService(None, port=0) as service:
        total_events, elapsed = _hammer(
            service, scenario_records, batch_events
        )
        hosted = ServiceClient(service.url).ping()["tenants"]
    assert hosted == TENANTS
    assert total_events > 0
    if disabled:
        return
    record_bench(
        request.config, "service_concurrent_tenants",
        tenants=TENANTS,
        events=total_events,
        batch_events=batch_events,
        elapsed_ms=round(elapsed * 1000.0, 3),
        events_per_sec=round(total_events / elapsed, 1),
    )
