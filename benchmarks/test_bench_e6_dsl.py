"""Bench E6: transparency-DSL expressiveness and comparison.

Regenerates both E6 tables (preset coverage; pairwise diffs) and
asserts the expressiveness claims: every surveyed platform's surface is
encodable and round-trips, and Turkopticon strictly extends stock AMT.
"""

from benchmarks.conftest import run_once
from repro.experiments.e6_dsl_expressiveness import run as run_e6


def test_bench_e6_dsl_expressiveness(benchmark):
    result = run_once(benchmark, run_e6)
    print()
    print(result.render())
    table = result.table()
    assert all(table.column("round_trips"))
    coverage = dict(zip(table.column("policy"), table.column("mandated_coverage")))
    assert coverage["opaque"] == 0.0
    assert coverage["full"] == 1.0
    comparison = result.tables[1]
    row = next(
        r for r in comparison.rows_as_dicts()
        if r["left"] == "amt_basic" and r["right"] == "amt_turkopticon"
    )
    assert row["right_superset"] and row["coverage_gap"] > 0
