"""Bench E10: statistical power of the Axiom 1 checker.

Regenerates the detection-power curve over bias intensity and asserts
the headline shape: no false positives at zero bias, monotone
non-decreasing violations with intensity, and full detection well
below total discrimination.
"""

from benchmarks.conftest import run_once
from repro.experiments.e10_power_analysis import run as run_e10


def test_bench_e10_detection_power(benchmark):
    result = run_once(
        benchmark, run_e10,
        bias_probabilities=(0.0, 0.1, 0.25, 0.5, 0.75, 1.0),
        n_workers=10, n_rounds=4, replications=10, seed=17,
    )
    print()
    print(result.render())
    rows = result.table().rows_as_dicts()
    by_bias = {r["bias_probability"]: r for r in rows}
    assert by_bias[0.0]["detection_rate"] == 0.0
    assert by_bias[0.0]["mean_violations"] == 0.0
    assert by_bias[1.0]["detection_rate"] == 1.0
    assert by_bias[0.25]["detection_rate"] >= 0.9
    violations = [r["mean_violations"] for r in rows]
    assert all(a <= b + 1e-9 for a, b in zip(violations, violations[1:]))
