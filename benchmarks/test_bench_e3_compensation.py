"""Bench E3: contribution quality vs compensation fairness.

Regenerates the E3 regime table (quality-aware Axiom 3) and the strict
payload-only ablation, asserting: fair regimes are violation-free and
keep quality high; wage theft and biased review are flagged and
depress quality/retention; quality-based pricing is flagged only under
the strict reading (the reproduction's Axiom-3-vs-[21] finding).
"""

from benchmarks.conftest import run_once
from repro.experiments.e3_compensation_fairness import run as run_e3


def test_bench_e3_compensation_fairness(benchmark):
    result = run_once(
        benchmark, run_e3,
        n_workers=60, rounds=10, tasks_per_round=30, seed=11,
    )
    print()
    print(result.render())
    rows = {r["regime"]: r for r in result.table().rows_as_dicts()}
    assert rows["fixed_reward"]["axiom3_violations"] == 0
    assert rows["quality_based"]["axiom3_violations"] == 0
    assert rows["wage_theft"]["axiom3_violations"] > 0
    assert rows["biased_review"]["axiom3_violations"] > 0
    assert rows["wage_theft"]["mean_quality"] < rows["fixed_reward"]["mean_quality"]
    assert rows["wage_theft"]["retention"] <= rows["fixed_reward"]["retention"]
    ablation = {r["regime"]: r for r in result.tables[1].rows_as_dicts()}
    assert ablation["quality_based"]["strict_violations"] > 0
    assert ablation["fixed_reward"]["strict_violations"] == 0
