"""Telemetry overhead on an instrumented ingest+audit tail.

The instrumented hot paths (store append, delta audit, ingest stages)
record one counter/histogram update *per batch*, never per event, and
every recording site is guarded by ``registry.enabled`` so the null
registry skips even the clock reads.  This bench pins that design: the
same audit-bound tail as ``test_bench_pipeline.py`` (a hot-catalog
workload where the per-batch cost is Axiom 2's qualifying-pair walk)
is driven once under the process-default :data:`NULL_REGISTRY` and
once under a live :class:`MetricsRegistry`, interleaved best-of-5
minimums, and the instrumented run must land within 5% of the null
run.

Both modes must produce identical ingest summaries and audit reports —
telemetry is never allowed to change a verdict — and the instrumented
run must actually have filled the store/audit/ingest families (so the
gate cannot pass vacuously by measuring an uninstrumented path).
Under ``--benchmark-disable`` (the CI smoke step) only those two
checks run; wall-clock claims belong to timed runs.  A timed run
records its numbers for ``--bench-record`` (see ``conftest.py``),
which is how the committed ``BENCH_telemetry.json`` is produced.
"""

import time

import pytest

from conftest import record_bench
from repro.core.axiom_assignment import RequesterFairnessInAssignment
from repro.core.axioms import default_registry
from repro.core.trace import PlatformTrace
from repro.ingest import IngestRunner, JSONLExportSource, export_jsonl
from repro.telemetry import NULL_REGISTRY, MetricsRegistry, using_registry
from test_bench_shard import hot_catalog_batches

#: Catalog size: C(300, 2) ≈ 45k task pairs in front of Axiom 2 —
#: enough per-batch audit work that a run takes ~seconds, so the
#: per-batch recording cost (microseconds) must stay in the noise.
N_TASKS = 300

#: Events per ingest batch — one hot-catalog round per batch, so the
#: runner audits (and records) at every round boundary.
BATCH_EVENTS = 17

#: Interleaved timing rounds; the minimum of each mode is compared.
ROUNDS = 5

#: The gate: instrumented wall-clock within 5% of the null registry.
MAX_OVERHEAD = 1.05


def _axioms():
    """The default suite with Axiom 2 walking the full catalog."""
    return default_registry(
        axiom2=RequesterFairnessInAssignment(max_pairs=50_000)
    )


@pytest.fixture(scope="module")
def export_path(tmp_path_factory):
    batches = hot_catalog_batches(n_tasks=N_TASKS)
    trace = PlatformTrace()
    for batch in batches:
        trace.extend(batch)
    assert len(trace.events) >= 2000, (
        f"bench trace shrank to {len(trace.events)} events"
    )
    path = str(tmp_path_factory.mktemp("telemetry-bench") / "export.jsonl")
    export_jsonl(trace, path)
    return path


def _timed_tail(export, metrics_registry):
    """One full sequential ingest+audit pass; time ``run()`` only.

    ``metrics_registry`` becomes the process default for the duration,
    which is exactly how the instrumented layers resolve their sink —
    the run itself is identical code in both modes.
    """
    with using_registry(metrics_registry):
        source = JSONLExportSource(export)
        store = PlatformTrace()
        runner = IngestRunner(
            source, store, batch_events=BATCH_EVENTS, audit=True,
            interval=0.0, registry=_axioms(),
        )
        try:
            start = time.perf_counter()
            summary = runner.run(idle_limit=1)
            elapsed = time.perf_counter() - start
        finally:
            runner.close()
            source.close()
    return elapsed, summary


def _assert_equivalent(null_summary, inst_summary):
    assert inst_summary.events == null_summary.events
    assert inst_summary.batches == null_summary.batches
    assert inst_summary.report == null_summary.report


def _assert_instrumented(registry, summary):
    """The instrumented run filled the families the gate claims to time."""
    assert registry.counter(
        "repro_ingest_stage_batches_total", stage="append"
    ).value == summary.batches
    assert registry.counter(
        "repro_store_append_events_total", backend="memory"
    ).value == summary.events
    assert registry.counter(
        "repro_audit_runs_total", engine="delta"
    ).value >= summary.batches


def test_instrumented_tail_matches_null_registry(export_path):
    """Same summary, same verdict — recording is invisible to results."""
    _, null_summary = _timed_tail(export_path, NULL_REGISTRY)
    live = MetricsRegistry()
    _, inst_summary = _timed_tail(export_path, live)
    _assert_equivalent(null_summary, inst_summary)
    _assert_instrumented(live, inst_summary)


def test_telemetry_overhead_within_five_percent(request, export_path):
    """Instrumented ingest+audit within 5% of the null-registry run.

    Interleaved best-of-5 minimums keep scheduler noise on loaded CI
    runners from flaking a tight gate (measured ~1% overhead on the
    dev container, so 5% leaves margin).  Under ``--benchmark-disable``
    only equivalence and family coverage are asserted.
    """
    if request.config.getoption("benchmark_disable"):
        _, null_summary = _timed_tail(export_path, NULL_REGISTRY)
        live = MetricsRegistry()
        _, inst_summary = _timed_tail(export_path, live)
        _assert_equivalent(null_summary, inst_summary)
        _assert_instrumented(live, inst_summary)
        return

    null_best = inst_best = float("inf")
    for _ in range(ROUNDS):
        null_elapsed, null_summary = _timed_tail(export_path, NULL_REGISTRY)
        live = MetricsRegistry()
        inst_elapsed, inst_summary = _timed_tail(export_path, live)
        null_best = min(null_best, null_elapsed)
        inst_best = min(inst_best, inst_elapsed)
        _assert_equivalent(null_summary, inst_summary)
        _assert_instrumented(live, inst_summary)

    ratio = inst_best / null_best
    record_bench(
        request.config, "telemetry_overhead",
        null_ms=round(null_best * 1000.0, 3),
        instrumented_ms=round(inst_best * 1000.0, 3),
        overhead_ratio=round(ratio, 4),
        overhead_pct=round((ratio - 1.0) * 100.0, 2),
        events=inst_summary.events,
        batches=inst_summary.batches,
    )
    assert ratio <= MAX_OVERHEAD, (
        f"instrumented tail {ratio:.3f}x the null-registry run "
        f"(instrumented {inst_best:.3f}s, null {null_best:.3f}s); "
        f"expected <= {MAX_OVERHEAD}x"
    )
