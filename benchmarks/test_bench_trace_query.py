"""Benchmarks for the query subsystem: indexed SQL vs generic scan.

Two claims, each with pytest-benchmark twins for the record and one
wall-clock assertion (timing-free under ``--benchmark-disable``, where
only verdict/result equality is checked):

* **Entity-scoped queries.**  On a >= 2k-event trace, answering "what
  happened to this entity" through the SQLite backend's entity index
  costs the size of the answer; the generic cursor scan costs the size
  of the log (it must evaluate per-event touched sets).  Measured on
  the dev container (best of 5): contribution-scoped 7.7ms scan vs
  0.03ms indexed (~250x), worker-scoped 7.5ms vs 1.1ms (~6.6x).  The
  assertion requires >= 3x on the contribution query.

* **Delta audits through the query path.**  On the sqlite backend the
  delta re-sweeps of Axioms 2/6/7 fetch per-entity slices through
  seq-bounded TraceQuery point queries.  Per-checkpoint *audit* cost
  (appends excluded — both monitors pay identical write-through costs)
  stays >= 3x below full re-audits of the same sqlite-backed trace
  (measured ~65ms vs ~254ms over 22 checkpoints); the memory-backend
  delta numbers of ``test_bench_perf.py`` are untouched because the
  query path only engages on indexed stores.
"""

import time

import pytest

from repro.core.audit import AuditEngine, DeltaAuditEngine
from repro.core.store import SQLiteTraceStore
from repro.core.trace import PlatformTrace
from repro.query import TraceQuery
from repro.workloads.scenarios import clean_scenario

_ROUNDS = 22  # 2026 events — the ROADMAP's largest delta-scaling point


@pytest.fixture(scope="module")
def big_trace():
    trace = clean_scenario(rounds=_ROUNDS, n_workers=12).trace
    assert len(trace) >= 2000
    return trace


@pytest.fixture(scope="module")
def sqlite_trace(big_trace, tmp_path_factory):
    path = tmp_path_factory.mktemp("bench-query") / "trace.db"
    big_trace.save(path)
    return PlatformTrace.open(path)


def _entity_queries(trace):
    """The benchmark workload: one sparse and one busy entity."""
    contribution_id = sorted(trace.contributions)[len(trace.contributions) // 2]
    worker_id = trace.worker_ids[0]
    return (
        TraceQuery().contribution(contribution_id),
        TraceQuery().worker(worker_id).of_kind("payment_issued"),
    )


def test_bench_entity_query_indexed(benchmark, big_trace, sqlite_trace):
    """Entity-scoped queries answered by the SQLite entity index."""
    queries = _entity_queries(big_trace)
    results = benchmark(
        lambda: tuple(query.run(sqlite_trace) for query in queries)
    )
    assert results[0] and results[1]


def test_bench_entity_query_full_scan(benchmark, big_trace):
    """The same queries answered by the generic cursor scan."""
    queries = _entity_queries(big_trace)
    results = benchmark(
        lambda: tuple(query.run(big_trace) for query in queries)
    )
    assert results[0] and results[1]


def _best_of(n, run):
    best, result = float("inf"), None
    for _ in range(n):
        start = time.perf_counter()
        result = run()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_indexed_entity_query_beats_full_scan(
    request, big_trace, sqlite_trace
):
    """Identical answers, >= 3x cheaper through the entity index.

    The measured gap on the sparse (contribution-scoped) query is two
    orders of magnitude, so 3x leaves a wide margin for loaded CI
    runners.  Under ``--benchmark-disable`` only result equality is
    asserted — wall-clock claims belong to timed runs.
    """
    query = _entity_queries(big_trace)[0]
    scan_result = query.run(big_trace)
    indexed_result = query.run(sqlite_trace)
    assert scan_result == indexed_result
    assert scan_result  # a vacuous query would prove nothing
    if request.config.getoption("benchmark_disable"):
        return
    scan_elapsed, _ = _best_of(5, lambda: query.run(big_trace))
    indexed_elapsed, _ = _best_of(5, lambda: query.run(sqlite_trace))
    assert scan_elapsed >= 3.0 * indexed_elapsed, (
        f"indexed entity query only "
        f"{scan_elapsed / indexed_elapsed:.1f}x faster than the full "
        f"scan (scan {scan_elapsed * 1000:.2f}ms, indexed "
        f"{indexed_elapsed * 1000:.2f}ms); expected >= 3x"
    )


# ----------------------------------------------------------------------
# Delta audits through the query path (sqlite-backed growing trace).


def _round_chunks(trace):
    events = list(trace)
    size = max(1, len(events) // _ROUNDS)
    return [events[i:i + size] for i in range(0, len(events), size)]


def _monitor(engine_kind, chunks, tmp_path):
    """Audit a growing sqlite-backed trace at per-round checkpoints,
    timing audits separately from appends (both monitors pay identical
    write-through costs)."""
    if engine_kind == "delta":
        engine = DeltaAuditEngine()
    else:
        engine = AuditEngine()
    store = SQLiteTraceStore.create(tmp_path / f"{engine_kind}.db")
    prefix = PlatformTrace(store=store)
    reports, audit_elapsed = [], 0.0
    for chunk in chunks:
        prefix.extend(chunk)
        start = time.perf_counter()
        reports.append(engine.audit(prefix))
        audit_elapsed += time.perf_counter() - start
    store.close()
    return reports, audit_elapsed


def test_bench_delta_monitor_on_sqlite(benchmark, big_trace, tmp_path):
    """Delta monitoring of a sqlite-backed trace (query-served sweeps)."""
    chunks = _round_chunks(big_trace)
    counter = iter(range(1_000_000))

    def monitor():
        scratch = tmp_path / str(next(counter))
        scratch.mkdir()
        return _monitor("delta", chunks, scratch)[0]

    reports = benchmark.pedantic(monitor, rounds=1, iterations=1,
                                 warmup_rounds=0)
    assert len(reports) == len(chunks)


def test_bench_full_reaudit_monitor_on_sqlite(benchmark, big_trace, tmp_path):
    """The behaviour the delta session replaces, same backend."""
    chunks = _round_chunks(big_trace)
    counter = iter(range(1_000_000))

    def monitor():
        scratch = tmp_path / str(next(counter))
        scratch.mkdir()
        return _monitor("full", chunks, scratch)[0]

    reports = benchmark.pedantic(monitor, rounds=1, iterations=1,
                                 warmup_rounds=0)
    assert len(reports) == len(chunks)


def test_delta_audit_beats_full_reaudit_on_sqlite(
    request, big_trace, tmp_path
):
    """Same verdicts as the memory-backend delta session, >= 3x cheaper
    per audit than full re-audits of the same sqlite-backed trace.

    This pins the query-served delta path (Axioms 2/6/7 fetching
    per-entity slices through TraceQuery) to delta-territory costs:
    measured ~65ms of audit time over 22 checkpoints vs ~254ms for
    full re-audits (~3.9x).  Append costs are excluded from the
    comparison — they are identical write-through work in both
    monitors.  Under ``--benchmark-disable`` only verdict equality is
    asserted.
    """
    chunks = _round_chunks(big_trace)

    # Exactness first: sqlite delta == sqlite full == memory delta.
    memory_session = DeltaAuditEngine()
    memory_prefix = PlatformTrace()
    memory_reports = []
    for chunk in chunks:
        memory_prefix.extend(chunk)
        memory_reports.append(memory_session.audit(memory_prefix))

    if request.config.getoption("benchmark_disable"):
        scratch = tmp_path / "verdicts"
        scratch.mkdir()
        delta_reports, _ = _monitor("delta", chunks, scratch)
        full_reports, _ = _monitor("full", chunks, scratch)
        assert delta_reports == full_reports == memory_reports
        return

    def best_of_three(engine_kind):
        best, reports = float("inf"), None
        for attempt in range(3):
            scratch = tmp_path / f"{engine_kind}-{attempt}"
            scratch.mkdir()
            reports, audit_elapsed = _monitor(engine_kind, chunks, scratch)
            best = min(best, audit_elapsed)
        return best, reports

    delta_elapsed, delta_reports = best_of_three("delta")
    full_elapsed, full_reports = best_of_three("full")
    assert delta_reports == full_reports == memory_reports
    assert full_elapsed >= 3.0 * delta_elapsed, (
        f"query-served delta audits only "
        f"{full_elapsed / delta_elapsed:.1f}x faster than full re-audit "
        f"on sqlite (delta {delta_elapsed:.3f}s, full {full_elapsed:.3f}s); "
        f"expected >= 3x"
    )
