"""Performance micro-benchmarks: scaling of the core operations.

These time the building blocks a platform operator would run in a
loop: auditing a trace, solving an assignment instance, and the DSL
parse/evaluate path.  Unlike the E-benches these use multiple timed
rounds (operations are cheap enough).
"""

import random
import time

import pytest

from repro.assignment import (
    AssignmentInstance,
    HungarianAssigner,
    RequesterCentricAssigner,
)
from repro.core.audit import AuditEngine, DeltaAuditEngine, StreamingAuditEngine
from repro.core.trace import PlatformTrace
from repro.experiments.e1_assignment_discrimination import (
    biased_reputation_population,
)
from repro.transparency.evaluator import PolicyEvaluator
from repro.transparency.parser import parse_policy
from repro.transparency.presets import _PRESET_SOURCES, preset
from repro.workloads.scenarios import clean_scenario
from repro.workloads.skills import standard_vocabulary
from repro.workloads.tasks import uniform_tasks


@pytest.fixture(scope="module")
def audit_trace():
    return clean_scenario(rounds=6, n_workers=10).trace


def test_bench_audit_engine(benchmark, audit_trace):
    """Full 7-axiom audit over a mid-sized clean trace."""
    engine = AuditEngine()
    report = benchmark(engine.audit, audit_trace)
    assert report.passed


def _instance(n_workers, n_tasks):
    vocabulary = standard_vocabulary()
    workers = biased_reputation_population(n_workers, seed=0)
    tasks = uniform_tasks(n_tasks, vocabulary, reward=0.2,
                          skills=("image_recognition",), gold=False)
    return AssignmentInstance(
        workers=tuple(workers), tasks=tuple(tasks), capacity=2
    )


@pytest.mark.parametrize("size", [50, 150])
def test_bench_greedy_assignment_scaling(benchmark, size):
    instance = _instance(size, size)
    result = benchmark(
        RequesterCentricAssigner().assign, instance, random.Random(0)
    )
    assert result.pairs


def test_bench_optimal_assignment(benchmark):
    instance = _instance(60, 60)
    result = benchmark(HungarianAssigner().assign, instance, random.Random(0))
    assert result.pairs


def test_bench_dsl_parse(benchmark):
    source = _PRESET_SOURCES["full"]
    policy = benchmark(parse_policy, source)
    assert policy.rules


def test_bench_trace_serialization_round_trip(benchmark, audit_trace):
    """JSON export + import of a mid-sized trace (the adapter path)."""
    from repro.core.serialize import trace_from_json, trace_to_json

    def round_trip():
        return trace_from_json(trace_to_json(audit_trace))

    restored = benchmark(round_trip)
    assert len(restored) == len(audit_trace)


def test_bench_windowed_audit(benchmark, audit_trace):
    """Fairness-over-time: auditing the trace in 4-tick windows."""
    engine = AuditEngine()
    windows = benchmark(engine.windowed_audit, audit_trace, 4)
    assert windows


# ----------------------------------------------------------------------
# Streaming audit: continuous monitoring of a growing trace.
#
# The monitoring loop audits after every round of platform activity.
# Batch re-audit rescans the whole prefix at each checkpoint — total
# work superlinear (quadratic) in trace length; the streaming engine
# pays each event once plus a per-snapshot entity sweep — total work
# close to linear.  ``test_bench_streaming_audit`` vs
# ``test_bench_repeated_batch_reaudit`` quantifies the gap at identical
# checkpoints and verdicts.


@pytest.fixture(scope="module")
def growing_trace_chunks():
    """A larger trace cut into per-round chunks (audit checkpoints)."""
    trace = clean_scenario(rounds=14, n_workers=12).trace
    events = list(trace)
    n_chunks = 14
    size = max(1, len(events) // n_chunks)
    chunks = [events[i:i + size] for i in range(0, len(events), size)]
    return trace, chunks


def test_bench_streaming_audit(benchmark, growing_trace_chunks):
    """Streaming monitoring: observe each chunk once, snapshot after it."""
    trace, chunks = growing_trace_chunks

    def monitor():
        engine = StreamingAuditEngine()
        reports = []
        for chunk in chunks:
            engine.observe_all(chunk)
            reports.append(engine.snapshot())
        return reports

    reports = benchmark(monitor)
    assert len(reports) == len(chunks)
    assert reports[-1] == AuditEngine().audit(trace)


def test_bench_repeated_batch_reaudit(benchmark, growing_trace_chunks):
    """The status quo being replaced: full re-audit at each checkpoint."""
    trace, chunks = growing_trace_chunks

    def monitor():
        engine = AuditEngine()
        prefix = PlatformTrace()
        reports = []
        for chunk in chunks:
            prefix.extend(chunk)
            reports.append(engine.audit(prefix))
        return reports

    reports = benchmark(monitor)
    assert len(reports) == len(chunks)
    assert reports[-1] == AuditEngine().audit(trace)


def test_streaming_monitoring_beats_batch_reaudit(growing_trace_chunks):
    """Correctness-equivalent monitoring must also be cheaper: the
    streaming loop's wall-clock is below the batch re-audit loop's.
    Best-of-3 minimums keep scheduler noise on loaded CI runners from
    flaking the comparison; the pytest-benchmark twins above report
    the precise ratio (~5x at this trace size, growing with length).
    """
    _, chunks = growing_trace_chunks

    def streaming_monitor():
        engine = StreamingAuditEngine()
        reports = []
        for chunk in chunks:
            engine.observe_all(chunk)
            reports.append(engine.snapshot())
        return reports

    def batch_monitor():
        engine = AuditEngine()
        prefix = PlatformTrace()
        reports = []
        for chunk in chunks:
            prefix.extend(chunk)
            reports.append(engine.audit(prefix))
        return reports

    def best_of_three(monitor):
        best, reports = float("inf"), None
        for _ in range(3):
            start = time.perf_counter()
            reports = monitor()
            best = min(best, time.perf_counter() - start)
        return best, reports

    streaming_elapsed, streaming_reports = best_of_three(streaming_monitor)
    batch_elapsed, batch_reports = best_of_three(batch_monitor)

    assert streaming_reports == batch_reports
    assert streaming_elapsed < batch_elapsed, (
        f"streaming {streaming_elapsed:.3f}s not faster than "
        f"batch re-audit {batch_elapsed:.3f}s"
    )


# ----------------------------------------------------------------------
# Delta-aware repeated batch audits: the scaling fix for the batch path.
#
# A delta session (DeltaAuditEngine) audits a growing trace at the same
# per-round checkpoints as the seed full re-audit, but each audit pays
# only for the new events plus touched-entity re-sweeps.  The
# parametrised twins below record the scaling curve at three trace
# sizes; measured on the dev container (best of 3):
#
#   rounds= 6,  586 events: full  35ms, delta 12ms  (~2.9x)
#   rounds=14, 1306 events: full 160ms, delta 31ms  (~5.3x)
#   rounds=22, 2026 events: full 377ms, delta 51ms  (~7.5x)
#
# Full re-audit grows superlinearly with trace length; the delta path
# stays near-linear, so the ratio widens with scale.

_DELTA_SCALE_ROUNDS = (6, 14, 22)


def _round_chunks(rounds):
    """A clean trace of ``rounds`` rounds cut into per-round audit
    checkpoints."""
    trace = clean_scenario(rounds=rounds, n_workers=12).trace
    events = list(trace)
    size = max(1, len(events) // rounds)
    return [events[i:i + size] for i in range(0, len(events), size)]


def _monitor_full(chunks):
    engine = AuditEngine()
    prefix = PlatformTrace()
    reports = []
    for chunk in chunks:
        prefix.extend(chunk)
        reports.append(engine.audit(prefix))
    return reports


def _monitor_delta(chunks):
    session = DeltaAuditEngine()
    prefix = PlatformTrace()
    reports = []
    for chunk in chunks:
        prefix.extend(chunk)
        reports.append(session.audit(prefix))
    return reports


@pytest.mark.parametrize("rounds", _DELTA_SCALE_ROUNDS)
def test_bench_delta_repeated_audit(benchmark, rounds):
    """Delta-aware batch monitoring at per-round checkpoints."""
    chunks = _round_chunks(rounds)
    reports = benchmark(_monitor_delta, chunks)
    assert len(reports) == len(chunks)


@pytest.mark.parametrize("rounds", _DELTA_SCALE_ROUNDS)
def test_bench_full_repeated_reaudit(benchmark, rounds):
    """The seed behaviour the delta session replaces."""
    chunks = _round_chunks(rounds)
    reports = benchmark(_monitor_full, chunks)
    assert len(reports) == len(chunks)


def test_delta_repeated_audit_beats_full_reaudit(request):
    """Identical verdicts, >= 3x cheaper at the largest trace size.

    Best-of-3 minimums keep scheduler noise on loaded CI runners from
    flaking the comparison; the measured ratio here is ~7.5x, so 3x
    leaves a wide margin.  Under ``--benchmark-disable`` (the CI smoke
    step's timing-free mode) only the verdict equality is asserted —
    wall-clock claims belong to timed runs.
    """
    chunks = _round_chunks(_DELTA_SCALE_ROUNDS[-1])
    if request.config.getoption("benchmark_disable"):
        assert _monitor_delta(chunks) == _monitor_full(chunks)
        return

    def best_of_three(monitor):
        best, reports = float("inf"), None
        for _ in range(3):
            start = time.perf_counter()
            reports = monitor(chunks)
            best = min(best, time.perf_counter() - start)
        return best, reports

    full_elapsed, full_reports = best_of_three(_monitor_full)
    delta_elapsed, delta_reports = best_of_three(_monitor_delta)

    assert delta_reports == full_reports
    assert full_elapsed >= 3.0 * delta_elapsed, (
        f"delta repeated audits only {full_elapsed / delta_elapsed:.1f}x "
        f"faster than full re-audit (delta {delta_elapsed:.3f}s, "
        f"full {full_elapsed:.3f}s); expected >= 3x"
    )


def test_bench_policy_evaluation(benchmark, audit_trace):
    policy = preset("full")
    evaluator = PolicyEvaluator(
        policy, platform_stats={"fee_structure": "20%",
                                "estimated_hourly_wage": 5.0},
    )
    workers = list(audit_trace.final_workers().values())
    requesters = list(audit_trace.requesters.values())
    tasks = list(audit_trace.tasks.values())
    disclosures = benchmark(
        evaluator.evaluate, requesters, workers, tasks
    )
    assert disclosures
