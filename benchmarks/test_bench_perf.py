"""Performance micro-benchmarks: scaling of the core operations.

These time the building blocks a platform operator would run in a
loop: auditing a trace, solving an assignment instance, and the DSL
parse/evaluate path.  Unlike the E-benches these use multiple timed
rounds (operations are cheap enough).
"""

import random
import time

import pytest

from repro.assignment import (
    AssignmentInstance,
    HungarianAssigner,
    RequesterCentricAssigner,
)
from repro.core.audit import AuditEngine, StreamingAuditEngine
from repro.core.trace import PlatformTrace
from repro.experiments.e1_assignment_discrimination import (
    biased_reputation_population,
)
from repro.transparency.evaluator import PolicyEvaluator
from repro.transparency.parser import parse_policy
from repro.transparency.presets import _PRESET_SOURCES, preset
from repro.workloads.scenarios import clean_scenario
from repro.workloads.skills import standard_vocabulary
from repro.workloads.tasks import uniform_tasks


@pytest.fixture(scope="module")
def audit_trace():
    return clean_scenario(rounds=6, n_workers=10).trace


def test_bench_audit_engine(benchmark, audit_trace):
    """Full 7-axiom audit over a mid-sized clean trace."""
    engine = AuditEngine()
    report = benchmark(engine.audit, audit_trace)
    assert report.passed


def _instance(n_workers, n_tasks):
    vocabulary = standard_vocabulary()
    workers = biased_reputation_population(n_workers, seed=0)
    tasks = uniform_tasks(n_tasks, vocabulary, reward=0.2,
                          skills=("image_recognition",), gold=False)
    return AssignmentInstance(
        workers=tuple(workers), tasks=tuple(tasks), capacity=2
    )


@pytest.mark.parametrize("size", [50, 150])
def test_bench_greedy_assignment_scaling(benchmark, size):
    instance = _instance(size, size)
    result = benchmark(
        RequesterCentricAssigner().assign, instance, random.Random(0)
    )
    assert result.pairs


def test_bench_optimal_assignment(benchmark):
    instance = _instance(60, 60)
    result = benchmark(HungarianAssigner().assign, instance, random.Random(0))
    assert result.pairs


def test_bench_dsl_parse(benchmark):
    source = _PRESET_SOURCES["full"]
    policy = benchmark(parse_policy, source)
    assert policy.rules


def test_bench_trace_serialization_round_trip(benchmark, audit_trace):
    """JSON export + import of a mid-sized trace (the adapter path)."""
    from repro.core.serialize import trace_from_json, trace_to_json

    def round_trip():
        return trace_from_json(trace_to_json(audit_trace))

    restored = benchmark(round_trip)
    assert len(restored) == len(audit_trace)


def test_bench_windowed_audit(benchmark, audit_trace):
    """Fairness-over-time: auditing the trace in 4-tick windows."""
    engine = AuditEngine()
    windows = benchmark(engine.windowed_audit, audit_trace, 4)
    assert windows


# ----------------------------------------------------------------------
# Streaming audit: continuous monitoring of a growing trace.
#
# The monitoring loop audits after every round of platform activity.
# Batch re-audit rescans the whole prefix at each checkpoint — total
# work superlinear (quadratic) in trace length; the streaming engine
# pays each event once plus a per-snapshot entity sweep — total work
# close to linear.  ``test_bench_streaming_audit`` vs
# ``test_bench_repeated_batch_reaudit`` quantifies the gap at identical
# checkpoints and verdicts.


@pytest.fixture(scope="module")
def growing_trace_chunks():
    """A larger trace cut into per-round chunks (audit checkpoints)."""
    trace = clean_scenario(rounds=14, n_workers=12).trace
    events = list(trace)
    n_chunks = 14
    size = max(1, len(events) // n_chunks)
    chunks = [events[i:i + size] for i in range(0, len(events), size)]
    return trace, chunks


def test_bench_streaming_audit(benchmark, growing_trace_chunks):
    """Streaming monitoring: observe each chunk once, snapshot after it."""
    trace, chunks = growing_trace_chunks

    def monitor():
        engine = StreamingAuditEngine()
        reports = []
        for chunk in chunks:
            engine.observe_all(chunk)
            reports.append(engine.snapshot())
        return reports

    reports = benchmark(monitor)
    assert len(reports) == len(chunks)
    assert reports[-1] == AuditEngine().audit(trace)


def test_bench_repeated_batch_reaudit(benchmark, growing_trace_chunks):
    """The status quo being replaced: full re-audit at each checkpoint."""
    trace, chunks = growing_trace_chunks

    def monitor():
        engine = AuditEngine()
        prefix = PlatformTrace()
        reports = []
        for chunk in chunks:
            prefix.extend(chunk)
            reports.append(engine.audit(prefix))
        return reports

    reports = benchmark(monitor)
    assert len(reports) == len(chunks)
    assert reports[-1] == AuditEngine().audit(trace)


def test_streaming_monitoring_beats_batch_reaudit(growing_trace_chunks):
    """Correctness-equivalent monitoring must also be cheaper: the
    streaming loop's wall-clock is below the batch re-audit loop's.
    Best-of-3 minimums keep scheduler noise on loaded CI runners from
    flaking the comparison; the pytest-benchmark twins above report
    the precise ratio (~5x at this trace size, growing with length).
    """
    _, chunks = growing_trace_chunks

    def streaming_monitor():
        engine = StreamingAuditEngine()
        reports = []
        for chunk in chunks:
            engine.observe_all(chunk)
            reports.append(engine.snapshot())
        return reports

    def batch_monitor():
        engine = AuditEngine()
        prefix = PlatformTrace()
        reports = []
        for chunk in chunks:
            prefix.extend(chunk)
            reports.append(engine.audit(prefix))
        return reports

    def best_of_three(monitor):
        best, reports = float("inf"), None
        for _ in range(3):
            start = time.perf_counter()
            reports = monitor()
            best = min(best, time.perf_counter() - start)
        return best, reports

    streaming_elapsed, streaming_reports = best_of_three(streaming_monitor)
    batch_elapsed, batch_reports = best_of_three(batch_monitor)

    assert streaming_reports == batch_reports
    assert streaming_elapsed < batch_elapsed, (
        f"streaming {streaming_elapsed:.3f}s not faster than "
        f"batch re-audit {batch_elapsed:.3f}s"
    )


def test_bench_policy_evaluation(benchmark, audit_trace):
    policy = preset("full")
    evaluator = PolicyEvaluator(
        policy, platform_stats={"fee_structure": "20%",
                                "estimated_hourly_wage": 5.0},
    )
    workers = list(audit_trace.final_workers().values())
    requesters = list(audit_trace.requesters.values())
    tasks = list(audit_trace.tasks.values())
    disclosures = benchmark(
        evaluator.evaluate, requesters, workers, tasks
    )
    assert disclosures
