"""Bench E2: worker retention vs transparency level.

Regenerates the E2 summary table and retention-curve series (the
paper-style 'figure') and asserts the paper's hypothesis: fuller
disclosure retains more workers than an opaque platform.
"""

from benchmarks.conftest import run_once
from repro.experiments.e2_transparency_retention import run as run_e2


def test_bench_e2_transparency_retention(benchmark):
    result = run_once(
        benchmark, run_e2,
        n_workers=80, rounds=15, tasks_per_round=40, seed=7,
    )
    print()
    print(result.render())
    rows = {r["policy"]: r for r in result.table().rows_as_dicts()}
    assert rows["full"]["retention"] > rows["opaque"]["retention"]
    assert rows["amt_turkopticon"]["retention"] >= rows["opaque"]["retention"]
    # The curve table is the figure: one column per policy, one row per
    # round, monotone non-increasing in each column.
    curve = result.tables[1]
    for policy in ("opaque", "full"):
        series = curve.column(policy)
        assert all(a >= b for a, b in zip(series, series[1:]))
