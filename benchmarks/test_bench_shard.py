"""Sharded vs single-threaded delta audits on a multi-entity trace.

The workload is the regime sharding is built for: a large posted
catalog (many qualifying Axiom 2 task pairs, just under the sampling
cap) over which each ingest batch touches a *small* set of entities —
a hot set of tasks whose audiences keep changing while the rest of the
catalog sits still.  Per audit the single-threaded
:class:`~repro.core.audit.DeltaAuditEngine` re-walks its full
qualifying-pair list to materialise the verdict; the sharded engine's
per-partition checkers re-judge only the pairs the batch invalidated
and merge cached key-sorted violation runs, so its per-audit cost
tracks the delta, not the catalog — that is the single-core win the
``>= 2x`` assertion below pins (measured ~2.6x on the dev container),
and worker fan-out adds multi-core scaling on top of it.

Under ``--benchmark-disable`` (the CI smoke step) only verdict equality
is asserted — wall-clock claims belong to timed runs.
"""

import time

import pytest

from conftest import record_bench

from repro.core.attributes import ComputedAttributes, DeclaredAttributes
from repro.core.audit import DeltaAuditEngine
from repro.core.entities import (
    Contribution,
    Requester,
    SkillVocabulary,
    Task,
    Worker,
)
from repro.core.events import (
    ContributionReviewed,
    ContributionSubmitted,
    DisclosureShown,
    PaymentIssued,
    RequesterRegistered,
    TaskPosted,
    TasksShown,
    WorkerRegistered,
)
from repro.core.trace import PlatformTrace
from repro.shard import ShardedDeltaAuditEngine

#: Shard count asserted in the headline comparison (the CLI's
#: ``--audit-jobs 4``).
AUDIT_JOBS = 4

#: Hot tasks: the small entity set every batch keeps touching.
HOT_TASKS = 10


def hot_catalog_batches(
    n_requesters: int = 10,
    n_workers: int = 12,
    n_tasks: int = 200,
    rounds: int = 105,
    contributions_per_round: int = 5,
):
    """A ~2k-event trace as per-round audit batches.

    ``n_tasks`` posted in one tick from ``n_requesters`` put ~19.9k
    task pairs in front of Axiom 2 (just under its 20k sampling cap);
    the first :data:`HOT_TASKS` of them share a skill profile (pairs
    among the hot set qualify, hot-cold pairs do not) and are browsed
    by a rotating worker every round, so each batch dirties exactly two
    hot audiences.  Contribution/review/payment filler and a rotating
    requester disclosure keep the other axioms' folds honest.
    """
    vocabulary = SkillVocabulary(("survey", "labeling"))
    setup = []
    requesters = [
        Requester(
            requester_id=f"r{i:04d}", name=f"req{i}", hourly_wage=6.0,
            payment_delay=5, recruitment_criteria="any",
            rejection_criteria="quality below 0.5",
        )
        for i in range(n_requesters)
    ]
    for requester in requesters:
        setup.append(RequesterRegistered(time=0, requester=requester))
    workers = [
        Worker(
            worker_id=f"w{i:04d}", declared=DeclaredAttributes({}),
            computed=ComputedAttributes({}),
            skills=vocabulary.vector(("survey",)),
        )
        for i in range(n_workers)
    ]
    for worker in workers:
        setup.append(WorkerRegistered(time=0, worker=worker))
    tasks = [
        Task(
            task_id=f"t{i:04d}",
            requester_id=requesters[i % n_requesters].requester_id,
            required_skills=vocabulary.vector(
                ("labeling",) if i < HOT_TASKS else ("survey",)
            ),
            reward=0.1, kind="label", duration=1,
        )
        for i in range(n_tasks)
    ]
    for task in tasks:
        setup.append(TaskPosted(time=1, task=task))
    batches = [setup]
    contribution_count = 0
    for round_index in range(rounds):
        tick = 2 + round_index
        batch = []
        browser = workers[round_index % n_workers]
        batch.append(TasksShown(
            time=tick,
            worker_id=browser.worker_id,
            task_ids=frozenset({
                tasks[(2 * round_index) % HOT_TASKS].task_id,
                tasks[(2 * round_index + 1) % HOT_TASKS].task_id,
            }),
        ))
        for offset in range(contributions_per_round):
            worker = workers[(round_index + offset) % n_workers]
            task = tasks[
                (round_index * contributions_per_round + offset) % n_tasks
            ]
            contribution = Contribution(
                contribution_id=f"c{contribution_count:05d}",
                task_id=task.task_id, worker_id=worker.worker_id,
                payload="x", submitted_at=tick, quality=0.8,
            )
            contribution_count += 1
            batch.append(ContributionSubmitted(
                time=tick, contribution=contribution
            ))
            batch.append(ContributionReviewed(
                time=tick, contribution_id=contribution.contribution_id,
                task_id=task.task_id, worker_id=worker.worker_id,
                accepted=True, feedback="ok",
            ))
            batch.append(PaymentIssued(
                time=tick, worker_id=worker.worker_id, task_id=task.task_id,
                contribution_id=contribution.contribution_id, amount=0.1,
            ))
        batch.append(DisclosureShown(
            time=tick,
            subject=(
                "requester:"
                f"{requesters[round_index % n_requesters].requester_id}"
            ),
            field_name="hourly_wage", value=6.0,
        ))
        batches.append(batch)
    return batches


@pytest.fixture(scope="module")
def audit_batches():
    batches = hot_catalog_batches()
    total = sum(len(batch) for batch in batches)
    assert total >= 2000, f"bench trace shrank to {total} events"
    return batches


def _monitor_delta(batches):
    session = DeltaAuditEngine()
    prefix = PlatformTrace()
    reports = []
    for batch in batches:
        prefix.extend(batch)
        reports.append(session.audit(prefix))
    return reports


def _monitor_sharded(batches, jobs=AUDIT_JOBS):
    with ShardedDeltaAuditEngine(shards=jobs, jobs=jobs) as session:
        prefix = PlatformTrace()
        reports = []
        for batch in batches:
            prefix.extend(batch)
            reports.append(session.audit(prefix))
        return reports


def test_bench_delta_audit_per_batch(benchmark, audit_batches):
    """The single-threaded baseline: one delta audit per batch."""
    reports = benchmark(_monitor_delta, audit_batches)
    assert len(reports) == len(audit_batches)


def test_bench_sharded_audit_per_batch(benchmark, audit_batches):
    """The sharded engine at ``audit_jobs=4`` on the same cadence."""
    reports = benchmark(_monitor_sharded, audit_batches)
    assert len(reports) == len(audit_batches)


def test_sharded_audit_beats_single_threaded_delta(request, audit_batches):
    """Identical verdicts, >= 2x cheaper with ``audit_jobs=4``.

    Best-of-3 minimums keep scheduler noise on loaded CI runners from
    flaking the comparison (measured ~2.6x on the dev container, so 2x
    leaves margin).  Under ``--benchmark-disable`` only the verdict
    equality is asserted.
    """
    if request.config.getoption("benchmark_disable"):
        assert _monitor_sharded(audit_batches) == _monitor_delta(
            audit_batches
        )
        return

    def timed(monitor):
        start = time.perf_counter()
        reports = monitor(audit_batches)
        return time.perf_counter() - start, reports

    # Interleave the attempts so a background load spike on a busy
    # runner penalises both engines, not whichever ran under it.
    delta_elapsed = sharded_elapsed = float("inf")
    delta_reports = sharded_reports = None
    for _ in range(3):
        elapsed, delta_reports = timed(_monitor_delta)
        delta_elapsed = min(delta_elapsed, elapsed)
        elapsed, sharded_reports = timed(_monitor_sharded)
        sharded_elapsed = min(sharded_elapsed, elapsed)

    assert sharded_reports == delta_reports
    record_bench(
        request.config, "sharded_audit_vs_delta",
        delta_ms=round(delta_elapsed * 1000.0, 3),
        sharded_ms=round(sharded_elapsed * 1000.0, 3),
        speedup=round(delta_elapsed / sharded_elapsed, 3),
        events=sum(len(batch) for batch in audit_batches),
        batches=len(audit_batches),
        audit_jobs=AUDIT_JOBS,
    )
    assert delta_elapsed >= 2.0 * sharded_elapsed, (
        f"sharded audits only "
        f"{delta_elapsed / sharded_elapsed:.1f}x faster than the "
        f"single-threaded delta session (sharded {sharded_elapsed:.3f}s, "
        f"delta {delta_elapsed:.3f}s); expected >= 2x"
    )
