"""Benchmarks for the live-ingestion subsystem.

Two claims, each with pytest-benchmark twins for the record and one
wall-clock assertion (timing-free under ``--benchmark-disable``, where
only result equality is checked):

* **Batched sqlite ingestion.**  ``SQLiteTraceStore.append_batch``
  (executemany + a single commit) on a >= 2k-event export must be
  >= 3x faster than the per-event append path paying one transaction
  per event (``commit_every=1`` — exactly what a naive write-through
  ingest would do).  Measured on the dev container (best of 3):
  ~243ms per-event vs ~55ms batched (~4.4x); on storage where commits
  actually fsync the gap widens further.

* **Cadenced audit-while-ingesting.**  Driving a
  :class:`~repro.core.audit.DeltaAuditEngine` at every batch boundary
  of an :class:`~repro.ingest.IngestRunner` must keep total *audit*
  time >= 3x under re-running a full batch audit at each boundary
  (22 boundaries over the same 2026-event export; measured ~39ms
  delta vs ~272ms full, ~7x).  Append/parse costs are excluded — they
  are identical work in both monitors.
"""

import time

import pytest

from repro.core.audit import AuditEngine, DeltaAuditEngine
from repro.core.store import SQLiteTraceStore
from repro.core.trace import PlatformTrace
from repro.ingest import IngestRunner, JSONLExportSource, export_jsonl
from repro.workloads.scenarios import clean_scenario

_ROUNDS = 22  # 2026 events — the ROADMAP's largest delta-scaling point
_BATCH = 92   # ~one simulated round per ingest batch


@pytest.fixture(scope="module")
def big_events():
    events = list(clean_scenario(rounds=_ROUNDS, n_workers=12).trace)
    assert len(events) >= 2000
    return events


@pytest.fixture(scope="module")
def export_path(big_events, tmp_path_factory):
    path = tmp_path_factory.mktemp("bench-ingest") / "export.jsonl"
    return export_jsonl(big_events, path)


def _best_of(n, run):
    best, result = float("inf"), None
    for _ in range(n):
        start = time.perf_counter()
        result = run()
        best = min(best, time.perf_counter() - start)
    return best, result


# ----------------------------------------------------------------------
# Batched vs per-event sqlite appends.


def _ingest_per_event(events, path):
    with SQLiteTraceStore.create(path, commit_every=1) as store:
        for event in events:
            store.append(event)
        return store.revision


def _ingest_batched(events, path):
    with SQLiteTraceStore.create(path) as store:
        store.append_batch(events)
        return store.revision


def test_bench_sqlite_per_event_append(benchmark, big_events, tmp_path):
    counter = iter(range(1_000_000))
    revision = benchmark.pedantic(
        lambda: _ingest_per_event(
            big_events, tmp_path / f"per-event-{next(counter)}.db"
        ),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    assert revision == len(big_events)


def test_bench_sqlite_batched_append(benchmark, big_events, tmp_path):
    counter = iter(range(1_000_000))
    revision = benchmark.pedantic(
        lambda: _ingest_batched(
            big_events, tmp_path / f"batched-{next(counter)}.db"
        ),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    assert revision == len(big_events)


def test_batched_append_beats_per_event_append(
    request, big_events, tmp_path
):
    """Same stored events, >= 3x cheaper through one transaction.

    Under ``--benchmark-disable`` only content equality is asserted."""
    per_event_db = tmp_path / "per-event.db"
    batched_db = tmp_path / "batched.db"
    _ingest_per_event(big_events, per_event_db)
    _ingest_batched(big_events, batched_db)
    with SQLiteTraceStore.open(per_event_db) as loop_store:
        loop_payloads = list(loop_store.iter_payloads())
    with SQLiteTraceStore.open(batched_db) as batch_store:
        assert list(batch_store.iter_payloads()) == loop_payloads
    if request.config.getoption("benchmark_disable"):
        return
    counter = iter(range(1_000_000))
    per_event_elapsed, _ = _best_of(3, lambda: _ingest_per_event(
        big_events, tmp_path / f"pe-{next(counter)}.db"
    ))
    batched_elapsed, _ = _best_of(3, lambda: _ingest_batched(
        big_events, tmp_path / f"ba-{next(counter)}.db"
    ))
    assert per_event_elapsed >= 3.0 * batched_elapsed, (
        f"batched sqlite ingest only "
        f"{per_event_elapsed / batched_elapsed:.1f}x faster than "
        f"per-event appends (per-event {per_event_elapsed:.3f}s, "
        f"batched {batched_elapsed:.3f}s); expected >= 3x"
    )


# ----------------------------------------------------------------------
# Cadenced audit-while-ingesting vs full re-audits at each cadence.


def _cadenced_monitor(engine_kind, export_path):
    """Tail the export batch by batch, auditing at every boundary;
    audit time is measured separately from ingest/parse work."""
    engine = (
        DeltaAuditEngine() if engine_kind == "delta" else AuditEngine()
    )
    runner = IngestRunner(
        JSONLExportSource(export_path), PlatformTrace(),
        batch_events=_BATCH,
    )
    reports, audit_elapsed = [], 0.0

    def audit_boundary(batch):
        nonlocal audit_elapsed
        start = time.perf_counter()
        reports.append(engine.audit(runner.trace))
        audit_elapsed += time.perf_counter() - start

    runner.run(idle_limit=1, on_batch=audit_boundary)
    return reports, audit_elapsed


def test_bench_cadenced_delta_audit_while_ingesting(benchmark, export_path):
    reports = benchmark.pedantic(
        lambda: _cadenced_monitor("delta", export_path)[0],
        rounds=1, iterations=1, warmup_rounds=0,
    )
    assert len(reports) >= 20


def test_bench_cadenced_full_reaudit_while_ingesting(benchmark, export_path):
    reports = benchmark.pedantic(
        lambda: _cadenced_monitor("full", export_path)[0],
        rounds=1, iterations=1, warmup_rounds=0,
    )
    assert len(reports) >= 20


def test_cadenced_delta_audit_beats_full_reaudit(request, export_path):
    """Identical verdicts at every boundary, >= 3x cheaper audits.

    Under ``--benchmark-disable`` only verdict equality is asserted."""
    if request.config.getoption("benchmark_disable"):
        delta_reports, _ = _cadenced_monitor("delta", export_path)
        full_reports, _ = _cadenced_monitor("full", export_path)
        assert delta_reports == full_reports
        return

    def best_of_three(engine_kind):
        best, reports = float("inf"), None
        for _ in range(3):
            reports, audit_elapsed = _cadenced_monitor(
                engine_kind, export_path
            )
            best = min(best, audit_elapsed)
        return best, reports

    delta_elapsed, delta_reports = best_of_three("delta")
    full_elapsed, full_reports = best_of_three("full")
    assert delta_reports == full_reports
    assert full_elapsed >= 3.0 * delta_elapsed, (
        f"cadenced delta audits only "
        f"{full_elapsed / delta_elapsed:.1f}x faster than full "
        f"re-audits at each boundary (delta {delta_elapsed:.3f}s, "
        f"full {full_elapsed:.3f}s); expected >= 3x"
    )
