"""Pipelined vs sequential ingest on an audit-bound tail.

The workload scales the hot-catalog regime of ``test_bench_shard.py``
up to a ~125k-qualifying-pair catalog (Axiom 2's ``max_pairs`` raised
to match, same registry for both runners): every delta audit re-walks
that pair list to materialise its verdict, so the verdict walk — not
the 17-event append — is the per-batch cost.  The catalog itself is
seeded into the destination store first and the runners *resume* on
top of it, exactly the operator situation (``trace resume`` on a
populated store), so the one-time pair construction both engines pay
identically happens in untimed setup and the timed region is the pure
tail: 105 batches, one audit boundary each.

The sequential :class:`~repro.ingest.IngestRunner` pays the verdict
walk at all 105 boundaries.  The
:class:`~repro.ingest.PipelinedIngestRunner` overlaps polling and
appending with the audit stage and *coalesces* queued batches into one
audit at the newest boundary — the walk is paid once per drained group
instead of once per batch.  That amortisation is the single-core win
the ``>= 2x`` gate below pins; ``--audit-jobs`` sharding inside each
audit compounds with it.

Both runners must produce byte-identical destination stores and equal
final audit reports — the speedup is never allowed to change a
verdict.  Under ``--benchmark-disable`` (the CI smoke step) only that
equivalence is asserted; wall-clock claims belong to timed runs.  A
timed run records its numbers for ``--bench-record`` (see
``conftest.py``), which is how the committed ``BENCH_pipeline.json``
is produced.
"""

import shutil
import sqlite3
import time

import pytest

from conftest import record_bench
from repro.core.axiom_assignment import RequesterFairnessInAssignment
from repro.core.axioms import default_registry
from repro.core.store import open_store
from repro.core.trace import PlatformTrace, make_disk_store
from repro.ingest import (
    IngestRunner,
    JSONLExportSource,
    PipelinedIngestRunner,
    export_jsonl,
)
from test_bench_shard import hot_catalog_batches

#: Catalog size: C(500, 2) ≈ 125k task pairs in front of Axiom 2.
N_TASKS = 500

#: Events per ingest batch in the timed region — one hot-catalog round
#: per batch, so the sequential runner audits at every round boundary.
BATCH_EVENTS = 17

#: Stage-queue depth for the pipelined runner: how many batches may sit
#: behind a slow audit before backpressure throttles polling (and hence
#: the largest group one coalesced audit drains).
PIPELINE_DEPTH = 8


def _registry():
    """The default suite with Axiom 2 walking the full catalog."""
    return default_registry(
        axiom2=RequesterFairnessInAssignment(max_pairs=150_000)
    )


@pytest.fixture(scope="module")
def seeded_tail(tmp_path_factory):
    """The export plus a destination pre-seeded with the setup batch.

    Returns ``(export_path, seed_db, seed_ckpt, setup_events)``: the
    full trace as one JSONL export, and a sqlite destination whose
    checkpoint sits exactly at the end of the catalog-posting setup
    batch — every timed run resumes a copy of it.
    """
    batches = hot_catalog_batches(n_tasks=N_TASKS)
    setup_events = len(batches[0])
    trace = PlatformTrace()
    for batch in batches:
        trace.extend(batch)
    assert len(trace.events) >= 2000, (
        f"bench trace shrank to {len(trace.events)} events"
    )
    workdir = tmp_path_factory.mktemp("pipeline-bench")
    export = str(workdir / "export.jsonl")
    export_jsonl(trace, export)

    seed_db = str(workdir / "seed.db")
    seed_ckpt = seed_db + ".ckpt"
    store = make_disk_store(seed_db)
    runner = IngestRunner(
        JSONLExportSource(export), store, checkpoint_path=seed_ckpt,
        batch_events=setup_events, audit=True, interval=0.0,
        registry=_registry(),
    )
    try:
        summary = runner.run(max_batches=1)
    finally:
        runner.close()
        store.close()
    assert summary.events == setup_events
    return export, seed_db, seed_ckpt, setup_events


def _resume_tail(runner_cls, seeded, dest, **extra):
    """Resume a copy of the seeded destination; time ``run()`` only.

    Runner construction — including the resume baseline audit, where
    the one-time qualifying-pair construction happens — stays outside
    the timed window for both engines.
    """
    export, seed_db, seed_ckpt, _ = seeded
    shutil.copy(seed_db, dest)
    shutil.copy(seed_ckpt, dest + ".ckpt")
    store = open_store(dest)
    runner = runner_cls.resume(
        JSONLExportSource(export), store, dest + ".ckpt",
        batch_events=BATCH_EVENTS, audit=True, interval=0.0,
        registry=_registry(), **extra,
    )
    try:
        start = time.perf_counter()
        summary = runner.run(idle_limit=1)
        elapsed = time.perf_counter() - start
    finally:
        runner.close()
        store.close()
    return elapsed, summary


def _sqlite_dump(path):
    conn = sqlite3.connect(path)
    try:
        return "\n".join(conn.iterdump())
    finally:
        conn.close()


def _run_pair(seeded, workdir, tag):
    seq_dest = str(workdir / f"seq-{tag}.db")
    pipe_dest = str(workdir / f"pipe-{tag}.db")
    seq_elapsed, sequential = _resume_tail(IngestRunner, seeded, seq_dest)
    pipe_elapsed, pipelined = _resume_tail(
        PipelinedIngestRunner, seeded, pipe_dest,
        pipeline_depth=PIPELINE_DEPTH,
    )
    return (seq_dest, seq_elapsed, sequential,
            pipe_dest, pipe_elapsed, pipelined)


def test_pipelined_tail_matches_sequential(seeded_tail, tmp_path):
    """Same bytes on disk, same verdict — pipelining is invisible."""
    (seq_dest, _, sequential,
     pipe_dest, _, pipelined) = _run_pair(seeded_tail, tmp_path, "equiv")
    assert sequential.events == pipelined.events
    assert sequential.store_revision == pipelined.store_revision
    assert sequential.report == pipelined.report
    assert _sqlite_dump(seq_dest) == _sqlite_dump(pipe_dest)
    # The pipelined run must actually have run behind at some point —
    # otherwise the coalescing win measured below is vacuous.
    assert pipelined.max_audit_lag_batches >= 1


def test_pipelined_tail_beats_sequential(request, seeded_tail, tmp_path):
    """Identical stores and verdicts, >= 2x faster end-to-end tail.

    Best-of-3 minimums with the two modes interleaved keep scheduler
    noise on loaded CI runners from flaking the comparison (measured
    ~4.4x on the dev container, so 2x leaves margin).  Under
    ``--benchmark-disable`` only the equivalence is asserted.
    """
    if request.config.getoption("benchmark_disable"):
        (seq_dest, _, sequential,
         pipe_dest, _, pipelined) = _run_pair(seeded_tail, tmp_path, "smoke")
        assert sequential.report == pipelined.report
        assert _sqlite_dump(seq_dest) == _sqlite_dump(pipe_dest)
        return

    seq_best = pipe_best = float("inf")
    for attempt in range(3):
        (seq_dest, seq_elapsed, sequential,
         pipe_dest, pipe_elapsed, pipelined) = _run_pair(
            seeded_tail, tmp_path, str(attempt)
        )
        seq_best = min(seq_best, seq_elapsed)
        pipe_best = min(pipe_best, pipe_elapsed)
        assert sequential.report == pipelined.report
        assert _sqlite_dump(seq_dest) == _sqlite_dump(pipe_dest)

    speedup = seq_best / pipe_best
    record_bench(
        request.config, "pipelined_tail_vs_sequential",
        sequential_ms=round(seq_best * 1000.0, 3),
        pipelined_ms=round(pipe_best * 1000.0, 3),
        speedup=round(speedup, 3),
        events=sequential.events,
        batches=sequential.batches,
        max_audit_lag_batches=pipelined.max_audit_lag_batches,
        max_audit_lag_events=pipelined.max_audit_lag_events,
    )
    assert speedup >= 2.0, (
        f"pipelined tail only {speedup:.1f}x faster than the sequential "
        f"runner (pipelined {pipe_best:.3f}s, sequential "
        f"{seq_best:.3f}s); expected >= 2x"
    )
