"""Corruption-injection suite for ``trace verify`` / ``trace repair``.

Every test damages a real on-disk store in one specific way and then
asserts three things the forensics subsystem promises:

1. **verify finds it** — the sweep reports a finding whose ``check``
   names the injected defect (and stays non-mutating);
2. **repair salvages around it** — the destination passes verify and
   batch-audits identically to an in-memory trace of the surviving
   events (for suffix damage: byte-identically to the uncorrupted
   prefix);
3. **the loss manifest is exact** — it names precisely the seq ranges
   that were dropped, and why.
"""

import json
import os
import sqlite3

import pytest

from repro.core.audit import AuditEngine
from repro.core.store import (
    PersistentTraceStore,
    SQLiteTraceStore,
    open_store,
)
from repro.errors import ForensicsError, TraceError
from repro.forensics import (
    Finding,
    LossManifest,
    VerifyResult,
    manifest_path_for,
    repair_store,
    verify_store,
)
from repro.workloads.scenarios import clean_scenario, unequal_pay_scenario


@pytest.fixture(scope="module")
def events():
    return list(clean_scenario(rounds=4, n_workers=8).trace)


def _sqlite_store(tmp_path, events, name="trace.db"):
    path = tmp_path / name
    store = SQLiteTraceStore.create(path)
    store.append_batch(events)
    store.close()
    return path


def _persistent_store(tmp_path, events, name="trace-log", segment_events=40):
    path = tmp_path / name
    store = PersistentTraceStore.create(path, segment_events=segment_events)
    store.append_batch(events)
    store.close()
    return path


def _checks(result: VerifyResult) -> set:
    return {finding.check for finding in result.findings}


def _audit_of(source) -> "tuple":
    """A comparable audit verdict of a store path or event list."""
    engine = AuditEngine()
    if isinstance(source, (list, tuple)):
        from repro.core.trace import PlatformTrace

        return engine.audit(PlatformTrace(source))
    store = open_store(source)
    try:
        return engine.audit(store)
    finally:
        store.close()


#: Event kinds that introduce an entity (carry a full snapshot).
#: Dropping one of these cascades — repair must also drop every later
#: event that references the lost entity — so corruption-injection
#: tests that want *surgical* losses target the other ("leaf") kinds.
_INTRO_KINDS = {
    "worker_registered",
    "worker_updated",
    "requester_registered",
    "task_posted",
    "contribution_submitted",
}


def _leaf_seqs(events, lo=0, hi=None):
    """Seqs in [lo, hi) whose events introduce no entity."""
    hi = len(events) if hi is None else hi
    return [
        seq
        for seq in range(lo, hi)
        if events[seq].kind not in _INTRO_KINDS
    ]


def _dropped_seqs(manifest) -> set:
    return {
        seq
        for span in manifest.dropped
        for seq in range(span.start_seq, span.end_seq + 1)
    }


class TestVerifyCleanStores:
    def test_clean_sqlite_store_verifies_clean(self, tmp_path, events):
        result = verify_store(_sqlite_store(tmp_path, events))
        assert result.clean and result.ok
        assert result.backend == "sqlite"
        assert result.events_examined == len(events)
        assert result.events_valid == len(events)

    def test_clean_persistent_store_verifies_clean(self, tmp_path, events):
        result = verify_store(_persistent_store(tmp_path, events))
        assert result.clean and result.ok
        assert result.backend == "persistent"
        assert result.events_valid == len(events)

    def test_store_classmethod_hooks(self, tmp_path, events):
        db = _sqlite_store(tmp_path, events)
        log = _persistent_store(tmp_path, events)
        assert SQLiteTraceStore.verify(db).clean
        assert PersistentTraceStore.verify(log).clean

    def test_verify_never_mutates(self, tmp_path, events):
        """Even over a damaged store — verify is strictly read-only."""
        log = _persistent_store(tmp_path, events)
        # Tear the final line (the one defect open() would repair).
        final = sorted(
            name for name in os.listdir(log) if name.startswith("events-")
        )[-1]
        segment = log / final
        segment.write_bytes(segment.read_bytes()[:-9])
        before = {
            name: (log / name).read_bytes() for name in os.listdir(log)
        }
        result = verify_store(log)
        assert "torn-tail" in _checks(result)
        after = {
            name: (log / name).read_bytes() for name in os.listdir(log)
        }
        assert before == after

    def test_unrecognisable_paths_raise(self, tmp_path):
        with pytest.raises(ForensicsError, match="no trace store"):
            verify_store(tmp_path / "absent")
        plain = tmp_path / "plain.txt"
        plain.write_text("not a store\n")
        with pytest.raises(ForensicsError, match="neither"):
            verify_store(plain)
        bare = tmp_path / "bare-dir"
        bare.mkdir()
        with pytest.raises(ForensicsError, match="meta.json"):
            verify_store(bare)

    def test_forensics_error_is_a_trace_error(self):
        assert issubclass(ForensicsError, TraceError)


class TestVerifySqliteCorruption:
    def test_garbled_payload_found(self, tmp_path, events):
        db = _sqlite_store(tmp_path, events)
        conn = sqlite3.connect(db)
        conn.execute("UPDATE events SET payload='{{nope' WHERE seq=5")
        conn.commit(); conn.close()
        result = verify_store(db)
        assert not result.ok
        assert "payload-json" in _checks(result)
        assert any(
            f.seqs == (5,) for f in result.errors if f.check == "payload-json"
        )

    def test_undecodable_payload_found(self, tmp_path, events):
        db = _sqlite_store(tmp_path, events)
        conn = sqlite3.connect(db)
        conn.execute(
            "UPDATE events SET payload='{\"kind\": \"no_such_kind\"}' "
            "WHERE seq=2"
        )
        conn.commit(); conn.close()
        assert "payload-codec" in _checks(verify_store(db))

    def test_deleted_rows_become_seq_gap(self, tmp_path, events):
        db = _sqlite_store(tmp_path, events)
        conn = sqlite3.connect(db)
        conn.execute("DELETE FROM events WHERE seq IN (10, 11, 12)")
        conn.execute("DELETE FROM event_entities WHERE seq IN (10, 11, 12)")
        conn.commit(); conn.close()
        result = verify_store(db)
        gaps = [f for f in result.errors if f.check == "seq-gap"]
        assert len(gaps) == 1
        assert gaps[0].seqs == (10, 11, 12)

    def test_deleted_entity_index_rows_found(self, tmp_path, events):
        db = _sqlite_store(tmp_path, events)
        conn = sqlite3.connect(db)
        conn.execute("DELETE FROM event_entities WHERE seq=7")
        conn.commit(); conn.close()
        result = verify_store(db)
        assert "entity-index-missing" in _checks(result)
        assert all(
            f.seqs == (7,)
            for f in result.errors
            if f.check == "entity-index-missing"
        )

    def test_orphan_and_extra_index_rows_found(self, tmp_path, events):
        db = _sqlite_store(tmp_path, events)
        conn = sqlite3.connect(db)
        conn.execute(
            "INSERT INTO event_entities VALUES ('w9999', 'worker', 2)"
        )
        conn.execute(
            "INSERT INTO event_entities VALUES ('w9999', 'worker', 99999)"
        )
        conn.commit(); conn.close()
        checks = _checks(verify_store(db))
        assert "entity-index-extra" in checks   # real seq, wrong entity
        assert "entity-index-orphan" in checks  # seq with no event at all

    def test_time_rewrite_found_both_ways(self, tmp_path, events):
        db = _sqlite_store(tmp_path, events)
        last = len(events) - 1
        assert events[last].time > 0  # rewriting to 0 must be a change
        conn = sqlite3.connect(db)
        # Rewrite the column only: payload disagrees AND order breaks.
        conn.execute("UPDATE events SET time = 0 WHERE seq = ?", (last,))
        conn.commit(); conn.close()
        checks = _checks(verify_store(db))
        assert "time-mismatch" in checks
        assert "time-order" in checks

    def test_kind_rewrite_found(self, tmp_path, events):
        db = _sqlite_store(tmp_path, events)
        conn = sqlite3.connect(db)
        conn.execute(
            "UPDATE events SET kind = 'payment_issued' WHERE seq = 0"
        )
        conn.commit(); conn.close()
        assert "kind-mismatch" in _checks(verify_store(db))

    def test_overwritten_file_reported_unreadable(self, tmp_path, events):
        db = _sqlite_store(tmp_path, events)
        # Keep the 16-byte SQLite magic, destroy the rest.
        raw = db.read_bytes()
        db.write_bytes(raw[:16] + b"\x00" * 4096)
        result = verify_store(db)
        assert not result.ok


class TestVerifyPersistentCorruption:
    def test_flipped_bytes_mid_segment_found(self, tmp_path, events):
        log = _persistent_store(tmp_path, events)
        segment = log / "events-00001.jsonl"
        lines = segment.read_bytes().splitlines(keepends=True)
        lines[5] = b"\xff\xfe garbage \xff\n"
        segment.write_bytes(b"".join(lines))
        result = verify_store(log)
        assert not result.ok
        findings = [f for f in result.errors if f.check == "line-json"]
        assert len(findings) == 1
        assert findings[0].location == "events-00001.jsonl:6"
        assert findings[0].seqs == (45,)  # 40 per segment + line 6

    def test_truncated_final_segment_is_torn_tail_warning(
        self, tmp_path, events
    ):
        log = _persistent_store(tmp_path, events)
        final = sorted(
            name for name in os.listdir(log) if name.startswith("events-")
        )[-1]
        segment = log / final
        segment.write_bytes(segment.read_bytes()[:-11])
        result = verify_store(log)
        assert "torn-tail" in {f.check for f in result.warnings}
        assert result.ok          # open() recovers this on its own
        assert not result.clean

    def test_truncated_interior_segment_is_an_error(self, tmp_path, events):
        log = _persistent_store(tmp_path, events)
        segment = log / "events-00000.jsonl"
        segment.write_bytes(segment.read_bytes()[:-11])
        result = verify_store(log)
        # A torn tail is only forgivable on the FINAL segment; here the
        # broken trailing line is a hard error, never a warning.
        assert not result.ok
        checks = _checks(result)
        assert "line-unterminated" in checks or "line-json" in checks
        assert "torn-tail" not in checks

    def test_lost_line_in_interior_segment_is_size_error(
        self, tmp_path, events
    ):
        log = _persistent_store(tmp_path, events)
        segment = log / "events-00000.jsonl"
        lines = segment.read_bytes().splitlines(keepends=True)
        segment.write_bytes(b"".join(lines[:-1]))  # whole line vanishes
        result = verify_store(log)
        assert not result.ok
        assert "segment-size" in _checks(result)  # 39 lines, meta says 40

    def test_deleted_segment_file_found(self, tmp_path, events):
        log = _persistent_store(tmp_path, events)
        os.remove(log / "events-00001.jsonl")
        result = verify_store(log)
        assert "segment-gap" in _checks(result)

    def test_garbage_meta_found(self, tmp_path, events):
        log = _persistent_store(tmp_path, events)
        (log / "meta.json").write_text("{broken")
        assert "meta-unreadable" in _checks(verify_store(log))

    def test_wrong_format_version_found(self, tmp_path, events):
        log = _persistent_store(tmp_path, events)
        meta = json.loads((log / "meta.json").read_text())
        meta["format_version"] = 99
        (log / "meta.json").write_text(json.dumps(meta))
        assert "format-version" in _checks(verify_store(log))

    def test_undecodable_line_found(self, tmp_path, events):
        log = _persistent_store(tmp_path, events)
        segment = log / "events-00000.jsonl"
        lines = segment.read_bytes().splitlines(keepends=True)
        lines[0] = b'{"kind": "task_posted", "time": 0}\n'  # no task field
        segment.write_bytes(b"".join(lines))
        result = verify_store(log)
        assert "line-codec" in _checks(result)
        assert any(f.seqs == (0,) for f in result.errors)


class TestRepairSqlite:
    def test_mid_file_corruption_salvaged(self, tmp_path, events):
        # Corrupt leaf events only, so the losses stay surgical: no
        # later event depends on them and nothing else cascades.
        garbled, deleted_a, deleted_b = _leaf_seqs(events, lo=5)[:3]
        db = _sqlite_store(tmp_path, events)
        conn = sqlite3.connect(db)
        conn.execute(
            "UPDATE events SET payload='XX' WHERE seq=?", (garbled,)
        )
        conn.execute(
            "DELETE FROM events WHERE seq IN (?, ?)",
            (deleted_a, deleted_b),
        )
        conn.commit(); conn.close()
        dest = tmp_path / "salvaged.db"
        result = repair_store(db, dest)
        assert result.ok and result.verify.clean
        assert result.manifest.events_salvaged == len(events) - 3
        assert result.manifest.events_dropped == 3
        assert _dropped_seqs(result.manifest) == {
            garbled, deleted_a, deleted_b,
        }
        # The salvaged store audits exactly like an in-memory trace of
        # the surviving events.
        lost = {garbled, deleted_a, deleted_b}
        survivors = [e for i, e in enumerate(events) if i not in lost]
        assert _audit_of(dest) == _audit_of(survivors)

    def test_losing_a_registration_cascades_dependents(
        self, tmp_path, events
    ):
        """Dropping an entity's introduction drops its dependents too —
        the salvaged store stays auditable instead of crashing axiom
        checks with dangling entity lookups."""
        intro = next(
            seq for seq, e in enumerate(events)
            if e.kind == "worker_registered"
        )
        db = _sqlite_store(tmp_path, events)
        conn = sqlite3.connect(db)
        conn.execute("DELETE FROM events WHERE seq=?", (intro,))
        conn.commit(); conn.close()
        dest = tmp_path / "cascaded.db"
        result = repair_store(db, dest)
        assert result.ok and result.verify.clean
        dropped = _dropped_seqs(result.manifest)
        assert intro in dropped
        reasons = {span.reason for span in result.manifest.dropped}
        assert any("references entity lost earlier" in r for r in reasons)
        # Whatever survived must audit cleanly end to end.
        survivors = [
            e for i, e in enumerate(events) if i not in dropped
        ]
        assert result.manifest.events_salvaged == len(survivors)
        assert _audit_of(dest) == _audit_of(survivors)

    def test_suffix_corruption_keeps_prefix_byte_identical(
        self, tmp_path, events
    ):
        """Damage confined to the tail: the salvaged store must audit
        byte-identically to the uncorrupted prefix."""
        db = _sqlite_store(tmp_path, events)
        cut = len(events) - 6
        conn = sqlite3.connect(db)
        conn.execute("DELETE FROM events WHERE seq >= ?", (cut,))
        conn.execute("UPDATE events SET payload='}{' WHERE seq = ?", (cut - 1,))
        conn.commit(); conn.close()
        dest = tmp_path / "prefix.db"
        result = repair_store(db, dest)
        assert result.ok
        assert _audit_of(dest) == _audit_of(events[:cut - 1])
        reopened = SQLiteTraceStore.open(dest)
        try:
            assert list(reopened.events) == events[:cut - 1]
        finally:
            reopened.close()

    def test_manifest_written_to_default_path(self, tmp_path, events):
        db = _sqlite_store(tmp_path, events)
        dest = tmp_path / "out.db"
        result = repair_store(db, dest)
        assert result.manifest_path == manifest_path_for(dest)
        document = json.loads(
            open(result.manifest_path, encoding="utf-8").read()
        )
        assert document["events_salvaged"] == len(events)
        assert document["events_dropped"] == 0
        assert document["lossless"] is True
        assert document["dropped"] == []

    def test_refuses_existing_destination(self, tmp_path, events):
        db = _sqlite_store(tmp_path, events)
        dest = tmp_path / "occupied.db"
        dest.write_text("already here")
        with pytest.raises(ForensicsError, match="already exists"):
            repair_store(db, dest)

    def test_cross_backend_repair(self, tmp_path, events):
        """A damaged sqlite store can be salvaged into a JSONL log."""
        lost = _leaf_seqs(events)[0]
        db = _sqlite_store(tmp_path, events)
        conn = sqlite3.connect(db)
        conn.execute("DELETE FROM events WHERE seq=?", (lost,))
        conn.commit(); conn.close()
        dest = tmp_path / "as-log"
        result = repair_store(db, dest, dest_backend="persistent")
        assert result.ok
        assert result.manifest.dest_backend == "persistent"
        assert result.verify.backend == "persistent"
        survivors = [e for i, e in enumerate(events) if i != lost]
        assert _audit_of(dest) == _audit_of(survivors)


class TestRepairPersistent:
    def test_flipped_bytes_mid_segment_salvaged(self, tmp_path, events):
        log = _persistent_store(tmp_path, events)
        # Garble a leaf event inside segment 1 (seqs 40..79) so the
        # loss stays a single seq.
        dropped_seq = _leaf_seqs(events, lo=40, hi=80)[0]
        segment = log / "events-00001.jsonl"
        lines = segment.read_bytes().splitlines(keepends=True)
        lines[dropped_seq - 40] = b"\x00\x01\x02\n"
        segment.write_bytes(b"".join(lines))
        dest = tmp_path / "salvaged-log"
        result = repair_store(log, dest)
        assert result.ok and result.verify.clean
        assert result.manifest.events_dropped == 1
        assert result.manifest.dropped[0].start_seq == dropped_seq
        assert result.manifest.dropped[0].end_seq == dropped_seq
        survivors = [
            e for i, e in enumerate(events) if i != dropped_seq
        ]
        assert _audit_of(dest) == _audit_of(survivors)

    def test_torn_tail_salvage_keeps_prefix_byte_identical(
        self, tmp_path, events
    ):
        log = _persistent_store(tmp_path, events)
        final = sorted(
            name for name in os.listdir(log) if name.startswith("events-")
        )[-1]
        segment = log / final
        segment.write_bytes(segment.read_bytes()[:-9])
        dest = tmp_path / "from-torn"
        result = repair_store(log, dest)
        assert result.ok
        assert result.manifest.events_dropped == 1
        assert result.manifest.dropped[0].start_seq == len(events) - 1
        reopened = PersistentTraceStore.open(dest)
        try:
            assert list(reopened.events) == events[:-1]
        finally:
            reopened.close()
        assert _audit_of(dest) == _audit_of(events[:-1])

    def test_missing_interior_segment_exact_range(self, tmp_path, events):
        log = _persistent_store(tmp_path, events, segment_events=40)
        os.remove(log / "events-00001.jsonl")
        dest = tmp_path / "gap-salvage"
        result = repair_store(log, dest)
        assert result.ok
        spans = {
            (r.start_seq, r.end_seq) for r in result.manifest.dropped
        }
        # The lost segment itself is one exact range; any entity that
        # was introduced inside it takes its later dependents along.
        assert (40, 79) in spans
        for span in result.manifest.dropped:
            if (span.start_seq, span.end_seq) == (40, 79):
                assert "missing" in span.reason
            else:
                assert span.start_seq >= 80
                assert "references entity lost earlier" in span.reason
        dropped = _dropped_seqs(result.manifest)
        survivors = [
            e for i, e in enumerate(events) if i not in dropped
        ]
        assert result.manifest.events_salvaged == len(survivors)
        assert _audit_of(dest) == _audit_of(survivors)

    def test_salvaged_store_is_ingestable_again(self, tmp_path, events):
        """The repaired log round-trips through verify AND reopen."""
        log = _persistent_store(tmp_path, events)
        (log / "events-00000.jsonl").write_bytes(b"junk\n")
        dest = tmp_path / "round"
        result = repair_store(log, dest)
        assert result.ok
        reopened = open_store(dest)
        try:
            assert reopened.revision == result.manifest.events_salvaged
        finally:
            reopened.close()
        assert verify_store(dest).ok

    def test_repair_a_violating_trace_preserves_verdict(self, tmp_path):
        """Salvage must not launder violations away: a trace with real
        fairness violations still reports them after repair."""
        bad_events = list(unequal_pay_scenario(3).trace)
        log = _persistent_store(tmp_path, bad_events, name="bad-log")
        final = sorted(
            name for name in os.listdir(log) if name.startswith("events-")
        )[-1]
        (log / final).write_bytes((log / final).read_bytes()[:-5])
        dest = tmp_path / "bad-salvaged"
        result = repair_store(log, dest)
        assert result.ok
        report = _audit_of(dest)
        assert not report.passed
        assert report.total_violations > 0


class TestFindingsModel:
    def test_finding_severity_validated(self):
        with pytest.raises(ValueError, match="unknown finding severity"):
            Finding(
                check="x", severity="fatal", location="loc", message="m"
            )

    def test_result_dict_shape(self, tmp_path, events):
        result = verify_store(_sqlite_store(tmp_path, events))
        data = result.as_dict()
        assert data["ok"] and data["clean"]
        assert data["errors"] == 0 and data["warnings"] == 0
        assert data["findings"] == []
        assert data["events_valid"] == len(events)

    def test_manifest_dict_round_trips_through_json(self, tmp_path, events):
        db = _sqlite_store(tmp_path, events)
        conn = sqlite3.connect(db)
        conn.execute("DELETE FROM events WHERE seq IN (1, 2)")
        conn.commit(); conn.close()
        result = repair_store(db, tmp_path / "m.db")
        on_disk = json.loads(
            open(result.manifest_path, encoding="utf-8").read()
        )
        assert on_disk == json.loads(json.dumps(result.manifest.as_dict()))
        assert isinstance(result.manifest, LossManifest)
        assert on_disk["dropped"][0]["start_seq"] == 1
        assert on_disk["dropped"][0]["end_seq"] == 2
