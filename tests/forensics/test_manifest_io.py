"""Unit tests for loss-manifest round-tripping (:func:`read_manifest`).

The manifest is forensic evidence: reading one back must reproduce the
:class:`LossManifest` the repair wrote exactly, and anything less than
a complete, well-formed, version-matched document must be refused —
a garbled loss accounting is worse than none.
"""

import json
import sqlite3

import pytest

from repro.core.store import SQLiteTraceStore
from repro.errors import ForensicsError
from repro.forensics import read_manifest, repair_store
from repro.workloads.scenarios import clean_scenario


@pytest.fixture()
def repaired(tmp_path):
    """A real repair with real losses; returns its RepairResult."""
    db = tmp_path / "damaged.db"
    store = SQLiteTraceStore.create(db)
    store.append_batch(list(clean_scenario().trace))
    store.save()
    store.close()
    conn = sqlite3.connect(db)
    conn.execute("UPDATE events SET payload='XX' WHERE seq=3")
    conn.execute("DELETE FROM events WHERE seq=7")
    conn.commit()
    conn.close()
    return repair_store(db, tmp_path / "salvaged.db")


class TestRoundTrip:
    def test_read_back_equals_what_repair_wrote(self, repaired):
        assert read_manifest(repaired.manifest_path) == repaired.manifest

    def test_lossless_round_trip(self, tmp_path):
        db = tmp_path / "healthy.db"
        store = SQLiteTraceStore.create(db)
        store.append_batch(list(clean_scenario().trace))
        store.save()
        store.close()
        result = repair_store(db, tmp_path / "copy.db")
        manifest = read_manifest(result.manifest_path)
        assert manifest == result.manifest
        assert manifest.lossless
        assert manifest.dropped == ()


def _write(tmp_path, document):
    path = tmp_path / "manifest.loss.json"
    path.write_text(
        document if isinstance(document, str) else json.dumps(document)
    )
    return path


def _valid_document(repaired):
    return json.loads(open(repaired.manifest_path).read())


class TestValidation:
    def test_missing_file(self, tmp_path):
        with pytest.raises(ForensicsError, match="no loss manifest"):
            read_manifest(tmp_path / "absent.loss.json")

    def test_not_json(self, tmp_path):
        path = _write(tmp_path, "not json {")
        with pytest.raises(ForensicsError, match="not JSON"):
            read_manifest(path)

    def test_not_an_object(self, tmp_path):
        path = _write(tmp_path, [1, 2, 3])
        with pytest.raises(ForensicsError, match="not a JSON object"):
            read_manifest(path)

    def test_wrong_version(self, tmp_path, repaired):
        document = _valid_document(repaired)
        document["format_version"] = 99
        with pytest.raises(ForensicsError, match="version"):
            read_manifest(_write(tmp_path, document))

    @pytest.mark.parametrize(
        "field",
        ["source", "dest", "source_backend", "dest_backend",
         "events_salvaged", "events_dropped", "dropped"],
    )
    def test_missing_required_field(self, tmp_path, repaired, field):
        document = _valid_document(repaired)
        del document[field]
        with pytest.raises(ForensicsError, match="missing field"):
            read_manifest(_write(tmp_path, document))

    def test_malformed_scalar_types(self, tmp_path, repaired):
        document = _valid_document(repaired)
        document["events_salvaged"] = "many"
        with pytest.raises(ForensicsError, match="malformed fields"):
            read_manifest(_write(tmp_path, document))

    def test_malformed_dropped_range(self, tmp_path, repaired):
        document = _valid_document(repaired)
        document["dropped"] = [{"start_seq": 1}]
        with pytest.raises(ForensicsError, match="malformed dropped"):
            read_manifest(_write(tmp_path, document))

    def test_inverted_dropped_range(self, tmp_path, repaired):
        document = _valid_document(repaired)
        document["dropped"] = [
            {"start_seq": 9, "end_seq": 3, "reason": "backwards"}
        ]
        document["events_dropped"] = 7
        with pytest.raises(ForensicsError, match="malformed dropped"):
            read_manifest(_write(tmp_path, document))

    def test_dropped_count_must_match_ranges(self, tmp_path, repaired):
        document = _valid_document(repaired)
        document["events_dropped"] = (
            sum(
                entry["end_seq"] - entry["start_seq"] + 1
                for entry in document["dropped"]
            ) + 5
        )
        with pytest.raises(ForensicsError, match="dropped"):
            read_manifest(_write(tmp_path, document))
