"""CLI coverage for ``trace report``, ``trace verify``, ``trace repair``
and the rolling ``--report`` flags on ``trace tail``.

Exit-code contract: 0 = healthy (verify ok / sound salvage), 1 = the
store (or salvaged store) fails verification, 2 = the command itself
cannot run (unreadable path, bad arguments).
"""

import json
import os
import sqlite3

import pytest

from repro.cli import main
from repro.ingest import export_jsonl
from repro.workloads.scenarios import clean_scenario


@pytest.fixture()
def saved_db(tmp_path):
    db = tmp_path / "trace.db"
    assert main(["trace", "save", str(db), "--scenario", "clean"]) == 0
    return db


def _damage(db):
    conn = sqlite3.connect(db)
    conn.execute("UPDATE events SET payload='XX' WHERE seq=3")
    conn.commit()
    conn.close()


class TestTraceReport:
    def test_markdown_to_stdout(self, saved_db, capsys):
        assert main(["trace", "report", str(saved_db)]) == 0
        out = capsys.readouterr().out
        assert out.startswith("# Fairness audit report")
        assert "Axiom scores" in out

    def test_html_to_file(self, saved_db, tmp_path, capsys):
        out_file = tmp_path / "dash.html"
        code = main([
            "trace", "report", str(saved_db),
            "--format", "html", "--out", str(out_file),
        ])
        assert code == 0
        assert "wrote audit report (html" in capsys.readouterr().out
        assert out_file.read_text().lstrip().startswith("<!")

    def test_verify_report_csv(self, saved_db, capsys):
        code = main([
            "trace", "report", str(saved_db),
            "--what", "verify", "--format", "csv",
        ])
        assert code == 0
        header = capsys.readouterr().out.splitlines()[0]
        assert header == "check,severity,location,seqs,message"

    def test_unreadable_path_exits_2(self, tmp_path, capsys):
        assert main(["trace", "report", str(tmp_path / "nope.db")]) == 2
        assert "cannot" in capsys.readouterr().err


class TestTraceVerify:
    def test_clean_store_exits_0(self, saved_db, capsys):
        assert main(["trace", "verify", str(saved_db)]) == 0
        assert "CLEAN" in capsys.readouterr().out

    def test_damaged_store_exits_1(self, saved_db, capsys):
        _damage(saved_db)
        assert main(["trace", "verify", str(saved_db)]) == 1
        assert "DAMAGED" in capsys.readouterr().out

    def test_json_format(self, saved_db, capsys):
        assert main([
            "trace", "verify", str(saved_db), "--format", "json",
        ]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["ok"] and data["clean"]
        assert data["backend"] == "sqlite"

    def test_missing_path_exits_2(self, tmp_path, capsys):
        assert main(["trace", "verify", str(tmp_path / "gone")]) == 2
        assert "cannot verify" in capsys.readouterr().err


class TestTraceRepair:
    def test_salvage_round_trip(self, saved_db, tmp_path, capsys):
        _damage(saved_db)
        dest = tmp_path / "fixed.db"
        code = main(["trace", "repair", str(saved_db), str(dest)])
        assert code == 0
        out = capsys.readouterr().out
        assert "loss manifest:" in out
        assert os.path.exists(f"{dest}.loss.json")
        # The salvaged store passes verification.
        assert main(["trace", "verify", str(dest)]) == 0

    def test_json_format_carries_manifest_and_verify(
        self, saved_db, tmp_path, capsys
    ):
        _damage(saved_db)
        dest = tmp_path / "fixed2.db"
        code = main([
            "trace", "repair", str(saved_db), str(dest),
            "--format", "json",
        ])
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["manifest"]["events_dropped"] >= 1
        assert data["dest_verify"]["ok"] is True
        assert data["manifest_path"] == f"{dest}.loss.json"

    def test_existing_destination_exits_2(self, saved_db, tmp_path, capsys):
        dest = tmp_path / "occupied.db"
        dest.write_text("here")
        assert main(["trace", "repair", str(saved_db), str(dest)]) == 2
        assert "already exists" in capsys.readouterr().err

    def test_cross_backend_flag(self, saved_db, tmp_path, capsys):
        _damage(saved_db)
        dest = tmp_path / "as-log"
        code = main([
            "trace", "repair", str(saved_db), str(dest),
            "--store", "persistent", "--format", "json",
        ])
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["manifest"]["dest_backend"] == "persistent"


class TestTailRollingReports:
    @pytest.fixture()
    def export(self, tmp_path):
        events = list(clean_scenario().trace)
        return export_jsonl(events, tmp_path / "export.jsonl")

    def test_tail_writes_rolling_reports(self, export, tmp_path, capsys):
        dest = tmp_path / "live.db"
        code = main([
            "trace", "tail", str(export), str(dest),
            "--audit", "--report", "html", "--report", "jsonl",
            "--until-idle", "1", "--interval", "0",
        ])
        assert code == 0
        out = capsys.readouterr().out
        report_dir = f"{dest}.reports"
        assert f"rolling reports: {report_dir}" in out
        assert os.path.exists(os.path.join(report_dir, "audit.html"))
        assert os.path.exists(os.path.join(report_dir, "audit.jsonl"))

    def test_custom_report_dir(self, export, tmp_path):
        dest = tmp_path / "live2.db"
        report_dir = tmp_path / "my-reports"
        code = main([
            "trace", "tail", str(export), str(dest),
            "--audit", "--report", "md",
            "--report-dir", str(report_dir),
            "--until-idle", "1", "--interval", "0",
        ])
        assert code == 0
        assert (report_dir / "audit.md").exists()

    def test_report_without_audit_is_neutralized(
        self, export, tmp_path, capsys
    ):
        dest = tmp_path / "live3.db"
        code = main([
            "trace", "tail", str(export), str(dest),
            "--report", "html",
            "--until-idle", "1", "--interval", "0",
        ])
        assert code == 0
        captured = capsys.readouterr()
        assert "only runs with --audit" in captured.err
        assert not os.path.exists(f"{dest}.reports")

    def test_report_dir_without_report_is_neutralized(
        self, export, tmp_path, capsys
    ):
        dest = tmp_path / "live4.db"
        code = main([
            "trace", "tail", str(export), str(dest),
            "--audit", "--report-dir", str(tmp_path / "r"),
            "--until-idle", "1", "--interval", "0",
        ])
        assert code == 0
        assert "--report-dir" in capsys.readouterr().err
        assert not (tmp_path / "r").exists()


class TestResumeVerify:
    """``trace resume --verify``: deep-verify the destination before
    ingesting anything; refuse (exit 1) when it is damaged."""

    @pytest.fixture()
    def live_tail(self, tmp_path):
        events = list(clean_scenario().trace)
        export = export_jsonl(events, tmp_path / "export.jsonl")
        dest = tmp_path / "live.db"
        assert main([
            "trace", "tail", str(export), str(dest),
            "--audit", "--max-batches", "2",
            "--batch-events", "20", "--interval", "0",
        ]) == 0
        return export, dest

    def test_healthy_store_resumes(self, live_tail, capsys):
        export, dest = live_tail
        code = main([
            "trace", "resume", str(export), str(dest),
            "--audit", "--verify",
            "--until-idle", "1", "--interval", "0",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "CLEAN" in out
        assert "stopped on idle" in out

    def test_damaged_store_is_refused(self, live_tail, capsys):
        export, dest = live_tail
        _damage(dest)
        code = main([
            "trace", "resume", str(export), str(dest),
            "--audit", "--verify",
            "--until-idle", "1", "--interval", "0",
        ])
        assert code == 1
        captured = capsys.readouterr()
        assert "refusing to resume" in captured.err
        assert "trace repair" in captured.err

    def test_verify_works_with_pipeline(self, live_tail, capsys):
        export, dest = live_tail
        code = main([
            "trace", "resume", str(export), str(dest),
            "--audit", "--verify", "--pipeline",
            "--until-idle", "1", "--interval", "0",
        ])
        assert code == 0
        assert "CLEAN" in capsys.readouterr().out

    def test_missing_destination_exits_2(self, tmp_path, capsys):
        export = export_jsonl(
            list(clean_scenario().trace), tmp_path / "e.jsonl"
        )
        code = main([
            "trace", "resume", str(export), str(tmp_path / "gone.db"),
            "--verify", "--until-idle", "1", "--interval", "0",
        ])
        assert code == 2
        assert "cannot verify" in capsys.readouterr().err

    def test_without_verify_damaged_store_still_opens(
        self, live_tail, capsys
    ):
        """The flag is opt-in: no --verify, no pre-flight sweep (the
        damage here corrupts a payload, which the sqlite open itself
        rejects — but with exit 2, not the verify-refusal exit 1)."""
        export, dest = live_tail
        _damage(dest)
        code = main([
            "trace", "resume", str(export), str(dest),
            "--until-idle", "1", "--interval", "0",
        ])
        assert code == 2
        assert "refusing to resume" not in capsys.readouterr().err


class TestRepairReport:
    """``trace report --what repair``: render a saved loss manifest
    through the standard report sinks."""

    @pytest.fixture()
    def manifest(self, saved_db, tmp_path):
        _damage(saved_db)
        dest = tmp_path / "salvaged.db"
        assert main(["trace", "repair", str(saved_db), str(dest)]) == 0
        return f"{dest}.loss.json"

    def test_markdown_to_stdout(self, manifest, capsys):
        code = main([
            "trace", "report", str(manifest), "--what", "repair",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "repair" in out.lower()
        assert "dropped" in out.lower()

    @pytest.mark.parametrize("fmt", ["csv", "jsonl", "md", "html"])
    def test_every_sink_renders(self, manifest, fmt, tmp_path, capsys):
        out_file = tmp_path / f"loss.{fmt}"
        code = main([
            "trace", "report", str(manifest), "--what", "repair",
            "--format", fmt, "--out", str(out_file),
        ])
        assert code == 0
        assert out_file.exists() and out_file.stat().st_size > 0

    def test_garbled_manifest_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.loss.json"
        bad.write_text('{"format_version": 99}')
        code = main([
            "trace", "report", str(bad), "--what", "repair",
        ])
        assert code == 2
        assert "cannot load loss manifest" in capsys.readouterr().err

    def test_missing_manifest_exits_2(self, tmp_path, capsys):
        code = main([
            "trace", "report", str(tmp_path / "none.loss.json"),
            "--what", "repair",
        ])
        assert code == 2
        assert "cannot load" in capsys.readouterr().err
