"""Tenant lifecycle: create/open/close/delete, manifest, audit deltas."""

import json
import os
import threading

import pytest

from repro.core.serialize import event_to_dict
from repro.errors import (
    BadRequestError,
    TenantClosedError,
    TenantExistsError,
    UnknownTenantError,
)
from repro.service.tenants import TenantManager, validate_tenant_name
from repro.workloads.scenarios import all_scenarios


@pytest.fixture(scope="module")
def scenarios():
    return {s.name: s for s in all_scenarios(0)}


@pytest.fixture(scope="module")
def clean_records(scenarios):
    return [event_to_dict(e) for e in scenarios["clean"].trace]


@pytest.fixture(scope="module")
def violating_records(scenarios):
    return [event_to_dict(e) for e in scenarios["unequal_pay"].trace]


class TestNames:
    @pytest.mark.parametrize("name", [
        "acme", "a", "Tenant-1", "x.y_z", "0start", "a" * 64,
    ])
    def test_valid(self, name):
        assert validate_tenant_name(name) == name

    @pytest.mark.parametrize("name", [
        "", "-lead", ".lead", "has space", "slash/ed", "a" * 65,
        "../escape", 7, None,
    ])
    def test_invalid(self, name):
        with pytest.raises(BadRequestError, match="invalid tenant name"):
            validate_tenant_name(name)


class TestMemoryTenants:
    def test_create_append_audit(self, clean_records):
        manager = TenantManager()
        tenant = manager.create("acme", backend="memory")
        assert tenant.describe()["open"] is True
        result = tenant.append_records(clean_records)
        assert result == {
            "appended": len(clean_records),
            "revision": len(clean_records),
        }
        record = tenant.run_audit()
        assert record["audit"] == 0
        assert record["passed"] is True
        assert record["new_violations"] == []

    def test_default_backend_applies(self):
        manager = TenantManager(default_backend="memory")
        assert manager.create("acme").backend == "memory"

    def test_duplicate_name_conflicts(self):
        manager = TenantManager()
        manager.create("acme", backend="memory")
        with pytest.raises(TenantExistsError):
            manager.create("acme", backend="memory")

    def test_unknown_tenant_names_the_hosted_ones(self):
        manager = TenantManager()
        manager.create("alpha", backend="memory")
        manager.create("beta", backend="memory")
        with pytest.raises(UnknownTenantError, match="alpha, beta"):
            manager.get("ghost")

    def test_disk_backends_need_a_data_dir(self):
        manager = TenantManager()
        with pytest.raises(BadRequestError, match="data[ -]?dir"):
            manager.create("acme", backend="sqlite")

    def test_unknown_backend_rejected(self):
        manager = TenantManager()
        with pytest.raises(BadRequestError, match="memory"):
            manager.create("acme", backend="parquet")

    def test_closed_memory_tenant_cannot_reopen(self, clean_records):
        manager = TenantManager()
        tenant = manager.create("acme", backend="memory")
        tenant.append_records(clean_records)
        manager.close("acme")
        with pytest.raises(TenantClosedError):
            tenant.append_records(clean_records)
        with pytest.raises(BadRequestError, match="memory"):
            manager.open("acme")

    def test_validation_failure_appends_nothing(self, clean_records):
        manager = TenantManager()
        tenant = manager.create("acme", backend="memory")
        bad_batch = list(clean_records) + [{"kind": "no_such_kind"}]
        with pytest.raises(Exception):
            tenant.append_records(bad_batch)
        assert tenant.describe()["events"] == 0


class TestAuditDeltas:
    def test_new_violations_only_reported_once(self, violating_records):
        manager = TenantManager()
        tenant = manager.create("acme", backend="memory")
        tenant.append_records(violating_records)
        first = tenant.run_audit()
        assert first["total_violations"] > 0
        assert len(first["new_violations"]) == first["total_violations"]
        second = tenant.run_audit()
        assert second["total_violations"] == first["total_violations"]
        assert second["new_violations"] == []
        assert [r["audit"] for r in tenant.audits] == [0, 1]

    def test_latest_report_requires_an_audit(self, clean_records):
        manager = TenantManager()
        tenant = manager.create("acme", backend="memory")
        with pytest.raises(BadRequestError, match="audit"):
            tenant.latest_report()
        tenant.append_records(clean_records)
        tenant.run_audit()
        assert tenant.latest_report()["passed"] is True

    def test_watch_times_out_empty(self, clean_records):
        manager = TenantManager()
        tenant = manager.create("acme", backend="memory")
        assert tenant.watch(0, timeout=0.05) == []

    def test_watch_wakes_on_audit(self, violating_records):
        manager = TenantManager()
        tenant = manager.create("acme", backend="memory")
        tenant.append_records(violating_records)
        seen = []

        def audit_soon():
            tenant.run_audit()

        timer = threading.Timer(0.1, audit_soon)
        timer.start()
        try:
            seen = tenant.watch(0, timeout=5.0)
        finally:
            timer.join()
        assert len(seen) == 1
        assert seen[0]["audit"] == 0

    def test_watch_rejects_negative_cursor(self):
        manager = TenantManager()
        tenant = manager.create("acme", backend="memory")
        with pytest.raises(BadRequestError, match=">= 0"):
            tenant.watch(-1, timeout=0.01)


@pytest.mark.parametrize("backend", ["persistent", "sqlite"])
class TestDiskTenants:
    def test_store_survives_manager_restart(
        self, tmp_path, backend, clean_records
    ):
        data_dir = str(tmp_path / "data")
        manager = TenantManager(data_dir, default_backend=backend)
        tenant = manager.create("acme")
        tenant.append_records(clean_records)
        summary = manager.close_all()
        assert summary == {"tenants": 1, "checkpointed": 1}

        reborn = TenantManager(data_dir)
        tenant = reborn.get("acme")
        assert tenant.describe()["open"] is True
        assert tenant.describe()["events"] == len(clean_records)
        assert tenant.backend == backend
        reborn.close_all()

    def test_closed_tenants_stay_closed_across_restart(
        self, tmp_path, backend, clean_records
    ):
        data_dir = str(tmp_path / "data")
        manager = TenantManager(data_dir, default_backend=backend)
        manager.create("acme").append_records(clean_records)
        manager.close("acme")
        manager.close_all()

        reborn = TenantManager(data_dir)
        assert reborn.get("acme").describe()["open"] is False
        reopened = reborn.open("acme")
        assert reopened.describe()["events"] == len(clean_records)
        reborn.close_all()

    def test_reopen_starts_a_fresh_audit_session(
        self, tmp_path, backend, violating_records
    ):
        data_dir = str(tmp_path / "data")
        manager = TenantManager(data_dir, default_backend=backend)
        tenant = manager.create("acme")
        tenant.append_records(violating_records)
        first = tenant.run_audit()
        manager.close("acme")
        reopened = manager.open("acme")
        # Audit history was in-memory state; the reopened tenant
        # rebuilds its verdict from the full trace.
        assert reopened.audits == []
        again = reopened.run_audit()
        assert again["total_violations"] == first["total_violations"]
        assert again["passed"] == first["passed"]
        manager.close_all()

    def test_path_collision_conflicts(self, tmp_path, backend):
        data_dir = str(tmp_path / "data")
        manager = TenantManager(data_dir, default_backend=backend)
        tenant = manager.create("acme")
        manager.delete("acme")  # deregisters, keeps the files
        with pytest.raises(TenantExistsError, match="path"):
            manager.create("acme")
        assert os.path.exists(tenant.path)
        manager.close_all()

    def test_delete_keeps_the_files(self, tmp_path, backend, clean_records):
        data_dir = str(tmp_path / "data")
        manager = TenantManager(data_dir, default_backend=backend)
        tenant = manager.create("acme")
        tenant.append_records(clean_records)
        summary = manager.delete("acme")
        assert summary["deleted"] == "acme"
        assert os.path.exists(summary["files_kept"])
        assert "acme" not in manager.names()
        # And the manifest no longer mentions it.
        manifest = json.load(open(os.path.join(data_dir, "tenants.json")))
        assert "acme" not in manifest["tenants"]

    def test_manifest_shape(self, tmp_path, backend):
        data_dir = str(tmp_path / "data")
        manager = TenantManager(data_dir, default_backend=backend)
        manager.create("acme", audit_jobs=3)
        manifest = json.load(open(os.path.join(data_dir, "tenants.json")))
        assert manifest["format_version"] == 1
        entry = manifest["tenants"]["acme"]
        assert entry["backend"] == backend
        assert entry["audit_jobs"] == 3
        assert entry["open"] is True
        # Paths are stored relative to the data dir, so the whole tree
        # can be moved.
        assert not os.path.isabs(entry["path"])
        manager.close_all()

    def test_close_all_is_reported(self, tmp_path, backend, clean_records):
        data_dir = str(tmp_path / "data")
        manager = TenantManager(data_dir, default_backend=backend)
        manager.create("a").append_records(clean_records)
        manager.create("b")
        manager.close("b")
        assert manager.close_all() == {"tenants": 2, "checkpointed": 1}
