"""``HTTPIngestSource`` against a live service, and source resolution."""

import pytest

from repro.core.serialize import event_to_dict
from repro.core.store import open_store
from repro.core.trace import make_disk_store
from repro.errors import IngestError
from repro.ingest import (
    SOURCE_KINDS,
    HTTPIngestSource,
    IngestRunner,
    resolve_source,
)
from repro.service import AuditService, ServiceClient
from repro.workloads.scenarios import all_scenarios


@pytest.fixture(scope="module")
def records():
    scenario = next(s for s in all_scenarios(0) if s.name == "clean")
    return [event_to_dict(e) for e in scenario.trace]


@pytest.fixture()
def service(records):
    with AuditService(None, port=0) as live:
        client = ServiceClient(live.url)
        client.create_tenant("acme", backend="memory")
        client.append("acme", records)
        yield live


class TestResolution:
    def test_unknown_kind_error_names_every_kind(self):
        # Regression: the error used to say only "unknown source kind".
        with pytest.raises(IngestError) as caught:
            resolve_source("dump.jsonl", "parquet")
        message = str(caught.value)
        for kind in SOURCE_KINDS:
            assert kind in message
        assert "http" in message

    def test_source_kinds_registry(self):
        assert SOURCE_KINDS == ("auto", "jsonl", "segments", "csv", "http")

    @pytest.mark.parametrize("url", [
        "http://example.test/tenants/acme",
        "https://example.test/tenants/acme/events",
    ])
    def test_auto_detects_urls(self, url):
        source = resolve_source(url, "auto")
        assert isinstance(source, HTTPIngestSource)
        assert source.source_kind == "http"

    def test_explicit_http_kind(self):
        source = resolve_source("http://example.test/tenants/a", "http")
        assert isinstance(source, HTTPIngestSource)

    def test_http_kind_rejects_non_urls(self):
        with pytest.raises(IngestError, match="http"):
            HTTPIngestSource("dump.jsonl")

    def test_url_is_normalised(self):
        for suffix in ("", "/", "/events", "/events/"):
            source = HTTPIngestSource("http://h:1/tenants/acme" + suffix)
            assert source.url == "http://h:1/tenants/acme"
            assert source.describe() == {
                "kind": "http", "path": "http://h:1/tenants/acme",
            }


class TestPolling:
    def test_poll_batches_and_position(self, service, records):
        source = HTTPIngestSource(service.url + "/tenants/acme")
        assert source.position == {"next_seq": 0}
        first = source.poll(10)
        assert len(first) == 10
        assert source.position == {"next_seq": 10}
        rest = source.poll(10_000)
        assert source.position == {"next_seq": len(records)}
        assert [event_to_dict(e) for e in first + rest] == records
        # Caught up: polling again returns nothing and stays put.
        assert source.poll(10) == []
        assert source.position == {"next_seq": len(records)}

    def test_seek_rewinds(self, service, records):
        source = HTTPIngestSource(service.url + "/tenants/acme")
        source.poll(10_000)
        source.seek({"next_seq": 5})
        replay = source.poll(10_000)
        assert [event_to_dict(e) for e in replay] == records[5:]

    @pytest.mark.parametrize("position", [
        {}, {"next_seq": -1}, {"next_seq": "five"}, {"offset": 3},
    ])
    def test_seek_rejects_foreign_positions(self, service, position):
        source = HTTPIngestSource(service.url + "/tenants/acme")
        with pytest.raises(IngestError, match="position"):
            source.seek(position)

    def test_poll_needs_a_positive_budget(self, service):
        source = HTTPIngestSource(service.url + "/tenants/acme")
        with pytest.raises(IngestError, match="max_records"):
            source.poll(0)

    def test_unknown_tenant_fails_loudly(self, service):
        source = HTTPIngestSource(service.url + "/tenants/ghost")
        with pytest.raises(IngestError, match="404"):
            source.poll(10)

    def test_unreachable_server_fails_loudly(self):
        source = HTTPIngestSource(
            "http://127.0.0.1:9/tenants/acme", timeout=0.5
        )
        with pytest.raises(IngestError, match="unreachable"):
            source.poll(10)

    def test_non_service_document_fails_loudly(self, service):
        # "/" answers 200 with JSON, but not an events page.
        source = HTTPIngestSource(service.url)
        with pytest.raises(IngestError, match="events"):
            source.poll(10)


class TestTailIntoLocalStore:
    def test_checkpointed_tail_mirrors_the_tenant(
        self, service, records, tmp_path
    ):
        """The PR 5 gap closed: a service tenant tailed into a local
        store through the standard checkpointed runner."""
        dest = str(tmp_path / "mirror.db")
        checkpoint = str(tmp_path / "mirror.checkpoint")
        source = resolve_source(service.url + "/tenants/acme", "auto")
        store = make_disk_store(dest)
        try:
            runner = IngestRunner(
                source, store, checkpoint_path=checkpoint, interval=0.01,
            )
            summary = runner.run(idle_limit=1)
            runner.close()
        finally:
            store.close()
        assert summary.events == len(records)
        mirrored = open_store(dest)
        try:
            assert [
                event_to_dict(e) for e in mirrored.events
            ] == records
        finally:
            mirrored.close()
