"""Endpoint round trips over live HTTP, both disk backends included."""

import json
import urllib.request

import pytest

from repro.core.serialize import event_to_dict
from repro.errors import ServiceClientError
from repro.service import AuditService, ServiceClient
from repro.workloads.scenarios import all_scenarios


@pytest.fixture(scope="module")
def scenarios():
    return {s.name: s for s in all_scenarios(0)}


@pytest.fixture(scope="module")
def records(scenarios):
    return [event_to_dict(e) for e in scenarios["unequal_pay"].trace]


@pytest.fixture()
def service(tmp_path):
    with AuditService(str(tmp_path / "data"), port=0) as live:
        yield live


@pytest.fixture()
def client(service):
    return ServiceClient(service.url)


def expect_error(status, error_type, call):
    with pytest.raises(ServiceClientError) as caught:
        call()
    assert caught.value.status == status
    assert str(caught.value).startswith(error_type + ":")


class TestServiceInfo:
    def test_ping_describes_the_service(self, client, service):
        info = client.ping()
        assert info["service"] == "repro-audit"
        assert info["tenants"] == 0
        assert info["backends"] == ["memory", "persistent", "sqlite"]
        assert info["data_dir"] is not None
        assert info["axioms"]  # the shared registry's axiom ids

    def test_list_tenants_round_trip(self, client):
        assert client.list_tenants() == []
        client.create_tenant("acme", backend="memory")
        listed = client.list_tenants()
        assert [t["name"] for t in listed] == ["acme"]


@pytest.mark.parametrize("backend", ["persistent", "sqlite"])
class TestDiskRoundTrips:
    def test_full_round_trip(self, client, backend, records):
        created = client.create_tenant("acme", backend=backend)
        assert created["open"] is True and created["backend"] == backend

        appended = client.append("acme", records)
        assert appended == {
            "appended": len(records), "revision": len(records),
        }

        verdict = client.run_audit("acme")
        assert verdict["passed"] is False
        assert verdict["total_violations"] > 0
        assert len(verdict["new_violations"]) == verdict["total_violations"]

        # Paged export: reassembling every page gives the input back.
        collected, cursor = [], 0
        while True:
            page = client.events("acme", start=cursor, limit=7)
            if not page["events"]:
                break
            collected.extend(page["events"])
            cursor = page["next"]
        assert collected == records

        assert client.query("acme", count=True)["count"] == len(records)
        histogram = client.query("acme", count_by_kind=True)["count_by_kind"]
        assert sum(histogram.values()) == len(records)

        stats = client.stats("acme")
        assert stats["events"] == len(records)
        info = client.info("acme")
        assert info["events"] == len(records)
        assert info["backend"] == backend

        report = client.report("acme", format="md")
        assert report.startswith("# Fairness audit report")
        assert "acme" in report

    def test_shutdown_checkpoints_and_restart_resumes(
        self, tmp_path, backend, records
    ):
        data_dir = str(tmp_path / "srv")
        with AuditService(data_dir, port=0) as service:
            client = ServiceClient(service.url)
            client.create_tenant("acme", backend=backend)
            client.append("acme", records)
            summary = service.close()
            assert summary == {"tenants": 1, "checkpointed": 1}
        with AuditService(data_dir, port=0) as reborn:
            client = ServiceClient(reborn.url)
            described = client.tenant("acme")
            assert described["open"] is True
            assert described["events"] == len(records)
            assert client.query("acme", count=True)["count"] == len(records)


class TestErrorContract:
    def test_unknown_tenant_is_404(self, client):
        for call in (
            lambda: client.tenant("ghost"),
            lambda: client.append("ghost", []),
            lambda: client.run_audit("ghost"),
            lambda: client.query("ghost", count=True),
            lambda: client.report("ghost"),
        ):
            expect_error(404, "UnknownTenantError", call)

    def test_duplicate_tenant_is_409(self, client):
        client.create_tenant("acme", backend="memory")
        expect_error(
            409, "TenantExistsError",
            lambda: client.create_tenant("acme", backend="memory"),
        )

    def test_closed_tenant_is_409(self, client, records):
        client.create_tenant("acme", backend="memory")
        client.close_tenant("acme")
        expect_error(
            409, "TenantClosedError",
            lambda: client.append("acme", records[:1]),
        )

    def test_malformed_requests_are_400(self, client, records):
        client.create_tenant("acme", backend="memory")
        for call in (
            # body problems
            lambda: client.create_tenant(7),
            lambda: client.create_tenant("x", backend="parquet"),
            lambda: client.request("POST", "/tenants", body=["not-an-object"]),
            lambda: client.request("POST", "/tenants/acme/events", body={}),
            lambda: client.request(
                "POST", "/tenants/acme/events", body={"events": [7]}
            ),
            lambda: client.append("acme", [{"kind": "no_such_kind"}]),
            # query problems
            lambda: client.query("acme", entity_kind="worker"),
            lambda: client.query("acme", since=1, round_tick=2),
            lambda: client.query("acme", count=True, count_by_kind=True),
            lambda: client.request(
                "GET", "/tenants/acme/query", params={"limit": "many"}
            ),
            lambda: client.events("acme", start=-1),
            lambda: client.events("acme", limit=0),
            # report problems
            lambda: client.report("acme"),  # never audited
        ):
            with pytest.raises(ServiceClientError) as caught:
                call()
            assert caught.value.status == 400, str(caught.value)

    def test_unknown_report_format_is_400(self, client, records):
        client.create_tenant("acme", backend="memory")
        client.append("acme", records)
        client.run_audit("acme")
        expect_error(
            400, "ReportError", lambda: client.report("acme", format="pdf")
        )

    def test_non_json_body_is_400(self, service):
        request = urllib.request.Request(
            service.url + "/tenants",
            data=b"{not json",
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as caught:
            urllib.request.urlopen(request, timeout=10)
        assert caught.value.code == 400
        body = json.loads(caught.value.read().decode("utf-8"))
        assert "not valid JSON" in body["error"]["message"]

    def test_unrouted_path_and_method(self, client):
        expect_error(
            404, "NotFound", lambda: client.request("GET", "/nowhere")
        )
        expect_error(
            405, "MethodNotAllowed",
            lambda: client.request("DELETE", "/tenants"),
        )

    def test_client_reports_unreachable_servers(self):
        client = ServiceClient("http://127.0.0.1:9", timeout=0.5)
        with pytest.raises(ServiceClientError) as caught:
            client.ping()
        assert caught.value.status == 0


class TestWatch:
    def test_watch_cursor_advances(self, client, records):
        client.create_tenant("acme", backend="memory")
        client.append("acme", records)
        client.run_audit("acme")
        first = client.watch("acme", after=0, timeout=0.1)
        assert first["timed_out"] is False
        assert first["next"] == 1
        assert len(first["audits"]) == 1
        again = client.watch("acme", after=first["next"], timeout=0.1)
        assert again == {"audits": [], "next": 1, "timed_out": True}

    def test_audit_history_pages(self, client, records):
        client.create_tenant("acme", backend="memory")
        client.append("acme", records)
        client.run_audit("acme")
        client.run_audit("acme")
        everything = client.audits("acme")
        assert [r["audit"] for r in everything["audits"]] == [0, 1]
        assert everything["total"] == 2
        tail = client.audits("acme", after=1)
        assert [r["audit"] for r in tail["audits"]] == [1]
