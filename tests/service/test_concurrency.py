"""Concurrent multi-tenant traffic: verdicts identical to local audits."""

import threading

import pytest

from repro.core.audit import AuditEngine
from repro.core.serialize import event_to_dict
from repro.service import AuditService, ServiceClient
from repro.service.wire import report_to_dict
from repro.workloads.scenarios import all_scenarios

#: Tenants hammered concurrently (the committed BENCH_service.json run
#: gates the >= 100 regime; this keeps tier-1 quick).
TENANTS = 12


@pytest.fixture(scope="module")
def prepared():
    """(name, wire records, local batch verdict) per labelled scenario."""
    engine = AuditEngine()
    out = []
    for scenario in all_scenarios(0):
        out.append((
            scenario.name,
            [event_to_dict(e) for e in scenario.trace],
            report_to_dict(engine.audit(scenario.trace)),
        ))
    return out


def run_threads(count, target):
    failures = []

    def wrapped(index):
        try:
            target(index)
        except Exception as error:  # noqa: BLE001 - surfaced below
            failures.append((index, repr(error)))

    threads = [
        threading.Thread(target=wrapped, args=(i,)) for i in range(count)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    assert not failures, failures[:3]


def test_tenant_hammer_matches_local_verdicts(prepared):
    """One thread per tenant: batched appends, audits, queries."""
    with AuditService(None, port=0) as service:
        client = ServiceClient(service.url, timeout=60.0)

        def session(index):
            name, records, verdict = prepared[index % len(prepared)]
            tenant = f"t{index:02d}"
            client.create_tenant(tenant, backend="memory")
            for start in range(0, len(records), 25):
                client.append(tenant, records[start:start + 25])
                client.run_audit(tenant)
            assert client.query(tenant, count=True)["count"] == len(records)
            assert client.latest_audit(tenant) == verdict

        run_threads(TENANTS, session)
        assert ServiceClient(service.url).ping()["tenants"] == TENANTS


def test_single_tenant_contention(prepared):
    """One ordered writer, many concurrent readers and auditors.

    Appends must stay time-ordered, so a single thread streams the
    batches while the others hammer the same tenant with audits,
    queries, stats, and exports — the per-tenant lock has to keep every
    read consistent (a count can never exceed the revision it was read
    with) without ever deadlocking."""
    name, records, verdict = prepared[0]
    with AuditService(None, port=0) as service:
        client = ServiceClient(service.url, timeout=60.0)
        client.create_tenant("shared", backend="memory")
        done = threading.Event()

        def jobs(index):
            if index == 0:  # the writer
                for start in range(0, len(records), 10):
                    client.append("shared", records[start:start + 10])
                done.set()
                return
            while not done.is_set():
                verdict_now = client.run_audit("shared")
                count = client.query("shared", count=True)["count"]
                assert count <= client.info("shared")["revision"]
                assert verdict_now["revision"] <= len(records)
            # Final pass once the writer finished.
            assert client.query("shared", count=True)["count"] == len(records)

        run_threads(6, jobs)
        # The readers' last audits may predate the final append; one
        # audit at the final revision pins the verdict.
        client.run_audit("shared")
        assert client.latest_audit("shared") == verdict


def test_watchers_wake_across_threads(prepared):
    """Long-poll watchers on one tenant all see the audit that lands."""
    name, records, verdict = prepared[3]
    with AuditService(None, port=0) as service:
        client = ServiceClient(service.url, timeout=60.0)
        client.create_tenant("acme", backend="memory")
        client.append("acme", records)
        seen = [None] * 4

        def watcher(index):
            seen[index] = client.watch("acme", after=0, timeout=30.0)

        threads = [
            threading.Thread(target=watcher, args=(i,))
            for i in range(len(seen))
        ]
        for thread in threads:
            thread.start()
        client.run_audit("acme")
        for thread in threads:
            thread.join(timeout=60)
        for result in seen:
            assert result is not None
            assert result["timed_out"] is False
            assert [r["audit"] for r in result["audits"]] == [0]
