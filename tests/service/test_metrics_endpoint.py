"""GET /metrics over live HTTP: exposition validity and exact totals."""

import re

import pytest

from repro.core.serialize import event_to_dict
from repro.service import AuditService, ServiceClient
from repro.service.app import Router, ServiceApp
from repro.telemetry import MetricsRegistry, using_registry
from repro.workloads.scenarios import all_scenarios

# Label values are quoted and may themselves contain '{'/'}' (route
# patterns do), so the label block is matched greedily to the last '}'.
_SAMPLE_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{.*\})? [0-9+eE.\-Inf]+$"
)


@pytest.fixture()
def registry():
    """A fresh process-default registry for the served instance, so
    request totals are exact (the real default accumulates across
    tests)."""
    with using_registry(MetricsRegistry()) as fresh:
        yield fresh


@pytest.fixture()
def service(tmp_path, registry):
    with AuditService(str(tmp_path / "data"), port=0) as live:
        yield live


@pytest.fixture()
def client(service):
    return ServiceClient(service.url)


@pytest.fixture(scope="module")
def records():
    scenarios = {s.name: s for s in all_scenarios(0)}
    return [event_to_dict(e) for e in scenarios["unequal_pay"].trace]


def parse_samples(text):
    """Prometheus exposition -> {(name, labels_text): float}."""
    samples = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        assert _SAMPLE_LINE.match(line), f"unscrapable line: {line!r}"
        name_part, value = line.rsplit(" ", 1)
        samples[name_part] = float(value)
    return samples


class TestExposition:
    def test_covers_service_store_audit_and_ingest_families(
        self, client, records
    ):
        # Exercise every layer through the public API, then scrape.
        client.create_tenant("acme", backend="memory")
        client.append("acme", records)
        client.run_audit("acme")
        client.query("acme", count=True)
        text = client.metrics()
        assert text  # non-empty exposition
        families = {
            line.split()[2]
            for line in text.splitlines()
            if line.startswith("# TYPE")
        }
        assert "repro_service_requests_total" in families
        assert "repro_service_request_seconds" in families
        assert "repro_store_append_events_total" in families
        assert "repro_store_queries_total" in families
        assert "repro_audit_runs_total" in families
        parse_samples(text)  # every sample line is scrapable

    def test_json_format_returns_the_snapshot_document(
        self, client, records
    ):
        client.create_tenant("acme", backend="memory")
        document = client.metrics_json()
        assert document["repro_service_requests_total"]["kind"] == "counter"

    def test_unknown_format_is_a_400(self, client):
        from repro.errors import ServiceClientError

        with pytest.raises(ServiceClientError) as caught:
            client.request("GET", "/metrics", params={"format": "xml"})
        assert caught.value.status == 400


class TestExactTotals:
    def test_per_tenant_request_counts_equal_requests_issued(
        self, client, records, registry
    ):
        client.create_tenant("acme", backend="memory")
        client.create_tenant("globex", backend="memory")
        for _ in range(5):
            client.tenant("acme")
        for _ in range(3):
            client.tenant("globex")
        client.append("acme", records[:10])

        def tenant_gets(tenant):
            return registry.counter(
                "repro_service_requests_total",
                route="/tenants/{tenant}", method="GET",
                tenant=tenant, status=200,
            ).value

        assert tenant_gets("acme") == 5
        assert tenant_gets("globex") == 3
        # The same numbers through the wire endpoint.
        samples = parse_samples(client.metrics())
        acme_info = (
            'repro_service_requests_total{method="GET",'
            'route="/tenants/{tenant}",status="200",tenant="acme"}'
        )
        assert samples[acme_info] == 5
        append_line = (
            'repro_service_requests_total{method="POST",'
            'route="/tenants/{tenant}/events",status="200",tenant="acme"}'
        )
        assert samples[append_line] == 1

    def test_scrape_counts_itself(self, client, registry):
        client.metrics()
        client.metrics()
        metrics_route = registry.counter(
            "repro_service_requests_total",
            route="/metrics", method="GET", tenant="", status=200,
        )
        # The second scrape reported the first; the counter now holds 2.
        assert metrics_route.value == 2

    def test_error_envelopes_are_counted_by_type(self, client, registry):
        from repro.errors import ServiceClientError

        with pytest.raises(ServiceClientError):
            client.tenant("ghost")  # 404 UnknownTenantError
        assert registry.counter(
            "repro_service_errors_total",
            type="UnknownTenantError", status=404,
        ).value == 1

    def test_inflight_gauge_settles_to_zero(self, client, registry):
        client.ping()
        assert registry.gauge(
            "repro_service_inflight_requests"
        ).value == 0


class TestErrorLogging:
    """Satellite: unexpected exceptions log a traceback *before* being
    masked as InternalError 500 — and the wire envelope is unchanged."""

    @staticmethod
    def _crashing_app():
        router = Router()

        @router.get("/boom")
        def boom(request):
            raise RuntimeError("wires crossed")

        return ServiceApp().include(router)

    def test_traceback_reaches_the_log(self, caplog):
        app = self._crashing_app()
        with caplog.at_level("ERROR", logger="repro.service"):
            response = app.dispatch("GET", "/boom")
        assert response.status == 500
        record = next(
            r for r in caplog.records if r.name == "repro.service"
        )
        assert "RuntimeError" in record.message
        assert record.exc_info is not None
        text = caplog.text
        assert "Traceback" in text and "wires crossed" in text

    def test_envelope_stays_masked(self, caplog):
        app = self._crashing_app()
        with caplog.at_level("ERROR", logger="repro.service"):
            response = app.dispatch("GET", "/boom")
        assert response.payload == {
            "error": {
                "type": "InternalError",
                "message": "wires crossed",
                "status": 500,
            }
        }

    def test_expected_errors_do_not_log_tracebacks(self, caplog):
        from repro.errors import BadRequestError

        router = Router()

        @router.get("/bad")
        def bad(request):
            raise BadRequestError("no")

        app = ServiceApp().include(router)
        with caplog.at_level("ERROR", logger="repro.service"):
            response = app.dispatch("GET", "/bad")
        assert response.status == 400
        assert not [
            r for r in caplog.records if r.name == "repro.service"
        ]

    def test_unexpected_errors_increment_the_error_counter(self):
        registry = MetricsRegistry()
        with using_registry(registry):
            self._crashing_app().dispatch("GET", "/boom")
        assert registry.counter(
            "repro_service_errors_total",
            type="InternalError", status=500,
        ).value == 1
