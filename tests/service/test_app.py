"""Unit tests for the router/DI/error-envelope core (no sockets)."""

import pytest

from repro.errors import (
    BadRequestError,
    QueryError,
    ReportError,
    ServiceError,
    TenantClosedError,
    TenantExistsError,
    UnknownTenantError,
)
from repro.service.app import (
    Request,
    Response,
    Router,
    ServiceApp,
    error_status,
)


def make_app(router, **dependencies):
    return ServiceApp(**dependencies).include(router)


# ---------------------------------------------------------------------------
# Routing


class TestRouting:
    def test_static_route_dispatches(self):
        router = Router()

        @router.get("/ping")
        def ping(request):
            return {"pong": True}

        response = make_app(router).dispatch("GET", "/ping")
        assert response.status == 200
        assert response.payload == {"pong": True}

    def test_path_params_are_captured(self):
        router = Router()

        @router.get("/tenants/{tenant}/events")
        def events(request):
            return {"tenant": request.param("tenant")}

        response = make_app(router).dispatch("GET", "/tenants/acme/events")
        assert response.payload == {"tenant": "acme"}

    def test_trailing_slash_is_equivalent(self):
        router = Router()

        @router.get("/tenants")
        def tenants(request):
            return {"ok": True}

        app = make_app(router)
        assert app.dispatch("GET", "/tenants").status == 200
        assert app.dispatch("GET", "/tenants/").status == 200

    def test_unmatched_path_is_404_notfound(self):
        response = make_app(Router()).dispatch("GET", "/nowhere")
        assert response.status == 404
        assert response.payload["error"]["type"] == "NotFound"
        assert response.payload["error"]["status"] == 404

    def test_matched_path_wrong_method_is_405(self):
        router = Router()

        @router.get("/tenants")
        def tenants(request):
            return {}

        response = make_app(router).dispatch("DELETE", "/tenants")
        assert response.status == 405
        assert response.payload["error"]["type"] == "MethodNotAllowed"

    def test_method_is_case_insensitive(self):
        router = Router()

        @router.post("/x")
        def x(request):
            return {"ok": 1}

        assert make_app(router).dispatch("post", "/x").status == 200

    def test_pattern_must_start_with_slash(self):
        router = Router()
        with pytest.raises(ValueError, match="must start with"):
            @router.get("tenants")
            def tenants(request):
                return {}

    def test_handler_must_take_request_first(self):
        router = Router()
        with pytest.raises(ValueError, match="'request'"):
            @router.get("/x")
            def bad(tenants):
                return {}

    def test_response_passthrough(self):
        router = Router()

        @router.get("/raw")
        def raw(request):
            return Response(status=201, text="hi", content_type="text/plain")

        response = make_app(router).dispatch("GET", "/raw")
        assert response.status == 201
        assert response.encode() == b"hi"


# ---------------------------------------------------------------------------
# Dependency injection


class TestInjection:
    def test_dependencies_injected_by_name(self):
        router = Router()

        @router.get("/x")
        def x(request, flavour):
            return {"flavour": flavour}

        response = make_app(router, flavour="plum").dispatch("GET", "/x")
        assert response.payload == {"flavour": "plum"}

    def test_unknown_dependency_rejected_at_include_time(self):
        router = Router()

        @router.get("/x")
        def x(request, missing_thing):
            return {}

        with pytest.raises(ValueError, match="missing_thing"):
            ServiceApp(tenants=object()).include(router)


# ---------------------------------------------------------------------------
# Error mapping


class TestErrorMapping:
    @pytest.mark.parametrize("error, status", [
        (BadRequestError("x"), 400),
        (UnknownTenantError("x"), 404),
        (TenantExistsError("x"), 409),
        (TenantClosedError("x"), 409),
        (ServiceError("x"), 500),
        (QueryError("x"), 400),
        (ReportError("x"), 400),
        (RuntimeError("x"), 500),
    ])
    def test_error_status(self, error, status):
        assert error_status(error) == status

    def test_library_error_envelope_names_the_type(self):
        router = Router()

        @router.get("/x")
        def x(request):
            raise UnknownTenantError("no such tenant")

        response = make_app(router).dispatch("GET", "/x")
        assert response.status == 404
        assert response.payload == {"error": {
            "type": "UnknownTenantError",
            "message": "no such tenant",
            "status": 404,
        }}

    def test_unexpected_error_is_masked_as_internal(self):
        router = Router()

        @router.get("/x")
        def x(request):
            raise RuntimeError("secret stack detail")

        response = make_app(router).dispatch("GET", "/x")
        assert response.status == 500
        assert response.payload["error"]["type"] == "InternalError"


# ---------------------------------------------------------------------------
# Request helpers


class TestRequestHelpers:
    def make(self, query=None, body=None):
        return Request(
            method="GET", path="/x", query=query or {}, body=body
        )

    def test_query_str_takes_last_value(self):
        request = self.make(query={"a": ["1", "2"]})
        assert request.query_str("a") == "2"
        assert request.query_str("b") is None
        assert request.query_str("b", "d") == "d"

    def test_query_list_is_every_value(self):
        assert self.make(query={"a": ["1", "2"]}).query_list("a") == ["1", "2"]
        assert self.make().query_list("a") == []

    def test_query_int_parses_or_400s(self):
        assert self.make(query={"n": ["7"]}).query_int("n") == 7
        assert self.make().query_int("n", 3) == 3
        with pytest.raises(BadRequestError, match="must be an integer"):
            self.make(query={"n": ["seven"]}).query_int("n")

    def test_query_float_parses_or_400s(self):
        assert self.make(query={"t": ["1.5"]}).query_float("t") == 1.5
        with pytest.raises(BadRequestError, match="must be a number"):
            self.make(query={"t": ["soon"]}).query_float("t")

    @pytest.mark.parametrize("raw, expected", [
        ("1", True), ("true", True), ("yes", True), ("on", True), ("", True),
        ("0", False), ("false", False), ("no", False), ("off", False),
    ])
    def test_query_flag_values(self, raw, expected):
        assert self.make(query={"f": [raw]}).query_flag("f") is expected

    def test_query_flag_absent_is_false(self):
        assert self.make().query_flag("f") is False

    def test_query_flag_garbage_400s(self):
        with pytest.raises(BadRequestError, match="boolean-ish"):
            self.make(query={"f": ["maybe"]}).query_flag("f")

    def test_body_object_rejects_non_objects(self):
        assert self.make(body={"a": 1}).body_object() == {"a": 1}
        with pytest.raises(BadRequestError, match="JSON object"):
            self.make(body=[1]).body_object()
        with pytest.raises(BadRequestError, match="nothing"):
            self.make(body=None).body_object()

    def test_body_field_type_checks(self):
        request = self.make(body={"name": "a", "jobs": 2, "flag": True})
        assert request.body_field("name", (str,)) == "a"
        assert request.body_field("jobs", (int,)) == 2
        with pytest.raises(BadRequestError, match="missing 'nope'"):
            request.body_field("nope", (str,))
        assert request.body_field("nope", (str,), required=False) is None
        with pytest.raises(BadRequestError, match="must be str"):
            request.body_field("jobs", (str,))

    def test_body_field_bool_is_not_an_int(self):
        request = self.make(body={"jobs": True})
        with pytest.raises(BadRequestError, match="must be int"):
            request.body_field("jobs", (int,))
