"""CLI coverage for ``trace serve`` and HTTP sources on ``trace tail``.

``trace serve`` blocks by design, so the handler is exercised through
a real subprocess: boot, client-driven traffic, SIGINT, exit code 130
with the checkpoint summary — the same drive CI's smoke step runs.
"""

import os
import signal
import subprocess
import sys
import time
import urllib.request

import pytest

from repro.cli import build_trace_parser, main
from repro.core.serialize import event_to_dict
from repro.service import ServiceClient
from repro.workloads.scenarios import all_scenarios


class TestParser:
    def test_serve_defaults(self):
        args = build_trace_parser().parse_args(["serve"])
        assert args.data_dir is None
        assert args.host == "127.0.0.1"
        assert args.port == 8023
        assert args.store == "sqlite"
        assert args.audit_jobs == 1

    def test_serve_flags(self):
        args = build_trace_parser().parse_args([
            "serve", "runs/data", "--host", "0.0.0.0", "--port", "9000",
            "--store", "persistent", "--audit-jobs", "4",
        ])
        assert args.data_dir == "runs/data"
        assert args.host == "0.0.0.0"
        assert args.port == 9000
        assert args.store == "persistent"
        assert args.audit_jobs == 4

    def test_source_kind_accepts_http(self):
        args = build_trace_parser().parse_args([
            "tail", "http://h:1/tenants/a", "dest.db",
            "--source-kind", "http",
        ])
        assert args.source_kind == "http"

    def test_bad_port_exits_2(self, capsys):
        # Port already formatted? No — a port the OS refuses to bind.
        assert main(["trace", "serve", "--port", "-5"]) == 2
        assert "cannot serve" in capsys.readouterr().err


@pytest.fixture()
def served(tmp_path):
    """A ``trace serve`` subprocess on an ephemeral-ish port."""
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    data_dir = str(tmp_path / "data")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "trace", "serve", data_dir,
         "--port", "0"],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True,
    )
    # ``--port 0`` binds an ephemeral port announced on stdout.
    line = process.stdout.readline()
    assert "listening on" in line, line
    url = line.split("listening on ", 1)[1].split(" ")[0]
    for _ in range(100):
        try:
            urllib.request.urlopen(url + "/", timeout=1)
            break
        except Exception:
            time.sleep(0.05)
    try:
        yield process, url, data_dir
    finally:
        if process.poll() is None:
            process.kill()
            process.communicate(timeout=10)


class TestServeProcess:
    def test_sigint_checkpoints_and_exits_130(self, served, tmp_path):
        process, url, data_dir = served
        client = ServiceClient(url)
        scenario = next(s for s in all_scenarios(0) if s.name == "clean")
        records = [event_to_dict(e) for e in scenario.trace]
        client.create_tenant("acme")
        client.append("acme", records)
        assert client.run_audit("acme")["passed"] is True

        process.send_signal(signal.SIGINT)
        output, _ = process.communicate(timeout=30)
        assert process.returncode == 130
        assert "1 tenant(s) closed, 1 checkpointed" in output

        # The checkpointed store is a first-class local store: the
        # stock CLI reads it back without the service.
        store_path = os.path.join(data_dir, "acme.db")
        assert main(["trace", "info", store_path]) == 0

    def test_tail_follows_a_served_tenant(self, served, tmp_path, capsys):
        process, url, data_dir = served
        client = ServiceClient(url)
        scenario = next(
            s for s in all_scenarios(0) if s.name == "unequal_pay"
        )
        records = [event_to_dict(e) for e in scenario.trace]
        client.create_tenant("acme")
        client.append("acme", records)

        dest = str(tmp_path / "mirror.db")
        code = main([
            "trace", "tail", url + "/tenants/acme", dest,
            "--audit", "--until-idle", "1", "--interval", "0.05",
            "--format", "json",
        ])
        assert code == 0
        import json

        summary = json.loads(capsys.readouterr().out)
        assert summary["events"] == len(records)
        assert summary["violations"] > 0
