"""Unit tests for every assignment algorithm."""

import random

import pytest

from repro.assignment import (
    AssignmentInstance,
    BudgetOptimalAssigner,
    HungarianAssigner,
    OnlineGreedyAssigner,
    RequesterCentricAssigner,
    RoundRobinAssigner,
    SelfAppointmentAssigner,
    WorkerCentricAssigner,
)
from repro.assignment.base import expected_gain, validate_result, worker_value
from repro.assignment.budget_optimal import redundancy_for_reliability
from repro.errors import AssignmentError

from tests.conftest import make_task, make_worker


@pytest.fixture
def instance(vocabulary):
    """4 workers (2 reliable, 2 unreliable), 3 tasks, capacity 1."""
    workers = [
        make_worker("w1", vocabulary, computed={"acceptance_ratio": 0.95}),
        make_worker("w2", vocabulary, computed={"acceptance_ratio": 0.9}),
        make_worker("w3", vocabulary, computed={"acceptance_ratio": 0.3}),
        make_worker("w4", vocabulary, computed={"acceptance_ratio": 0.2}),
    ]
    tasks = [
        make_task("t1", vocabulary, reward=0.5),
        make_task("t2", vocabulary, reward=0.3),
        make_task("t3", vocabulary, reward=0.1),
    ]
    return AssignmentInstance(workers=tuple(workers), tasks=tuple(tasks))


ALL = [
    SelfAppointmentAssigner(),
    RequesterCentricAssigner(),
    WorkerCentricAssigner(),
    RoundRobinAssigner(),
    HungarianAssigner(),
    HungarianAssigner(objective="worker"),
    BudgetOptimalAssigner(redundancy=2),
    OnlineGreedyAssigner(),
]


class TestFeasibility:
    @pytest.mark.parametrize("assigner", ALL, ids=lambda a: a.name)
    def test_results_are_feasible(self, instance, assigner):
        result = assigner.assign(instance, random.Random(0))
        validate_result(instance, result)

    @pytest.mark.parametrize("assigner", ALL, ids=lambda a: a.name)
    def test_empty_instance(self, vocabulary, assigner):
        instance = AssignmentInstance(workers=(), tasks=())
        result = assigner.assign(instance, random.Random(0))
        assert result.pairs == ()

    @pytest.mark.parametrize("assigner", ALL, ids=lambda a: a.name)
    def test_deterministic_under_seed(self, instance, assigner):
        first = assigner.assign(instance, random.Random(7))
        second = assigner.assign(instance, random.Random(7))
        assert first.pairs == second.pairs


class TestInstanceValidation:
    def test_duplicate_ids_rejected(self, vocabulary):
        worker = make_worker("w1", vocabulary)
        with pytest.raises(AssignmentError, match="duplicate worker"):
            AssignmentInstance(workers=(worker, worker), tasks=())
        task = make_task("t1", vocabulary)
        with pytest.raises(AssignmentError, match="duplicate task"):
            AssignmentInstance(workers=(), tasks=(task, task))

    def test_capacity_validated(self, vocabulary):
        with pytest.raises(AssignmentError):
            AssignmentInstance(workers=(), tasks=(), capacity=0)

    def test_need_defaults_to_one(self, vocabulary):
        instance = AssignmentInstance(
            workers=(), tasks=(make_task("t1", vocabulary),),
            tasks_need={"t1": 3},
        )
        assert instance.need("t1") == 3
        assert instance.need("other") == 1


class TestValueFunctions:
    def test_expected_gain_uses_reliability(self, vocabulary):
        task = make_task("t1", vocabulary, reward=1.0)
        reliable = make_worker("w1", vocabulary,
                               computed={"acceptance_ratio": 0.8})
        assert expected_gain(reliable, task) == pytest.approx(0.8)

    def test_expected_gain_prefers_mean_quality(self, vocabulary):
        task = make_task("t1", vocabulary, reward=1.0)
        worker = make_worker(
            "w1", vocabulary,
            computed={"acceptance_ratio": 0.9, "mean_quality": 0.6},
        )
        assert expected_gain(worker, task) == pytest.approx(0.6)

    def test_expected_gain_zero_when_unqualified(self, vocabulary):
        task = make_task("t1", vocabulary, skills=("writing",))
        worker = make_worker("w1", vocabulary, skills=("survey",))
        assert expected_gain(worker, task) == 0.0

    def test_new_worker_optimistic_prior(self, vocabulary):
        task = make_task("t1", vocabulary, reward=1.0)
        assert expected_gain(make_worker("w1", vocabulary), task) == 1.0

    def test_worker_value_discounts_unqualified(self, vocabulary):
        task = make_task("t1", vocabulary, skills=("writing",), reward=1.0)
        worker = make_worker("w1", vocabulary, skills=("survey",))
        assert worker_value(worker, task) == pytest.approx(0.25)


class TestRequesterCentric:
    def test_best_workers_get_best_tasks(self, instance):
        result = RequesterCentricAssigner().assign(instance, random.Random(0))
        allocation = {p.task_id: p.worker_id for p in result.pairs}
        assert allocation["t1"] == "w1"  # top reward -> top reliability
        assert allocation["t2"] == "w2"

    def test_unreliable_workers_starved_with_capacity(self, vocabulary):
        # 2 workers, capacity 2, 4 tasks: reliable worker takes them all
        # up to capacity; the rest go to the unreliable one.
        workers = (
            make_worker("w1", vocabulary, computed={"acceptance_ratio": 0.9}),
            make_worker("w2", vocabulary, computed={"acceptance_ratio": 0.1}),
        )
        tasks = tuple(
            make_task(f"t{i}", vocabulary, reward=0.5) for i in range(4)
        )
        instance = AssignmentInstance(workers=workers, tasks=tasks, capacity=2)
        result = RequesterCentricAssigner().assign(instance, random.Random(0))
        assert result.task_count("w1") == 2
        assert result.task_count("w2") == 2


class TestWorkerCentric:
    def test_egalitarian_task_counts(self, instance):
        result = WorkerCentricAssigner().assign(instance, random.Random(0))
        counts = sorted(result.task_count(w.worker_id)
                        for w in instance.workers)
        # 3 tasks over 4 workers: three get one, one gets none.
        assert counts == [0, 1, 1, 1]


class TestRoundRobin:
    def test_balanced_allocation(self, vocabulary):
        workers = tuple(make_worker(f"w{i}", vocabulary) for i in range(3))
        tasks = tuple(make_task(f"t{i}", vocabulary) for i in range(6))
        instance = AssignmentInstance(workers=workers, tasks=tasks, capacity=10)
        result = RoundRobinAssigner().assign(instance, random.Random(0))
        counts = [result.task_count(w.worker_id) for w in workers]
        assert counts == [2, 2, 2]


class TestHungarian:
    def test_requester_objective_is_optimal(self, instance):
        greedy = RequesterCentricAssigner().assign(instance, random.Random(0))
        optimal = HungarianAssigner().assign(instance, random.Random(0))
        assert optimal.requester_gain >= greedy.requester_gain - 1e-9

    def test_worker_objective_maximizes_surplus(self, instance):
        worker_side = HungarianAssigner(objective="worker").assign(
            instance, random.Random(0)
        )
        requester_side = HungarianAssigner().assign(instance, random.Random(0))
        assert worker_side.worker_surplus >= requester_side.worker_surplus - 1e-9

    def test_invalid_objective(self):
        with pytest.raises(ValueError):
            HungarianAssigner(objective="nobody")

    def test_respects_redundancy(self, vocabulary):
        workers = tuple(make_worker(f"w{i}", vocabulary) for i in range(3))
        tasks = (make_task("t1", vocabulary, reward=0.5),)
        instance = AssignmentInstance(
            workers=workers, tasks=tasks, tasks_need={"t1": 2}
        )
        result = HungarianAssigner().assign(instance, random.Random(0))
        assert len(result.by_task().get("t1", [])) == 2


class TestBudgetOptimal:
    def test_redundancy_respected(self, vocabulary):
        workers = tuple(make_worker(f"w{i}", vocabulary) for i in range(5))
        tasks = tuple(make_task(f"t{i}", vocabulary) for i in range(4))
        instance = AssignmentInstance(
            workers=workers, tasks=tasks, capacity=4,
            tasks_need={t.task_id: 3 for t in tasks},
        )
        result = BudgetOptimalAssigner(redundancy=3).assign(
            instance, random.Random(0)
        )
        by_task = result.by_task()
        assert all(len(v) == 3 for v in by_task.values())
        # Loads approximately regular: within 1 of each other.
        counts = [result.task_count(w.worker_id) for w in workers]
        assert max(counts) - min(counts) <= 1

    def test_instance_need_caps_redundancy(self, vocabulary):
        workers = tuple(make_worker(f"w{i}", vocabulary) for i in range(5))
        tasks = (make_task("t1", vocabulary),)
        instance = AssignmentInstance(workers=workers, tasks=tasks)
        result = BudgetOptimalAssigner(redundancy=3).assign(
            instance, random.Random(0)
        )
        assert len(result.pairs) == 1  # need defaults to 1

    def test_invalid_redundancy(self):
        with pytest.raises(AssignmentError):
            BudgetOptimalAssigner(redundancy=0)

    def test_redundancy_for_reliability(self):
        k = redundancy_for_reliability(0.8, 0.05)
        assert k % 2 == 1
        assert k >= 3
        # Better workers need fewer votes.
        assert redundancy_for_reliability(0.95, 0.05) <= k

    def test_redundancy_bounds_validated(self):
        with pytest.raises(AssignmentError):
            redundancy_for_reliability(0.5, 0.05)
        with pytest.raises(AssignmentError):
            redundancy_for_reliability(0.8, 0.0)


class TestOnlineGreedy:
    def test_assigns_best_available(self, instance):
        result = OnlineGreedyAssigner(shuffle_arrivals=False).assign(
            instance, random.Random(0)
        )
        validate_result(instance, result)
        # First arriving task (t1) gets the best worker.
        assert result.by_task()["t1"] == ["w1"]

    def test_skips_zero_gain(self, vocabulary):
        workers = (make_worker("w1", vocabulary, skills=("survey",)),)
        tasks = (make_task("t1", vocabulary, skills=("writing",)),)
        instance = AssignmentInstance(workers=workers, tasks=tasks)
        result = OnlineGreedyAssigner().assign(instance, random.Random(0))
        assert result.pairs == ()


class TestSelfAppointment:
    def test_everything_claimed_when_capacity_allows(self, instance):
        result = SelfAppointmentAssigner().assign(instance, random.Random(0))
        assert len(result.pairs) == 3  # all tasks claimed

    def test_pick_probability_validation(self):
        with pytest.raises(ValueError):
            SelfAppointmentAssigner(pick_probability=1.5)

    def test_zero_pick_probability_assigns_nothing(self, instance):
        result = SelfAppointmentAssigner(pick_probability=0.0).assign(
            instance, random.Random(0)
        )
        assert result.pairs == ()
