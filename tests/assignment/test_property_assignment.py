"""Property-based tests: every assigner is feasible on random instances."""

import random

from hypothesis import given, settings, strategies as st

from repro.assignment import (
    AdaptiveAssigner,
    AssignmentInstance,
    BudgetOptimalAssigner,
    EpsilonFairAssigner,
    FairnessConstrainedAssigner,
    HungarianAssigner,
    OnlineGreedyAssigner,
    RequesterCentricAssigner,
    RoundRobinAssigner,
    SelfAppointmentAssigner,
    WorkerCentricAssigner,
)
from repro.assignment.base import result_totals, validate_result
from repro.workloads.skills import standard_vocabulary

from tests.conftest import make_task, make_worker

_VOCABULARY = standard_vocabulary()
_SKILL_CHOICES = [(), ("survey",), ("survey", "data_entry"), ("translation",)]


@st.composite
def instances(draw):
    n_workers = draw(st.integers(0, 8))
    n_tasks = draw(st.integers(0, 8))
    capacity = draw(st.integers(1, 3))
    workers = tuple(
        make_worker(
            f"w{i}", _VOCABULARY,
            skills=draw(st.sampled_from(_SKILL_CHOICES[1:])),
            declared={"group": draw(st.sampled_from(["blue", "green"]))},
            computed={"acceptance_ratio": draw(st.floats(0.0, 1.0))},
        )
        for i in range(n_workers)
    )
    tasks = tuple(
        make_task(
            f"t{i}", _VOCABULARY,
            skills=draw(st.sampled_from(_SKILL_CHOICES)),
            reward=draw(st.floats(0.01, 1.0)),
        )
        for i in range(n_tasks)
    )
    needs = {
        task.task_id: draw(st.integers(1, 3)) for task in tasks
    }
    return AssignmentInstance(
        workers=workers, tasks=tasks, capacity=capacity, tasks_need=needs
    )


_ASSIGNERS = [
    AdaptiveAssigner(),
    SelfAppointmentAssigner(),
    RequesterCentricAssigner(),
    WorkerCentricAssigner(),
    RoundRobinAssigner(),
    HungarianAssigner(),
    BudgetOptimalAssigner(redundancy=2),
    OnlineGreedyAssigner(),
    FairnessConstrainedAssigner("group", epsilon=0.1),
    EpsilonFairAssigner(epsilon=0.5),
]


@settings(max_examples=25, deadline=None)
@given(instance=instances(), seed=st.integers(0, 100))
def test_all_assigners_produce_feasible_results(instance, seed):
    """Capacity, redundancy, id validity, and pair uniqueness hold for
    every algorithm on arbitrary instances."""
    for assigner in _ASSIGNERS:
        result = assigner.assign(instance, random.Random(seed))
        validate_result(instance, result)


@settings(max_examples=25, deadline=None)
@given(instance=instances(), seed=st.integers(0, 100))
def test_reported_totals_match_recomputation(instance, seed):
    """requester_gain/worker_surplus reported by assigners equal the
    totals recomputed from their pairs."""
    for assigner in _ASSIGNERS:
        result = assigner.assign(instance, random.Random(seed))
        gain, surplus = result_totals(instance, result.pairs)
        assert abs(result.requester_gain - gain) < 1e-9
        assert abs(result.worker_surplus - surplus) < 1e-9


@settings(max_examples=15, deadline=None)
@given(instance=instances())
def test_hungarian_dominates_greedy(instance):
    """The exact matching never achieves less gain than greedy.

    The flow solver quantizes pair values to 1e-6; allow that slack
    per greedy pair.
    """
    greedy = RequesterCentricAssigner().assign(instance, random.Random(0))
    optimal = HungarianAssigner().assign(instance, random.Random(0))
    slack = len(greedy.pairs) * 1e-6 + 1e-9
    assert optimal.requester_gain >= greedy.requester_gain - slack
