"""Unit + integration tests for the adaptive (Thompson) assigner."""

import random

import pytest

from repro.assignment import AdaptiveAssigner, AssignmentInstance
from repro.assignment.base import validate_result
from repro.core.entities import Requester
from repro.platform.behavior import DiligentBehavior, SpammerBehavior
from repro.platform.market import CrowdsourcingPlatform
from repro.platform.review import QualityThresholdReview
from repro.platform.session import Session, SessionConfig
from repro.workloads.skills import standard_vocabulary
from repro.workloads.tasks import TaskStream, uniform_tasks
from repro.workloads.workers import PopulationSpec, population, worker

from tests.conftest import make_task, make_worker


class TestPosterior:
    def test_prior_mean(self):
        assigner = AdaptiveAssigner(prior_alpha=2.0, prior_beta=2.0)
        assert assigner.posterior_mean("anyone") == pytest.approx(0.5)

    def test_observe_outcome_shifts_mean(self):
        assigner = AdaptiveAssigner()
        for _ in range(8):
            assigner.observe_outcome("good", accepted=True)
            assigner.observe_outcome("bad", accepted=False)
        assert assigner.posterior_mean("good") > 0.8
        assert assigner.posterior_mean("bad") < 0.2

    def test_prior_validated(self):
        with pytest.raises(ValueError):
            AdaptiveAssigner(prior_alpha=0.0)

    def test_observe_trace_incremental(self, vocabulary):
        platform = CrowdsourcingPlatform(
            review_policy=QualityThresholdReview(threshold=0.3), seed=0
        )
        platform.register_requester(Requester(requester_id="r0001"))
        platform.register_worker(make_worker("w1", vocabulary))
        assigner = AdaptiveAssigner()
        platform.post_task(make_task("t1", vocabulary))
        platform.start_work("w1", "t1")
        platform.process_contribution("w1", "t1", DiligentBehavior())
        assert assigner.observe(platform.trace) == 1
        assert assigner.observe(platform.trace) == 0  # nothing new
        platform.post_task(make_task("t2", vocabulary))
        platform.start_work("w1", "t2")
        platform.process_contribution("w1", "t2", DiligentBehavior())
        assert assigner.observe(platform.trace) == 1


class TestAssignment:
    def test_feasible(self, vocabulary):
        workers = tuple(make_worker(f"w{i}", vocabulary) for i in range(4))
        tasks = tuple(make_task(f"t{i}", vocabulary) for i in range(3))
        instance = AssignmentInstance(workers=workers, tasks=tasks, capacity=2)
        result = AdaptiveAssigner().assign(instance, random.Random(0))
        validate_result(instance, result)

    def test_empty(self):
        instance = AssignmentInstance(workers=(), tasks=())
        assert AdaptiveAssigner().assign(instance, random.Random(0)).pairs == ()

    def test_learned_preference(self, vocabulary):
        """After strong evidence, the good worker gets the scarce task."""
        assigner = AdaptiveAssigner()
        for _ in range(30):
            assigner.observe_outcome("good", accepted=True)
            assigner.observe_outcome("bad", accepted=False)
        workers = (make_worker("good", vocabulary), make_worker("bad", vocabulary))
        tasks = (make_task("t1", vocabulary, reward=1.0),)
        instance = AssignmentInstance(workers=workers, tasks=tasks)
        wins = 0
        for seed in range(20):
            result = assigner.assign(instance, random.Random(seed))
            if result.pairs and result.pairs[0].worker_id == "good":
                wins += 1
        assert wins >= 18

    def test_explores_under_uncertainty(self, vocabulary):
        """With no evidence, both workers get the task sometimes."""
        assigner = AdaptiveAssigner()
        workers = (make_worker("a", vocabulary), make_worker("b", vocabulary))
        tasks = (make_task("t1", vocabulary, reward=1.0),)
        instance = AssignmentInstance(workers=workers, tasks=tasks)
        winners = {
            assigner.assign(instance, random.Random(seed)).pairs[0].worker_id
            for seed in range(30)
        }
        assert winners == {"a", "b"}


class TestSessionIntegration:
    def test_adaptive_learns_in_session(self):
        """Across a session with spammers, the adaptive assigner shifts
        allocation toward reliable workers."""
        vocabulary = standard_vocabulary()
        spec = PopulationSpec(
            size=20, seed=4,
            behavior_mix={"diligent": 0.5, "spammer": 0.5},
        )
        workers, behaviors = population(spec, vocabulary)
        assigner = AdaptiveAssigner()
        stream = TaskStream(vocabulary=vocabulary, tasks_per_round=10,
                            skills_per_task=1)
        session = Session(
            config=SessionConfig(
                rounds=12, tasks_per_round=10, seed=4,
                assigner=assigner, base_churn=0.0,
                satisfaction_threshold=0.0,  # nobody leaves: isolate learning
            ),
            workers=workers, behaviors=behaviors,
            requesters=[Requester(requester_id="r0001")],
            task_factory=stream,
        )
        session.run()
        spammer_ids = {w for w, b in behaviors.items() if b.name == "spammer"}
        diligent_ids = set(behaviors) - spammer_ids
        mean_spammer = sum(
            assigner.posterior_mean(w) for w in spammer_ids
        ) / len(spammer_ids)
        mean_diligent = sum(
            assigner.posterior_mean(w) for w in diligent_ids
        ) / len(diligent_ids)
        assert mean_diligent > mean_spammer + 0.2
