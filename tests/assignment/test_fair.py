"""Unit tests for the fairness-by-design assigners."""

import random

import pytest

from repro.assignment import (
    AssignmentInstance,
    EpsilonFairAssigner,
    FairnessConstrainedAssigner,
    RequesterCentricAssigner,
)
from repro.assignment.base import validate_result
from repro.errors import AssignmentError
from repro.metrics.parity import disparate_impact

from tests.conftest import make_task, make_worker


def _biased_instance(vocabulary, n_workers=12, n_tasks=8, capacity=1):
    """Two groups; green has depressed published reliability."""
    workers = []
    for i in range(n_workers):
        group = "blue" if i % 2 == 0 else "green"
        ratio = 0.9 if group == "blue" else 0.4
        workers.append(
            make_worker(
                f"w{i:02d}", vocabulary, declared={"group": group},
                computed={"acceptance_ratio": ratio},
            )
        )
    tasks = tuple(
        make_task(f"t{i:02d}", vocabulary, reward=0.2) for i in range(n_tasks)
    )
    return AssignmentInstance(workers=tuple(workers), tasks=tasks,
                              capacity=capacity)


def _group_rates(instance, result):
    group_of = {w.worker_id: w.declared["group"] for w in instance.workers}
    sizes: dict[str, int] = {}
    totals: dict[str, float] = {}
    for worker in instance.workers:
        group = group_of[worker.worker_id]
        sizes[group] = sizes.get(group, 0) + 1
        totals.setdefault(group, 0.0)
    for pair in result.pairs:
        totals[group_of[pair.worker_id]] += 1
    return {g: totals[g] / sizes[g] for g in sizes}


class TestFairnessConstrained:
    def test_feasible(self, vocabulary):
        instance = _biased_instance(vocabulary)
        result = FairnessConstrainedAssigner("group", epsilon=0.1).assign(
            instance, random.Random(0)
        )
        validate_result(instance, result)

    def test_restores_parity(self, vocabulary):
        instance = _biased_instance(vocabulary)
        rng = random.Random(0)
        unfair = RequesterCentricAssigner().assign(instance, rng)
        fair = FairnessConstrainedAssigner("group", epsilon=0.05).assign(
            instance, random.Random(0)
        )
        unfair_di = disparate_impact(_group_rates(instance, unfair))
        fair_di = disparate_impact(_group_rates(instance, fair))
        assert fair_di > unfair_di
        assert fair_di >= 0.8  # clears the four-fifths rule

    def test_parity_costs_some_gain(self, vocabulary):
        instance = _biased_instance(vocabulary)
        unfair = RequesterCentricAssigner().assign(instance, random.Random(0))
        fair = FairnessConstrainedAssigner("group", epsilon=0.0).assign(
            instance, random.Random(0)
        )
        assert fair.requester_gain <= unfair.requester_gain + 1e-9

    def test_missing_attribute_forms_own_group(self, vocabulary):
        workers = (
            make_worker("w1", vocabulary, declared={"group": "blue"}),
            make_worker("w2", vocabulary),  # no group at all
        )
        tasks = (make_task("t1", vocabulary), make_task("t2", vocabulary))
        instance = AssignmentInstance(workers=workers, tasks=tasks)
        result = FairnessConstrainedAssigner("group", epsilon=0.0).assign(
            instance, random.Random(0)
        )
        validate_result(instance, result)
        assert len(result.pairs) == 2  # both groups served

    def test_epsilon_validated(self):
        with pytest.raises(AssignmentError):
            FairnessConstrainedAssigner("group", epsilon=-0.1)

    def test_empty_instance(self, vocabulary):
        instance = AssignmentInstance(workers=(), tasks=())
        result = FairnessConstrainedAssigner("group").assign(
            instance, random.Random(0)
        )
        assert result.pairs == ()


class TestEpsilonFair:
    def test_feasible_across_epsilons(self, vocabulary):
        instance = _biased_instance(vocabulary)
        for epsilon in (0.0, 0.3, 0.7, 1.0):
            result = EpsilonFairAssigner(epsilon=epsilon).assign(
                instance, random.Random(0)
            )
            validate_result(instance, result)

    def test_epsilon_zero_matches_greedy_gain(self, vocabulary):
        instance = _biased_instance(vocabulary)
        greedy = RequesterCentricAssigner().assign(instance, random.Random(0))
        zero = EpsilonFairAssigner(epsilon=0.0).assign(instance, random.Random(0))
        assert zero.requester_gain == pytest.approx(greedy.requester_gain)

    def test_epsilon_one_is_egalitarian(self, vocabulary):
        instance = _biased_instance(vocabulary, n_workers=8, n_tasks=8)
        result = EpsilonFairAssigner(epsilon=1.0).assign(
            instance, random.Random(0)
        )
        counts = [result.task_count(w.worker_id) for w in instance.workers]
        assert max(counts) - min(counts) <= 1

    def test_gain_monotone_in_epsilon(self, vocabulary):
        instance = _biased_instance(vocabulary)
        gains = [
            EpsilonFairAssigner(epsilon=e)
            .assign(instance, random.Random(0))
            .requester_gain
            for e in (0.0, 0.5, 1.0)
        ]
        assert gains[0] >= gains[1] - 1e-9 >= gains[2] - 2e-9

    def test_epsilon_validated(self):
        with pytest.raises(AssignmentError):
            EpsilonFairAssigner(epsilon=1.5)
