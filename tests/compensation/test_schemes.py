"""Unit tests for compensation schemes."""

import pytest

from repro.compensation import (
    AttributeBiasedScheme,
    DelayedPaymentScheme,
    FixedRewardScheme,
    HourlyFloorScheme,
    PartialCreditScheme,
    QualityBasedScheme,
    WageTheftScheme,
    describe_scheme,
)
from repro.core.entities import Contribution
from repro.errors import CompensationError

from tests.conftest import make_task


@pytest.fixture
def paid_task(vocabulary):
    return make_task("t1", vocabulary, reward=1.0, duration=4)


def _contribution(quality=0.9, worker_id="w1", work_time=4):
    return Contribution("c1", "t1", worker_id, "A", submitted_at=0,
                        quality=quality, work_time=work_time)


class TestFixedReward:
    def test_accepted_full(self, paid_task):
        assert FixedRewardScheme().price(paid_task, _contribution(), True) == 1.0

    def test_rejected_zero(self, paid_task):
        assert FixedRewardScheme().price(paid_task, _contribution(), False) == 0.0


class TestPartialCredit:
    def test_rejected_gets_fraction(self, paid_task):
        scheme = PartialCreditScheme(rejected_fraction=0.25)
        assert scheme.price(paid_task, _contribution(), False) == 0.25
        assert scheme.price(paid_task, _contribution(), True) == 1.0

    def test_fraction_validated(self):
        with pytest.raises(CompensationError):
            PartialCreditScheme(rejected_fraction=1.5)


class TestQualityBased:
    def test_full_quality_full_pay(self, paid_task):
        scheme = QualityBasedScheme()
        assert scheme.price(paid_task, _contribution(quality=0.95), True) == 1.0

    def test_low_quality_floor(self, paid_task):
        scheme = QualityBasedScheme(floor_fraction=0.2)
        assert scheme.price(paid_task, _contribution(quality=0.1), True) == (
            pytest.approx(0.2)
        )

    def test_interpolation_monotone(self, paid_task):
        scheme = QualityBasedScheme()
        prices = [
            scheme.price(paid_task, _contribution(quality=q), True)
            for q in (0.3, 0.5, 0.7, 0.9)
        ]
        assert prices == sorted(prices)
        assert prices[0] < prices[-1]

    def test_rejected_zero(self, paid_task):
        assert QualityBasedScheme().price(
            paid_task, _contribution(quality=0.9), False
        ) == 0.0

    def test_unmeasurable_quality_full_pay(self, paid_task):
        assert QualityBasedScheme().price(
            paid_task, _contribution(quality=None), True
        ) == 1.0

    def test_config_validated(self):
        with pytest.raises(CompensationError):
            QualityBasedScheme(minimum_quality=0.9, full_quality=0.5)
        with pytest.raises(CompensationError):
            QualityBasedScheme(floor_fraction=-0.1)


class TestHourlyFloor:
    def test_tops_up_slow_work(self, paid_task):
        scheme = HourlyFloorScheme(floor_per_tick=0.5)
        # 4 ticks x 0.5 = 2.0 > reward 1.0.
        assert scheme.price(paid_task, _contribution(work_time=4), True) == 2.0

    def test_reward_kept_when_above_floor(self, paid_task):
        scheme = HourlyFloorScheme(floor_per_tick=0.01)
        assert scheme.price(paid_task, _contribution(), True) == 1.0

    def test_rejected_default_zero(self, paid_task):
        scheme = HourlyFloorScheme(floor_per_tick=0.5)
        assert scheme.price(paid_task, _contribution(), False) == 0.0

    def test_pay_rejected_floor(self, paid_task):
        scheme = HourlyFloorScheme(floor_per_tick=0.5, pay_rejected=True)
        assert scheme.price(paid_task, _contribution(work_time=2), False) == 1.0

    def test_missing_work_time_uses_duration(self, paid_task):
        scheme = HourlyFloorScheme(floor_per_tick=0.5)
        assert scheme.price(
            paid_task, _contribution(work_time=None), True
        ) == 2.0

    def test_validation(self):
        with pytest.raises(CompensationError):
            HourlyFloorScheme(floor_per_tick=-1.0)


class TestDiscriminatorySchemes:
    def test_attribute_biased_underpays_target(self, paid_task):
        scheme = AttributeBiasedScheme(
            underpaid_workers=frozenset({"w2"}), bias_fraction=0.5
        )
        fair = scheme.price(paid_task, _contribution(worker_id="w1"), True)
        biased = scheme.price(paid_task, _contribution(worker_id="w2"), True)
        assert fair == 1.0
        assert biased == 0.5

    def test_attribute_biased_validation(self):
        with pytest.raises(CompensationError):
            AttributeBiasedScheme(frozenset(), bias_fraction=2.0)

    def test_wage_theft_sometimes_steals(self, paid_task):
        scheme = WageTheftScheme(theft_probability=0.5, seed=0)
        amounts = [
            scheme.price(paid_task, _contribution(), True) for _ in range(100)
        ]
        assert 0.0 in amounts
        assert 1.0 in amounts

    def test_wage_theft_never_pays_rejected(self, paid_task):
        scheme = WageTheftScheme(theft_probability=0.0, seed=0)
        assert scheme.price(paid_task, _contribution(), False) == 0.0

    def test_wage_theft_extremes(self, paid_task):
        always = WageTheftScheme(theft_probability=1.0, seed=0)
        never = WageTheftScheme(theft_probability=0.0, seed=0)
        assert always.price(paid_task, _contribution(), True) == 0.0
        assert never.price(paid_task, _contribution(), True) == 1.0

    def test_delayed_payment_amount_unchanged(self, paid_task):
        scheme = DelayedPaymentScheme(delay_ticks=50)
        assert scheme.price(paid_task, _contribution(), True) == 1.0
        assert scheme.delay_ticks == 50
        with pytest.raises(CompensationError):
            DelayedPaymentScheme(delay_ticks=-1)


class TestDescribe:
    def test_describe_scheme(self):
        text = describe_scheme(FixedRewardScheme())
        assert text.startswith("fixed_reward:")
        assert "reward" in text.lower()
