"""Unit tests for bonus policies."""

import random

import pytest

from repro.compensation.bonus import RenegingBonusPolicy, SteadfastBonusPolicy
from repro.errors import CompensationError


class TestSteadfast:
    def test_promise_on_streak(self):
        policy = SteadfastBonusPolicy(streak=5, amount=0.5)
        assert policy.promise_amount(5) == 0.5
        assert policy.promise_amount(10) == 0.5
        assert policy.promise_amount(4) is None
        assert policy.promise_amount(0) is None

    def test_always_honours(self):
        policy = SteadfastBonusPolicy()
        assert all(policy.honours_promise(random.Random(i)) for i in range(20))

    def test_validation(self):
        with pytest.raises(CompensationError):
            SteadfastBonusPolicy(streak=0)
        with pytest.raises(CompensationError):
            SteadfastBonusPolicy(amount=0.0)


class TestReneging:
    def test_same_promises_as_steadfast(self):
        reneging = RenegingBonusPolicy(streak=3, amount=0.2)
        assert reneging.promise_amount(3) == 0.2
        assert reneging.promise_amount(2) is None

    def test_sometimes_reneges(self):
        policy = RenegingBonusPolicy(honour_probability=0.3)
        outcomes = [policy.honours_promise(random.Random(i)) for i in range(100)]
        honoured = sum(outcomes)
        assert 10 < honoured < 60  # around 30%

    def test_extremes(self):
        never = RenegingBonusPolicy(honour_probability=0.0)
        always = RenegingBonusPolicy(honour_probability=1.0)
        assert not never.honours_promise(random.Random(0))
        assert always.honours_promise(random.Random(0))

    def test_validation(self):
        with pytest.raises(CompensationError):
            RenegingBonusPolicy(honour_probability=1.5)
