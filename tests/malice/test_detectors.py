"""Unit tests for malice detectors and their evaluation harness."""

import pytest

from repro.core.entities import Contribution
from repro.core.events import ContributionSubmitted, TaskPosted, WorkerRegistered
from repro.core.trace import PlatformTrace
from repro.malice import (
    AgreementDetector,
    DetectionOutcome,
    EnsembleDetector,
    GoldStandardDetector,
    TimingDetector,
    evaluate_detector,
    flag_workers,
    majority_answers,
)

from tests.conftest import make_task, make_worker


def _trace_with_answers(vocabulary, answers, gold="A", duration=4,
                        work_times=None):
    """``answers[worker_id]`` is the list of payloads over tasks t1..tn."""
    n_tasks = max(len(v) for v in answers.values())
    trace = PlatformTrace()
    for worker_id in answers:
        trace.append(
            WorkerRegistered(time=0, worker=make_worker(worker_id, vocabulary))
        )
    for i in range(n_tasks):
        trace.append(
            TaskPosted(
                time=0,
                task=make_task(f"t{i+1}", vocabulary, gold_answer=gold,
                               duration=duration),
            )
        )
    counter = 0
    for worker_id, payloads in answers.items():
        for i, payload in enumerate(payloads):
            counter += 1
            work_time = (work_times or {}).get(worker_id, duration)
            trace.append(
                ContributionSubmitted(
                    time=1,
                    contribution=Contribution(
                        f"c{counter}", f"t{i+1}", worker_id, payload,
                        submitted_at=1, work_time=work_time,
                    ),
                )
            )
    return trace


class TestGoldStandard:
    def test_scores_error_rates(self, vocabulary):
        trace = _trace_with_answers(
            vocabulary,
            {"honest": ["A"] * 5, "spam": ["B"] * 5},
        )
        scores = GoldStandardDetector(min_gold=3).score_workers(trace)
        assert scores["honest"] == 0.0
        assert scores["spam"] == 1.0

    def test_min_gold_gate(self, vocabulary):
        trace = _trace_with_answers(vocabulary, {"w": ["B", "B"]})
        scores = GoldStandardDetector(min_gold=3).score_workers(trace)
        assert "w" not in scores

    def test_ignores_tasks_without_gold(self, vocabulary):
        trace = _trace_with_answers(vocabulary, {"w": ["B"] * 5}, gold=None)
        assert GoldStandardDetector().score_workers(trace) == {}


class TestAgreement:
    def test_majority_answers(self, vocabulary):
        trace = _trace_with_answers(
            vocabulary,
            {"w1": ["A"], "w2": ["A"], "w3": ["B"]},
        )
        assert majority_answers(trace) == {"t1": "A"}

    def test_tie_has_no_majority(self, vocabulary):
        trace = _trace_with_answers(vocabulary, {"w1": ["A"], "w2": ["B"]})
        assert majority_answers(trace) == {}

    def test_single_answer_no_majority(self, vocabulary):
        trace = _trace_with_answers(vocabulary, {"w1": ["A"]})
        assert majority_answers(trace) == {}

    def test_scores_disagreement(self, vocabulary):
        answers = {
            "w1": ["A", "A", "A", "A"],
            "w2": ["A", "A", "A", "A"],
            "spam": ["B", "C", "B", "D"],
        }
        scores = AgreementDetector(min_answers=3).score_workers(
            _trace_with_answers(vocabulary, answers)
        )
        assert scores["spam"] == 1.0
        assert scores["w1"] == 0.0

    def test_list_payloads_hashable(self, vocabulary):
        answers = {"w1": [["x", "y"]], "w2": [["x", "y"]], "w3": [["y", "x"]]}
        trace = _trace_with_answers(vocabulary, answers)
        assert majority_answers(trace) == {"t1": ("x", "y")}

    def test_float_payloads_bucketed(self, vocabulary):
        answers = {"w1": [10.01], "w2": [10.02], "w3": [99.0]}
        trace = _trace_with_answers(vocabulary, answers)
        assert majority_answers(trace)["t1"] == 10.0


class TestTiming:
    def test_fast_workers_flagged(self, vocabulary):
        trace = _trace_with_answers(
            vocabulary,
            {"fast": ["A"] * 4, "slow": ["A"] * 4},
            duration=4,
            work_times={"fast": 1, "slow": 4},
        )
        scores = TimingDetector(min_answers=3).score_workers(trace)
        assert scores["fast"] == 1.0
        assert scores["slow"] == 0.0

    def test_short_tasks_carry_no_signal(self, vocabulary):
        trace = _trace_with_answers(
            vocabulary, {"w": ["A"] * 4}, duration=1, work_times={"w": 1}
        )
        assert TimingDetector().score_workers(trace) == {}

    def test_config_validated(self):
        with pytest.raises(ValueError):
            TimingDetector(fast_fraction=0.0)


class TestEnsemble:
    def test_combines_members(self, vocabulary):
        trace = _trace_with_answers(
            vocabulary,
            {"honest": ["A"] * 5, "spam": ["B"] * 5, "w3": ["A"] * 5},
            duration=4,
            work_times={"honest": 4, "spam": 1, "w3": 4},
        )
        scores = EnsembleDetector().score_workers(trace)
        assert scores["spam"] > scores["honest"]
        assert scores["spam"] >= 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            EnsembleDetector(members=())
        with pytest.raises(ValueError):
            EnsembleDetector(members=((GoldStandardDetector(), 0.0),))


class TestEvaluation:
    def test_flag_workers_threshold(self, vocabulary):
        trace = _trace_with_answers(
            vocabulary, {"honest": ["A"] * 5, "spam": ["B"] * 5}
        )
        detector = GoldStandardDetector(min_gold=3)
        assert flag_workers(detector, trace, threshold=0.5) == {"spam"}
        with pytest.raises(ValueError):
            flag_workers(detector, trace, threshold=2.0)

    def test_evaluate_detector_confusion(self, vocabulary):
        trace = _trace_with_answers(
            vocabulary,
            {"honest": ["A"] * 5, "spam": ["B"] * 5, "sneaky": ["A"] * 5},
        )
        outcome = evaluate_detector(
            GoldStandardDetector(min_gold=3), trace,
            ground_truth_malicious={"spam", "sneaky"},
        )
        assert outcome.true_positives == 1   # spam caught
        assert outcome.false_negatives == 1  # sneaky missed
        assert outcome.true_negatives == 1   # honest cleared
        assert outcome.false_positives == 0
        assert outcome.precision == 1.0
        assert outcome.recall == 0.5
        assert 0.0 < outcome.f1 < 1.0
        assert outcome.accuracy == pytest.approx(2 / 3)

    def test_outcome_degenerate_cases(self):
        empty = DetectionOutcome("d", 0, 0, 0, 0)
        assert empty.precision == 1.0
        assert empty.recall == 1.0
        assert empty.f1 == 1.0
        assert empty.accuracy == 1.0
        all_wrong = DetectionOutcome("d", 0, 1, 1, 0)
        assert all_wrong.f1 == 0.0
