"""Unit + property tests for inequality indexes."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.metrics.inequality import atkinson_index, gini_coefficient, theil_index

values_strategy = st.lists(st.floats(0.0, 1000.0), min_size=1, max_size=30)


class TestGini:
    def test_perfect_equality(self):
        assert gini_coefficient([5.0, 5.0, 5.0]) == pytest.approx(0.0)

    def test_total_concentration(self):
        # One person has everything: gini -> (n-1)/n.
        assert gini_coefficient([0.0, 0.0, 0.0, 12.0]) == pytest.approx(0.75)

    def test_known_value(self):
        assert gini_coefficient([1.0, 3.0]) == pytest.approx(0.25)

    def test_degenerate(self):
        assert gini_coefficient([]) == 0.0
        assert gini_coefficient([0.0, 0.0]) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            gini_coefficient([-1.0])

    @given(values_strategy)
    def test_bounded(self, values):
        assert 0.0 <= gini_coefficient(values) <= 1.0

    @given(values_strategy, st.floats(0.1, 10.0))
    def test_scale_invariant(self, values, scale):
        base = gini_coefficient(values)
        scaled = gini_coefficient([v * scale for v in values])
        assert scaled == pytest.approx(base, abs=1e-9)

    @given(values_strategy)
    def test_permutation_invariant(self, values):
        assert gini_coefficient(values) == pytest.approx(
            gini_coefficient(sorted(values, reverse=True))
        )


class TestAtkinson:
    def test_equality(self):
        assert atkinson_index([2.0, 2.0]) == pytest.approx(0.0)

    def test_inequality_positive(self):
        assert atkinson_index([1.0, 9.0]) > 0.0

    def test_epsilon_one_geometric(self):
        values = [1.0, 4.0]
        expected = 1.0 - math.sqrt(4.0) / 2.5
        assert atkinson_index(values, epsilon=1.0) == pytest.approx(expected)

    def test_epsilon_one_with_zero(self):
        assert atkinson_index([0.0, 4.0], epsilon=1.0) == 1.0

    def test_degenerate(self):
        assert atkinson_index([]) == 0.0
        assert atkinson_index([0.0]) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            atkinson_index([1.0], epsilon=0.0)
        with pytest.raises(ValueError):
            atkinson_index([-1.0])

    @given(values_strategy, st.floats(0.1, 1.0))
    def test_bounded(self, values, epsilon):
        assert 0.0 <= atkinson_index(values, epsilon) <= 1.0 + 1e-9


class TestTheil:
    def test_equality(self):
        assert theil_index([3.0, 3.0, 3.0]) == pytest.approx(0.0)

    def test_max_concentration(self):
        # One of n has everything: T = log(n).
        assert theil_index([0.0, 0.0, 9.0]) == pytest.approx(math.log(3))

    def test_degenerate(self):
        assert theil_index([]) == 0.0
        assert theil_index([0.0]) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            theil_index([-1.0])

    @given(values_strategy)
    def test_non_negative_and_bounded(self, values):
        index = theil_index(values)
        assert -1e-12 <= index <= math.log(len(values)) + 1e-9
