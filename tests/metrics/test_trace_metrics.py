"""Unit tests for quality, retention, parity, and earnings metrics."""

import pytest

from repro.core.entities import Contribution
from repro.core.events import (
    AssignmentMade,
    ContributionReviewed,
    ContributionSubmitted,
    PaymentIssued,
    TaskPosted,
    TasksShown,
    WorkerDeparted,
    WorkerRegistered,
)
from repro.core.trace import PlatformTrace
from repro.metrics.earnings import (
    effective_hourly_wages,
    requester_utility,
    total_platform_volume,
    worker_earnings,
)
from repro.metrics.parity import (
    disparate_impact,
    exposure_by_group,
    statistical_parity_difference,
)
from repro.metrics.quality import (
    accuracy_against_gold,
    mean_quality,
    quality_by_group,
    quality_by_worker,
)
from repro.metrics.retention import dropout_reasons, retention_rate, survival_curve

from tests.conftest import make_task, make_worker


@pytest.fixture
def rich_trace(vocabulary):
    """Two groups, one task each, one departure, payments recorded."""
    trace = PlatformTrace()
    blue = make_worker("w1", vocabulary, declared={"group": "blue"})
    green = make_worker("w2", vocabulary, declared={"group": "green"})
    trace.append(WorkerRegistered(time=0, worker=blue))
    trace.append(WorkerRegistered(time=0, worker=green))
    task = make_task("t1", vocabulary, reward=0.4, gold_answer="A")
    trace.append(TaskPosted(time=0, task=task))
    trace.append(TasksShown(time=0, worker_id="w1", task_ids=frozenset({"t1"})))
    trace.append(TasksShown(time=0, worker_id="w2", task_ids=frozenset({"t1"})))
    trace.append(AssignmentMade(time=1, worker_id="w1", task_id="t1"))
    trace.append(AssignmentMade(time=1, worker_id="w2", task_id="t1"))
    contributions = [
        Contribution("c1", "t1", "w1", "A", submitted_at=2, quality=0.9,
                     work_time=2),
        Contribution("c2", "t1", "w2", "B", submitted_at=2, quality=0.5,
                     work_time=4),
    ]
    for contribution in contributions:
        trace.append(ContributionSubmitted(time=2, contribution=contribution))
    trace.append(
        ContributionReviewed(time=3, contribution_id="c1", task_id="t1",
                             worker_id="w1", accepted=True, feedback="ok")
    )
    trace.append(
        ContributionReviewed(time=3, contribution_id="c2", task_id="t1",
                             worker_id="w2", accepted=False, feedback="bad")
    )
    trace.append(
        PaymentIssued(time=4, worker_id="w1", task_id="t1",
                      contribution_id="c1", amount=0.4)
    )
    trace.append(WorkerDeparted(time=10, worker_id="w2", reason="dissatisfied"))
    return trace


class TestQualityMetrics:
    def test_mean_quality(self, rich_trace):
        assert mean_quality(rich_trace) == pytest.approx(0.7)
        assert mean_quality(PlatformTrace()) == 0.0

    def test_accuracy_against_gold(self, rich_trace):
        assert accuracy_against_gold(rich_trace) == pytest.approx(0.5)
        assert accuracy_against_gold(PlatformTrace()) == 1.0

    def test_quality_by_worker(self, rich_trace):
        per_worker = quality_by_worker(rich_trace)
        assert per_worker["w1"] == pytest.approx(0.9)
        assert per_worker["w2"] == pytest.approx(0.5)

    def test_quality_by_group(self, rich_trace):
        per_group = quality_by_group(rich_trace)
        assert per_group["blue"] == pytest.approx(0.9)
        assert per_group["green"] == pytest.approx(0.5)


class TestRetentionMetrics:
    def test_retention_rate(self, rich_trace):
        assert retention_rate(rich_trace) == pytest.approx(0.5)
        assert retention_rate(PlatformTrace()) == 1.0

    def test_survival_curve_decreasing(self, rich_trace):
        curve = survival_curve(rich_trace, buckets=5)
        assert len(curve) == 5
        assert curve[0] == 1.0
        assert curve[-1] == pytest.approx(0.5)
        assert all(a >= b for a, b in zip(curve, curve[1:]))

    def test_survival_curve_validation(self, rich_trace):
        with pytest.raises(ValueError):
            survival_curve(rich_trace, buckets=0)

    def test_dropout_reasons(self, rich_trace):
        assert dropout_reasons(rich_trace) == {"dissatisfied": 1}


class TestParityMetrics:
    def test_exposure_by_group(self, rich_trace):
        exposures = exposure_by_group(rich_trace)
        assert exposures["blue"].workers == 1
        assert exposures["blue"].tasks_shown == 1
        assert exposures["blue"].tasks_assigned == 1
        assert exposures["blue"].total_paid == pytest.approx(0.4)
        assert exposures["green"].total_paid == 0.0
        assert exposures["blue"].paid_per_worker == pytest.approx(0.4)

    def test_disparate_impact(self):
        assert disparate_impact({"a": 2.0, "b": 1.0}) == 0.5
        assert disparate_impact({"a": 1.0, "b": 1.0}) == 1.0
        assert disparate_impact({"a": 1.0}) == 1.0
        assert disparate_impact({"a": 0.0, "b": 0.0}) == 1.0
        with pytest.raises(ValueError):
            disparate_impact({"a": -1.0, "b": 1.0})

    def test_statistical_parity_difference(self):
        assert statistical_parity_difference({"a": 0.8, "b": 0.3}) == (
            pytest.approx(0.5)
        )
        assert statistical_parity_difference({"a": 1.0}) == 0.0


class TestEarningsMetrics:
    def test_worker_earnings(self, rich_trace):
        assert worker_earnings(rich_trace) == {"w1": pytest.approx(0.4)}

    def test_effective_hourly_wages(self, rich_trace):
        wages = effective_hourly_wages(rich_trace)
        assert wages["w1"] == pytest.approx(0.2)  # 0.4 over 2 ticks
        assert wages["w2"] == 0.0                 # worked 4 ticks, unpaid

    def test_requester_utility(self, rich_trace):
        utility = requester_utility(rich_trace)
        # Accepted: 0.9 quality x 0.4 reward - 0.4 paid; rejected: -0.
        assert utility["r0001"] == pytest.approx(0.9 * 0.4 - 0.4)

    def test_total_platform_volume(self, rich_trace):
        assert total_platform_volume(rich_trace) == pytest.approx(0.4)
