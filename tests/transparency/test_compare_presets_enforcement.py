"""Unit tests for policy comparison, presets, and enforcement."""

import pytest

from repro.core.axiom_transparency import (
    PlatformTransparency,
    RequesterTransparency,
)
from repro.core.entities import Requester
from repro.core.events import DisclosureShown
from repro.platform.behavior import DiligentBehavior
from repro.platform.market import CrowdsourcingPlatform
from repro.platform.review import QualityThresholdReview
from repro.transparency.compare import compare_policies
from repro.transparency.enforcement import PolicyEnforcer
from repro.transparency.parser import parse_policy
from repro.transparency.policy import TransparencyPolicy
from repro.transparency.presets import PRESETS, all_presets, preset

from tests.conftest import make_task, make_worker


class TestCompare:
    def test_identical_policies(self):
        diff = compare_policies(preset("amt_basic"), preset("amt_basic"))
        assert diff.identical
        assert diff.right_is_superset
        assert diff.coverage_gap == 0.0

    def test_turkopticon_strict_superset_of_amt(self):
        diff = compare_policies(preset("amt_basic"), preset("amt_turkopticon"))
        assert diff.right_is_superset
        assert not diff.identical
        assert diff.coverage_gap > 0
        assert len(diff.shared) == 3

    def test_summary_lines(self):
        diff = compare_policies(preset("amt_basic"), preset("crowdflower"))
        text = "\n".join(diff.summary_lines())
        assert "amt_basic" in text and "crowdflower" in text
        assert "only in" in text

    def test_summary_for_identical(self):
        diff = compare_policies(preset("opaque"), preset("opaque"))
        assert any("identical" in line for line in diff.summary_lines())


class TestPresets:
    def test_all_presets_parse_and_validate(self):
        policies = all_presets()
        assert set(policies) == set(PRESETS)

    def test_unknown_preset(self):
        with pytest.raises(ValueError, match="unknown preset"):
            preset("utopia")

    def test_coverage_ordering(self):
        # The E2 premise: presets span the disclosure spectrum.
        coverage = {name: preset(name).mandated_coverage() for name in PRESETS}
        assert coverage["opaque"] == 0.0
        assert coverage["full"] == 1.0
        assert coverage["amt_basic"] <= coverage["amt_turkopticon"]

    def test_presets_round_trip(self):
        for name in PRESETS:
            policy = preset(name)
            assert parse_policy(policy.to_source()) == policy.ast


class TestEnforcement:
    def _platform_with_history(self, vocabulary):
        platform = CrowdsourcingPlatform(
            review_policy=QualityThresholdReview(threshold=0.3), seed=0
        )
        platform.register_requester(
            Requester(
                requester_id="r0001", name="acme", hourly_wage=6.0,
                payment_delay=5, recruitment_criteria="any",
                rejection_criteria="quality",
            )
        )
        platform.register_worker(make_worker("w0001", vocabulary))
        platform.post_task(make_task("t1", vocabulary))
        platform.start_work("w0001", "t1")
        platform.process_contribution("w0001", "t1", DiligentBehavior())
        return platform

    def test_full_policy_satisfies_axioms_6_and_7(self, vocabulary):
        platform = self._platform_with_history(vocabulary)
        enforcer = PolicyEnforcer(preset("full"))
        enforcer.apply_round(platform)
        assert RequesterTransparency().check(platform.trace).passed
        assert PlatformTransparency().check(platform.trace).passed

    def test_opaque_policy_fails_axioms(self, vocabulary):
        platform = self._platform_with_history(vocabulary)
        PolicyEnforcer(preset("opaque")).apply_round(platform)
        assert not RequesterTransparency().check(platform.trace).passed
        assert not PlatformTransparency().check(platform.trace).passed

    def test_coverage_property(self):
        assert PolicyEnforcer(preset("full")).coverage == 1.0
        assert PolicyEnforcer(preset("opaque")).coverage == 0.0

    def test_no_duplicate_disclosures_across_rounds(self, vocabulary):
        platform = self._platform_with_history(vocabulary)
        enforcer = PolicyEnforcer(preset("full"))
        enforcer.apply_round(platform)
        first_count = len(platform.trace.of_kind(DisclosureShown))
        enforcer.apply_round(platform)
        assert len(platform.trace.of_kind(DisclosureShown)) == first_count

    def test_changed_values_redisclosed(self, vocabulary):
        platform = self._platform_with_history(vocabulary)
        enforcer = PolicyEnforcer(preset("full"))
        enforcer.apply_round(platform)
        before = len(platform.trace.of_kind(DisclosureShown))
        # More work changes the worker's computed attributes...
        platform.post_task(make_task("t2", vocabulary))
        platform.start_work("w0001", "t2")
        platform.process_contribution("w0001", "t2", DiligentBehavior())
        enforcer.apply_round(platform)
        # ...so their new values are disclosed again.
        assert len(platform.trace.of_kind(DisclosureShown)) > before

    def test_enforcer_name(self):
        assert "full" in PolicyEnforcer(preset("full")).name
