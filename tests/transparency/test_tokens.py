"""Unit tests for the DSL lexer."""

import pytest

from repro.errors import PolicySyntaxError
from repro.transparency.tokens import Token, TokenType, tokenize


def _types(source):
    return [t.type for t in tokenize(source)]


class TestTokenize:
    def test_keywords(self):
        assert _types("policy disclose to when") == [
            TokenType.POLICY, TokenType.DISCLOSE, TokenType.TO,
            TokenType.WHEN, TokenType.EOF,
        ]

    def test_punctuation(self):
        assert _types("{ } . ;") == [
            TokenType.LBRACE, TokenType.RBRACE, TokenType.DOT,
            TokenType.SEMICOLON, TokenType.EOF,
        ]

    def test_operators(self):
        tokens = tokenize(">= <= > < == !=")
        ops = [t.value for t in tokens if t.type is TokenType.OP]
        assert ops == [">=", "<=", ">", "<", "==", "!="]

    def test_string_literal(self):
        token = tokenize('"hello world"')[0]
        assert token.type is TokenType.STRING
        assert token.value == "hello world"

    def test_unterminated_string(self):
        with pytest.raises(PolicySyntaxError, match="unterminated"):
            tokenize('"oops')

    def test_multiline_string_rejected(self):
        with pytest.raises(PolicySyntaxError, match="multiple lines"):
            tokenize('"a\nb"')

    def test_numbers(self):
        tokens = tokenize("3 3.5 -2")
        values = [t.value for t in tokens if t.type is TokenType.NUMBER]
        assert values == [3, 3.5, -2]
        assert isinstance(values[0], int)
        assert isinstance(values[1], float)

    def test_malformed_number(self):
        with pytest.raises(PolicySyntaxError, match="malformed number"):
            tokenize("1.2.3")

    def test_booleans(self):
        tokens = tokenize("true false")
        values = [t.value for t in tokens if t.type is TokenType.BOOLEAN]
        assert values == [True, False]

    def test_identifiers(self):
        tokens = tokenize("hourly_wage worker")
        assert tokens[0].type is TokenType.IDENT
        assert tokens[0].value == "hourly_wage"

    def test_comments_skipped(self):
        assert _types("# a comment\npolicy") == [
            TokenType.POLICY, TokenType.EOF
        ]

    def test_positions_tracked(self):
        tokens = tokenize("policy\n  disclose")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_unexpected_character(self):
        with pytest.raises(PolicySyntaxError, match="unexpected character"):
            tokenize("policy @")

    def test_error_carries_position(self):
        try:
            tokenize("policy\n   @")
        except PolicySyntaxError as error:
            assert error.line == 2
            assert error.column == 4
        else:
            pytest.fail("expected PolicySyntaxError")

    def test_repr_readable(self):
        token = tokenize("policy")[0]
        assert "POLICY" in repr(token)
