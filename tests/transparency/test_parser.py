"""Unit tests for the DSL parser."""

import pytest

from repro.errors import PolicySyntaxError
from repro.transparency.ast_nodes import Audience, Comparison, Subject
from repro.transparency.parser import parse_policy


class TestParsePolicy:
    def test_empty_policy(self):
        policy = parse_policy('policy "empty" {}')
        assert policy.name == "empty"
        assert policy.rules == ()

    def test_single_rule(self):
        policy = parse_policy(
            'policy "p" { disclose requester.hourly_wage to workers; }'
        )
        rule = policy.rules[0]
        assert rule.field.subject is Subject.REQUESTER
        assert rule.field.field == "hourly_wage"
        assert rule.audience is Audience.WORKERS
        assert rule.condition is None

    def test_rule_with_condition(self):
        policy = parse_policy(
            'policy "p" { disclose requester.rating to workers '
            'when requester.rating >= 3.5; }'
        )
        condition = policy.rules[0].condition
        assert condition.op is Comparison.GE
        assert condition.literal == 3.5
        assert condition.field.field == "rating"

    def test_string_and_boolean_literals(self):
        policy = parse_policy(
            'policy "p" {\n'
            '  disclose task.reward to workers when task.kind == "label";\n'
            '  disclose requester.name to public '
            'when requester.identity_verified == true;\n'
            '}'
        )
        assert policy.rules[0].condition.literal == "label"
        assert policy.rules[1].condition.literal is True

    def test_multiple_rules_preserved_in_order(self):
        policy = parse_policy(
            'policy "p" {\n'
            '  disclose task.reward to workers;\n'
            '  disclose worker.acceptance_ratio to self;\n'
            '}'
        )
        assert [str(r.field) for r in policy.rules] == [
            "task.reward", "worker.acceptance_ratio"
        ]

    def test_comments_allowed(self):
        policy = parse_policy(
            'policy "p" {\n'
            '  # explains the next rule\n'
            '  disclose task.reward to workers;\n'
            '}'
        )
        assert len(policy.rules) == 1


class TestSyntaxErrors:
    @pytest.mark.parametrize(
        "source, message",
        [
            ('disclose task.reward to workers;', "'policy'"),
            ('policy p {}', "policy name string"),
            ('policy "p" disclose', "'{'"),
            ('policy "p" { disclose task to workers; }', "'.'"),
            ('policy "p" { disclose task.reward workers; }', "'to'"),
            ('policy "p" { disclose task.reward to workers }', "';'"),
            ('policy "p" { disclose galaxy.reward to workers; }',
             "unknown subject"),
            ('policy "p" { disclose task.reward to martians; }',
             "unknown audience"),
            ('policy "p" { disclose task.reward to workers '
             'when task.reward >= ; }', "expected a literal"),
            ('policy "p" {', "unexpected end of input"),
            ('policy "p" {} policy "q" {}', "trailing input"),
        ],
    )
    def test_error_messages(self, source, message):
        with pytest.raises(PolicySyntaxError, match=message):
            parse_policy(source)

    def test_error_position(self):
        try:
            parse_policy('policy "p" {\n  disclose task.reward workers;\n}')
        except PolicySyntaxError as error:
            assert error.line == 2
        else:
            pytest.fail("expected PolicySyntaxError")


class TestRoundTrip:
    def test_str_reparses_identically(self):
        source = (
            'policy "round" {\n'
            '  disclose requester.hourly_wage to workers;\n'
            '  disclose worker.acceptance_ratio to self '
            'when worker.tasks_completed >= 10;\n'
            '  disclose task.reward to public when task.kind == "label";\n'
            '}'
        )
        policy = parse_policy(source)
        assert parse_policy(str(policy)) == policy
