"""Edge-case coverage for the DSL toolchain."""

import pytest

from repro.transparency.ast_nodes import Comparison
from repro.transparency.evaluator import PolicyEvaluator
from repro.transparency.policy import TransparencyPolicy
from repro.transparency.render import render_rule


def _policy(body: str) -> TransparencyPolicy:
    return TransparencyPolicy.from_source(f'policy "p" {{ {body} }}')


class TestComparisonSemantics:
    def test_mixed_type_ordering_is_false(self):
        assert not Comparison.GE.apply("abc", 1)
        assert not Comparison.LT.apply(None, 5)

    def test_equality_across_types(self):
        assert Comparison.NE.apply("1", 1)
        assert not Comparison.EQ.apply("1", 1)

    def test_numeric_comparisons(self):
        assert Comparison.GT.apply(2, 1.5)
        assert Comparison.LE.apply(1, 1)


class TestPlatformConditions:
    def test_condition_on_platform_stat(self):
        policy = _policy(
            "disclose platform.estimated_hourly_wage to workers "
            "when platform.active_workers >= 10;"
        )
        few = PolicyEvaluator(
            policy,
            platform_stats={"estimated_hourly_wage": 5.0, "active_workers": 3},
        )
        many = PolicyEvaluator(
            policy,
            platform_stats={"estimated_hourly_wage": 5.0,
                            "active_workers": 50},
        )
        assert few.disclosures_for_platform() == []
        assert len(many.disclosures_for_platform()) == 1

    def test_string_condition_on_platform(self):
        policy = _policy(
            'disclose platform.fee_structure to public '
            'when platform.fee_structure != "";'
        )
        evaluator = PolicyEvaluator(
            policy, platform_stats={"fee_structure": "20%"}
        )
        assert len(evaluator.disclosures_for_platform()) == 1


class TestRenderEdgeCases:
    def test_cross_subject_condition_phrase(self):
        policy = _policy(
            "disclose task.reward to workers "
            "when requester.rating >= 3.5;"
        )
        text = render_rule(policy.ast.rules[0])
        assert "requester" in text
        assert "3.5" in text

    def test_platform_condition_phrase(self):
        policy = _policy(
            "disclose platform.estimated_hourly_wage to workers "
            "when platform.active_workers > 100;"
        )
        text = render_rule(policy.ast.rules[0])
        assert "the platform's active worker count" in text
        assert "is above 100" in text

    def test_boolean_literal_phrase(self):
        policy = _policy(
            "disclose requester.name to workers "
            "when requester.identity_verified == true;"
        )
        text = render_rule(policy.ast.rules[0])
        assert "true" in text

    def test_string_literal_phrase(self):
        policy = _policy(
            'disclose task.reward to workers when task.kind == "label";'
        )
        text = render_rule(policy.ast.rules[0])
        assert '"label"' in text
