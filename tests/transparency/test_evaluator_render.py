"""Unit tests for policy evaluation and human-readable rendering."""

import pytest

from repro.core.attributes import ComputedAttributes
from repro.core.entities import Requester
from repro.transparency.ast_nodes import Audience
from repro.transparency.evaluator import PolicyEvaluator
from repro.transparency.policy import TransparencyPolicy
from repro.transparency.render import render_policy, render_rule

from tests.conftest import make_task, make_worker


@pytest.fixture
def requester_full():
    return Requester(
        requester_id="r0001", name="acme", hourly_wage=6.0, payment_delay=5,
        recruitment_criteria="any", rejection_criteria="quality", rating=4.0,
    )


def _policy(body: str) -> TransparencyPolicy:
    return TransparencyPolicy.from_source(f'policy "p" {{ {body} }}')


class TestEvaluator:
    def test_requester_disclosures(self, requester_full):
        policy = _policy("disclose requester.hourly_wage to workers;")
        disclosures = PolicyEvaluator(policy).disclosures_for_requester(
            requester_full
        )
        assert len(disclosures) == 1
        assert disclosures[0].subject == "requester:r0001"
        assert disclosures[0].value == 6.0
        assert disclosures[0].audience is Audience.WORKERS

    def test_condition_filters(self, requester_full):
        policy = _policy(
            "disclose requester.rating to workers when requester.rating >= 4.5;"
        )
        assert PolicyEvaluator(policy).disclosures_for_requester(
            requester_full
        ) == []
        passing = _policy(
            "disclose requester.rating to workers when requester.rating >= 3.0;"
        )
        assert len(
            PolicyEvaluator(passing).disclosures_for_requester(requester_full)
        ) == 1

    def test_missing_value_not_disclosed(self):
        sparse = Requester(requester_id="r0002")  # no wage declared
        policy = _policy("disclose requester.hourly_wage to workers;")
        assert PolicyEvaluator(policy).disclosures_for_requester(sparse) == []

    def test_condition_on_missing_value_fails_closed(self):
        sparse = Requester(requester_id="r0002", hourly_wage=6.0)
        policy = _policy(
            "disclose requester.hourly_wage to workers "
            "when requester.rating >= 1.0;"
        )
        assert PolicyEvaluator(policy).disclosures_for_requester(sparse) == []

    def test_worker_self_disclosure(self, vocabulary):
        worker = make_worker("w1", vocabulary).with_computed(
            ComputedAttributes.from_history(3, 4, 5)
        )
        policy = _policy("disclose worker.acceptance_ratio to self;")
        disclosures = PolicyEvaluator(policy).disclosures_for_worker(worker)
        assert disclosures[0].audience_worker_id == "w1"
        assert disclosures[0].value == pytest.approx(0.75)

    def test_worker_declared_fallback(self, vocabulary):
        worker = make_worker("w1", vocabulary, declared={"location": "us"})
        policy = _policy("disclose worker.location to requesters;")
        disclosures = PolicyEvaluator(policy).disclosures_for_worker(worker)
        assert disclosures[0].value == "us"
        assert disclosures[0].audience_worker_id == ""

    def test_task_disclosures(self, vocabulary):
        task = make_task("t1", vocabulary, reward=0.3)
        policy = _policy("disclose task.reward to workers;")
        disclosures = PolicyEvaluator(policy).disclosures_for_task(task)
        assert disclosures[0].subject == "task:t1"
        assert disclosures[0].value == 0.3

    def test_platform_disclosures(self):
        policy = _policy("disclose platform.fee_structure to public;")
        evaluator = PolicyEvaluator(
            policy, platform_stats={"fee_structure": "20%"}
        )
        disclosures = evaluator.disclosures_for_platform()
        assert disclosures[0].subject == "platform"
        assert disclosures[0].value == "20%"

    def test_platform_missing_stat(self):
        policy = _policy("disclose platform.fee_structure to public;")
        assert PolicyEvaluator(policy).disclosures_for_platform() == []

    def test_evaluate_all(self, vocabulary, requester_full):
        policy = _policy(
            "disclose requester.hourly_wage to workers;"
            "disclose task.reward to workers;"
        )
        task = make_task("t1", vocabulary)
        disclosures = PolicyEvaluator(policy).evaluate(
            requesters=[requester_full], workers=[], tasks=[task]
        )
        assert len(disclosures) == 2


class TestRender:
    def test_simple_rule(self):
        policy = _policy("disclose requester.hourly_wage to workers;")
        text = render_rule(policy.ast.rules[0])
        assert text == "Workers can see each requester's hourly wage."

    def test_self_rule(self):
        policy = _policy("disclose worker.acceptance_ratio to self;")
        text = render_rule(policy.ast.rules[0])
        assert text == "You can see your own acceptance ratio."

    def test_conditional_rule(self):
        policy = _policy(
            "disclose worker.mean_quality to self "
            "when worker.tasks_completed >= 10;"
        )
        text = render_rule(policy.ast.rules[0])
        assert "once your completed task count is at least 10" in text

    def test_public_rule(self):
        policy = _policy("disclose platform.fee_structure to public;")
        text = render_rule(policy.ast.rules[0])
        assert text.startswith("Anyone can see the platform's fee structure")

    def test_render_policy_lists_all_rules(self):
        policy = _policy(
            "disclose task.reward to workers;"
            "disclose requester.rating to workers;"
        )
        text = render_policy(policy.ast)
        assert text.count("\n") == 2
        assert "reward" in text and "rating" in text

    def test_render_empty_policy(self):
        policy = _policy("")
        assert "discloses nothing" in render_policy(policy.ast)
