"""Unit tests for semantic validation and the TransparencyPolicy facade."""

import pytest

from repro.errors import PolicySemanticsError
from repro.transparency.ast_nodes import Subject
from repro.transparency.parser import parse_policy
from repro.transparency.policy import TransparencyPolicy
from repro.transparency.semantics import DisclosureSchema, validate_policy


def _validate(body: str) -> None:
    validate_policy(parse_policy(f'policy "p" {{ {body} }}'))


class TestValidatePolicy:
    def test_valid_rules_pass(self):
        _validate("disclose requester.hourly_wage to workers;")
        _validate("disclose worker.acceptance_ratio to self;")
        _validate("disclose platform.fee_structure to public;")

    def test_unknown_field_rejected(self):
        with pytest.raises(PolicySemanticsError, match="unknown field"):
            _validate("disclose requester.shoe_size to workers;")

    def test_self_invalid_for_task(self):
        with pytest.raises(PolicySemanticsError, match="invalid for subject"):
            _validate("disclose task.reward to self;")

    def test_self_invalid_for_platform(self):
        with pytest.raises(PolicySemanticsError, match="invalid for subject"):
            _validate("disclose platform.fee_structure to self;")

    def test_duplicate_unconditional_rule_rejected(self):
        with pytest.raises(PolicySemanticsError, match="duplicate"):
            _validate(
                "disclose task.reward to workers;"
                "disclose task.reward to workers;"
            )

    def test_same_field_different_audience_allowed(self):
        _validate(
            "disclose task.reward to workers;"
            "disclose task.reward to public;"
        )

    def test_condition_unknown_field(self):
        with pytest.raises(PolicySemanticsError, match="unknown field"):
            _validate(
                "disclose task.reward to workers when task.mystery >= 1;"
            )

    def test_condition_type_mismatch(self):
        with pytest.raises(PolicySemanticsError, match="str literal"):
            _validate(
                'disclose task.reward to workers when task.reward >= "high";'
            )

    def test_condition_boolean_literal_for_number(self):
        with pytest.raises(PolicySemanticsError, match="boolean literal"):
            _validate(
                "disclose task.reward to workers when task.reward == true;"
            )

    def test_ordering_on_string_field_rejected(self):
        with pytest.raises(PolicySemanticsError, match="ordering comparison"):
            _validate(
                'disclose task.reward to workers when task.kind >= "a";'
            )

    def test_equality_on_string_field_allowed(self):
        _validate('disclose task.reward to workers when task.kind == "label";')


class TestDisclosureSchema:
    def test_total_field_count(self):
        schema = DisclosureSchema()
        assert schema.total_field_count() == sum(
            len(schema.all_fields(subject)) for subject in Subject
        )

    def test_custom_schema(self):
        schema = DisclosureSchema(
            fields={Subject.TASK: {"reward": "number"}}
        )
        policy = parse_policy('policy "p" { disclose task.reward to workers; }')
        validate_policy(policy, schema)
        bad = parse_policy('policy "p" { disclose worker.location to self; }')
        with pytest.raises(PolicySemanticsError):
            validate_policy(bad, schema)


class TestTransparencyPolicy:
    def test_from_source_validates(self):
        with pytest.raises(PolicySemanticsError):
            TransparencyPolicy.from_source(
                'policy "p" { disclose requester.shoe_size to workers; }'
            )

    def test_round_trip(self):
        source = (
            'policy "p" {\n'
            '  disclose requester.hourly_wage to workers;\n'
            '}'
        )
        policy = TransparencyPolicy.from_source(source)
        again = TransparencyPolicy.from_source(policy.to_source())
        assert again.ast == policy.ast

    def test_mandated_coverage_full(self):
        from repro.transparency.presets import preset

        assert preset("full").mandated_coverage() == 1.0
        assert preset("opaque").mandated_coverage() == 0.0

    def test_requester_disclosure_to_requesters_does_not_count(self):
        policy = TransparencyPolicy.from_source(
            'policy "p" { disclose requester.hourly_wage to requesters; }'
        )
        assert policy.mandated_coverage() == 0.0

    def test_worker_self_disclosure_counts(self):
        policy = TransparencyPolicy.from_source(
            'policy "p" { disclose worker.acceptance_ratio to self; }'
        )
        assert policy.mandated_coverage() == pytest.approx(1 / 6)

    def test_missing_mandated_fields(self):
        policy = TransparencyPolicy.from_source(
            'policy "p" { disclose requester.hourly_wage to workers; }'
        )
        missing = policy.missing_mandated_fields()
        assert "hourly_wage" not in missing["requester"]
        assert "payment_delay" in missing["requester"]
        assert missing["worker"] == ["acceptance_ratio", "tasks_completed"]

    def test_schema_coverage(self):
        from repro.transparency.presets import preset

        assert 0.0 < preset("amt_basic").schema_coverage() < 1.0
        assert preset("opaque").schema_coverage() == 0.0

    def test_rule_count_and_name(self):
        from repro.transparency.presets import preset

        policy = preset("amt_basic")
        assert policy.name == "amt_basic"
        assert policy.rule_count == 3
