"""Unit tests for declarative fairness rules and audit contracts."""

import pytest

from repro.core.audit import AuditEngine
from repro.errors import AuditError, PolicySemanticsError, PolicySyntaxError
from repro.transparency import (
    AuditContract,
    Comparison,
    FairnessRequirement,
    TransparencyPolicy,
    parse_policy,
    render_policy,
)
from repro.transparency.render import render_requirement
from repro.workloads.scenarios import clean_scenario, survey_cancellation_scenario


def _policy(body: str) -> TransparencyPolicy:
    return TransparencyPolicy.from_source(f'policy "p" {{ {body} }}')


class TestRequirementParsing:
    def test_basic_requirement(self):
        policy = parse_policy(
            'policy "p" { require axiom 3 score >= 0.95; }'
        )
        requirement = policy.requirements[0]
        assert requirement.axiom_id == 3
        assert requirement.op is Comparison.GE
        assert requirement.threshold == 0.95

    def test_mixed_with_rules(self):
        policy = parse_policy(
            'policy "p" {\n'
            '  disclose task.reward to workers;\n'
            '  require axiom 5 score >= 1.0;\n'
            '  disclose requester.rating to workers;\n'
            '}'
        )
        assert len(policy.rules) == 2
        assert len(policy.requirements) == 1

    def test_round_trip(self):
        source = (
            'policy "p" {\n'
            '  disclose task.reward to workers;\n'
            '  require axiom 1 score >= 0.9;\n'
            '}'
        )
        policy = parse_policy(source)
        assert parse_policy(str(policy)) == policy

    @pytest.mark.parametrize(
        "body, message",
        [
            ("require theorem 3 score >= 1;", "expected 'axiom'"),
            ("require axiom 3.5 score >= 1;", "integer"),
            ("require axiom 3 quality >= 1;", "expected 'score'"),
            ("require axiom 3 score 1;", "comparison operator"),
            ("require axiom 3 score >= ;", "threshold number"),
        ],
    )
    def test_syntax_errors(self, body, message):
        with pytest.raises(PolicySyntaxError, match=message):
            parse_policy(f'policy "p" {{ {body} }}')


class TestRequirementSemantics:
    def test_valid(self):
        _policy("require axiom 1 score >= 0.9;")

    def test_unknown_axiom(self):
        with pytest.raises(PolicySemanticsError, match="1-7"):
            _policy("require axiom 9 score >= 0.9;")

    def test_invalid_threshold(self):
        with pytest.raises(PolicySemanticsError, match="threshold"):
            _policy("require axiom 1 score >= 1.5;")

    def test_non_floor_comparison(self):
        with pytest.raises(PolicySemanticsError, match="floor"):
            _policy("require axiom 1 score <= 0.9;")

    def test_duplicate_axiom(self):
        with pytest.raises(PolicySemanticsError, match="duplicate"):
            _policy(
                "require axiom 1 score >= 0.9;"
                "require axiom 1 score >= 0.5;"
            )


class TestRequirementRendering:
    def test_render_requirement(self):
        requirement = FairnessRequirement(3, Comparison.GE, 0.95)
        text = render_requirement(requirement)
        assert "equal pay for similar contributions" in text
        assert "0.95" in text

    def test_policy_rendering_includes_commitments(self):
        policy = _policy(
            "disclose task.reward to workers;"
            "require axiom 5 score >= 1.0;"
        )
        text = render_policy(policy.ast)
        assert "commits to these fairness rules" in text
        assert "no interruption of started work" in text


class TestAuditContract:
    @pytest.fixture(scope="class")
    def reports(self):
        engine = AuditEngine()
        return {
            "clean": engine.audit(clean_scenario().trace),
            "interrupted": engine.audit(survey_cancellation_scenario().trace),
        }

    def test_honoured_contract(self, reports):
        contract = AuditContract(_policy("require axiom 5 score >= 1.0;"))
        outcome = contract.evaluate(reports["clean"])
        assert outcome.honoured
        assert not outcome.breaches

    def test_breached_contract(self, reports):
        contract = AuditContract(_policy("require axiom 5 score >= 1.0;"))
        outcome = contract.evaluate(reports["interrupted"])
        assert not outcome.honoured
        assert outcome.breaches[0].axiom_id == 5
        assert outcome.breaches[0].actual_score < 1.0

    def test_summary_lines(self, reports):
        contract = AuditContract(
            _policy("require axiom 3 score >= 0.9;"
                    "require axiom 5 score >= 1.0;")
        )
        lines = contract.evaluate(reports["interrupted"]).summary_lines()
        assert "BREACHED" in lines[0]
        assert any("[OK]" in line for line in lines)
        assert any("[BREACH]" in line for line in lines)

    def test_missing_axiom_in_report(self, reports):
        from repro.core.axioms import AxiomRegistry
        from repro.core.axiom_completion import WorkerFairnessInCompletion

        narrow = AuditEngine(
            registry=AxiomRegistry().register(WorkerFairnessInCompletion())
        )
        report = narrow.audit(clean_scenario().trace)
        contract = AuditContract(_policy("require axiom 3 score >= 0.9;"))
        with pytest.raises(AuditError, match="no result for axiom 3"):
            contract.evaluate(report)

    def test_contract_with_no_requirements_vacuous(self, reports):
        contract = AuditContract(_policy("disclose task.reward to workers;"))
        outcome = contract.evaluate(reports["interrupted"])
        assert outcome.honoured
        assert outcome.verdicts == ()
