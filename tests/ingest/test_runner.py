"""Unit tests for the cadenced ingest runner and its resume path."""

import pytest

from repro.core.audit import AuditEngine
from repro.core.store import PersistentTraceStore, SQLiteTraceStore
from repro.core.trace import PlatformTrace
from repro.errors import CheckpointError, IngestError
from repro.ingest import (
    IngestRunner,
    JSONLExportSource,
    checkpoint_path_for,
    export_jsonl,
    read_checkpoint,
)
from repro.workloads.scenarios import clean_scenario, unequal_pay_scenario


@pytest.fixture(scope="module")
def events():
    return list(clean_scenario().trace)


@pytest.fixture()
def export(tmp_path, events):
    return export_jsonl(events, tmp_path / "export.jsonl")


def _runner(export, store, **kwargs):
    return IngestRunner(JSONLExportSource(export), store, **kwargs)


class FakeClock:
    """A monotonic clock the test advances by hand."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestIngestLoop:
    def test_ingests_everything_into_memory(self, export, events):
        runner = _runner(export, PlatformTrace(), batch_events=19)
        summary = runner.run(idle_limit=1)
        assert summary.events == len(events)
        assert summary.store_revision == len(events)
        assert summary.stopped_on == "idle"
        assert list(runner.trace) == events

    @pytest.mark.parametrize("backend", ["sqlite", "persistent"])
    def test_ingests_into_disk_backends(
        self, tmp_path, export, events, backend
    ):
        if backend == "sqlite":
            store = SQLiteTraceStore.create(tmp_path / "dest.db")
        else:
            store = PersistentTraceStore.create(tmp_path / "dest-log")
        runner = _runner(export, store, batch_events=40)
        runner.run(idle_limit=1)
        store.close()
        reopened = (
            SQLiteTraceStore.open(tmp_path / "dest.db")
            if backend == "sqlite"
            else PersistentTraceStore.open(tmp_path / "dest-log")
        )
        assert list(reopened.events) == events
        reopened.close()

    def test_max_batches_stops_early(self, export, events):
        runner = _runner(export, PlatformTrace(), batch_events=25)
        summary = runner.run(max_batches=2)
        assert summary.batches == 2
        assert summary.events == 50
        assert summary.stopped_on == "max_batches"

    def test_batch_reports_and_on_batch(self, export, events):
        seen = []
        runner = _runner(export, PlatformTrace(), batch_events=60)
        runner.run(idle_limit=1, on_batch=seen.append)
        assert [batch.index for batch in seen] == [0, 1, 2]
        assert [batch.events for batch in seen] == [60, 60, 43]
        assert seen[-1].store_revision == len(events)

    def test_interval_sleeps_between_polls(self, export):
        naps = []
        runner = _runner(
            export, PlatformTrace(), batch_events=50,
            interval=0.25, sleep=naps.append, clock=lambda: 0.0,
        )
        runner.run(idle_limit=1)
        assert naps and all(nap == 0.25 for nap in naps)

    def test_interval_is_a_rate_not_a_gap(self, export):
        """A batch that consumes part of the interval only sleeps the
        remainder; a batch slower than the interval sleeps not at all
        (regression: the runner used to nap a full interval on top of
        every batch, stretching the cadence)."""
        fake = FakeClock()
        naps = []
        # Each step costs 0.1s of fake time; interval targets 0.25s.
        source = JSONLExportSource(export)
        original_poll = source.poll

        def slow_poll(limit):
            fake.advance(0.1)
            return original_poll(limit)

        source.poll = slow_poll
        runner = IngestRunner(
            source, PlatformTrace(), batch_events=50,
            interval=0.25, sleep=naps.append, clock=fake,
        )
        runner.run(idle_limit=1)
        assert naps and all(abs(nap - 0.15) < 1e-9 for nap in naps)

        # Slower than the interval: no nap at all, next poll immediate.
        fake2 = FakeClock()
        naps2 = []
        source2 = JSONLExportSource(export)
        original_poll2 = source2.poll

        def very_slow_poll(limit):
            fake2.advance(0.4)
            return original_poll2(limit)

        source2.poll = very_slow_poll
        runner2 = IngestRunner(
            source2, PlatformTrace(), batch_events=50,
            interval=0.25, sleep=naps2.append, clock=fake2,
        )
        runner2.run(idle_limit=1)
        assert naps2 == []

    def test_idle_polls_also_honour_the_rate(self, export):
        """Empty polls sleep the remaining interval too — the tail
        posture keeps one poll per interval, busy or idle."""
        fake = FakeClock()
        naps = []
        runner = _runner(
            export, PlatformTrace(), batch_events=10_000,
            interval=0.5, sleep=naps.append, clock=fake,
        )
        runner.run(idle_limit=3)
        # One non-empty batch + two idle polls sleep a full interval
        # each (instantaneous on the fake clock); the third idle poll
        # trips the limit and stops without napping.
        assert naps == [0.5, 0.5, 0.5]

    def test_audit_reports_match_fresh_batch_audit(self, export):
        engine = AuditEngine()
        boundary_checks = []

        def check(batch):
            boundary_checks.append(
                batch.report == engine.audit(runner.trace)
            )

        runner = _runner(
            export, PlatformTrace(), batch_events=35, audit=True
        )
        runner.run(idle_limit=1, on_batch=check)
        assert boundary_checks and all(boundary_checks)

    def test_new_violations_surface_once(self, tmp_path):
        trace = unequal_pay_scenario().trace
        export = export_jsonl(trace, tmp_path / "pay.jsonl")
        batches = []
        runner = _runner(
            export, PlatformTrace(), batch_events=len(trace), audit=True
        )
        runner.run(idle_limit=1, on_batch=batches.append)
        (batch,) = batches
        # First audited batch: everything the report holds is new.
        assert batch.new_violations == batch.report.violations
        assert batch.report.total_violations > 0

    def test_stats_cadence(self, export):
        batches = []
        runner = _runner(
            export, PlatformTrace(), batch_events=30, stats_cadence=2
        )
        runner.run(idle_limit=1, on_batch=batches.append)
        with_stats = [b.index for b in batches if b.stats is not None]
        assert with_stats == [0, 2, 4]
        assert batches[0].stats.events == 30

    def test_validation(self, export):
        with pytest.raises(IngestError, match="batch_events"):
            _runner(export, PlatformTrace(), batch_events=0)
        with pytest.raises(IngestError, match="stats_cadence"):
            _runner(export, PlatformTrace(), stats_cadence=-1)
        with pytest.raises(IngestError, match="interval"):
            _runner(export, PlatformTrace(), interval=-0.5)
        runner = _runner(export, PlatformTrace())
        with pytest.raises(IngestError, match="max_batches"):
            runner.run(max_batches=0)
        with pytest.raises(IngestError, match="idle_limit"):
            runner.run(idle_limit=0)


class TestCheckpointedResume:
    def test_checkpoint_written_after_every_batch(
        self, tmp_path, export, events
    ):
        path = tmp_path / "dest.checkpoint"
        runner = _runner(
            export, PlatformTrace(), checkpoint_path=str(path),
            batch_events=50,
        )
        runner.run(max_batches=1)
        first = read_checkpoint(path)
        assert first.dest_revision == 50 and first.batches == 1
        runner.run(max_batches=1)
        second = read_checkpoint(path)
        assert second.dest_revision == 100 and second.batches == 2
        assert second.source_info["kind"] == "jsonl"

    def test_resume_continues_exactly(self, tmp_path, export, events):
        path = str(tmp_path / "dest.checkpoint")
        store = PlatformTrace()
        _runner(
            export, store, checkpoint_path=path, batch_events=45
        ).run(max_batches=2)
        resumed = IngestRunner.resume(
            JSONLExportSource(export), store, path, batch_events=45
        )
        assert resumed.batches_completed == 2
        summary = resumed.run(idle_limit=1)
        assert summary.events == len(events) - 90
        assert list(store) == events

    def test_resume_reconciles_store_ahead_of_checkpoint(
        self, tmp_path, export, events
    ):
        """Killed after a batch append but before its checkpoint: the
        store is ahead; resume must skip the already-stored records."""
        path = str(tmp_path / "dest.checkpoint")
        store = PlatformTrace()
        runner = _runner(
            export, store, checkpoint_path=path, batch_events=40
        )
        runner.run(max_batches=2)  # checkpoint at 80
        orphan = JSONLExportSource(export)
        orphan.seek(read_checkpoint(path).source_position)
        store.append_batch(orphan.poll(40))  # the un-checkpointed batch
        resumed = IngestRunner.resume(
            JSONLExportSource(export), store, path, batch_events=40
        )
        resumed.run(idle_limit=1)
        assert list(store) == events  # no duplicates, no gaps

    def test_resume_does_not_re_report_old_violations_as_new(
        self, tmp_path
    ):
        """The delta session is baselined on the already-ingested trace
        at resume, so kill/resume cycles never duplicate alerts."""
        trace = unequal_pay_scenario().trace
        export = export_jsonl(trace, tmp_path / "pay.jsonl")
        path = str(tmp_path / "dest.checkpoint")
        store = PlatformTrace()
        first = _runner(
            export, store, checkpoint_path=path, batch_events=30,
            audit=True,
        )
        seen_before = []
        first.run(max_batches=1, on_batch=seen_before.append)
        assert seen_before[0].report.total_violations > 0
        resumed = IngestRunner.resume(
            JSONLExportSource(export), store, path,
            batch_events=30, audit=True,
        )
        seen_after = []
        resumed.run(idle_limit=1, on_batch=seen_after.append)
        surviving = [
            violation
            for violation in seen_before[0].report.violations
            if violation in seen_after[0].report.violations
        ]
        # Violations that were already reported before the kill and
        # still hold afterwards must not resurface as "new".
        assert all(
            violation not in seen_after[0].new_violations
            for violation in surviving
        )

    def test_resume_refuses_store_behind_checkpoint(
        self, tmp_path, export
    ):
        path = str(tmp_path / "dest.checkpoint")
        _runner(
            export, PlatformTrace(), checkpoint_path=path, batch_events=40
        ).run(max_batches=2)
        with pytest.raises(CheckpointError, match="truncated or this is"):
            IngestRunner.resume(
                JSONLExportSource(export), PlatformTrace(), path
            )

    def test_resume_refuses_different_source(
        self, tmp_path, export, events
    ):
        path = str(tmp_path / "dest.checkpoint")
        store = PlatformTrace()
        _runner(
            export, store, checkpoint_path=path, batch_events=40
        ).run(max_batches=1)
        other = export_jsonl(events, tmp_path / "other-export.jsonl")
        with pytest.raises(CheckpointError, match="different export"):
            IngestRunner.resume(JSONLExportSource(other), store, path)

    def test_resume_refuses_missing_or_garbled_checkpoint(
        self, tmp_path, export
    ):
        source = JSONLExportSource(export)
        with pytest.raises(CheckpointError, match="no ingest checkpoint"):
            IngestRunner.resume(
                source, PlatformTrace(), str(tmp_path / "none.checkpoint")
            )
        garbled = tmp_path / "garbled.checkpoint"
        garbled.write_text('{"format_version": 1, "source')
        with pytest.raises(CheckpointError, match="half-written"):
            IngestRunner.resume(source, PlatformTrace(), str(garbled))

    def test_resume_refuses_when_source_cannot_cover_excess(
        self, tmp_path, export, events
    ):
        path = str(tmp_path / "dest.checkpoint")
        store = PlatformTrace()
        _runner(
            export, store, checkpoint_path=path, batch_events=len(events)
        ).run(max_batches=1)  # everything ingested, checkpoint current
        # Store grows past what the source can explain.
        bigger = PlatformTrace(events)
        from repro.core.events import WorkerDeparted

        bigger.append(
            WorkerDeparted(
                time=events[-1].time, worker_id="w0001", reason="left"
            )
        )
        with pytest.raises(CheckpointError, match="ahead of"):
            IngestRunner.resume(JSONLExportSource(export), bigger, path)


class TestShardedAuditJobs:
    def test_sharded_audit_reports_match_fresh_batch_audit(self, export):
        """audit_jobs=N fans each batch's audit across N partitions;
        every boundary report must still equal a fresh batch audit."""
        engine = AuditEngine()
        boundary_checks = []

        def check(batch):
            boundary_checks.append(
                batch.report == engine.audit(runner.trace)
            )

        runner = _runner(
            export, PlatformTrace(), batch_events=35,
            audit=True, audit_jobs=4,
        )
        try:
            runner.run(idle_limit=1, on_batch=check)
        finally:
            runner.close()
        assert boundary_checks and all(boundary_checks)

    def test_sharded_equals_unsharded_ingest_audit(self, export, events):
        """The whole cadence — batches, reports, new-violation deltas —
        is identical for any audit_jobs."""
        def run_with(jobs):
            batches = []
            runner = _runner(
                export, PlatformTrace(), batch_events=40,
                audit=True, audit_jobs=jobs,
            )
            try:
                runner.run(idle_limit=1, on_batch=batches.append)
            finally:
                runner.close()
            return batches

        unsharded = run_with(1)
        sharded = run_with(4)
        assert [b.report for b in sharded] == [b.report for b in unsharded]
        assert [b.new_violations for b in sharded] == [
            b.new_violations for b in unsharded
        ]

    def test_resume_with_audit_jobs(self, tmp_path, export, events):
        """The resume baseline audit runs through the sharded session
        too — kill/resume with audit_jobs drops and duplicates
        nothing."""
        path = str(tmp_path / "dest.checkpoint")
        store = PlatformTrace()
        first = _runner(
            export, store, checkpoint_path=path, batch_events=45,
            audit=True, audit_jobs=3,
        )
        first.run(max_batches=2)
        first.close()
        resumed = IngestRunner.resume(
            JSONLExportSource(export), store, path,
            batch_events=45, audit=True, audit_jobs=3,
        )
        try:
            summary = resumed.run(idle_limit=1)
        finally:
            resumed.close()
        assert list(store) == events
        assert summary.report == AuditEngine().audit(store)

    def test_validation_and_close_without_audit(self, export):
        with pytest.raises(IngestError, match="audit_jobs"):
            _runner(export, PlatformTrace(), audit_jobs=0)
        runner = _runner(export, PlatformTrace())
        runner.close()  # no audit session: still a safe no-op


class TestResumeVerify:
    """resume(verify=True): deep-verify the destination before any
    new event lands on top of it (CLI coverage lives in
    tests/forensics/test_cli_forensics.py)."""

    def _tail_two_batches(self, tmp_path, export):
        dest = str(tmp_path / "dest.db")
        ckpt = dest + ".ckpt"
        store = SQLiteTraceStore.create(dest)
        runner = IngestRunner(
            JSONLExportSource(export), store, checkpoint_path=ckpt,
            batch_events=40,
        )
        runner.run(max_batches=2)
        store.close()
        return dest, ckpt

    def test_healthy_destination_resumes(self, tmp_path, export, events):
        dest, ckpt = self._tail_two_batches(tmp_path, export)
        store = SQLiteTraceStore.open(dest)
        resumed = IngestRunner.resume(
            JSONLExportSource(export), store, ckpt,
            batch_events=40, verify=True,
        )
        summary = resumed.run(idle_limit=1)
        assert list(store) == events
        assert summary.stopped_on == "idle"
        store.close()

    def test_damaged_destination_is_refused(self, tmp_path, export):
        import sqlite3

        dest, ckpt = self._tail_two_batches(tmp_path, export)
        # Quietly lose entity-index rows: every payload still decodes,
        # so the store opens fine — only the deep sweep notices.
        conn = sqlite3.connect(dest)
        conn.execute(
            "DELETE FROM event_entities WHERE seq = "
            "(SELECT MIN(seq) FROM event_entities)"
        )
        conn.commit()
        conn.close()
        store = SQLiteTraceStore.open(dest)
        try:
            with pytest.raises(IngestError, match="DAMAGED"):
                IngestRunner.resume(
                    JSONLExportSource(export), store, ckpt,
                    batch_events=40, verify=True,
                )
        finally:
            store.close()
        # Without verify the corruption is invisible at resume time —
        # exactly the hole verify=True closes.
        reopened = SQLiteTraceStore.open(dest)
        IngestRunner.resume(
            JSONLExportSource(export), reopened, ckpt, batch_events=40
        )
        reopened.close()

    def test_memory_destination_has_nothing_to_sweep(
        self, tmp_path, export
    ):
        ckpt = str(tmp_path / "dest.ckpt")
        store = PlatformTrace()
        IngestRunner(
            JSONLExportSource(export), store, checkpoint_path=ckpt,
            batch_events=40,
        ).run(max_batches=1)
        with pytest.raises(IngestError, match="on-disk"):
            IngestRunner.resume(
                JSONLExportSource(export), store, ckpt,
                batch_events=40, verify=True,
            )
