"""Unit tests for :class:`~repro.ingest.MergedSource`.

The merge contract: always emit the head with the smallest
``(event.time, child index)``, commit per-child positions plus the
merge watermark as one atomic token, and fail loudly on late arrivals
rather than break the destination's time-order invariant.
"""

import pytest

from repro.core.events import DisclosureShown
from repro.errors import IngestError
from repro.ingest import JSONLExportSource, MergedSource, export_jsonl


def _event(time, tag):
    """A minimal, self-contained event with a recognisable payload."""
    return DisclosureShown(
        time=time, subject=f"requester:{tag}",
        field_name="hourly_wage", value=6.0,
    )


def _export(tmp_path, name, events):
    return export_jsonl(events, tmp_path / f"{name}.jsonl")


def _merged(tmp_path, *streams):
    paths = [
        _export(tmp_path, f"s{i}", events)
        for i, events in enumerate(streams)
    ]
    return MergedSource([JSONLExportSource(path) for path in paths])


class TestMergeOrder:
    def test_interleaves_by_event_time(self, tmp_path):
        source = _merged(
            tmp_path,
            [_event(1, "a1"), _event(4, "a4"), _event(5, "a5")],
            [_event(2, "b2"), _event(3, "b3"), _event(6, "b6")],
        )
        polled = source.poll(10)
        assert [event.time for event in polled] == [1, 2, 3, 4, 5, 6]
        assert [event.subject for event in polled] == [
            "requester:a1", "requester:b2", "requester:b3",
            "requester:a4", "requester:a5", "requester:b6",
        ]

    def test_ties_go_to_the_lowest_child_index(self, tmp_path):
        source = _merged(
            tmp_path,
            [_event(5, "a-first")],
            [_event(5, "b-second"), _event(5, "b-third")],
        )
        polled = source.poll(10)
        assert [event.subject for event in polled] == [
            "requester:a-first", "requester:b-second", "requester:b-third",
        ]

    def test_poll_respects_max_events(self, tmp_path):
        source = _merged(
            tmp_path,
            [_event(1, "a"), _event(3, "c")],
            [_event(2, "b")],
        )
        assert [e.time for e in source.poll(2)] == [1, 2]
        assert [e.time for e in source.poll(2)] == [3]
        assert source.poll(2) == []

    def test_three_way_merge(self, tmp_path):
        source = _merged(
            tmp_path,
            [_event(3, "a")],
            [_event(1, "b")],
            [_event(2, "c")],
        )
        assert [e.time for e in source.poll(10)] == [1, 2, 3]


class TestConstruction:
    def test_fewer_than_two_sources_is_refused(self, tmp_path):
        path = _export(tmp_path, "solo", [_event(1, "x")])
        with pytest.raises(IngestError, match="interleaves several"):
            MergedSource([JSONLExportSource(path)])
        with pytest.raises(IngestError, match="interleaves several"):
            MergedSource([])

    def test_describe_names_every_child(self, tmp_path):
        source = _merged(tmp_path, [_event(1, "a")], [_event(2, "b")])
        info = source.describe()
        assert info["kind"] == "merged"
        assert len(info["sources"]) == 2
        assert all(child["kind"] == "jsonl" for child in info["sources"])

    def test_close_closes_children(self, tmp_path):
        source = _merged(tmp_path, [_event(1, "a")], [_event(2, "b")])
        closed = []
        for i, child in enumerate(source.sources):
            original = child.close
            child.close = (lambda orig=original, i=i: (closed.append(i),
                                                      orig())[-1])
        source.close()
        assert closed == [0, 1]


class TestCheckpointing:
    def test_position_round_trips_through_seek(self, tmp_path):
        streams = (
            [_event(1, "a1"), _event(4, "a4"), _event(6, "a6")],
            [_event(2, "b2"), _event(3, "b3"), _event(5, "b5")],
        )
        source = _merged(tmp_path, *streams)
        first = source.poll(3)
        token = dict(source.position)

        fresh = _merged(tmp_path, *streams)
        fresh.seek(token)
        rest = fresh.poll(10)
        assert [e.time for e in first] == [1, 2, 3]
        assert [e.time for e in rest] == [4, 5, 6]

    def test_initial_position_restarts_from_scratch(self, tmp_path):
        streams = ([_event(1, "a")], [_event(2, "b")])
        source = _merged(tmp_path, *streams)
        start = dict(source.position)
        source.poll(10)
        source.seek(start)
        assert [e.time for e in source.poll(10)] == [1, 2]

    def test_seek_rejects_malformed_tokens(self, tmp_path):
        source = _merged(tmp_path, [_event(1, "a")], [_event(2, "b")])
        child_token = dict(source.position)["sources"][0]
        with pytest.raises(IngestError):
            source.seek({"sources": [child_token]})  # wrong arity
        with pytest.raises(IngestError):
            source.seek({"sources": "nope"})
        with pytest.raises(IngestError):
            source.seek({
                "sources": [child_token, child_token],
                "watermark": "later",
            })

    def test_position_is_exact_mid_tie(self, tmp_path):
        """Resuming between two same-time events must not duplicate or
        drop either side of the tie."""
        streams = (
            [_event(5, "a1"), _event(7, "a2")],
            [_event(5, "b1"), _event(7, "b2")],
        )
        reference = _merged(tmp_path, *streams).poll(10)
        for cut in range(1, 4):
            source = _merged(tmp_path, *streams)
            head = source.poll(cut)
            resumed = _merged(tmp_path, *streams)
            resumed.seek(dict(source.position))
            tail = resumed.poll(10)
            combined = head + tail
            assert [e.subject for e in combined] == [
                e.subject for e in reference
            ], f"cut at {cut} broke the merge"


class TestLateArrivals:
    def test_event_behind_the_watermark_is_refused(self, tmp_path):
        a = _export(tmp_path, "a", [_event(10, "a10")])
        b = _export(tmp_path, "b", [])
        source = MergedSource(
            [JSONLExportSource(a), JSONLExportSource(b)]
        )
        assert [e.time for e in source.poll(5)] == [10]
        # The second export produces an event from before the merge
        # watermark — a late arrival the merge must not reorder past.
        export_jsonl([_event(4, "late")], b, append=True)
        with pytest.raises(IngestError, match="late"):
            source.poll(5)

    def test_same_time_as_watermark_is_fine(self, tmp_path):
        a = _export(tmp_path, "a", [_event(10, "a10")])
        b = _export(tmp_path, "b", [])
        source = MergedSource(
            [JSONLExportSource(a), JSONLExportSource(b)]
        )
        source.poll(5)
        export_jsonl([_event(10, "b10")], b, append=True)
        assert [e.subject for e in source.poll(5)] == ["requester:b10"]


class TestSourceStats:
    def test_per_child_counters_track_the_merge(self, tmp_path):
        source = _merged(
            tmp_path,
            [_event(1, "a1"), _event(4, "a4"), _event(5, "a5")],
            [_event(2, "b2"), _event(3, "b3")],
        )
        stats = source.source_stats()
        assert stats["kind"] == "merged"
        assert stats["watermark"] is None
        assert [c["events"] for c in stats["sources"]] == [0, 0]
        assert [c["watermark"] for c in stats["sources"]] == [None, None]

        source.poll(3)  # emits a1, b2, b3
        stats = source.source_stats()
        assert stats["watermark"] == 3
        assert [c["events"] for c in stats["sources"]] == [1, 2]
        assert [c["watermark"] for c in stats["sources"]] == [1, 3]

        source.poll(10)  # drains a4, a5
        stats = source.source_stats()
        assert stats["watermark"] == 5
        assert [c["events"] for c in stats["sources"]] == [3, 2]
        assert [c["watermark"] for c in stats["sources"]] == [5, 3]

    def test_children_are_identified(self, tmp_path):
        source = _merged(tmp_path, [_event(1, "a")], [_event(2, "b")])
        children = source.source_stats()["sources"]
        assert [c["kind"] for c in children] == ["jsonl", "jsonl"]
        assert children[0]["path"].endswith("s0.jsonl")
        assert children[1]["path"].endswith("s1.jsonl")

    def test_seek_resets_the_counters(self, tmp_path):
        streams = ([_event(1, "a")], [_event(2, "b")])
        source = _merged(tmp_path, *streams)
        start = dict(source.position)
        source.poll(10)
        source.seek(start)
        stats = source.source_stats()
        assert [c["events"] for c in stats["sources"]] == [0, 0]
        assert [c["watermark"] for c in stats["sources"]] == [None, None]
