"""Unit tests for the staged ingest pipeline.

Equivalence with the sequential runner is pinned exhaustively in
``tests/property/test_property_pipeline.py``; this module covers the
pipeline-specific machinery — option validation, the backpressure /
audit-lag watermark, stats plumbing, checkpoint metadata, and error
propagation out of the stage threads.
"""

import time

import pytest

from repro.core.trace import PlatformTrace
from repro.core.store import SQLiteTraceStore
from repro.errors import IngestError
from repro.ingest import (
    IngestRunner,
    JSONLExportSource,
    PipelinedIngestRunner,
    export_jsonl,
    read_checkpoint,
    validate_pipeline_options,
)
from repro.workloads.scenarios import clean_scenario, unequal_pay_scenario


@pytest.fixture(scope="module")
def events():
    return list(clean_scenario().trace)


@pytest.fixture()
def export(tmp_path, events):
    return export_jsonl(events, tmp_path / "export.jsonl")


def _pipelined(export, store, **kwargs):
    return PipelinedIngestRunner(JSONLExportSource(export), store, **kwargs)


class SlowSession:
    """Wraps a real audit session; every audit takes ``delay`` seconds."""

    def __init__(self, inner, delay):
        self.inner = inner
        self.delay = delay
        self.audits = 0

    def audit(self, trace):
        time.sleep(self.delay)
        self.audits += 1
        return self.inner.audit(trace)

    def close(self):
        close = getattr(self.inner, "close", None)
        if callable(close):
            close()


class ExplodingSession:
    def __init__(self, inner, after):
        self.inner = inner
        self.remaining = after

    def audit(self, trace):
        if self.remaining <= 0:
            raise RuntimeError("audit stage blew up")
        self.remaining -= 1
        return self.inner.audit(trace)


class TestOptions:
    def test_depth_must_be_positive(self):
        with pytest.raises(IngestError, match="pipeline_depth"):
            validate_pipeline_options(0)
        with pytest.raises(IngestError, match="pipeline_depth"):
            validate_pipeline_options(-3)
        validate_pipeline_options(1)

    def test_constructor_validates_depth(self, export):
        with pytest.raises(IngestError, match="pipeline_depth"):
            _pipelined(export, PlatformTrace(), pipeline_depth=0)

    def test_no_single_step_mode(self, export):
        runner = _pipelined(export, PlatformTrace())
        try:
            with pytest.raises(IngestError, match="step"):
                runner.step()
        finally:
            runner.close()

    def test_depth_property(self, export):
        runner = _pipelined(export, PlatformTrace(), pipeline_depth=7)
        try:
            assert runner.pipeline_depth == 7
        finally:
            runner.close()


class TestEquivalenceSmoke:
    """One quick end-to-end parity check; the heavy differential suite
    lives in tests/property/test_property_pipeline.py."""

    def test_matches_sequential_summary_and_report(self, tmp_path):
        events = list(unequal_pay_scenario().trace)
        export = export_jsonl(events, tmp_path / "e.jsonl")
        sequential = IngestRunner(
            JSONLExportSource(export), PlatformTrace(),
            batch_events=25, audit=True,
        )
        seq = sequential.run(idle_limit=1)
        pipelined = _pipelined(
            export, PlatformTrace(), batch_events=25, audit=True,
        )
        try:
            pipe = pipelined.run(idle_limit=1)
        finally:
            pipelined.close()
        assert pipe.events == seq.events
        assert pipe.batches == seq.batches
        assert pipe.store_revision == seq.store_revision
        assert pipe.report == seq.report
        assert list(pipelined.trace) == events

    def test_batches_arrive_in_order(self, export, events):
        runner = _pipelined(export, PlatformTrace(), batch_events=20,
                            audit=True)
        indexes = []
        try:
            runner.run(idle_limit=1,
                       on_batch=lambda b: indexes.append(b.index))
        finally:
            runner.close()
        assert indexes == list(range(len(indexes)))
        assert indexes, "no batches delivered"


class TestAuditLagWatermark:
    def test_sequential_runner_reports_zero_lag(self, export):
        runner = IngestRunner(
            JSONLExportSource(export), PlatformTrace(),
            batch_events=20, audit=True,
        )
        summary = runner.run(idle_limit=1)
        assert summary.max_audit_lag_batches == 0
        assert summary.max_audit_lag_events == 0

    def test_slow_audits_build_bounded_backlog(self, export, events):
        depth = 2
        runner = _pipelined(
            export, PlatformTrace(), batch_events=10, audit=True,
            pipeline_depth=depth,
        )
        runner._session = SlowSession(runner._session, delay=0.05)
        try:
            summary = runner.run(idle_limit=1)
        finally:
            runner.close()
        # Backpressure: the poller throttles once the stage queues
        # fill, so the peak backlog is bounded by what the queues plus
        # the group in flight can hold — it must lag (the auditor is
        # slow) but never run away.
        assert summary.max_audit_lag_batches >= 1
        assert summary.max_audit_lag_batches <= 2 * depth + 2
        assert summary.max_audit_lag_events <= (2 * depth + 2) * 10
        assert summary.events == len(events)

    def test_lag_reaches_stats_snapshots(self, export):
        runner = _pipelined(
            export, PlatformTrace(), batch_events=10, audit=True,
            stats_cadence=1,
        )
        runner._session = SlowSession(runner._session, delay=0.03)
        snapshots = []
        try:
            runner.run(
                idle_limit=1,
                on_batch=lambda b: snapshots.append(b.stats),
            )
        finally:
            runner.close()
        lags = [s.audit_lag for s in snapshots if s is not None]
        assert lags, "stats_cadence=1 produced no snapshots"
        assert all(
            set(lag) == {"batches", "events"} for lag in lags
        )
        assert any(lag["batches"] >= 1 for lag in lags)
        # The lag line renders only when the watermark is attached.
        lagging = next(
            s for s in snapshots
            if s is not None and s.audit_lag["batches"] >= 1
        )
        assert any(
            "audit lag:" in line for line in lagging.summary_lines()
        )
        assert lagging.as_dict()["audit_lag"] == lagging.audit_lag

    def test_sequential_stats_carry_no_lag(self, export):
        runner = IngestRunner(
            JSONLExportSource(export), PlatformTrace(),
            batch_events=10, audit=True, stats_cadence=1,
        )
        snapshots = []
        runner.run(
            idle_limit=1, on_batch=lambda b: snapshots.append(b.stats)
        )
        assert all(
            s.audit_lag is None for s in snapshots if s is not None
        )


class TestCheckpointing:
    def test_checkpoints_are_marked_pipelined(self, tmp_path, export):
        ckpt = str(tmp_path / "dest.ckpt")
        runner = _pipelined(
            export, PlatformTrace(), checkpoint_path=ckpt,
            batch_events=25,
        )
        try:
            runner.run(idle_limit=1)
        finally:
            runner.close()
        assert read_checkpoint(ckpt).metadata.get("pipelined") is True

    def test_resume_continues_after_kill(self, tmp_path, events):
        export = export_jsonl(events, tmp_path / "e.jsonl")
        dest = str(tmp_path / "dest.db")
        ckpt = dest + ".ckpt"
        store = SQLiteTraceStore.create(dest)
        runner = _pipelined(
            export, store, checkpoint_path=ckpt, batch_events=20,
            audit=True,
        )
        try:
            runner.run(max_batches=2)
        finally:
            runner.close()
            store.close()
        reopened = SQLiteTraceStore.open(dest)
        resumed = PipelinedIngestRunner.resume(
            JSONLExportSource(export), reopened, ckpt,
            batch_events=20, audit=True,
        )
        try:
            summary = resumed.run(idle_limit=1)
        finally:
            resumed.close()
        assert list(reopened.events) == events
        assert summary.report is not None
        reopened.close()


class TestErrorPropagation:
    def test_audit_stage_error_reaches_the_caller(self, export):
        runner = _pipelined(
            export, PlatformTrace(), batch_events=10, audit=True,
        )
        runner._session = ExplodingSession(runner._session, after=2)
        try:
            with pytest.raises(RuntimeError, match="blew up"):
                runner.run(idle_limit=1)
        finally:
            runner.close()

    def test_poll_stage_error_reaches_the_caller(self, tmp_path, events):
        export = export_jsonl(events, tmp_path / "e.jsonl")
        source = JSONLExportSource(export)
        original = source.poll
        calls = {"n": 0}

        def poisoned(max_events):
            calls["n"] += 1
            if calls["n"] > 2:
                raise OSError("export vanished")
            return original(max_events)

        source.poll = poisoned
        runner = PipelinedIngestRunner(
            source, PlatformTrace(), batch_events=10,
        )
        try:
            with pytest.raises(OSError, match="vanished"):
                runner.run(idle_limit=1)
        finally:
            runner.close()

    def test_threads_are_reaped_after_failure(self, export):
        import threading

        before = {t.name for t in threading.enumerate()}
        runner = _pipelined(
            export, PlatformTrace(), batch_events=10, audit=True,
        )
        runner._session = ExplodingSession(runner._session, after=0)
        try:
            with pytest.raises(RuntimeError):
                runner.run(idle_limit=1)
        finally:
            runner.close()
        time.sleep(0.1)
        lingering = {
            t.name for t in threading.enumerate()
        } - before
        assert not {
            name for name in lingering if name.startswith("ingest-")
        }
