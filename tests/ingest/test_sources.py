"""Unit tests for the ingest sources (JSONL, segment-dir, CSV tailers)."""

import json
import os

import pytest

from repro.core.serialize import event_to_dict
from repro.core.store import PersistentTraceStore
from repro.errors import IngestError
from repro.ingest import (
    CSVExportSource,
    CSVMapping,
    JSONLExportSource,
    SegmentDirectorySource,
    export_jsonl,
    resolve_source,
)
from repro.workloads.scenarios import clean_scenario, unequal_pay_scenario


@pytest.fixture(scope="module")
def events():
    return list(clean_scenario().trace)


class TestJSONLExportSource:
    def test_polls_normalised_events(self, tmp_path, events):
        path = export_jsonl(events, tmp_path / "export.jsonl")
        source = JSONLExportSource(path)
        drained = []
        while True:
            batch = source.poll(17)
            if not batch:
                break
            assert len(batch) <= 17
            drained.extend(batch)
        assert drained == events

    def test_missing_file_means_nothing_yet(self, tmp_path):
        source = JSONLExportSource(tmp_path / "not-written-yet.jsonl")
        assert source.poll(5) == []

    def test_follows_appends_between_polls(self, tmp_path, events):
        path = tmp_path / "grow.jsonl"
        export_jsonl(events[:3], path)
        source = JSONLExportSource(path)
        assert source.poll(100) == events[:3]
        assert source.poll(100) == []
        export_jsonl(events[3:6], path, append=True)
        assert source.poll(100) == events[3:6]

    def test_torn_tail_held_back_until_terminated(self, tmp_path, events):
        path = tmp_path / "torn.jsonl"
        export_jsonl(events[:1], path)
        line = json.dumps(event_to_dict(events[1]))
        with open(path, "ab") as handle:
            handle.write(line[:10].encode())  # a crash mid-append
        source = JSONLExportSource(path)
        assert source.poll(100) == events[:1]
        assert source.poll(100) == []  # still torn: not consumed, no error
        with open(path, "ab") as handle:
            handle.write(line[10:].encode() + b"\n")
        assert source.poll(100) == [events[1]]

    def test_blank_lines_are_skipped(self, tmp_path, events):
        path = tmp_path / "blanks.jsonl"
        with open(path, "wb") as handle:
            handle.write(b"\n")
            handle.write(
                json.dumps(event_to_dict(events[0])).encode() + b"\n\n"
            )
        assert JSONLExportSource(path).poll(100) == [events[0]]

    def test_corrupt_complete_line_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_bytes(b"{not json}\n")
        with pytest.raises(IngestError, match="corrupt record"):
            JSONLExportSource(path).poll(100)

    def test_unknown_event_kind_raises(self, tmp_path):
        path = tmp_path / "alien.jsonl"
        path.write_bytes(b'{"kind": "no_such_event", "time": 0}\n')
        with pytest.raises(IngestError, match="unrecognised record"):
            JSONLExportSource(path).poll(100)

    def test_truncation_below_offset_raises(self, tmp_path, events):
        path = export_jsonl(events[:5], tmp_path / "t.jsonl")
        source = JSONLExportSource(path)
        source.poll(100)
        with open(path, "r+b") as handle:
            handle.truncate(10)
        with pytest.raises(IngestError, match="shrank below the read offset"):
            source.poll(100)

    def test_rotation_detected_by_inode_change(self, tmp_path, events):
        path = tmp_path / "rotated.jsonl"
        export_jsonl(events[:3], path)
        source = JSONLExportSource(path)
        assert source.poll(2)  # establishes the inode signature
        replacement = tmp_path / "replacement.jsonl"
        export_jsonl(events, replacement)
        os.replace(replacement, path)
        with pytest.raises(IngestError, match="replaced|rotation"):
            source.poll(100)

    def test_rotation_detected_across_restart(self, tmp_path, events):
        """The position token carries the file identity, so a rotation
        that happens while the tailer is down is still detected."""
        path = tmp_path / "rotated.jsonl"
        export_jsonl(events[:3], path)
        source = JSONLExportSource(path)
        source.poll(100)
        token = source.position
        assert "ino" in token and "dev" in token
        replacement = tmp_path / "replacement.jsonl"
        export_jsonl(events, replacement)
        os.replace(replacement, path)
        fresh = JSONLExportSource(path)
        fresh.seek(token)
        with pytest.raises(IngestError, match="replaced|rotation"):
            fresh.poll(100)

    def test_disappearing_file_raises_once_read(self, tmp_path, events):
        path = export_jsonl(events[:2], tmp_path / "gone.jsonl")
        source = JSONLExportSource(path)
        source.poll(100)
        os.remove(path)
        with pytest.raises(IngestError, match="disappeared"):
            source.poll(100)

    def test_position_seek_round_trip(self, tmp_path, events):
        path = export_jsonl(events, tmp_path / "seek.jsonl")
        source = JSONLExportSource(path)
        first = source.poll(4)
        token = source.position
        rest = source.poll(10_000)
        fresh = JSONLExportSource(path)
        fresh.seek(token)
        assert fresh.poll(10_000) == rest
        assert first + rest == events

    def test_invalid_seek_token(self, tmp_path):
        source = JSONLExportSource(tmp_path / "x.jsonl")
        with pytest.raises(IngestError, match="invalid jsonl source position"):
            source.seek({"offset": -1})
        with pytest.raises(IngestError, match="invalid jsonl source position"):
            source.seek({"segment": 0})

    def test_poll_validates_max_records(self, tmp_path):
        with pytest.raises(IngestError, match="max_records"):
            JSONLExportSource(tmp_path / "x.jsonl").poll(0)

    def test_describe_names_kind_and_path(self, tmp_path):
        info = JSONLExportSource(tmp_path / "x.jsonl").describe()
        assert info["kind"] == "jsonl"
        assert info["path"].endswith("x.jsonl")

    def test_skip_records(self, tmp_path, events):
        path = export_jsonl(events, tmp_path / "skip.jsonl")
        source = JSONLExportSource(path)
        assert source.skip_records(5) == 5
        assert source.poll(10_000) == events[5:]
        assert source.skip_records(3) == 0  # nothing left to skip


class TestSegmentDirectorySource:
    def _capture(self, tmp_path, events, segment_events=25):
        store = PersistentTraceStore.create(
            tmp_path / "log", segment_events=segment_events
        )
        store.append_batch(events)
        store.close()
        return tmp_path / "log"

    def test_reads_across_segments(self, tmp_path, events):
        path = self._capture(tmp_path, events, segment_events=20)
        source = SegmentDirectorySource(path)
        drained = []
        while True:
            batch = source.poll(13)
            if not batch:
                break
            drained.extend(batch)
        assert drained == events

    def test_follows_new_segments(self, tmp_path, events):
        store = PersistentTraceStore.create(
            tmp_path / "log", segment_events=10
        )
        store.append_batch(events[:15])
        source = SegmentDirectorySource(tmp_path / "log")
        assert source.poll(10_000) == events[:15]
        assert source.poll(10_000) == []
        store.append_batch(events[15:40])
        store.close()
        assert source.poll(10_000) == events[15:40]

    def test_empty_directory_is_nothing_yet(self, tmp_path):
        (tmp_path / "log").mkdir()
        assert SegmentDirectorySource(tmp_path / "log").poll(5) == []

    def test_sealed_segment_with_torn_tail_raises(self, tmp_path, events):
        path = self._capture(tmp_path, events, segment_events=20)
        with open(path / "events-00000.jsonl", "ab") as handle:
            handle.write(b'{"kind": "half')
        with pytest.raises(IngestError, match="sealed segment"):
            SegmentDirectorySource(path).poll(10_000)

    def test_torn_tail_on_newest_segment_held_back(self, tmp_path, events):
        path = self._capture(tmp_path, events[:10], segment_events=100)
        with open(path / "events-00000.jsonl", "ab") as handle:
            handle.write(b'{"kind": "half')
        source = SegmentDirectorySource(path)
        assert source.poll(10_000) == events[:10]
        assert source.poll(10_000) == []

    def test_stray_non_numeric_segment_file_raises(self, tmp_path, events):
        path = self._capture(tmp_path, events[:10], segment_events=100)
        (path / "events-backup.jsonl").write_bytes(b"")
        with pytest.raises(IngestError, match="unexpected file"):
            SegmentDirectorySource(path).poll(10)

    def test_missing_middle_segment_raises(self, tmp_path, events):
        path = self._capture(tmp_path, events, segment_events=10)
        os.remove(path / "events-00001.jsonl")
        source = SegmentDirectorySource(path)
        with pytest.raises(IngestError, match="missing"):
            while source.poll(10_000):
                pass

    def test_position_survives_restart(self, tmp_path, events):
        path = self._capture(tmp_path, events, segment_events=15)
        source = SegmentDirectorySource(path)
        source.poll(23)
        token = source.position
        rest = source.poll(10_000)
        fresh = SegmentDirectorySource(path)
        fresh.seek(token)
        assert fresh.poll(10_000) == rest

    def test_invalid_seek_token(self, tmp_path):
        source = SegmentDirectorySource(tmp_path / "log")
        with pytest.raises(
            IngestError, match="invalid segments source position"
        ):
            source.seek({"segment": -1, "offset": 0})


class TestCSVExportSource:
    @pytest.fixture()
    def payments(self):
        trace = unequal_pay_scenario().trace
        return [e for e in trace if e.kind == "payment_issued"]

    def _write(self, path, payments, header="ts,who,task,contr,amt"):
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(header + "\n")
            for event in payments:
                handle.write(
                    f"{event.time},{event.worker_id},{event.task_id},"
                    f"{event.contribution_id},{event.amount}\n"
                )
        return path

    @pytest.fixture()
    def mapping(self):
        return CSVMapping(
            columns={
                "ts": "time",
                "who": "worker_id",
                "task": "task_id",
                "contr": "contribution_id",
                "amt": "amount",
            },
            constants={"kind": "payment_issued"},
        )

    def test_mapped_rows_become_events(self, tmp_path, payments, mapping):
        path = self._write(tmp_path / "pay.csv", payments)
        source = CSVExportSource(path, mapping)
        assert source.poll(10_000) == payments

    def test_cells_are_json_decoded(self, tmp_path, mapping):
        path = tmp_path / "typed.csv"
        path.write_text(
            "ts,who,task,contr,amt\n"
            '3,w0001,t0001,null,1.25\n'
        )
        (event,) = CSVExportSource(path, mapping).poll(10)
        assert event.time == 3 and event.amount == 1.25
        assert event.contribution_id is None

    def test_missing_mapped_column_raises(self, tmp_path, payments, mapping):
        path = self._write(
            tmp_path / "pay.csv", payments, header="ts,who,task,contr,amount"
        )
        with pytest.raises(IngestError, match="no column 'amt'"):
            CSVExportSource(path, mapping).poll(10)

    def test_short_row_raises(self, tmp_path, mapping):
        path = tmp_path / "short.csv"
        path.write_text("ts,who,task,contr,amt\n1,w0001\n")
        with pytest.raises(IngestError, match="malformed CSV row"):
            CSVExportSource(path, mapping).poll(10)

    def test_torn_row_held_back(self, tmp_path, payments, mapping):
        path = self._write(tmp_path / "pay.csv", payments[:1])
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("4,w0002")  # no newline yet
        source = CSVExportSource(path, mapping)
        assert source.poll(10) == payments[:1]
        assert source.poll(10) == []

    def test_header_only_file_is_nothing_yet(self, tmp_path, mapping):
        path = tmp_path / "empty.csv"
        path.write_text("ts,who,task,contr,amt\n")
        assert CSVExportSource(path, mapping).poll(10) == []

    def test_position_survives_restart(self, tmp_path, payments, mapping):
        path = self._write(tmp_path / "pay.csv", payments)
        source = CSVExportSource(path, mapping)
        source.poll(2)
        token = source.position
        rest = source.poll(10_000)
        fresh = CSVExportSource(path, mapping)
        fresh.seek(token)
        assert fresh.poll(10_000) == rest
        assert rest == payments[2:]

    def test_mapping_needs_columns_or_constants(self):
        with pytest.raises(IngestError, match="columns or constants"):
            CSVMapping(columns={})


class TestResolveSource:
    def test_auto_detection(self, tmp_path):
        (tmp_path / "log").mkdir()
        mapping = CSVMapping(columns={"t": "time"})
        assert isinstance(
            resolve_source(tmp_path / "log"), SegmentDirectorySource
        )
        assert isinstance(
            resolve_source(tmp_path / "x.csv", csv_mapping=mapping),
            CSVExportSource,
        )
        assert isinstance(
            resolve_source(tmp_path / "x.jsonl"), JSONLExportSource
        )

    def test_explicit_kind_wins(self, tmp_path):
        assert isinstance(
            resolve_source(tmp_path / "export.log", "jsonl"),
            JSONLExportSource,
        )

    def test_csv_requires_mapping(self, tmp_path):
        with pytest.raises(IngestError, match="column mapping"):
            resolve_source(tmp_path / "x.csv")

    def test_unknown_kind(self, tmp_path):
        with pytest.raises(IngestError, match="unknown source kind"):
            resolve_source(tmp_path / "x", "parquet")
