"""Unit tests for crash-safe ingest resume tokens.

The satellite requirement this file pins: a half-written or garbled
checkpoint is *detected and reported* — never silently treated as
"no checkpoint, start from zero", which would duplicate every already-
ingested event.
"""

import json
import os

import pytest

from repro.errors import CheckpointError, IngestError, TraceError
from repro.ingest import (
    IngestCheckpoint,
    checkpoint_path_for,
    read_checkpoint,
    write_checkpoint,
)


@pytest.fixture()
def token():
    return IngestCheckpoint(
        source_position={"segment": 2, "offset": 4711},
        source_info={"kind": "segments", "path": "/exports/run-07"},
        dest_revision=96,
        batches=4,
    )


class TestRoundTrip:
    def test_write_read_round_trip(self, tmp_path, token):
        path = tmp_path / "ingest.checkpoint"
        write_checkpoint(token, path)
        assert read_checkpoint(path) == token

    def test_overwrite_is_atomic_no_tmp_leftover(self, tmp_path, token):
        path = tmp_path / "ingest.checkpoint"
        write_checkpoint(token, path)
        newer = IngestCheckpoint(
            source_position={"segment": 3, "offset": 12},
            source_info=token.source_info,
            dest_revision=120,
            batches=5,
        )
        write_checkpoint(newer, path)
        assert read_checkpoint(path) == newer
        assert sorted(os.listdir(tmp_path)) == ["ingest.checkpoint"]

    def test_default_path_derivation(self):
        assert checkpoint_path_for("runs/live.db") == "runs/live.db.checkpoint"
        assert checkpoint_path_for("runs/live-log/") == (
            "runs/live-log.checkpoint"
        )

    def test_error_hierarchy(self):
        assert issubclass(CheckpointError, IngestError)
        assert issubclass(IngestError, TraceError)


class TestDurability:
    def test_directory_fsync_attempted_after_replace(
        self, tmp_path, token, monkeypatch
    ):
        """os.replace is a directory-metadata operation: without an
        fsync of the parent directory a power loss can silently revert
        to the old token.  The write must therefore fsync (at least
        attempt to) a directory fd after the rename."""
        import stat

        synced_dirs = []
        real_fsync = os.fsync

        def recording_fsync(fd):
            if stat.S_ISDIR(os.fstat(fd).st_mode):
                synced_dirs.append(fd)
            return real_fsync(fd)

        monkeypatch.setattr(os, "fsync", recording_fsync)
        write_checkpoint(token, tmp_path / "ingest.checkpoint")
        assert synced_dirs, "no directory fd was fsynced after os.replace"

    def test_directory_fsync_failure_is_best_effort(
        self, tmp_path, token, monkeypatch
    ):
        """Platforms that cannot fsync a directory fd (EBADF/EINVAL on
        some filesystems, Windows) must not fail the checkpoint write."""
        import stat

        real_fsync = os.fsync

        def refusing_fsync(fd):
            if stat.S_ISDIR(os.fstat(fd).st_mode):
                raise OSError("directory fsync unsupported here")
            return real_fsync(fd)

        monkeypatch.setattr(os, "fsync", refusing_fsync)
        path = tmp_path / "ingest.checkpoint"
        write_checkpoint(token, path)
        assert read_checkpoint(path) == token

    def test_directory_open_failure_is_best_effort(
        self, tmp_path, token, monkeypatch
    ):
        real_open = os.open

        def refusing_open(path, flags, *args, **kwargs):
            if os.path.isdir(path):
                raise OSError("cannot open directories")
            return real_open(path, flags, *args, **kwargs)

        monkeypatch.setattr(os, "open", refusing_open)
        path = tmp_path / "ingest.checkpoint"
        write_checkpoint(token, path)
        assert read_checkpoint(path) == token


class TestCorruptionDetection:
    def test_missing_checkpoint(self, tmp_path):
        with pytest.raises(CheckpointError, match="no ingest checkpoint"):
            read_checkpoint(tmp_path / "absent.checkpoint")

    def test_garbled_json_is_reported_not_reset(self, tmp_path):
        path = tmp_path / "bad.checkpoint"
        path.write_text('{"format_version": 1, "source_pos')
        with pytest.raises(
            CheckpointError, match="unreadable or half-written"
        ):
            read_checkpoint(path)

    def test_truncated_mid_write_copy_is_detected(self, tmp_path, token):
        """A non-atomic writer killed mid-write leaves a prefix of the
        document; every truncation point must fail loudly."""
        path = tmp_path / "ingest.checkpoint"
        write_checkpoint(token, path)
        complete = path.read_bytes()
        for cut in range(1, len(complete) - 1, 37):
            path.write_bytes(complete[:cut])
            with pytest.raises(CheckpointError):
                read_checkpoint(path)

    def test_checksum_catches_field_tampering(self, tmp_path, token):
        path = tmp_path / "ingest.checkpoint"
        write_checkpoint(token, path)
        document = json.loads(path.read_text())
        document["dest_revision"] = 9999  # bit-rot / manual edit
        path.write_text(json.dumps(document))
        with pytest.raises(CheckpointError, match="checksum"):
            read_checkpoint(path)

    def test_missing_checksum_rejected(self, tmp_path, token):
        path = tmp_path / "ingest.checkpoint"
        write_checkpoint(token, path)
        document = json.loads(path.read_text())
        del document["checksum"]
        path.write_text(json.dumps(document))
        with pytest.raises(CheckpointError, match="checksum"):
            read_checkpoint(path)

    def test_wrong_version(self, tmp_path, token):
        path = tmp_path / "ingest.checkpoint"
        write_checkpoint(token, path)
        document = json.loads(path.read_text())
        document["format_version"] = 99
        path.write_text(json.dumps(document))
        with pytest.raises(
            CheckpointError, match="unsupported checkpoint version"
        ):
            read_checkpoint(path)

    def test_non_object_document(self, tmp_path):
        path = tmp_path / "list.checkpoint"
        path.write_text("[1, 2, 3]")
        with pytest.raises(CheckpointError, match="not a JSON object"):
            read_checkpoint(path)

    def test_kill_during_write_preserves_previous_token(
        self, tmp_path, token, monkeypatch
    ):
        """A kill *inside* write_checkpoint (simulated at the fsync,
        i.e. before the atomic rename) must leave the previous complete
        token readable — the window where neither token exists is
        exactly what os.replace removes."""
        path = tmp_path / "ingest.checkpoint"
        write_checkpoint(token, path)

        def killed(fd):
            raise KeyboardInterrupt("SIGKILL stand-in")

        monkeypatch.setattr(os, "fsync", killed)
        newer = IngestCheckpoint(
            source_position={"segment": 9, "offset": 0},
            source_info=token.source_info,
            dest_revision=500,
        )
        with pytest.raises(KeyboardInterrupt):
            write_checkpoint(newer, path)
        monkeypatch.undo()
        assert read_checkpoint(path) == token  # old token intact
