"""Unit tests for crowd-answer aggregation."""

import random

import pytest

from repro.aggregation import (
    MajorityVote,
    OneCoinEM,
    TaskAnswers,
    WeightedVote,
    aggregate_trace,
    collect_answers,
    empirical_accuracy_curve,
    majority_error_bound,
)
from repro.aggregation.base import normalize_payload
from repro.aggregation.redundancy import simulate_majority_accuracy
from repro.aggregation.weighted import log_odds
from repro.core.entities import Contribution
from repro.core.events import ContributionSubmitted, TaskPosted, WorkerRegistered
from repro.core.trace import PlatformTrace

from tests.conftest import make_task, make_worker


def _answers(*pairs):
    return TaskAnswers(task_id="t1", answers=tuple(pairs))


class TestMajorityVote:
    def test_plurality(self):
        vote = MajorityVote()
        answers = _answers(("w1", "A"), ("w2", "A"), ("w3", "B"))
        assert vote.aggregate(answers) == "A"

    def test_empty(self):
        assert MajorityVote().aggregate(_answers()) is None

    def test_tie_break_deterministic(self):
        answers = _answers(("w1", "B"), ("w2", "A"))
        assert MajorityVote().aggregate(answers) == "A"  # repr-ordered

    def test_tie_abstention(self):
        answers = _answers(("w1", "B"), ("w2", "A"))
        assert MajorityVote(break_ties=False).aggregate(answers) is None

    def test_list_payloads(self):
        answers = _answers(("w1", ["x", "y"]), ("w2", ["x", "y"]),
                           ("w3", ["y", "x"]))
        assert MajorityVote().aggregate(answers) == ("x", "y")


class TestWeightedVote:
    def test_reliable_minority_beats_unreliable_majority(self):
        vote = WeightedVote(
            reliability={"expert": 0.99, "s1": 0.52, "s2": 0.52}
        )
        answers = _answers(("expert", "A"), ("s1", "B"), ("s2", "B"))
        assert vote.aggregate(answers) == "A"

    def test_defaults_to_prior(self):
        vote = WeightedVote(prior_accuracy=0.7)
        answers = _answers(("w1", "A"), ("w2", "A"), ("w3", "B"))
        assert vote.aggregate(answers) == "A"

    def test_log_odds_properties(self):
        assert log_odds(0.5) == pytest.approx(0.0)
        assert log_odds(0.9) > 0 > log_odds(0.1)
        # Extreme accuracies are clipped, not infinite.
        assert log_odds(1.0) < 10

    def test_prior_validated(self):
        with pytest.raises(ValueError):
            WeightedVote(prior_accuracy=1.0)

    def test_empty(self):
        assert WeightedVote().aggregate(_answers()) is None


class TestOneCoinEM:
    def _tasks(self, n_tasks=12, n_good=4, n_bad=2, good_accuracy=0.95,
               seed=0):
        """Synthetic votes: good workers mostly right, bad ones random."""
        rng = random.Random(seed)
        labels = ("A", "B", "C")
        tasks = {}
        truths = {}
        for t in range(n_tasks):
            truth = labels[t % len(labels)]
            truths[f"t{t}"] = truth
            votes = []
            for g in range(n_good):
                answer = truth if rng.random() < good_accuracy else (
                    rng.choice([l for l in labels if l != truth])
                )
                votes.append((f"good{g}", answer))
            for b in range(n_bad):
                votes.append((f"bad{b}", rng.choice(labels)))
            tasks[f"t{t}"] = TaskAnswers(task_id=f"t{t}", answers=tuple(votes))
        return tasks, truths

    def test_recovers_truth_and_accuracies(self):
        tasks, truths = self._tasks()
        answers, accuracy = OneCoinEM(iterations=15).fit(tasks)
        correct = sum(1 for t, a in answers.items() if a == truths[t])
        assert correct >= len(truths) - 1
        mean_good = sum(accuracy[f"good{g}"] for g in range(4)) / 4
        mean_bad = sum(accuracy[f"bad{b}"] for b in range(2)) / 2
        assert mean_good > mean_bad

    def test_single_task_protocol(self):
        answers = _answers(("w1", "A"), ("w2", "A"), ("w3", "B"))
        assert OneCoinEM().aggregate(answers) == "A"
        assert OneCoinEM().aggregate(_answers()) is None

    def test_config_validated(self):
        with pytest.raises(ValueError):
            OneCoinEM(iterations=0)
        with pytest.raises(ValueError):
            OneCoinEM(prior_accuracy=0.0)


class TestCollectAnswers:
    def _trace(self, vocabulary):
        trace = PlatformTrace()
        trace.append(WorkerRegistered(time=0, worker=make_worker("w1", vocabulary)))
        trace.append(WorkerRegistered(time=0, worker=make_worker("w2", vocabulary)))
        trace.append(TaskPosted(time=0, task=make_task("t1", vocabulary)))
        for i, (worker_id, payload) in enumerate(
            [("w1", "A"), ("w2", "B"), ("w1", "C")]
        ):
            trace.append(
                ContributionSubmitted(
                    time=i + 1,
                    contribution=Contribution(
                        f"c{i}", "t1", worker_id, payload, submitted_at=i + 1
                    ),
                )
            )
        return trace

    def test_latest_answer_wins(self, vocabulary):
        answers = collect_answers(self._trace(vocabulary))
        assert dict(answers["t1"].answers) == {"w1": "C", "w2": "B"}

    def test_aggregate_trace(self, vocabulary):
        results = aggregate_trace(MajorityVote(), self._trace(vocabulary))
        assert "t1" in results

    def test_normalize_payload(self):
        assert normalize_payload([1, 2]) == (1, 2)
        assert normalize_payload(0.1234567) == 0.123457
        assert normalize_payload("x") == "x"


class TestRedundancyCurves:
    def test_bound_decreases_with_redundancy(self):
        errors = [majority_error_bound(0.7, k) for k in (1, 3, 5, 9)]
        assert errors == sorted(errors, reverse=True)

    def test_bound_validation(self):
        with pytest.raises(ValueError):
            majority_error_bound(0.5, 3)
        with pytest.raises(ValueError):
            majority_error_bound(0.8, 0)

    def test_empirical_accuracy_increases(self):
        curve = empirical_accuracy_curve(0.7, (1, 5, 9), n_tasks=300, seed=0)
        assert curve[9] > curve[1]

    def test_simulate_validation(self):
        with pytest.raises(ValueError):
            simulate_majority_accuracy(1.5, 3, 10, random.Random(0))
        with pytest.raises(ValueError):
            simulate_majority_accuracy(0.8, 0, 10, random.Random(0))

    def test_perfect_workers_perfect_majority(self):
        accuracy = simulate_majority_accuracy(1.0, 3, 50, random.Random(0))
        assert accuracy == 1.0
