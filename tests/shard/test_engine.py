"""Unit tests for the sharded audit engine, merge layer, and pools."""

import warnings

import pytest

from repro.core.audit import AuditEngine
from repro.core.axiom_transparency import RequesterTransparency
from repro.core.axioms import AxiomCheck, default_registry
from repro.core.trace import PlatformTrace
from repro.errors import AuditError
from repro.shard import (
    HashPartitioner,
    PartitionVerdicts,
    ShardedDeltaAuditEngine,
    make_audit_session,
    merge_axiom_verdicts,
)
from repro.workloads.scenarios import all_scenarios


def _scenario(name="clean"):
    return next(s for s in all_scenarios(0) if s.name == name)


class TestMerge:
    def test_override_wins(self):
        axiom = RequesterTransparency()
        override = AxiomCheck(
            axiom_id=6, title=axiom.title, violations=(), opportunities=9
        )
        merged = merge_axiom_verdicts(axiom, [
            PartitionVerdicts(axiom_id=6, opportunities=4),
            PartitionVerdicts(axiom_id=6, override=override),
        ])
        assert merged is override

    def test_opportunities_sum_across_shards(self):
        axiom = RequesterTransparency()
        merged = merge_axiom_verdicts(axiom, [
            PartitionVerdicts(axiom_id=6, opportunities=4),
            PartitionVerdicts(axiom_id=6, opportunities=8),
        ])
        assert merged.opportunities == 12
        assert merged.violations == ()

    def test_refuses_cross_axiom_merge(self):
        axiom = RequesterTransparency()
        with pytest.raises(AuditError, match="axiom 2 into"):
            merge_axiom_verdicts(
                axiom, [PartitionVerdicts(axiom_id=2)]
            )

    def test_refuses_empty_parts(self):
        with pytest.raises(AuditError, match="no partition verdicts"):
            merge_axiom_verdicts(RequesterTransparency(), [])


class TestEngineLifecycle:
    def test_bound_to_one_trace(self):
        scenario = _scenario()
        with ShardedDeltaAuditEngine(shards=2) as session:
            session.audit(scenario.trace)
            with pytest.raises(AuditError, match="bound to one trace"):
                session.audit(PlatformTrace())

    def test_closed_engine_refuses_audits(self):
        session = ShardedDeltaAuditEngine(shards=2)
        session.audit(_scenario().trace)
        session.close()
        session.close()  # idempotent
        with pytest.raises(AuditError, match="closed"):
            session.audit(_scenario().trace)

    def test_validation(self):
        with pytest.raises(AuditError, match="shards must be >= 1"):
            ShardedDeltaAuditEngine(shards=0)
        with pytest.raises(AuditError, match="jobs must be >= 1"):
            ShardedDeltaAuditEngine(shards=2, jobs=0)
        with pytest.raises(AuditError, match="unknown shard-audit backend"):
            ShardedDeltaAuditEngine(shards=2, backend="gpu")
        with pytest.raises(AuditError, match="disagrees"):
            ShardedDeltaAuditEngine(
                shards=3, partitioner=HashPartitioner(2)
            )

    def test_partitioner_supplies_shard_count(self):
        with ShardedDeltaAuditEngine(
            partitioner=HashPartitioner(5)
        ) as session:
            assert session.shards == 5

    def test_sharded_axiom_ids_are_the_entity_sweeps(self):
        with ShardedDeltaAuditEngine(shards=2) as session:
            assert session.sharded_axiom_ids == (2, 6, 7)

    def test_revision_and_last_delta_track_audits(self):
        scenario = _scenario()
        events = list(scenario.trace)
        with ShardedDeltaAuditEngine(shards=2) as session:
            prefix = PlatformTrace(events[:10])
            session.audit(prefix)
            assert session.revision == 10
            prefix.extend(events[10:25])
            session.audit(prefix)
            assert session.revision == 25
            assert session.last_delta.event_count == 15

    def test_failed_audit_poisons_the_session(self):
        """A failure after the delta was consumed leaves shard states
        inconsistent; the session must refuse further audits instead
        of quietly diverging on retry."""
        from repro.core.axioms import Axiom, AxiomRegistry

        class _Boom(Axiom):
            axiom_id = 99
            title = "boom"

            def check(self, trace):
                raise RuntimeError("boom")

        registry = (
            AxiomRegistry()
            .register(RequesterTransparency())
            .register(_Boom())
        )
        session = ShardedDeltaAuditEngine(shards=2, registry=registry)
        try:
            with pytest.raises(RuntimeError, match="boom"):
                session.audit(_scenario().trace)
            with pytest.raises(AuditError, match="inconsistent state"):
                session.audit(_scenario().trace)
        finally:
            session.close()

    def test_repeated_audit_without_new_events_is_stable(self):
        scenario = _scenario()
        with ShardedDeltaAuditEngine(shards=3) as session:
            first = session.audit(scenario.trace)
            second = session.audit(scenario.trace)
        assert first == second == AuditEngine().audit(scenario.trace)


class TestPartitionOptOut:
    def test_unpartitionable_registry_warns_when_parallelism_requested(self):
        """shards > 1 with no partitionable axiom is a silent no-op
        without a signal; the engine must announce the degradation."""
        from repro.core.axioms import Axiom, AxiomRegistry

        class Custom(Axiom):
            axiom_id = 50
            title = "custom"

            def check(self, trace):
                return self._result([], opportunities=0)

        registry = AxiomRegistry().register(Custom())
        with pytest.warns(RuntimeWarning, match="supports partitioning"):
            session = ShardedDeltaAuditEngine(shards=4, registry=registry)
        session.close()
        # shards=1 asks for no parallelism: nothing to announce.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            ShardedDeltaAuditEngine(shards=1, registry=registry).close()

    def test_supports_delta_false_runs_custom_check_exactly(self):
        """A subclass that clears supports_delta (custom check logic)
        must run on the driver's full-recheck path, matching the
        unsharded engine — not be partitioned through the stock sweep
        it opted out of."""
        from repro.core.axioms import AxiomCheck

        class Strict(RequesterTransparency):
            supports_delta = False

            def check(self, trace):
                return AxiomCheck(
                    axiom_id=self.axiom_id, title="strict",
                    violations=(), opportunities=len(trace),
                )

        registry = default_registry(axiom6=Strict())
        scenario = _scenario()
        with ShardedDeltaAuditEngine(shards=4, registry=registry) as session:
            report = session.audit(scenario.trace)
            assert 6 not in session.sharded_axiom_ids
        assert report == AuditEngine(registry=registry).audit(scenario.trace)
        assert report.result_for(6).title == "strict"

    def test_non_designated_shards_drop_settled_streams(self):
        """Shards other than 0 never report Axiom 6's settled
        rejection/delay violations, so they must not retain them
        (memory regression for long-lived sharded ingests)."""
        scenario = next(
            s for s in all_scenarios(0) if s.name == "wrongful_rejection"
        )
        with ShardedDeltaAuditEngine(shards=3) as session:
            session.audit(scenario.trace)
            from repro.shard.checkers import RequesterTransparencyPartition

            per_shard = {
                runner.shard_index: checker
                for runner in session._pool._runners
                for checker in runner.checkers
                if isinstance(checker, RequesterTransparencyPartition)
            }
            assert per_shard[0]._rejections  # the scenario has them
            for index in (1, 2):
                assert per_shard[index]._rejections == []
                assert per_shard[index]._delays == []


class TestProcessFallback:
    def test_unpicklable_registry_degrades_to_threads(self):
        sneaky = RequesterTransparency()
        sneaky._closure = lambda: None  # cannot cross a process boundary
        registry = default_registry(axiom6=sneaky)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            session = ShardedDeltaAuditEngine(
                shards=2, backend="process", registry=registry
            )
        try:
            assert session.backend == "thread"
            assert any(
                "falling back to the thread backend" in str(w.message)
                for w in caught
            )
            scenario = _scenario()
            assert session.audit(scenario.trace) == AuditEngine(
                registry=registry
            ).audit(scenario.trace)
        finally:
            session.close()


class TestMakeAuditSession:
    def test_one_job_is_the_plain_delta_session(self):
        from repro.core.audit import DeltaAuditEngine

        assert isinstance(make_audit_session(1), DeltaAuditEngine)

    def test_many_jobs_shard(self):
        session = make_audit_session(3)
        try:
            assert isinstance(session, ShardedDeltaAuditEngine)
            assert session.shards == 3
        finally:
            session.close()

    def test_rejects_bad_jobs(self):
        with pytest.raises(AuditError, match=">= 1"):
            make_audit_session(0)
