"""Unit tests for the partitioner layer."""

import pytest

from repro.errors import AuditError
from repro.shard import (
    HashPartitioner,
    MappedPartitioner,
    make_partitioner,
    size_balanced_partitioner,
    stable_hash,
)


class TestStableHash:
    def test_deterministic_and_process_independent(self):
        # CRC-32 of the UTF-8 bytes: a fixed value, not Python's
        # per-process salted hash.
        assert stable_hash("w0001") == stable_hash("w0001")
        assert stable_hash("w0001") != stable_hash("w0002")
        import zlib

        assert stable_hash("t0042") == zlib.crc32(b"t0042")


class TestHashPartitioner:
    def test_assignments_in_range_and_stable(self):
        partitioner = HashPartitioner(4)
        keys = [f"e{i}" for i in range(500)]
        first = [partitioner.assign(k) for k in keys]
        assert all(0 <= shard < 4 for shard in first)
        assert first == [partitioner.assign(k) for k in keys]

    def test_roughly_uniform(self):
        partitioner = HashPartitioner(4)
        counts = [0, 0, 0, 0]
        for i in range(2000):
            counts[partitioner.assign(f"entity-{i}")] += 1
        assert min(counts) > 2000 / 4 * 0.7

    def test_rejects_bad_shard_count(self):
        with pytest.raises(AuditError, match="shards must be >= 1"):
            HashPartitioner(0)


class TestMappedPartitioner:
    def test_mapping_wins_hash_falls_back(self):
        partitioner = MappedPartitioner({"a": 2}, 3)
        assert partitioner.assign("a") == 2
        unseen = partitioner.assign("never-mapped")
        assert unseen == stable_hash("never-mapped") % 3

    def test_rejects_out_of_range_assignment(self):
        with pytest.raises(AuditError, match="outside"):
            MappedPartitioner({"a": 3}, 3)


class TestSizeBalanced:
    def test_balances_weights(self):
        weights = {f"e{i}": 10 for i in range(8)}
        partitioner = size_balanced_partitioner(weights, 4)
        loads = [0] * 4
        for key, weight in weights.items():
            loads[partitioner.assign(key)] += weight
        assert loads == [20, 20, 20, 20]

    def test_deterministic_layout(self):
        weights = {"a": 5, "b": 3, "c": 3, "d": 1}
        first = size_balanced_partitioner(weights, 2)
        second = size_balanced_partitioner(weights, 2)
        assert all(
            first.assign(key) == second.assign(key) for key in weights
        )

    def test_heaviest_keys_spread(self):
        weights = {"big1": 100, "big2": 100, "small": 1}
        partitioner = size_balanced_partitioner(weights, 2)
        assert partitioner.assign("big1") != partitioner.assign("big2")

    def test_rejects_negative_weight(self):
        with pytest.raises(AuditError, match="must be >= 0"):
            size_balanced_partitioner({"a": -1}, 2)


class TestMakePartitioner:
    def test_hash_strategy(self):
        assert isinstance(make_partitioner("hash", 3), HashPartitioner)

    def test_balanced_needs_weights(self):
        with pytest.raises(AuditError, match="weights"):
            make_partitioner("balanced", 3)
        partitioner = make_partitioner("balanced", 3, weights={"a": 1})
        assert partitioner.assign("a") in range(3)

    def test_unknown_strategy_names_known_ones(self):
        with pytest.raises(AuditError, match="hash, balanced"):
            make_partitioner("round-robin", 2)
