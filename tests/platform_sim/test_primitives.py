"""Unit tests for ids, clock, rng helpers, and the work tracker."""

import random

import pytest

from repro.errors import SimulationError
from repro.platform.clock import Clock
from repro.platform.completion import WorkTracker
from repro.platform.ids import IdFactory
from repro.platform.rng import bernoulli, master_rng, spawn, weighted_choice


class TestIdFactory:
    def test_sequential_prefixed(self):
        ids = IdFactory()
        assert ids.worker() == "w0001"
        assert ids.worker() == "w0002"
        assert ids.task() == "t0001"
        assert ids.contribution() == "c0001"
        assert ids.requester() == "r0001"

    def test_issued_count(self):
        ids = IdFactory()
        ids.worker()
        ids.worker()
        assert ids.issued("w") == 2
        assert ids.issued("t") == 0

    def test_width(self):
        assert IdFactory(width=2).next("x") == "x01"

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            IdFactory(width=0)


class TestClock:
    def test_tick(self):
        clock = Clock()
        assert clock.now == 0
        assert clock.tick() == 1
        assert clock.tick(5) == 6

    def test_no_backwards(self):
        clock = Clock()
        with pytest.raises(ValueError):
            clock.tick(-1)

    def test_advance_to(self):
        clock = Clock()
        clock.advance_to(10)
        assert clock.now == 10
        clock.advance_to(5)  # no-op
        assert clock.now == 10

    def test_negative_start(self):
        with pytest.raises(ValueError):
            Clock(start=-1)


class TestRngHelpers:
    def test_master_deterministic(self):
        assert master_rng(1).random() == master_rng(1).random()

    def test_spawn_independent_streams(self):
        root = master_rng(0)
        a = spawn(root, "a")
        root2 = master_rng(0)
        a2 = spawn(root2, "a")
        assert a.random() == a2.random()

    def test_weighted_choice_degenerate(self):
        rng = random.Random(0)
        assert weighted_choice(rng, {"only": 1.0}) == "only"

    def test_weighted_choice_zero_total(self):
        rng = random.Random(0)
        assert weighted_choice(rng, {"a": 0.0, "b": 0.0}) in ("a", "b")

    def test_weighted_choice_respects_weights(self):
        rng = random.Random(0)
        picks = [
            weighted_choice(rng, {"heavy": 0.99, "light": 0.01})
            for _ in range(200)
        ]
        assert picks.count("heavy") > 150

    def test_weighted_choice_validation(self):
        rng = random.Random(0)
        with pytest.raises(ValueError):
            weighted_choice(rng, {})
        with pytest.raises(ValueError):
            weighted_choice(rng, {"a": -1.0})

    def test_bernoulli_bounds(self):
        rng = random.Random(0)
        assert not bernoulli(rng, 0.0)
        assert bernoulli(rng, 1.0)
        with pytest.raises(ValueError):
            bernoulli(rng, 1.5)


class TestWorkTracker:
    def test_start_finish(self):
        tracker = WorkTracker()
        spell = tracker.start("w1", "t1", time=3)
        assert spell.started_at == 3
        assert tracker.is_working("w1", "t1")
        finished = tracker.finish("w1", "t1")
        assert finished.task_id == "t1"
        assert not tracker.is_working("w1", "t1")

    def test_double_start_rejected(self):
        tracker = WorkTracker()
        tracker.start("w1", "t1", 0)
        with pytest.raises(SimulationError, match="already working"):
            tracker.start("w1", "t1", 1)

    def test_finish_without_start_rejected(self):
        with pytest.raises(SimulationError, match="no open work"):
            WorkTracker().finish("w1", "t1")

    def test_workers_on_task(self):
        tracker = WorkTracker()
        tracker.start("w1", "t1", 0)
        tracker.start("w2", "t1", 0)
        tracker.start("w3", "t2", 0)
        spells = tracker.workers_on_task("t1")
        assert {s.worker_id for s in spells} == {"w1", "w2"}

    def test_tasks_of_worker(self):
        tracker = WorkTracker()
        tracker.start("w1", "t1", 0)
        tracker.start("w1", "t2", 0)
        assert {s.task_id for s in tracker.tasks_of_worker("w1")} == {"t1", "t2"}
        assert len(tracker) == 2
