"""Invariant tests over session RoundStats."""

import pytest

from repro.core.entities import Requester
from repro.platform.session import Session, SessionConfig
from repro.workloads.skills import standard_vocabulary
from repro.workloads.tasks import TaskStream
from repro.workloads.workers import PopulationSpec, population


@pytest.fixture(scope="module")
def result():
    vocabulary = standard_vocabulary()
    workers, behaviors = population(
        PopulationSpec(size=25, seed=13,
                       behavior_mix={"diligent": 0.6, "sloppy": 0.3,
                                     "spammer": 0.1}),
        vocabulary,
    )
    session = Session(
        config=SessionConfig(rounds=8, tasks_per_round=12, seed=13),
        workers=workers, behaviors=behaviors,
        requesters=[Requester(requester_id="r0001", hourly_wage=6.0,
                              payment_delay=5, recruitment_criteria="any",
                              rejection_criteria="quality")],
        task_factory=TaskStream(vocabulary=vocabulary, tasks_per_round=12,
                                skills_per_task=1),
    )
    return session.run()


class TestRoundStatsInvariants:
    def test_acceptances_bounded_by_submissions(self, result):
        for stats in result.rounds:
            assert 0 <= stats.acceptances <= stats.submissions

    def test_submissions_bounded_by_assignments(self, result):
        for stats in result.rounds:
            assert stats.submissions <= stats.assignments

    def test_active_workers_never_negative(self, result):
        for stats in result.rounds:
            assert stats.active_workers >= 0
            assert stats.departures >= 0

    def test_round_indexes_sequential(self, result):
        assert [s.round_index for s in result.rounds] == list(range(8))

    def test_mean_quality_bounded(self, result):
        for stats in result.rounds:
            assert 0.0 <= stats.mean_quality <= 1.0

    def test_satisfaction_bounded(self, result):
        for stats in result.rounds:
            assert 0.0 <= stats.mean_satisfaction <= 1.0

    def test_paid_non_negative(self, result):
        for stats in result.rounds:
            assert stats.total_paid >= 0.0

    def test_active_workers_match_trace(self, result):
        from repro.core.events import WorkerDeparted, WorkerRegistered

        registered = len(result.trace.of_kind(WorkerRegistered))
        departed = len(result.trace.of_kind(WorkerDeparted))
        assert result.rounds[-1].active_workers == registered - departed
