"""Unit tests for the pending-payment (contractual delay) mechanism."""

import pytest

from repro.compensation.discriminatory import DelayedPaymentScheme
from repro.core.events import PaymentIssued
from repro.platform.behavior import DiligentBehavior
from repro.platform.market import CrowdsourcingPlatform
from repro.platform.review import QualityThresholdReview

from tests.conftest import make_task, make_worker


@pytest.fixture
def delayed_platform(requester, vocabulary):
    platform = CrowdsourcingPlatform(
        review_policy=QualityThresholdReview(threshold=0.3),
        pricing=DelayedPaymentScheme(delay_ticks=10),
        seed=0,
    )
    platform.register_requester(requester)
    platform.register_worker(make_worker("w0001", vocabulary))
    platform.post_task(make_task("t1", vocabulary, reward=0.3))
    return platform


class TestDelayedPayments:
    def test_payment_queued_not_issued(self, delayed_platform):
        delayed_platform.start_work("w0001", "t1")
        _, accepted, amount = delayed_platform.process_contribution(
            "w0001", "t1", DiligentBehavior()
        )
        assert accepted
        assert amount == pytest.approx(0.3)  # owed
        assert delayed_platform.pending_payment_count == 1
        assert delayed_platform.trace.of_kind(PaymentIssued) == []
        assert delayed_platform.ledger.balance("w0001") == 0.0

    def test_settles_after_delay(self, delayed_platform):
        delayed_platform.start_work("w0001", "t1")
        delayed_platform.process_contribution("w0001", "t1", DiligentBehavior())
        submitted_at = delayed_platform.now
        # Not yet due.
        assert delayed_platform.settle_due_payments() == 0
        delayed_platform.clock.tick(10)
        assert delayed_platform.settle_due_payments() == 1
        assert delayed_platform.pending_payment_count == 0
        payment = delayed_platform.trace.of_kind(PaymentIssued)[0]
        assert payment.time - submitted_at >= 10
        assert delayed_platform.ledger.balance("w0001") == pytest.approx(0.3)

    def test_settle_idempotent(self, delayed_platform):
        delayed_platform.start_work("w0001", "t1")
        delayed_platform.process_contribution("w0001", "t1", DiligentBehavior())
        delayed_platform.clock.tick(10)
        assert delayed_platform.settle_due_payments() == 1
        assert delayed_platform.settle_due_payments() == 0

    def test_rejected_work_never_queued(self, requester, vocabulary):
        from repro.platform.behavior import SpammerBehavior

        platform = CrowdsourcingPlatform(
            review_policy=QualityThresholdReview(threshold=0.9),
            pricing=DelayedPaymentScheme(delay_ticks=10),
            seed=0,
        )
        platform.register_requester(requester)
        platform.register_worker(make_worker("w0001", vocabulary))
        platform.post_task(make_task("t1", vocabulary))
        platform.start_work("w0001", "t1")
        platform.process_contribution("w0001", "t1", SpammerBehavior())
        assert platform.pending_payment_count == 0

    def test_undelayed_scheme_pays_immediately(self, platform, vocabulary):
        platform.post_task(make_task("t1", vocabulary, reward=0.2))
        platform.start_work("w0001", "t1")
        platform.process_contribution("w0001", "t1", DiligentBehavior())
        assert platform.pending_payment_count == 0
        assert len(platform.trace.of_kind(PaymentIssued)) == 1
