"""Unit tests for visibility and review policies."""

import random

import pytest

from repro.core.entities import Contribution
from repro.platform.review import (
    AcceptAllReview,
    BiasedReview,
    GoldAnswerReview,
    QualityThresholdReview,
    SilentRejectReview,
)
from repro.platform.visibility import (
    BiasedVisibility,
    QualificationVisibility,
    RandomSubsetVisibility,
    ReputationTieredVisibility,
    RequesterThrottledVisibility,
    ShowAllVisibility,
)

from tests.conftest import make_task, make_worker


@pytest.fixture
def tasks(vocabulary):
    return [
        make_task("t1", vocabulary, reward=0.05, skills=("survey",)),
        make_task("t2", vocabulary, reward=0.50, skills=("survey",)),
        make_task("t3", vocabulary, reward=0.10, skills=("writing",),
                  requester_id="r0002"),
    ]


class TestVisibilityPolicies:
    def test_show_all(self, vocabulary, tasks):
        worker = make_worker("w1", vocabulary)
        rng = random.Random(0)
        assert ShowAllVisibility().visible_tasks(worker, tasks, rng) == tasks

    def test_qualification_filters(self, vocabulary, tasks):
        worker = make_worker("w1", vocabulary, skills=("survey",))
        rng = random.Random(0)
        visible = QualificationVisibility().visible_tasks(worker, tasks, rng)
        assert [t.task_id for t in visible] == ["t1", "t2"]

    def test_biased_hides_premium_from_target_group(self, vocabulary, tasks):
        policy = BiasedVisibility(
            attribute="group", disadvantaged_value="green", reward_ceiling=0.2
        )
        rng = random.Random(0)
        green = make_worker("w1", vocabulary, declared={"group": "green"})
        blue = make_worker("w2", vocabulary, declared={"group": "blue"})
        green_view = policy.visible_tasks(green, tasks, rng)
        blue_view = policy.visible_tasks(blue, tasks, rng)
        assert all(t.reward < 0.2 for t in green_view)
        assert len(blue_view) == len(tasks)

    def test_reputation_tiered(self, vocabulary, tasks):
        policy = ReputationTieredVisibility(threshold=0.8)
        rng = random.Random(0)
        veteran = make_worker(
            "w1", vocabulary, computed={"acceptance_ratio": 0.9}
        )
        novice = make_worker(
            "w2", vocabulary, computed={"acceptance_ratio": 0.5}
        )
        assert len(policy.visible_tasks(veteran, tasks, rng)) == len(tasks)
        novice_view = policy.visible_tasks(novice, tasks, rng)
        assert "t2" not in {t.task_id for t in novice_view}

    def test_reputation_tiered_empty(self, vocabulary):
        policy = ReputationTieredVisibility()
        worker = make_worker("w1", vocabulary)
        assert policy.visible_tasks(worker, [], random.Random(0)) == []

    def test_requester_throttled(self, vocabulary, tasks):
        policy = RequesterThrottledVisibility(
            hidden_requesters=frozenset({"r0002"})
        )
        worker = make_worker("w1", vocabulary)
        visible = policy.visible_tasks(worker, tasks, random.Random(0))
        assert {t.task_id for t in visible} == {"t1", "t2"}

    def test_random_subset_probability_bounds(self):
        with pytest.raises(ValueError):
            RandomSubsetVisibility(keep_probability=2.0)

    def test_random_subset_extremes(self, vocabulary, tasks):
        worker = make_worker("w1", vocabulary)
        rng = random.Random(0)
        assert RandomSubsetVisibility(1.0).visible_tasks(worker, tasks, rng) == tasks
        assert RandomSubsetVisibility(0.0).visible_tasks(worker, tasks, rng) == []


def _contribution(quality, worker_id="w1", payload="A"):
    return Contribution("c1", "t1", worker_id, payload, submitted_at=0,
                        quality=quality)


class TestReviewPolicies:
    def test_accept_all(self, vocabulary, task, worker):
        decision = AcceptAllReview().review(
            _contribution(0.0), task, worker, random.Random(0)
        )
        assert decision.accepted

    def test_quality_threshold_accept_and_reject(self, vocabulary, task, worker):
        policy = QualityThresholdReview(threshold=0.5)
        rng = random.Random(0)
        good = policy.review(_contribution(0.8), task, worker, rng)
        bad = policy.review(_contribution(0.2), task, worker, rng)
        assert good.accepted and good.feedback
        assert not bad.accepted and bad.feedback  # transparent rejection

    def test_gold_answer_review(self, vocabulary, worker):
        task = make_task("t1", vocabulary, gold_answer="A")
        policy = GoldAnswerReview()
        rng = random.Random(0)
        assert policy.review(_contribution(0.1, payload="A"), task, worker,
                             rng).accepted
        assert not policy.review(_contribution(0.9, payload="B"), task, worker,
                                 rng).accepted

    def test_gold_answer_fallback(self, vocabulary, worker):
        task = make_task("t1", vocabulary)  # no gold
        policy = GoldAnswerReview(fallback_threshold=0.5)
        rng = random.Random(0)
        assert policy.review(_contribution(0.9), task, worker, rng).accepted
        assert not policy.review(_contribution(0.1), task, worker, rng).accepted

    def test_silent_reject_has_no_feedback(self, vocabulary, task, worker):
        policy = SilentRejectReview(threshold=0.5)
        rng = random.Random(0)
        rejected = policy.review(_contribution(0.1), task, worker, rng)
        assert not rejected.accepted
        assert rejected.feedback == ""

    def test_biased_review_targets_group(self, vocabulary, task):
        policy = BiasedReview(
            attribute="group", disadvantaged_value="green",
            rejection_probability=1.0, threshold=0.2,
        )
        rng = random.Random(0)
        green = make_worker("w1", vocabulary, declared={"group": "green"})
        blue = make_worker("w2", vocabulary, declared={"group": "blue"})
        green_decision = policy.review(_contribution(0.9), task, green, rng)
        blue_decision = policy.review(_contribution(0.9), task, blue, rng)
        assert not green_decision.accepted
        assert green_decision.feedback == ""  # silent, too
        assert blue_decision.accepted

    def test_biased_review_still_rejects_bad_work(self, vocabulary, task):
        policy = BiasedReview(
            attribute="group", disadvantaged_value="green",
            rejection_probability=0.0, threshold=0.5,
        )
        rng = random.Random(0)
        blue = make_worker("w2", vocabulary, declared={"group": "blue"})
        assert not policy.review(_contribution(0.2), task, blue, rng).accepted

    def test_biased_probability_validated(self):
        with pytest.raises(ValueError):
            BiasedReview(attribute="g", disadvantaged_value="x",
                         rejection_probability=1.5)
