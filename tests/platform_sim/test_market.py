"""Unit tests for the CrowdsourcingPlatform lifecycle."""

import pytest

from repro.core.entities import Requester
from repro.core.events import (
    AssignmentMade,
    BonusPaid,
    BonusPromised,
    ContributionReviewed,
    ContributionSubmitted,
    DisclosureShown,
    MaliceFlagged,
    PaymentIssued,
    TaskCancelled,
    TaskInterrupted,
    TaskPosted,
    TasksShown,
    TaskStarted,
    WorkerDeparted,
    WorkerRegistered,
    WorkerUpdated,
)
from repro.errors import SimulationError, UnknownEntityError
from repro.platform.behavior import DiligentBehavior
from repro.platform.market import CrowdsourcingPlatform

from tests.conftest import make_task, make_worker


class TestRegistration:
    def test_double_worker_registration(self, platform, vocabulary):
        with pytest.raises(SimulationError, match="already registered"):
            platform.register_worker(make_worker("w0001", vocabulary))

    def test_double_requester_registration(self, platform, requester):
        with pytest.raises(SimulationError, match="already registered"):
            platform.register_requester(requester)

    def test_unknown_worker_lookup(self, platform):
        with pytest.raises(UnknownEntityError):
            platform.worker("nope")

    def test_events_recorded(self, platform):
        assert len(platform.trace.of_kind(WorkerRegistered)) == 2


class TestTaskLifecycle:
    def test_post_requires_known_requester(self, platform, vocabulary):
        task = make_task("t1", vocabulary, requester_id="ghost")
        with pytest.raises(UnknownEntityError, match="unknown requester"):
            platform.post_task(task)

    def test_double_post_rejected(self, platform, vocabulary):
        platform.post_task(make_task("t1", vocabulary))
        with pytest.raises(SimulationError, match="already posted"):
            platform.post_task(make_task("t1", vocabulary))

    def test_browse_records_visibility(self, platform, vocabulary):
        platform.post_task(make_task("t1", vocabulary))
        visible = platform.browse("w0001")
        assert [t.task_id for t in visible] == ["t1"]
        shown = platform.trace.of_kind(TasksShown)
        assert shown[-1].task_ids == frozenset({"t1"})

    def test_assign_requires_open_task(self, platform):
        with pytest.raises(SimulationError, match="not open"):
            platform.assign("w0001", "ghost")

    def test_close_task_removes_from_pool(self, platform, vocabulary):
        platform.post_task(make_task("t1", vocabulary))
        platform.close_task("t1")
        assert platform.open_tasks == []

    def test_cancel_interrupts_workers(self, platform, vocabulary):
        platform.post_task(make_task("t1", vocabulary, duration=5))
        platform.start_work("w0001", "t1")
        platform.start_work("w0002", "t1")
        interrupted = platform.cancel_task("t1", reason="quota")
        assert set(interrupted) == {"w0001", "w0002"}
        events = platform.trace.of_kind(TaskInterrupted)
        assert len(events) == 2
        assert all(not e.worker_initiated for e in events)
        assert len(platform.trace.of_kind(TaskCancelled)) == 1

    def test_abandon_is_worker_initiated(self, platform, vocabulary):
        platform.post_task(make_task("t1", vocabulary))
        platform.start_work("w0001", "t1")
        platform.abandon_work("w0001", "t1", reason="too hard")
        event = platform.trace.of_kind(TaskInterrupted)[0]
        assert event.worker_initiated


class TestWorkAndReview:
    def test_submit_requires_start(self, platform, vocabulary):
        platform.post_task(make_task("t1", vocabulary))
        with pytest.raises(SimulationError, match="must start"):
            platform.submit_work("w0001", "t1", DiligentBehavior())

    def test_full_cycle_updates_everything(self, platform, vocabulary):
        platform.post_task(make_task("t1", vocabulary, reward=0.25))
        platform.start_work("w0001", "t1")
        contribution, accepted, amount = platform.process_contribution(
            "w0001", "t1", DiligentBehavior()
        )
        assert accepted
        assert amount == pytest.approx(0.25)
        assert platform.ledger.balance("w0001") == pytest.approx(0.25)
        # Events in order: submitted, reviewed, (worker updated), paid.
        assert len(platform.trace.of_kind(ContributionSubmitted)) == 1
        assert len(platform.trace.of_kind(ContributionReviewed)) == 1
        assert len(platform.trace.of_kind(PaymentIssued)) == 1
        assert len(platform.trace.of_kind(WorkerUpdated)) == 1
        # Clock advanced by the work time.
        assert platform.now >= 1

    def test_computed_attributes_updated(self, platform, vocabulary):
        platform.post_task(make_task("t1", vocabulary))
        platform.start_work("w0001", "t1")
        platform.process_contribution("w0001", "t1", DiligentBehavior())
        worker = platform.worker("w0001")
        assert worker.computed["acceptance_ratio"] == 1.0
        assert worker.computed["tasks_completed"] == 1
        assert worker.computed.derivation_consistent()

    def test_rejected_work_unpaid_under_fixed_pricing(self, platform, vocabulary):
        from repro.platform.behavior import SpammerBehavior

        platform.post_task(make_task("t1", vocabulary, reward=0.25))
        platform.start_work("w0001", "t1")
        contribution, accepted, amount = platform.process_contribution(
            "w0001", "t1", SpammerBehavior()
        )
        assert not accepted
        assert amount == 0.0

    def test_corrupt_computed_attributes_mode(self, vocabulary, requester):
        platform = CrowdsourcingPlatform(corrupt_computed_attributes=True, seed=0)
        platform.register_requester(requester)
        platform.register_worker(make_worker("w0001", vocabulary))
        platform.post_task(make_task("t1", vocabulary))
        platform.start_work("w0001", "t1")
        platform.process_contribution("w0001", "t1", DiligentBehavior())
        worker = platform.worker("w0001")
        assert not worker.computed.derivation_consistent()


class TestBonusesFlagsDisclosures:
    def test_bonus_events(self, platform):
        platform.promise_bonus("r0001", "w0001", 0.5, condition="streak")
        platform.pay_bonus("r0001", "w0001", 0.5)
        assert len(platform.trace.of_kind(BonusPromised)) == 1
        assert len(platform.trace.of_kind(BonusPaid)) == 1
        assert platform.ledger.unpaid_promises() == []

    def test_malice_flag_event(self, platform):
        platform.flag_malice("w0001", detector="gold", score=0.9)
        event = platform.trace.of_kind(MaliceFlagged)[0]
        assert event.worker_id == "w0001"
        assert event.score == 0.9

    def test_disclosure_event(self, platform):
        platform.disclose("requester:r0001", "hourly_wage", 6.0)
        event = platform.trace.of_kind(DisclosureShown)[0]
        assert event.subject == "requester:r0001"
        assert event.value == 6.0


class TestDeparture:
    def test_depart_removes_from_active(self, platform):
        platform.depart_worker("w0001", reason="fed up")
        assert platform.has_departed("w0001")
        active_ids = {w.worker_id for w in platform.active_workers}
        assert active_ids == {"w0002"}
        assert len(platform.trace.of_kind(WorkerDeparted)) == 1

    def test_double_departure_idempotent(self, platform):
        platform.depart_worker("w0001")
        platform.depart_worker("w0001")
        assert len(platform.trace.of_kind(WorkerDeparted)) == 1

    def test_departed_worker_cannot_browse(self, platform, vocabulary):
        platform.post_task(make_task("t1", vocabulary))
        platform.depart_worker("w0001")
        with pytest.raises(SimulationError, match="departed"):
            platform.browse("w0001")
