"""Unit tests for worker behaviour models."""

import random

import pytest

from repro.platform.behavior import (
    DiligentBehavior,
    MaliciousBehavior,
    SloppyBehavior,
    SpammerBehavior,
    behavior_named,
)

from tests.conftest import make_task, make_worker


@pytest.fixture
def label_task(vocabulary):
    return make_task("t1", vocabulary, gold_answer="A", duration=3)


class TestDiligent:
    def test_high_quality(self, vocabulary, worker, label_task):
        rng = random.Random(0)
        products = [
            DiligentBehavior().produce(worker, label_task, rng)
            for _ in range(50)
        ]
        assert all(0.8 <= p.quality <= 1.0 for p in products)
        correct = sum(1 for p in products if p.payload == "A")
        assert correct >= 40  # ~90% accuracy

    def test_work_time_near_duration(self, vocabulary, worker, label_task):
        rng = random.Random(0)
        product = DiligentBehavior().produce(worker, label_task, rng)
        assert product.work_time >= label_task.duration


class TestSpammer:
    def test_fast_and_inaccurate(self, vocabulary, worker, label_task):
        rng = random.Random(0)
        products = [
            SpammerBehavior().produce(worker, label_task, rng)
            for _ in range(50)
        ]
        assert all(p.work_time == 1 for p in products)
        assert all(p.quality <= 0.3 for p in products)
        correct = sum(1 for p in products if p.payload == "A")
        assert correct < 30


class TestMalicious:
    def test_wrong_but_unhurried(self, vocabulary, worker, label_task):
        rng = random.Random(0)
        products = [
            MaliciousBehavior().produce(worker, label_task, rng)
            for _ in range(50)
        ]
        assert all(p.quality <= 0.1 for p in products)
        # Plausible work times (not the 1-tick spammer signature).
        assert sum(p.work_time for p in products) / 50 > 1.5


class TestSloppy:
    def test_intermediate_quality(self, vocabulary, worker, label_task):
        rng = random.Random(0)
        qualities = [
            SloppyBehavior().produce(worker, label_task, rng).quality
            for _ in range(50)
        ]
        mean = sum(qualities) / len(qualities)
        assert 0.5 < mean < 0.8


class TestPayloadKinds:
    def test_text_payload(self, vocabulary, worker):
        task = make_task("t1", vocabulary, kind="text")
        rng = random.Random(0)
        product = DiligentBehavior().produce(worker, task, rng)
        assert isinstance(product.payload, str)
        assert len(product.payload.split()) >= 4

    def test_honest_text_answers_are_similar(self, vocabulary, worker):
        from repro.similarity.text import ngram_similarity

        task = make_task("t1", vocabulary, kind="text")
        rng = random.Random(0)
        first = DiligentBehavior().produce(worker, task, rng).payload
        second = DiligentBehavior().produce(worker, task, rng).payload
        spam = SpammerBehavior().produce(worker, task, rng).payload
        assert ngram_similarity(str(first), str(second)) > ngram_similarity(
            str(first), str(spam)
        )

    def test_ranking_payload(self, vocabulary, worker):
        task = make_task("t1", vocabulary, kind="ranking")
        rng = random.Random(0)
        product = DiligentBehavior().produce(worker, task, rng)
        assert isinstance(product.payload, tuple)
        assert len(product.payload) == 5

    def test_numeric_payload_near_truth(self, vocabulary, worker):
        from repro.core.entities import Task

        task = Task(
            task_id="t1", requester_id="r0001",
            required_skills=vocabulary.vector(()), reward=0.1,
            kind="numeric", metadata={"truth": 100.0},
        )
        rng = random.Random(0)
        values = [
            float(DiligentBehavior().produce(worker, task, rng).payload)
            for _ in range(20)
        ]
        assert all(80.0 <= v <= 120.0 for v in values)

    def test_task_options_respected(self, vocabulary, worker):
        from repro.core.entities import Task

        task = Task(
            task_id="t1", requester_id="r0001",
            required_skills=vocabulary.vector(()), reward=0.1,
            kind="label", gold_answer="yes",
            metadata={"options": ("yes", "no")},
        )
        rng = random.Random(0)
        payloads = {
            SpammerBehavior().produce(worker, task, rng).payload
            for _ in range(30)
        }
        assert payloads <= {"yes", "no"}


class TestRegistry:
    def test_behavior_named(self):
        assert behavior_named("diligent").name == "diligent"
        assert behavior_named("spammer").name == "spammer"

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown behaviour"):
            behavior_named("saint")
