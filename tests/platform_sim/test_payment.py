"""Unit tests for the payment ledger."""

import pytest

from repro.errors import CompensationError
from repro.platform.payment import PaymentLedger


class TestPayments:
    def test_pay_and_balance(self):
        ledger = PaymentLedger()
        ledger.pay(1, "w1", "t1", "c1", 0.1)
        ledger.pay(2, "w1", "t2", "c2", 0.2)
        ledger.pay(2, "w2", "t1", "c3", 0.3)
        assert ledger.balance("w1") == pytest.approx(0.3)
        assert ledger.balances() == {
            "w1": pytest.approx(0.3), "w2": pytest.approx(0.3)
        }

    def test_zero_payment_allowed(self):
        ledger = PaymentLedger()
        ledger.pay(1, "w1", "t1", "c1", 0.0)
        assert ledger.balance("w1") == 0.0

    def test_negative_payment_rejected(self):
        with pytest.raises(CompensationError):
            PaymentLedger().pay(1, "w1", "t1", "c1", -0.1)

    def test_paid_for_contribution(self):
        ledger = PaymentLedger()
        ledger.pay(1, "w1", "t1", "c1", 0.1)
        assert ledger.paid_for("c1") == pytest.approx(0.1)
        assert ledger.paid_for("c9") == 0.0

    def test_total_paid(self):
        ledger = PaymentLedger()
        ledger.pay(1, "w1", "t1", "c1", 0.1)
        ledger.promise_bonus(1, "r1", "w1", 0.5)
        ledger.pay_bonus(2, "r1", "w1", 0.5)
        assert ledger.total_paid() == pytest.approx(0.6)


class TestBonuses:
    def test_promise_validation(self):
        with pytest.raises(CompensationError):
            PaymentLedger().promise_bonus(0, "r1", "w1", 0.0)
        with pytest.raises(CompensationError):
            PaymentLedger().pay_bonus(0, "r1", "w1", -1.0)

    def test_unpaid_promises_settlement(self):
        ledger = PaymentLedger()
        ledger.promise_bonus(0, "r1", "w1", 0.5)
        ledger.promise_bonus(1, "r1", "w1", 0.5)
        ledger.promise_bonus(2, "r1", "w2", 0.5)
        ledger.pay_bonus(3, "r1", "w1", 0.5)
        unpaid = ledger.unpaid_promises()
        assert len(unpaid) == 2
        # First w1 promise was settled; the second w1 and the w2 remain.
        assert {(p.worker_id, p.time) for p in unpaid} == {("w1", 1), ("w2", 2)}

    def test_bonus_in_balance(self):
        ledger = PaymentLedger()
        ledger.pay_bonus(0, "r1", "w1", 0.5)
        assert ledger.balance("w1") == pytest.approx(0.5)

    def test_mismatched_amount_does_not_settle(self):
        ledger = PaymentLedger()
        ledger.promise_bonus(0, "r1", "w1", 0.5)
        ledger.pay_bonus(1, "r1", "w1", 0.4)
        assert len(ledger.unpaid_promises()) == 1
