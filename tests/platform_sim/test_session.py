"""Unit tests for the multi-round session driver."""

import pytest

from repro.assignment import RoundRobinAssigner
from repro.core.entities import Requester
from repro.core.events import TaskInterrupted
from repro.errors import SimulationError
from repro.platform.behavior import DiligentBehavior
from repro.platform.review import QualityThresholdReview, SilentRejectReview
from repro.platform.session import Session, SessionConfig
from repro.transparency.enforcement import PolicyEnforcer
from repro.transparency.presets import preset
from repro.workloads.skills import standard_vocabulary
from repro.workloads.tasks import TaskStream
from repro.workloads.workers import PopulationSpec, population


def _requester():
    return Requester(
        requester_id="r0001", name="acme", hourly_wage=6.0, payment_delay=5,
        recruitment_criteria="any", rejection_criteria="quality",
    )


def _session(config=None, n_workers=20, seed=0, tasks_per_round=10):
    vocabulary = standard_vocabulary()
    spec = PopulationSpec(size=n_workers, seed=seed)
    workers, behaviors = population(spec, vocabulary)
    stream = TaskStream(vocabulary=vocabulary, tasks_per_round=tasks_per_round,
                        skills_per_task=1)
    config = config or SessionConfig(rounds=5, tasks_per_round=tasks_per_round,
                                     seed=seed)
    return Session(
        config=config, workers=workers, behaviors=behaviors,
        requesters=[_requester()], task_factory=stream,
    )


class TestSessionConfig:
    def test_validation(self):
        with pytest.raises(SimulationError):
            SessionConfig(rounds=0)
        with pytest.raises(SimulationError):
            SessionConfig(base_churn=2.0)
        with pytest.raises(SimulationError):
            SessionConfig(cancel_probability=-0.5)


class TestSessionRun:
    def test_produces_round_stats(self):
        result = _session().run()
        assert len(result.rounds) == 5
        assert result.initial_workers == 20
        assert all(r.submissions > 0 for r in result.rounds)

    def test_deterministic_under_seed(self):
        first = _session(seed=3).run()
        second = _session(seed=3).run()
        assert first.retention == second.retention
        assert [r.submissions for r in first.rounds] == [
            r.submissions for r in second.rounds
        ]

    def test_retention_series_monotone_nonincreasing(self):
        result = _session().run()
        series = result.retention_series()
        assert all(a >= b for a, b in zip(series, series[1:]))
        assert result.retention == series[-1]

    def test_quality_series_length(self):
        result = _session().run()
        assert len(result.quality_series()) == 5

    def test_with_platform_assigner(self):
        config = SessionConfig(rounds=3, tasks_per_round=10, seed=0,
                               assigner=RoundRobinAssigner())
        result = _session(config=config).run()
        assert sum(r.assignments for r in result.rounds) > 0

    def test_cancellation_interrupts_workers(self):
        config = SessionConfig(rounds=3, tasks_per_round=10, seed=0,
                               cancel_probability=0.5)
        result = _session(config=config).run()
        interruptions = [
            e for e in result.trace.of_kind(TaskInterrupted)
            if not e.worker_initiated
        ]
        assert interruptions

    def test_transparent_platform_retains_more(self):
        # The paper's central hypothesis, at unit-test scale.
        def run_with(enforcer):
            config = SessionConfig(
                rounds=12, tasks_per_round=20, seed=5,
                review_policy=SilentRejectReview(threshold=0.6),
                transparency=enforcer,
            )
            return _session(config=config, n_workers=40, seed=5).run()

        opaque = run_with(None)
        transparent = run_with(PolicyEnforcer(preset("full")))
        assert transparent.retention >= opaque.retention

    def test_satisfaction_bounded(self):
        result = _session().run()
        assert all(0.0 <= s <= 1.0 for s in result.final_satisfaction.values())

    def test_empty_population(self):
        vocabulary = standard_vocabulary()
        stream = TaskStream(vocabulary=vocabulary, tasks_per_round=5)
        session = Session(
            config=SessionConfig(rounds=2, seed=0),
            workers=[], behaviors={}, requesters=[_requester()],
            task_factory=stream,
        )
        result = session.run()
        assert result.retention == 1.0
        assert result.rounds[0].active_workers == 0
