"""The E4 acceptance tests: every scenario audits exactly as labelled.

This is the heart of the reproduction — the paper's "fairness check
benchmarks" (Section 3.3.1) must flag each injected Section 3.1
scenario with exactly the intended axiom, and stay silent on the clean
control.
"""

import pytest

from repro.core.audit import AuditEngine
from repro.workloads.scenarios import all_scenarios


@pytest.fixture(scope="module")
def audited():
    engine = AuditEngine()
    return [
        (scenario, engine.audit(scenario.trace))
        for scenario in all_scenarios(seed=0)
    ]


def test_scenario_suite_covers_every_axiom():
    covered = set()
    for scenario in all_scenarios(seed=0):
        covered |= scenario.violated_axioms
    assert covered == {1, 2, 3, 4, 5, 6, 7}


def test_exactly_the_labelled_axioms_fire(audited):
    for scenario, report in audited:
        fired = {
            result.axiom_id
            for result in report.results
            if result.violation_count > 0
        }
        assert fired == scenario.violated_axioms, (
            f"scenario {scenario.name}: expected "
            f"{sorted(scenario.violated_axioms)}, fired {sorted(fired)}"
        )


def test_clean_scenario_has_nonvacuous_checks(audited):
    clean_report = next(r for s, r in audited if s.name == "clean")
    # Axioms 1, 2, 3, 6, 7 must actually have compared something.
    for axiom_id in (1, 2, 3, 6, 7):
        assert clean_report.result_for(axiom_id).opportunities > 0, (
            f"axiom {axiom_id} was vacuous on the clean scenario"
        )


def test_violations_carry_witnesses(audited):
    for scenario, report in audited:
        for violation in report.violations:
            assert violation.witness, (
                f"{scenario.name}: violation without witness"
            )
            assert violation.subjects, (
                f"{scenario.name}: violation without subjects"
            )


def test_scenarios_deterministic():
    first = all_scenarios(seed=7)
    second = all_scenarios(seed=7)
    for left, right in zip(first, second):
        assert len(left.trace) == len(right.trace)
        assert left.violated_axioms == right.violated_axioms


def test_audit_scenario_helper():
    from repro import ReproError, audit_scenario

    report = audit_scenario("survey_cancellation")
    assert report.result_for(5).violation_count > 0
    with pytest.raises(ReproError, match="unknown scenario"):
        audit_scenario("nonexistent")
