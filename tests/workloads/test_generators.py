"""Unit tests for workload generators."""

import random

import pytest

from repro.core.entities import SkillVocabulary
from repro.workloads.skills import standard_vocabulary, vocabulary
from repro.workloads.tasks import TaskStream, task_batch, uniform_tasks
from repro.workloads.workers import (
    PopulationSpec,
    homogeneous_population,
    population,
    worker,
)


class TestSkills:
    def test_standard_vocabulary(self):
        vocab = standard_vocabulary()
        assert len(vocab) == 12
        assert "survey" in vocab

    def test_synthetic_vocabulary(self):
        vocab = vocabulary(5)
        assert vocab.keywords == tuple(f"skill_{i}" for i in range(5))
        with pytest.raises(ValueError):
            vocabulary(0)


class TestWorkers:
    def test_worker_factory(self):
        vocab = standard_vocabulary()
        entity = worker("w1", vocab, skills=("survey",),
                        declared={"group": "blue"})
        assert entity.worker_id == "w1"
        assert entity.declared["group"] == "blue"
        assert "survey" in entity.skills
        assert len(entity.computed) == 0

    def test_population_size_and_ids(self):
        vocab = standard_vocabulary()
        spec = PopulationSpec(size=10, seed=0)
        workers, behaviors = population(spec, vocab)
        assert len(workers) == 10
        assert len({w.worker_id for w in workers}) == 10
        assert set(behaviors) == {w.worker_id for w in workers}

    def test_population_deterministic(self):
        vocab = standard_vocabulary()
        spec = PopulationSpec(size=10, seed=42)
        first, _ = population(spec, vocab)
        second, _ = population(spec, vocab)
        assert [w.declared.as_dict() for w in first] == [
            w.declared.as_dict() for w in second
        ]

    def test_group_weights_respected(self):
        vocab = standard_vocabulary()
        spec = PopulationSpec(
            size=200, group_values=("a", "b"), group_weights=(0.9, 0.1),
            seed=1,
        )
        workers, _ = population(spec, vocab)
        a_count = sum(1 for w in workers if w.declared["group"] == "a")
        assert a_count > 140

    def test_behavior_mix_respected(self):
        vocab = standard_vocabulary()
        spec = PopulationSpec(
            size=200, behavior_mix={"diligent": 0.5, "spammer": 0.5}, seed=2
        )
        _, behaviors = population(spec, vocab)
        spammers = sum(1 for b in behaviors.values() if b.name == "spammer")
        assert 60 < spammers < 140

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            PopulationSpec(size=-1)
        with pytest.raises(ValueError):
            PopulationSpec(group_values=("a", "b"), group_weights=(1.0,))
        with pytest.raises(ValueError):
            PopulationSpec(behavior_mix={})

    def test_homogeneous_population_identical(self):
        vocab = standard_vocabulary()
        workers = homogeneous_population(
            4, vocab, skills=("survey",), declared={"group": "x"}
        )
        assert len({w.skills.bits for w in workers}) == 1
        assert len({w.worker_id for w in workers}) == 4


class TestTasks:
    def test_uniform_tasks(self):
        vocab = standard_vocabulary()
        tasks = uniform_tasks(3, vocab, reward=0.2, skills=("survey",))
        assert [t.task_id for t in tasks] == ["t0001", "t0002", "t0003"]
        assert all(t.reward == 0.2 for t in tasks)
        assert all(t.gold_answer == "A" for t in tasks)

    def test_uniform_tasks_start_index(self):
        vocab = standard_vocabulary()
        tasks = uniform_tasks(2, vocab, start_index=5)
        assert [t.task_id for t in tasks] == ["t0005", "t0006"]

    def test_task_batch_heterogeneous(self):
        vocab = standard_vocabulary()
        rng = random.Random(0)
        tasks = task_batch(
            20, vocab, rng, requester_ids=("r1", "r2"),
            kinds=("label", "text"),
        )
        assert len(tasks) == 20
        assert {t.requester_id for t in tasks} == {"r1", "r2"}
        assert {t.kind for t in tasks} == {"label", "text"}
        assert len({t.task_id for t in tasks}) == 20

    def test_task_batch_validation(self):
        vocab = standard_vocabulary()
        with pytest.raises(ValueError):
            task_batch(-1, vocab, random.Random(0))

    def test_task_stream_unique_ids_across_rounds(self):
        vocab = standard_vocabulary()
        stream = TaskStream(vocabulary=vocab, tasks_per_round=5)
        rng = random.Random(0)
        first = stream(0, rng)
        second = stream(1, rng)
        ids = {t.task_id for t in first} | {t.task_id for t in second}
        assert len(ids) == 10
