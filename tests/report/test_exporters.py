"""Round-trip and rendering tests for the report/export subsystem.

Pins the ISSUE acceptance contract: all four formats render the same
``AuditReport`` content — CSV and JSONL re-parse to equal data, and the
Markdown/HTML presentation sinks contain every violation.
"""

import json
import os

import pytest

from repro.core.audit import AuditEngine
from repro.core.trace import PlatformTrace
from repro.errors import IngestError, ReportError
from repro.forensics import repair_store, verify_store
from repro.ingest import IngestRunner, JSONLExportSource, export_jsonl
from repro.report import (
    REPORT_FORMATS,
    CsvReportExporter,
    JsonlReportExporter,
    ReportDocument,
    ReportSection,
    audit_document,
    csv_cell,
    export_report_files,
    make_exporter,
    manifest_document,
    render_report,
    verify_document,
)
from repro.workloads.scenarios import clean_scenario, unequal_pay_scenario

ALL_FORMATS = ("csv", "jsonl", "md", "html")


@pytest.fixture(scope="module")
def violating_trace():
    return PlatformTrace(list(unequal_pay_scenario(3).trace))


@pytest.fixture(scope="module")
def audit_report(violating_trace):
    return AuditEngine().audit(violating_trace)


@pytest.fixture(scope="module")
def audit_doc(audit_report, violating_trace):
    return audit_document(
        audit_report, violating_trace, source="mem://unequal-pay"
    )


class TestRegistry:
    def test_all_four_formats_registered(self):
        assert set(ALL_FORMATS) <= set(REPORT_FORMATS)

    def test_unknown_format_raises(self):
        with pytest.raises(ReportError, match="unknown report format"):
            make_exporter("pdf")

    def test_default_filenames(self, audit_doc):
        names = {
            make_exporter(fmt).default_filename(audit_doc)
            for fmt in ALL_FORMATS
        }
        assert names == {"audit.csv", "audit.jsonl", "audit.md", "audit.html"}


class TestDocumentModel:
    def test_section_rejects_ragged_rows(self):
        with pytest.raises(ReportError, match="declares 2 column"):
            ReportSection(title="t", columns=("a", "b"), rows=(("only",),))

    def test_document_rejects_missing_columns(self):
        with pytest.raises(ReportError, match="lacks declared"):
            ReportDocument(
                title="t",
                kind="audit",
                source="s",
                columns=("a", "b"),
                records=({"a": 1},),
            )

    def test_audit_doc_shape(self, audit_doc, audit_report):
        assert audit_doc.kind == "audit"
        assert len(audit_doc.records) == audit_report.total_violations
        assert audit_doc.records  # the scenario actually violates
        titles = [section.title for section in audit_doc.sections]
        assert "Axiom scores" in titles
        assert "Events by kind" in titles
        assert "Entity violation timelines" in titles


class TestCsvRoundTrip:
    def test_reparse_equals_cell_strings(self, audit_doc):
        text = render_report(audit_doc, "csv")
        parsed = CsvReportExporter.parse(text)
        expected = [
            {col: csv_cell(rec[col]) for col in audit_doc.columns}
            for rec in audit_doc.records
        ]
        assert parsed == expected

    def test_non_string_cells_are_json(self, audit_doc):
        parsed = CsvReportExporter.parse(render_report(audit_doc, "csv"))
        for row, record in zip(parsed, audit_doc.records):
            assert json.loads(row["subjects"]) == record["subjects"]
            assert json.loads(row["time"]) == record["time"]


class TestJsonlRoundTrip:
    def test_reparse_preserves_types(self, audit_doc):
        text = render_report(audit_doc, "jsonl")
        meta, records = JsonlReportExporter.parse(text)
        assert meta["kind"] == "audit"
        assert meta["columns"] == list(audit_doc.columns)
        assert meta["records"] == len(audit_doc.records)
        expected = [
            {col: rec[col] for col in audit_doc.columns}
            for rec in audit_doc.records
        ]
        assert records == expected

    def test_meta_carries_sections_and_summary(self, audit_doc):
        meta, _ = JsonlReportExporter.parse(render_report(audit_doc, "jsonl"))
        assert dict(map(tuple, meta["summary"]))["verdict"] == "FAIL"
        section_titles = {s["title"] for s in meta["sections"]}
        assert "Axiom scores" in section_titles

    def test_parse_rejects_garbage(self):
        with pytest.raises(ReportError, match="_meta"):
            JsonlReportExporter.parse('{"not": "meta"}\n')
        with pytest.raises(ReportError, match="no meta line"):
            JsonlReportExporter.parse("")


class TestPresentationSinks:
    def test_markdown_contains_every_violation(self, audit_doc):
        text = render_report(audit_doc, "md")
        assert text.startswith("# ")
        for record in audit_doc.records:
            assert record["axiom_title"] in text

    def test_html_contains_every_violation_escaped(self, audit_doc):
        import html as html_mod

        text = render_report(audit_doc, "html")
        for record in audit_doc.records:
            assert html_mod.escape(record["message"]) in text

    def test_html_escapes_hostile_content(self):
        doc = ReportDocument(
            title="<script>alert(1)</script>",
            kind="audit",
            source="s",
            columns=("message",),
            records=({"message": "<img onerror=x>"},),
        )
        text = render_report(doc, "html")
        assert "<script>alert" not in text
        assert "<img" not in text
        assert "&lt;script&gt;" in text

    def test_html_score_heatmap_classes(self, audit_doc):
        text = render_report(audit_doc, "html")
        assert "score-" in text  # axiom score cells are colour-graded


class TestOtherDocumentKinds:
    def test_verify_document_through_all_sinks(self, tmp_path):
        from tests.forensics.test_verify_repair import _sqlite_store

        events = list(clean_scenario().trace)
        db = _sqlite_store(tmp_path, events)
        doc = verify_document(verify_store(db))
        assert doc.kind == "verify"
        for fmt in ALL_FORMATS:
            assert render_report(doc, fmt)
        meta, records = JsonlReportExporter.parse(
            render_report(doc, "jsonl")
        )
        assert meta["kind"] == "verify"
        assert records == []  # clean store: no findings

    def test_manifest_document_through_all_sinks(self, tmp_path):
        import sqlite3

        from tests.forensics.test_verify_repair import (
            _leaf_seqs,
            _sqlite_store,
        )

        events = list(clean_scenario().trace)
        lost = _leaf_seqs(events)[0]
        db = _sqlite_store(tmp_path, events)
        conn = sqlite3.connect(db)
        conn.execute("DELETE FROM events WHERE seq=?", (lost,))
        conn.commit()
        conn.close()
        result = repair_store(db, tmp_path / "fixed.db")
        doc = manifest_document(result.manifest)
        assert doc.kind == "repair"
        parsed = CsvReportExporter.parse(render_report(doc, "csv"))
        assert parsed[0]["start_seq"] == str(lost)
        md = render_report(doc, "md")
        assert "events dropped" in md
        for fmt in ALL_FORMATS:
            assert render_report(doc, fmt)


class TestExportFiles:
    def test_conventional_names_in_directory(self, tmp_path, audit_doc):
        paths = export_report_files(audit_doc, tmp_path / "out", ALL_FORMATS)
        assert [os.path.basename(p) for p in paths] == [
            "audit.csv",
            "audit.jsonl",
            "audit.md",
            "audit.html",
        ]
        for path in paths:
            assert os.path.getsize(path) > 0

    def test_unknown_format_fails_before_writing(self, tmp_path, audit_doc):
        target = tmp_path / "never"
        with pytest.raises(ReportError, match="unknown report format"):
            export_report_files(audit_doc, target, ["csv", "nope"])
        assert not target.exists()


class TestRollingReports:
    def _runner(self, tmp_path, **kwargs):
        events = list(unequal_pay_scenario(5).trace)
        export = export_jsonl(events, tmp_path / "export.jsonl")
        return IngestRunner(
            JSONLExportSource(export), PlatformTrace(), **kwargs
        )

    def test_runner_writes_rolling_reports(self, tmp_path):
        report_dir = tmp_path / "reports"
        runner = self._runner(
            tmp_path,
            audit=True,
            report_dir=str(report_dir),
            report_formats=("jsonl", "html"),
            report_source="export.jsonl",
        )
        runner.run(idle_limit=1)
        assert runner.report_dir == str(report_dir)
        meta, records = JsonlReportExporter.parse(
            (report_dir / "audit.jsonl").read_text()
        )
        assert meta["kind"] == "audit"
        assert len(records) == runner.last_report.total_violations
        assert (report_dir / "audit.html").read_text().startswith("<!")

    def test_report_formats_require_dir(self, tmp_path):
        with pytest.raises(IngestError, match="without report_dir"):
            self._runner(tmp_path, audit=True, report_formats=("csv",))

    def test_report_dir_requires_formats(self, tmp_path):
        with pytest.raises(IngestError, match="without report_formats"):
            self._runner(tmp_path, audit=True, report_dir=str(tmp_path / "r"))

    def test_rolling_reports_require_audit(self, tmp_path):
        with pytest.raises(IngestError, match="require audit"):
            self._runner(
                tmp_path,
                report_dir=str(tmp_path / "r"),
                report_formats=("csv",),
            )

    def test_unknown_rolling_format_fails_at_construction(self, tmp_path):
        with pytest.raises(ReportError, match="unknown report format"):
            self._runner(
                tmp_path,
                audit=True,
                report_dir=str(tmp_path / "r"),
                report_formats=("tsv",),
            )
