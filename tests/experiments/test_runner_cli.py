"""Unit tests for the experiment runner registry and the CLI."""

import pytest

from repro.cli import build_parser, main
from repro.errors import ReproError
from repro.experiments.runner import (
    EXPERIMENTS,
    experiment_runner,
    run_experiment,
    run_many,
)


class TestRunner:
    def test_registry_complete(self):
        assert set(EXPERIMENTS) == {f"E{i}" for i in range(1, 11)}

    def test_experiment_runner_resolves(self):
        runner = experiment_runner("e4")  # case-insensitive
        assert callable(runner)

    def test_unknown_experiment(self):
        with pytest.raises(ReproError, match="unknown experiment"):
            experiment_runner("E99")

    def test_run_experiment_forwards_kwargs(self):
        result = run_experiment("E6")
        assert result.experiment_id == "E6"
        assert result.tables

    def test_result_render(self):
        result = run_experiment("E4", seed=0)
        text = result.render()
        assert text.startswith("=== E4")
        assert "precision" in text

    def test_run_many_parallel_matches_serial(self):
        """--jobs determinism at the runner level: same experiments,
        same order, byte-identical renders for any worker count."""
        ids = ["E6", "E4"]
        serial = run_many(ids, jobs=1, seed=0)
        parallel = run_many(ids, jobs=4, seed=0)
        assert [r.experiment_id for r in serial] == ids
        assert [r.render() for r in serial] == [r.render() for r in parallel]

    def test_run_many_invalid_jobs(self):
        with pytest.raises(ReproError, match="jobs must be >= 1"):
            run_many(["E6"], jobs=0)


class TestCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        output = capsys.readouterr().out
        assert "E1" in output and "E7" in output

    def test_unknown_experiment_exit_code(self, capsys):
        assert main(["E99"]) == 2
        assert "unknown experiments" in capsys.readouterr().err

    def test_run_single_experiment(self, capsys):
        assert main(["E6"]) == 0
        output = capsys.readouterr().out
        assert "E6: preset policies" in output

    def test_seed_forwarded(self, capsys):
        assert main(["E4", "--seed", "1"]) == 0
        assert "per-axiom detection" in capsys.readouterr().out

    def test_parser_defaults(self):
        args = build_parser().parse_args([])
        assert args.experiments == []
        assert args.seed is None
        assert args.format == "text"
        assert args.jobs == 1
        assert args.stream_audit is False

    def test_jobs_flag_output_identical(self, capsys):
        assert main(["E6", "--jobs", "1"]) == 0
        serial = capsys.readouterr().out
        assert main(["E6", "--jobs", "3"]) == 0
        parallel = capsys.readouterr().out
        assert serial == parallel

    def test_invalid_jobs_exit_code(self, capsys):
        assert main(["E6", "--jobs", "0"]) == 2
        assert "--jobs must be >= 1" in capsys.readouterr().err

    def test_stream_audit_text(self, capsys):
        assert main(["--stream-audit"]) == 0
        output = capsys.readouterr().out
        assert "matches batch audit" in output
        assert "DIVERGES" not in output
        assert "clean" in output and "unequal_pay" in output

    def test_stream_audit_json(self, capsys):
        import json

        assert main(["--stream-audit", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        by_name = {entry["scenario"]: entry for entry in payload}
        assert all(entry["matches_batch_audit"] for entry in payload)
        assert by_name["clean"]["violations"] == 0
        assert by_name["unequal_pay"]["violations"] > 0

    def test_json_output(self, capsys):
        import json

        assert main(["E6", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["experiment_id"] == "E6"
        assert payload[0]["tables"][0]["rows"]
