"""Unit tests for the experiment runner registry and the CLI."""

import pytest

from repro.cli import build_parser, main
from repro.errors import ReproError
from repro.experiments.runner import (
    EXPERIMENTS,
    experiment_runner,
    run_experiment,
)


class TestRunner:
    def test_registry_complete(self):
        assert set(EXPERIMENTS) == {f"E{i}" for i in range(1, 11)}

    def test_experiment_runner_resolves(self):
        runner = experiment_runner("e4")  # case-insensitive
        assert callable(runner)

    def test_unknown_experiment(self):
        with pytest.raises(ReproError, match="unknown experiment"):
            experiment_runner("E99")

    def test_run_experiment_forwards_kwargs(self):
        result = run_experiment("E6")
        assert result.experiment_id == "E6"
        assert result.tables

    def test_result_render(self):
        result = run_experiment("E4", seed=0)
        text = result.render()
        assert text.startswith("=== E4")
        assert "precision" in text


class TestCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        output = capsys.readouterr().out
        assert "E1" in output and "E7" in output

    def test_unknown_experiment_exit_code(self, capsys):
        assert main(["E99"]) == 2
        assert "unknown experiments" in capsys.readouterr().err

    def test_run_single_experiment(self, capsys):
        assert main(["E6"]) == 0
        output = capsys.readouterr().out
        assert "E6: preset policies" in output

    def test_seed_forwarded(self, capsys):
        assert main(["E4", "--seed", "1"]) == 0
        assert "per-axiom detection" in capsys.readouterr().out

    def test_parser_defaults(self):
        args = build_parser().parse_args([])
        assert args.experiments == []
        assert args.seed is None
        assert args.format == "text"

    def test_json_output(self, capsys):
        import json

        assert main(["E6", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["experiment_id"] == "E6"
        assert payload[0]["tables"][0]["rows"]
