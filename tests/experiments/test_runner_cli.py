"""Unit tests for the experiment runner registry and the CLI."""

import pytest

from repro.cli import build_parser, main
from repro.errors import ReproError
from repro.experiments.runner import (
    EXPERIMENTS,
    experiment_runner,
    run_experiment,
    run_many,
)


class TestRunner:
    def test_registry_complete(self):
        assert set(EXPERIMENTS) == {f"E{i}" for i in range(1, 11)}

    def test_experiment_runner_resolves(self):
        runner = experiment_runner("e4")  # case-insensitive
        assert callable(runner)

    def test_unknown_experiment(self):
        with pytest.raises(ReproError, match="unknown experiment"):
            experiment_runner("E99")

    def test_run_experiment_forwards_kwargs(self):
        result = run_experiment("E6")
        assert result.experiment_id == "E6"
        assert result.tables

    def test_result_render(self):
        result = run_experiment("E4", seed=0)
        text = result.render()
        assert text.startswith("=== E4")
        assert "precision" in text

    def test_run_many_parallel_matches_serial(self):
        """--jobs determinism at the runner level: same experiments,
        same order, byte-identical renders for any worker count."""
        ids = ["E6", "E4"]
        serial = run_many(ids, jobs=1, seed=0)
        parallel = run_many(ids, jobs=4, seed=0)
        assert [r.experiment_id for r in serial] == ids
        assert [r.render() for r in serial] == [r.render() for r in parallel]

    def test_run_many_invalid_jobs(self):
        with pytest.raises(ReproError, match="jobs must be >= 1"):
            run_many(["E6"], jobs=0)


class TestCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        output = capsys.readouterr().out
        assert "E1" in output and "E7" in output

    def test_unknown_experiment_exit_code(self, capsys):
        assert main(["E99"]) == 2
        assert "unknown experiments" in capsys.readouterr().err

    def test_run_single_experiment(self, capsys):
        assert main(["E6"]) == 0
        output = capsys.readouterr().out
        assert "E6: preset policies" in output

    def test_seed_forwarded(self, capsys):
        assert main(["E4", "--seed", "1"]) == 0
        assert "per-axiom detection" in capsys.readouterr().out

    def test_parser_defaults(self):
        args = build_parser().parse_args([])
        assert args.experiments == []
        assert args.seed is None
        assert args.format == "text"
        assert args.jobs == 1
        assert args.stream_audit is False

    def test_jobs_flag_output_identical(self, capsys):
        assert main(["E6", "--jobs", "1"]) == 0
        serial = capsys.readouterr().out
        assert main(["E6", "--jobs", "3"]) == 0
        parallel = capsys.readouterr().out
        assert serial == parallel

    def test_invalid_jobs_exit_code(self, capsys):
        assert main(["E6", "--jobs", "0"]) == 2
        assert "--jobs must be >= 1" in capsys.readouterr().err

    def test_stream_audit_text(self, capsys):
        assert main(["--stream-audit"]) == 0
        output = capsys.readouterr().out
        assert "matches batch audit" in output
        assert "DIVERGES" not in output
        assert "clean" in output and "unequal_pay" in output

    def test_stream_audit_json(self, capsys):
        import json

        assert main(["--stream-audit", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        by_name = {entry["scenario"]: entry for entry in payload}
        assert all(entry["matches_batch_audit"] for entry in payload)
        assert by_name["clean"]["violations"] == 0
        assert by_name["unequal_pay"]["violations"] > 0

    def test_json_output(self, capsys):
        import json

        assert main(["E6", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["experiment_id"] == "E6"
        assert payload[0]["tables"][0]["rows"]


class TestTraceCli:
    """The trace save/replay/info/query/stats workflow over both
    on-disk formats."""

    @pytest.fixture()
    def saved_db(self, tmp_path, capsys):
        path = tmp_path / "run.db"
        assert main(
            ["trace", "save", str(path), "--scenario", "unequal_pay"]
        ) == 0
        capsys.readouterr()
        return path

    def test_save_infers_sqlite_from_suffix(self, saved_db):
        from repro.core.store import is_sqlite_trace

        assert is_sqlite_trace(saved_db)

    def test_save_store_flag_overrides_suffix(self, tmp_path, capsys):
        path = tmp_path / "run.db"
        assert main(
            ["trace", "save", str(path), "--store", "persistent"]
        ) == 0
        assert (path / "meta.json").exists()

    def test_replay_sqlite_log_and_backend(self, saved_db, capsys):
        assert main(["trace", "replay", str(saved_db)]) == 0
        assert "batch audit" in capsys.readouterr().out
        assert main(
            ["trace", "replay", str(saved_db), "--stream-audit",
             "--trace-backend", "sqlite"]
        ) == 0
        assert "matches batch audit" in capsys.readouterr().out

    def test_info(self, saved_db, capsys):
        import json

        assert main(["trace", "info", str(saved_db)]) == 0
        out = capsys.readouterr().out
        assert "backend: sqlite" in out and "events: 46" in out
        assert main(
            ["trace", "info", str(saved_db), "--format", "json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["revision"] == 46
        assert payload["workers"] == 4

    def test_info_works_for_persistent_logs(self, tmp_path, capsys):
        path = tmp_path / "run-log"
        assert main(["trace", "save", str(path)]) == 0
        capsys.readouterr()
        assert main(["trace", "info", str(path)]) == 0
        assert "backend: persistent" in capsys.readouterr().out

    def test_query_entity_and_kind(self, saved_db, capsys):
        import json

        assert main(
            ["trace", "query", str(saved_db), "--entity", "w0001",
             "--kind", "payment_issued", "--format", "json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload) == 1
        assert payload[0]["kind"] == "payment_issued"
        assert payload[0]["worker_id"] == "w0001"

    def test_query_count_and_round(self, saved_db, capsys):
        assert main(
            ["trace", "query", str(saved_db), "--count",
             "--kind", "tasks_shown"]
        ) == 0
        assert capsys.readouterr().out.strip() == "4"
        assert main(
            ["trace", "query", str(saved_db), "--round", "0", "--count"]
        ) == 0
        assert int(capsys.readouterr().out) > 0

    def test_query_rejects_unknown_kind(self, saved_db, capsys):
        assert main(
            ["trace", "query", str(saved_db), "--kind", "no_such"]
        ) == 2
        assert "unknown event kind" in capsys.readouterr().err

    def test_query_rejects_conflicting_time_filters(self, saved_db, capsys):
        assert main(
            ["trace", "query", str(saved_db), "--round", "2", "--since", "1"]
        ) == 2
        assert "--round" in capsys.readouterr().err

    def test_query_rejects_entity_kind_without_entity(self, saved_db, capsys):
        assert main(
            ["trace", "query", str(saved_db), "--entity-kind", "worker"]
        ) == 2
        assert "--entity-kind requires" in capsys.readouterr().err

    def test_stats(self, saved_db, capsys):
        import json

        assert main(["trace", "stats", str(saved_db)]) == 0
        out = capsys.readouterr().out
        assert "violation-adjacent" in out
        assert main(
            ["trace", "stats", str(saved_db), "--format", "json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["events"] == 46
        assert payload["per_worker_events"]["w0001"] > 0

    def test_missing_log_exit_codes(self, tmp_path, capsys):
        for command in ("info", "query", "stats", "replay"):
            assert main(
                ["trace", command, str(tmp_path / "absent")]
            ) == 2
            assert "cannot" in capsys.readouterr().err


class TestTraceQueryCountByKind:
    @pytest.fixture()
    def saved_db(self, tmp_path, capsys):
        path = tmp_path / "run.db"
        assert main(
            ["trace", "save", str(path), "--scenario", "unequal_pay"]
        ) == 0
        capsys.readouterr()
        return path

    def test_text_histogram(self, saved_db, capsys):
        assert main(["trace", "query", str(saved_db), "--count-by-kind"]) == 0
        out = capsys.readouterr().out
        assert "payment_issued: 4" in out
        assert "(46 event(s))" in out

    def test_json_histogram(self, saved_db, capsys):
        import json

        assert main(
            ["trace", "query", str(saved_db), "--count-by-kind",
             "--format", "json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["count_by_kind"]["payment_issued"] == 4
        assert sum(payload["count_by_kind"].values()) == 46

    def test_composes_with_filters(self, saved_db, capsys):
        assert main(
            ["trace", "query", str(saved_db), "--count-by-kind",
             "--entity", "w0001"]
        ) == 0
        out = capsys.readouterr().out
        assert "worker_registered: 1" in out

    def test_conflicts_with_count(self, saved_db, capsys):
        assert main(
            ["trace", "query", str(saved_db), "--count", "--count-by-kind"]
        ) == 2
        assert "pick one" in capsys.readouterr().err


class TestTraceTailCli:
    """The live-ingestion workflow: tail -> kill -> resume -> query."""

    @pytest.fixture()
    def export_log(self, tmp_path, capsys):
        path = tmp_path / "export-log"
        assert main(
            ["trace", "save", str(path), "--scenario", "unequal_pay",
             "--segment-events", "10"]
        ) == 0
        capsys.readouterr()
        return path

    def _tail(self, *argv):
        return main(["trace", "tail", *argv, "--interval", "0"])

    def _resume(self, *argv):
        return main(["trace", "resume", *argv, "--interval", "0"])

    def test_tail_full_export_with_audit(self, export_log, tmp_path, capsys):
        dest = tmp_path / "live.db"
        assert self._tail(
            str(export_log), str(dest), "--audit",
            "--until-idle", "1", "--batch-events", "20",
        ) == 0
        out = capsys.readouterr().out
        assert "batch 0: +20 event(s)" in out
        assert "new: [axiom" in out  # unequal_pay has violations
        assert "stopped on idle" in out
        assert (tmp_path / "live.db.checkpoint").exists()
        assert main(["trace", "query", str(dest), "--count"]) == 0
        assert capsys.readouterr().out.strip() == "46"

    def test_kill_and_resume_round_trip(self, export_log, tmp_path, capsys):
        dest = tmp_path / "live.db"
        assert self._tail(
            str(export_log), str(dest),
            "--max-batches", "1", "--batch-events", "17",
        ) == 0
        capsys.readouterr()
        assert self._resume(
            str(export_log), str(dest),
            "--until-idle", "1", "--batch-events", "17",
        ) == 0
        out = capsys.readouterr().out
        assert "batch 1" in out  # batch numbering continues
        assert main(["trace", "info", str(dest), "--format", "json"]) == 0
        import json

        info = json.loads(capsys.readouterr().out)
        assert info["events"] == 46 and info["revision"] == 46

    def test_tail_persistent_destination(self, export_log, tmp_path, capsys):
        dest = tmp_path / "live-log"
        assert self._tail(
            str(export_log), str(dest), "--store", "persistent",
            "--until-idle", "1",
        ) == 0
        capsys.readouterr()
        assert main(["trace", "info", str(dest)]) == 0
        assert "backend: persistent" in capsys.readouterr().out

    def test_tail_json_summary(self, export_log, tmp_path, capsys):
        import json

        dest = tmp_path / "live.db"
        assert self._tail(
            str(export_log), str(dest), "--audit", "--until-idle", "1",
            "--format", "json",
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["events"] == 46
        assert payload["stopped_on"] == "idle"
        assert payload["violations"] > 0

    def test_tail_refuses_existing_checkpoint(
        self, export_log, tmp_path, capsys
    ):
        dest = tmp_path / "live.db"
        assert self._tail(
            str(export_log), str(dest), "--max-batches", "1",
        ) == 0
        capsys.readouterr()
        assert self._tail(str(export_log), str(dest)) == 2
        assert "trace resume" in capsys.readouterr().err

    def test_resume_without_checkpoint_fails(
        self, export_log, tmp_path, capsys
    ):
        dest = tmp_path / "live.db"
        assert main(["trace", "save", str(dest)]) == 0
        capsys.readouterr()
        assert self._resume(str(export_log), str(dest)) == 2
        assert "no ingest checkpoint" in capsys.readouterr().err

    def test_resume_with_garbled_checkpoint_fails(
        self, export_log, tmp_path, capsys
    ):
        dest = tmp_path / "live.db"
        assert self._tail(
            str(export_log), str(dest), "--max-batches", "1",
        ) == 0
        capsys.readouterr()
        (tmp_path / "live.db.checkpoint").write_text('{"format_version"')
        assert self._resume(str(export_log), str(dest)) == 2
        err = capsys.readouterr().err
        assert "half-written" in err

    def test_tail_csv_export(self, tmp_path, capsys):
        from repro.workloads.scenarios import unequal_pay_scenario

        trace = unequal_pay_scenario().trace
        csv_path = tmp_path / "payments.csv"
        with open(csv_path, "w", encoding="utf-8") as handle:
            handle.write("ts,who,task,amt\n")
            for event in trace:
                if event.kind == "payment_issued":
                    handle.write(
                        f"{event.time},{event.worker_id},"
                        f"{event.task_id},{event.amount}\n"
                    )
        dest = tmp_path / "payments.db"
        assert self._tail(
            str(csv_path), str(dest),
            "--csv-map", "ts=time", "--csv-map", "who=worker_id",
            "--csv-map", "task=task_id", "--csv-map", "amt=amount",
            "--csv-const", "kind=payment_issued",
            "--until-idle", "1",
        ) == 0
        capsys.readouterr()
        assert main(
            ["trace", "query", str(dest), "--count", "--kind",
             "payment_issued"]
        ) == 0
        assert capsys.readouterr().out.strip() == "4"

    def test_bad_flag_leaves_no_stray_destination(
        self, export_log, tmp_path, capsys
    ):
        dest = tmp_path / "live.db"
        assert self._tail(
            str(export_log), str(dest), "--batch-events", "0",
        ) == 2
        assert "batch_events" in capsys.readouterr().err
        assert not dest.exists()  # a corrected retry must work
        assert self._tail(
            str(export_log), str(dest), "--max-batches", "1",
        ) == 0

    def test_csv_without_mapping_fails(self, tmp_path, capsys):
        csv_path = tmp_path / "x.csv"
        csv_path.write_text("a,b\n")
        assert self._tail(str(csv_path), str(tmp_path / "x.db")) == 2
        assert "column mapping" in capsys.readouterr().err

    def test_bad_csv_map_syntax_fails(self, tmp_path, capsys):
        assert self._tail(
            str(tmp_path / "x.csv"), str(tmp_path / "x.db"),
            "--csv-map", "nonsense",
        ) == 2
        assert "COLUMN=FIELD" in capsys.readouterr().err


class TestCountByKindOrderingAndEmptyStats:
    """Satellite coverage: histogram key ordering and empty-store
    stats (exit 0, zeroed counters) over both on-disk formats."""

    @pytest.fixture(params=["sqlite", "persistent"])
    def saved_log(self, request, tmp_path, capsys):
        path = tmp_path / ("run.db" if request.param == "sqlite" else "run-log")
        assert main(
            ["trace", "save", str(path), "--scenario", "unequal_pay"]
        ) == 0
        capsys.readouterr()
        return path

    def test_json_histogram_keys_are_kind_sorted(self, saved_log, capsys):
        import json

        assert main(
            ["trace", "query", str(saved_log), "--count-by-kind",
             "--format", "json"]
        ) == 0
        histogram = json.loads(capsys.readouterr().out)["count_by_kind"]
        keys = list(histogram)
        assert keys == sorted(keys)
        assert len(keys) > 3  # a real multi-kind histogram, not a fluke

    def test_text_histogram_lines_are_kind_sorted(self, saved_log, capsys):
        assert main(
            ["trace", "query", str(saved_log), "--count-by-kind"]
        ) == 0
        lines = capsys.readouterr().out.strip().splitlines()[:-1]
        kinds = [line.split(":")[0] for line in lines]
        assert kinds == sorted(kinds)

    @pytest.fixture(params=["sqlite", "persistent"])
    def empty_log(self, request, tmp_path):
        from repro.core.store import PersistentTraceStore, SQLiteTraceStore

        if request.param == "sqlite":
            path = tmp_path / "empty.db"
            SQLiteTraceStore.create(path).close()
        else:
            path = tmp_path / "empty-log"
            PersistentTraceStore.create(path).close()
        return path

    def test_stats_on_empty_store_exits_zero_with_zeroed_counters(
        self, empty_log, capsys
    ):
        import json

        assert main(
            ["trace", "stats", str(empty_log), "--format", "json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["events"] == 0
        assert payload["end_time"] == 0
        assert payload["kind_counts"] == {}
        assert payload["per_worker_events"] == {}
        assert payload["per_task_events"] == {}
        assert payload["per_requester_events"] == {}
        assert all(
            count == 0 for count in payload["violation_adjacent"].values()
        )

    def test_stats_on_empty_store_text_mode(self, empty_log, capsys):
        assert main(["trace", "stats", str(empty_log)]) == 0
        out = capsys.readouterr().out
        assert "0 events" in out


class TestAuditJobsCli:
    """--audit-jobs on trace tail / trace resume / --stream-audit."""

    @pytest.fixture()
    def export_log(self, tmp_path, capsys):
        path = tmp_path / "export-log"
        assert main(
            ["trace", "save", str(path), "--scenario", "unequal_pay",
             "--segment-events", "10"]
        ) == 0
        capsys.readouterr()
        return path

    def test_tail_and_resume_with_audit_jobs(
        self, export_log, tmp_path, capsys
    ):
        dest = tmp_path / "live.db"
        assert main(
            ["trace", "tail", str(export_log), str(dest),
             "--audit", "--audit-jobs", "4", "--interval", "0",
             "--batch-events", "20", "--max-batches", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "batch 0: +20 event(s)" in out
        assert main(
            ["trace", "resume", str(export_log), str(dest),
             "--audit", "--audit-jobs", "4", "--interval", "0",
             "--until-idle", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "stopped on idle" in out

    def test_audit_jobs_without_audit_is_noted_never_fatal(
        self, export_log, tmp_path, capsys
    ):
        """Without --audit the flag does nothing, so any value — even
        an invalid one — is announced and neutralised instead of
        killing the tail."""
        dest = tmp_path / "live.db"
        assert main(
            ["trace", "tail", str(export_log), str(dest),
             "--audit-jobs", "0", "--interval", "0", "--until-idle", "1"]
        ) == 0
        err = capsys.readouterr().err
        assert "--audit-jobs" in err and "ignoring" in err

    def test_tail_rejects_bad_audit_jobs(self, export_log, tmp_path, capsys):
        dest = tmp_path / "live.db"
        assert main(
            ["trace", "tail", str(export_log), str(dest),
             "--audit", "--audit-jobs", "0", "--interval", "0"]
        ) == 2
        assert "audit_jobs" in capsys.readouterr().err
        assert not dest.exists()  # bad flag leaves no stray destination

    def test_stream_audit_cross_checks_sharded_engine(self, capsys):
        import json

        assert main(
            ["--stream-audit", "--audit-jobs", "2", "--format", "json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload and all(
            entry["matches_batch_audit"]
            and entry["matches_sharded_audit"]
            and entry["audit_jobs"] == 2
            for entry in payload
        )

    def test_stream_audit_rejects_negative_audit_jobs(self, capsys):
        assert main(["--stream-audit", "--audit-jobs", "-1"]) == 2
        assert "--audit-jobs" in capsys.readouterr().err

    def test_audit_jobs_without_stream_audit_warns(self, capsys):
        """The flag only shapes --stream-audit here; an experiment run
        that passes it gets a note, not a silent no-op (mirrors the
        ignored-experiment-ids warning)."""
        assert main(["E6", "--audit-jobs", "4"]) == 0
        err = capsys.readouterr().err
        assert "--audit-jobs" in err and "ignoring" in err


class TestPipelineTailCli:
    """--pipeline / multi-SRC merge on trace tail and trace resume."""

    @pytest.fixture()
    def export_log(self, tmp_path, capsys):
        path = tmp_path / "export-log"
        assert main(
            ["trace", "save", str(path), "--scenario", "unequal_pay",
             "--segment-events", "10"]
        ) == 0
        capsys.readouterr()
        return path

    @pytest.fixture()
    def split_exports(self, tmp_path):
        """The clean scenario cut into two JSONL exports, alternating
        whole same-timestamp groups so the merge never has to break a
        registration-before-use tie across sources."""
        from itertools import groupby

        from repro.ingest import export_jsonl
        from repro.workloads.scenarios import clean_scenario

        events = list(clean_scenario().trace)
        halves = ([], [])
        for i, (_, group) in enumerate(
            groupby(events, key=lambda event: event.time)
        ):
            halves[i % 2].extend(group)
        assert halves[0] and halves[1]
        paths = (tmp_path / "even.jsonl", tmp_path / "odd.jsonl")
        for path, half in zip(paths, halves):
            export_jsonl(half, path)
        return [str(path) for path in paths], len(events)

    def _tail(self, *argv):
        return main(["trace", "tail", *argv, "--interval", "0"])

    def _resume(self, *argv):
        return main(["trace", "resume", *argv, "--interval", "0"])

    def test_pipelined_tail_text_reports_lag_watermark(
        self, export_log, tmp_path, capsys
    ):
        dest = tmp_path / "live.db"
        assert self._tail(
            str(export_log), str(dest), "--pipeline", "--audit",
            "--until-idle", "1", "--batch-events", "20",
        ) == 0
        out = capsys.readouterr().out
        assert "stopped on idle" in out
        assert "peak audit lag:" in out
        assert (tmp_path / "live.db.checkpoint").exists()
        assert main(["trace", "query", str(dest), "--count"]) == 0
        assert capsys.readouterr().out.strip() == "46"

    def test_pipelined_tail_json_summary(self, export_log, tmp_path, capsys):
        import json

        dest = tmp_path / "live.db"
        assert self._tail(
            str(export_log), str(dest), "--pipeline",
            "--pipeline-depth", "2", "--audit", "--until-idle", "1",
            "--format", "json",
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["events"] == 46
        assert payload["pipelined"] is True
        assert payload["max_audit_lag_batches"] >= 0
        assert payload["max_audit_lag_events"] >= 0
        assert payload["violations"] > 0

    def test_sequential_tail_json_says_unpipelined(
        self, export_log, tmp_path, capsys
    ):
        import json

        dest = tmp_path / "live.db"
        assert self._tail(
            str(export_log), str(dest), "--audit", "--until-idle", "1",
            "--format", "json",
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["pipelined"] is False
        assert payload["max_audit_lag_batches"] == 0
        assert payload["max_audit_lag_events"] == 0

    def test_pipelined_kill_resume_round_trip(
        self, export_log, tmp_path, capsys
    ):
        import json

        dest = tmp_path / "live.db"
        assert self._tail(
            str(export_log), str(dest), "--pipeline", "--audit",
            "--max-batches", "1", "--batch-events", "17",
        ) == 0
        capsys.readouterr()
        assert self._resume(
            str(export_log), str(dest), "--pipeline", "--audit",
            "--until-idle", "1", "--batch-events", "17",
        ) == 0
        out = capsys.readouterr().out
        assert "batch 1" in out  # batch numbering continues
        assert main(["trace", "info", str(dest), "--format", "json"]) == 0
        info = json.loads(capsys.readouterr().out)
        assert info["events"] == 46 and info["revision"] == 46

    def test_merged_tail_interleaves_two_sources(
        self, split_exports, tmp_path, capsys
    ):
        import json

        paths, total = split_exports
        dest = tmp_path / "merged.db"
        assert self._tail(
            *paths, str(dest), "--audit", "--until-idle", "1",
            "--format", "json",
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["source"] == paths  # both named in the summary
        assert payload["events"] == total
        assert payload["violations"] == 0  # clean scenario stays clean

    def test_merged_pipelined_kill_resume(
        self, split_exports, tmp_path, capsys
    ):
        """The whole tentpole in one pass: merge two exports, pipeline
        the tail, kill mid-stream, resume from the atomic per-source
        checkpoint, and land the complete time-ordered trace."""
        paths, total = split_exports
        dest = tmp_path / "merged.db"
        assert self._tail(
            *paths, str(dest), "--pipeline", "--audit",
            "--max-batches", "2", "--batch-events", "7",
        ) == 0
        capsys.readouterr()
        assert self._resume(
            *paths, str(dest), "--pipeline", "--audit",
            "--until-idle", "1", "--batch-events", "7",
        ) == 0
        capsys.readouterr()
        assert main(["trace", "query", str(dest), "--count"]) == 0
        assert capsys.readouterr().out.strip() == str(total)

    def test_pipeline_depth_without_pipeline_is_noted(
        self, export_log, tmp_path, capsys
    ):
        dest = tmp_path / "live.db"
        assert self._tail(
            str(export_log), str(dest), "--pipeline-depth", "8",
            "--until-idle", "1",
        ) == 0
        err = capsys.readouterr().err
        assert "--pipeline-depth" in err and "ignoring" in err

    def test_bad_pipeline_depth_leaves_no_stray_destination(
        self, export_log, tmp_path, capsys
    ):
        dest = tmp_path / "live.db"
        assert self._tail(
            str(export_log), str(dest), "--pipeline",
            "--pipeline-depth", "0",
        ) == 2
        assert "pipeline_depth" in capsys.readouterr().err
        assert not dest.exists()
