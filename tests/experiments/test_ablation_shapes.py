"""Shape assertions for the ablation experiments E8 and E9."""

import pytest

from repro.experiments.e8_threshold_ablation import run as run_e8
from repro.experiments.e9_aggregation import run as run_e9


@pytest.fixture(scope="module")
def e8():
    return run_e8(n_workers=8, n_rounds=3, seed=2,
                  thresholds=(1.0, 0.6, 0.2))


@pytest.fixture(scope="module")
def e9():
    return run_e9(
        accuracies=(0.6, 0.8), redundancies=(1, 5, 9), n_tasks=200,
        market_workers=20, market_tasks=24, seed=3,
    )


class TestE8Shapes:
    def test_strict_threshold_flags_noise(self, e8):
        rows = {r["threshold"]: r for r in e8.table().rows_as_dicts()}
        assert rows[1.0]["noisy_violations"] > 0

    def test_lax_threshold_silences_noise(self, e8):
        rows = {r["threshold"]: r for r in e8.table().rows_as_dicts()}
        assert rows[0.2]["noisy_violations"] == 0

    def test_bias_caught_at_strict_thresholds(self, e8):
        rows = {r["threshold"]: r for r in e8.table().rows_as_dicts()}
        assert rows[1.0]["biased_violations"] > 0
        assert rows[0.6]["biased_violations"] > 0

    def test_noise_violations_monotone_in_threshold(self, e8):
        rows = e8.table().rows_as_dicts()  # thresholds descending
        noisy = [r["noisy_violations"] for r in rows]
        assert all(a >= b for a, b in zip(noisy, noisy[1:]))


class TestE9Shapes:
    def test_accuracy_rises_with_redundancy(self, e9):
        curve = e9.table()
        for column in ("p=0.6", "p=0.8"):
            values = curve.column(column)
            assert values[-1] > values[0]

    def test_empirical_beats_bound(self, e9):
        curve = e9.table()
        for p in ("0.6", "0.8"):
            empirical = curve.column(f"p={p}")
            bound = curve.column(f"bound_p={p}")
            assert all(e >= b - 0.05 for e, b in zip(empirical, bound))

    def test_weighted_and_em_dominate_majority(self, e9):
        comparison = {r["aggregator"]: r for r in e9.tables[1].rows_as_dicts()}
        assert comparison["weighted"]["accuracy"] >= (
            comparison["majority"]["accuracy"] - 1e-9
        )
        assert comparison["one_coin_em"]["accuracy"] >= (
            comparison["majority"]["accuracy"] - 1e-9
        )

    def test_all_gold_tasks_decided(self, e9):
        comparison = e9.tables[1]
        decided = comparison.column("tasks_decided")
        assert len(set(decided)) == 1  # every aggregator decided all
