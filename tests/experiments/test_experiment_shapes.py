"""Shape assertions for E1-E7 at small scale.

These tests assert the *qualitative* results DESIGN.md promises — who
wins, roughly by how much, where crossovers fall — not absolute
numbers.
"""

import pytest

from repro.experiments.e1_assignment_discrimination import run as run_e1
from repro.experiments.e2_transparency_retention import run as run_e2
from repro.experiments.e3_compensation_fairness import run as run_e3
from repro.experiments.e4_axiom_benchmarks import run as run_e4
from repro.experiments.e5_malice_detection import run as run_e5
from repro.experiments.e6_dsl_expressiveness import run as run_e6
from repro.experiments.e7_frontier import run as run_e7


@pytest.fixture(scope="module")
def e1():
    return run_e1(n_workers=40, n_tasks=30, seed=0)


@pytest.fixture(scope="module")
def e2():
    return run_e2(n_workers=40, rounds=10, tasks_per_round=20, seed=7,
                  policies=("opaque", "full"))


@pytest.fixture(scope="module")
def e3():
    return run_e3(n_workers=30, rounds=6, tasks_per_round=15, seed=11)


@pytest.fixture(scope="module")
def e5():
    return run_e5(n_workers=20, n_tasks=24, redundancy=5,
                  spam_fractions=(0.2, 0.4), seed=3)


@pytest.fixture(scope="module")
def e7():
    return run_e7(n_workers=30, n_tasks=20, seed=5,
                  epsilons=(0.0, 0.5, 1.0))


class TestE1Shapes:
    def test_requester_centric_is_discriminatory(self, e1):
        rows = {r["assigner"]: r for r in e1.table().rows_as_dicts()}
        assert rows["requester_centric"]["disparate_impact"] < 0.8

    def test_round_robin_is_fair(self, e1):
        rows = {r["assigner"]: r for r in e1.table().rows_as_dicts()}
        assert rows["round_robin"]["disparate_impact"] > 0.8

    def test_fairness_constrained_beats_requester_centric_parity(self, e1):
        rows = {r["assigner"]: r for r in e1.table().rows_as_dicts()}
        constrained = next(
            v for k, v in rows.items() if k.startswith("fairness_constrained")
        )
        assert constrained["disparate_impact"] > (
            rows["requester_centric"]["disparate_impact"]
        )

    def test_requester_centric_maximizes_gain_among_greedy(self, e1):
        rows = {r["assigner"]: r for r in e1.table().rows_as_dicts()}
        assert rows["requester_centric"]["requester_gain"] >= (
            rows["round_robin"]["requester_gain"]
        )

    def test_hungarian_at_least_greedy(self, e1):
        rows = {r["assigner"]: r for r in e1.table().rows_as_dicts()}
        assert rows["hungarian_requester"]["requester_gain"] >= (
            rows["requester_centric"]["requester_gain"] - 1e-9
        )


class TestE2Shapes:
    def test_transparency_improves_retention(self, e2):
        rows = {r["policy"]: r for r in e2.table().rows_as_dicts()}
        assert rows["full"]["retention"] >= rows["opaque"]["retention"]

    def test_curves_have_expected_length(self, e2):
        curve_table = e2.tables[1]
        assert len(curve_table.rows) == 10

    def test_coverage_reported(self, e2):
        rows = {r["policy"]: r for r in e2.table().rows_as_dicts()}
        assert rows["opaque"]["coverage"] == 0.0
        assert rows["full"]["coverage"] == 1.0


class TestE3Shapes:
    def test_fair_regimes_have_no_quality_aware_violations(self, e3):
        rows = {r["regime"]: r for r in e3.table().rows_as_dicts()}
        assert rows["fixed_reward"]["axiom3_violations"] == 0
        assert rows["quality_based"]["axiom3_violations"] == 0

    def test_unfair_regimes_flagged(self, e3):
        rows = {r["regime"]: r for r in e3.table().rows_as_dicts()}
        assert rows["wage_theft"]["axiom3_violations"] > 0
        assert rows["biased_review"]["axiom3_violations"] > 0

    def test_unfair_regimes_depress_quality_and_retention(self, e3):
        rows = {r["regime"]: r for r in e3.table().rows_as_dicts()}
        assert rows["wage_theft"]["mean_quality"] < (
            rows["fixed_reward"]["mean_quality"]
        )
        assert rows["wage_theft"]["retention"] <= (
            rows["fixed_reward"]["retention"]
        )

    def test_strict_reading_flags_quality_based(self, e3):
        ablation = {r["regime"]: r for r in e3.tables[1].rows_as_dicts()}
        assert ablation["quality_based"]["strict_violations"] > 0
        assert ablation["fixed_reward"]["strict_violations"] == 0


class TestE4Shapes:
    def test_perfect_precision_recall(self):
        result = run_e4(seed=0)
        per_axiom = result.table()
        assert all(p == 1.0 for p in per_axiom.column("precision"))
        assert all(r == 1.0 for r in per_axiom.column("recall"))

    def test_every_scenario_exact_match(self):
        result = run_e4(seed=0)
        detail = result.tables[1]
        assert all(detail.column("exact_match"))


class TestE5Shapes:
    def test_ensemble_at_least_timing(self, e5):
        rows = e5.table().rows_as_dicts()
        by_key = {(r["spam_fraction"], r["detector"]): r["f1"] for r in rows}
        for fraction in (0.2, 0.4):
            assert by_key[(fraction, "ensemble")] >= (
                by_key[(fraction, "timing")] - 1e-9
            )

    def test_detection_useful_at_forty_percent(self, e5):
        rows = e5.table().rows_as_dicts()
        ensemble = next(
            r for r in rows
            if r["detector"] == "ensemble" and r["spam_fraction"] == 0.4
        )
        assert ensemble["f1"] > 0.6  # Vuurens regime still detectable


class TestE6Shapes:
    def test_all_presets_expressible(self):
        result = run_e6()
        table = result.table()
        assert all(table.column("round_trips"))

    def test_turkopticon_superset_of_amt(self):
        result = run_e6()
        comparison = result.tables[1]
        row = next(
            r for r in comparison.rows_as_dicts()
            if r["left"] == "amt_basic" and r["right"] == "amt_turkopticon"
        )
        assert row["right_superset"]
        assert row["coverage_gap"] > 0


class TestE7Shapes:
    def test_epsilon_fair_gain_monotone_decreasing(self, e7):
        rows = [
            r for r in e7.table().rows_as_dicts()
            if r["assigner"] == "epsilon_fair"
        ]
        gains = [r["requester_gain"] for r in rows]
        assert all(a >= b - 1e-9 for a, b in zip(gains, gains[1:]))

    def test_epsilon_fair_parity_improves(self, e7):
        rows = [
            r for r in e7.table().rows_as_dicts()
            if r["assigner"] == "epsilon_fair"
        ]
        assert rows[-1]["disparate_impact"] >= rows[0]["disparate_impact"]

    def test_constrained_parity_tightens_with_lower_epsilon(self, e7):
        rows = [
            r for r in e7.table().rows_as_dicts()
            if r["assigner"] == "fairness_constrained"
        ]
        # epsilon=0 (first row) is the most constrained -> best parity.
        assert rows[0]["disparate_impact"] >= rows[-1]["disparate_impact"]
