"""Unit + integration tests for the multi-seed replication harness."""

import random

import pytest

from repro.errors import ReproError
from repro.experiments.replication import (
    MetricSummary,
    replicate,
    resolve_backend,
    significant_difference,
)


def seeded_metrics_experiment(seed):
    """Module-level (hence picklable) seeded experiment for the
    process-pool determinism tests."""
    rng = random.Random(seed)
    return {"value": rng.random(), "steps": float(rng.randrange(100))}


class TestMetricSummary:
    def test_basic_stats(self):
        summary = MetricSummary("m", (1.0, 2.0, 3.0))
        assert summary.mean == pytest.approx(2.0)
        assert summary.std == pytest.approx(1.0)
        assert summary.minimum == 1.0
        assert summary.maximum == 3.0
        assert summary.n == 3

    def test_single_value(self):
        summary = MetricSummary("m", (5.0,))
        assert summary.std == 0.0
        assert summary.interval() == (5.0, 5.0)

    def test_interval_contains_mean(self):
        summary = MetricSummary("m", (1.0, 2.0, 3.0, 4.0))
        low, high = summary.interval()
        assert low <= summary.mean <= high


class TestReplicate:
    def test_aggregates_metrics(self):
        result = replicate(
            lambda seed: {"value": float(seed), "constant": 7.0},
            seeds=[1, 2, 3],
        )
        assert result.summary("value").mean == pytest.approx(2.0)
        assert result.summary("constant").std == 0.0

    def test_table_output(self):
        result = replicate(lambda seed: {"x": float(seed)}, seeds=[1, 2])
        table = result.table("demo")
        assert "n=2 seeds" in table.title
        assert table.column("metric") == ["x"]

    def test_unknown_metric(self):
        result = replicate(lambda seed: {"x": 1.0}, seeds=[1])
        with pytest.raises(ReproError, match="no metric"):
            result.summary("y")

    def test_mismatched_metric_names(self):
        def flaky(seed):
            return {"a": 1.0} if seed == 1 else {"b": 1.0}

        with pytest.raises(ReproError, match="expected"):
            replicate(flaky, seeds=[1, 2])

    def test_empty_seeds(self):
        with pytest.raises(ReproError, match="at least one seed"):
            replicate(lambda seed: {"x": 1.0}, seeds=[])


class TestParallelReplication:
    """The --jobs determinism regression: worker count must never leak
    into results."""

    @staticmethod
    def _experiment(seed):
        """A cheap but genuinely seeded simulation metric."""
        from repro.core.entities import Requester
        from repro.platform.session import Session, SessionConfig
        from repro.workloads.skills import standard_vocabulary
        from repro.workloads.tasks import TaskStream
        from repro.workloads.workers import PopulationSpec, population

        vocabulary = standard_vocabulary()
        workers, behaviors = population(
            PopulationSpec(size=10, seed=seed), vocabulary
        )
        session = Session(
            config=SessionConfig(rounds=4, tasks_per_round=5, seed=seed),
            workers=workers, behaviors=behaviors,
            requesters=[Requester(
                requester_id="r0001", hourly_wage=6.0, payment_delay=5,
                recruitment_criteria="any", rejection_criteria="quality",
            )],
            task_factory=TaskStream(
                vocabulary=vocabulary, tasks_per_round=5, skills_per_task=1
            ),
        )
        result = session.run()
        return {
            "retention": result.retention,
            "mean_quality": result.rounds[-1].mean_quality,
            "total_paid": sum(r.total_paid for r in result.rounds),
        }

    def test_jobs_produce_byte_identical_tables(self):
        seeds = [1, 2, 3, 4, 5, 6]
        serial = replicate(self._experiment, seeds, jobs=1)
        parallel = replicate(self._experiment, seeds, jobs=4)
        assert serial.table("determinism").render() == (
            parallel.table("determinism").render()
        )
        assert serial == parallel

    def test_values_stay_in_seed_order(self):
        result = replicate(
            lambda seed: {"value": float(seed)}, seeds=[5, 3, 9, 1], jobs=4
        )
        assert result.summary("value").values == (5.0, 3.0, 9.0, 1.0)

    def test_more_jobs_than_seeds(self):
        result = replicate(
            lambda seed: {"value": float(seed)}, seeds=[1, 2], jobs=16
        )
        assert result.summary("value").values == (1.0, 2.0)

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ReproError, match="jobs must be >= 1"):
            replicate(lambda seed: {"x": 1.0}, seeds=[1], jobs=0)

    def test_mismatched_metrics_detected_in_parallel(self):
        def flaky(seed):
            return {"a": 1.0} if seed == 1 else {"b": 1.0}

        with pytest.raises(ReproError, match="expected"):
            replicate(flaky, seeds=[1, 2], jobs=2)


class TestProcessBackend:
    """backend="process" must be byte-identical to threads, and must
    degrade to threads (with a warning, never an error) for closures."""

    def test_process_matches_thread_and_serial(self):
        seeds = [3, 1, 4, 1, 5, 9]
        serial = replicate(seeded_metrics_experiment, seeds, jobs=1)
        threaded = replicate(seeded_metrics_experiment, seeds, jobs=3)
        processed = replicate(
            seeded_metrics_experiment, seeds, jobs=3, backend="process"
        )
        assert processed == serial
        assert processed == threaded
        assert processed.table("determinism").render() == (
            serial.table("determinism").render()
        )

    def test_unpicklable_experiment_falls_back_to_threads(self):
        offset = 10.0
        with pytest.warns(RuntimeWarning, match="picklable"):
            result = replicate(
                lambda seed: {"x": seed + offset},
                seeds=[1, 2, 3],
                jobs=2,
                backend="process",
            )
        assert result.summary("x").values == (11.0, 12.0, 13.0)

    def test_serial_run_skips_pool_even_for_process_backend(self):
        # jobs=1 never spawns workers, so even an unpicklable closure
        # runs unwarned — the pickle probe is deferred to pool spawn.
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            result = replicate(
                lambda seed: {"value": float(seed)},
                seeds=[7], jobs=1, backend="process",
            )
        assert result.summary("value").values == (7.0,)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ReproError, match="unknown replication backend"):
            replicate(seeded_metrics_experiment, seeds=[1], backend="fiber")

    def test_resolve_backend_passthrough(self):
        assert resolve_backend("thread", object()) == "thread"
        assert resolve_backend("process", seeded_metrics_experiment) == (
            "process"
        )


class TestRunManyProcessBackend:
    def test_registry_runners_cross_process_boundary(self):
        from repro.experiments.runner import run_many

        serial = run_many(["E6", "E8"], jobs=1)
        processed = run_many(["E6", "E8"], jobs=2, backend="process")
        assert [r.render() for r in serial] == [
            r.render() for r in processed
        ]


class TestSignificance:
    def test_separated_intervals_significant(self):
        low = MetricSummary("a", (1.0, 1.1, 0.9, 1.05))
        high = MetricSummary("b", (5.0, 5.1, 4.9, 5.05))
        assert significant_difference(low, high)

    def test_overlapping_not_significant(self):
        left = MetricSummary("a", (1.0, 2.0, 3.0))
        right = MetricSummary("b", (1.5, 2.5, 3.5))
        assert not significant_difference(left, right)


class TestRetentionReplication:
    def test_transparency_effect_across_seeds(self):
        """The paper's E2 claim holds as a multi-seed effect, not a
        single lucky seed: full disclosure beats opaque on mean
        retention across replications."""
        from repro.core.entities import Requester
        from repro.platform.review import SilentRejectReview
        from repro.platform.session import Session, SessionConfig
        from repro.transparency.enforcement import PolicyEnforcer
        from repro.transparency.presets import preset
        from repro.workloads.skills import standard_vocabulary
        from repro.workloads.tasks import TaskStream
        from repro.workloads.workers import PopulationSpec, population

        def run(policy_name):
            def experiment(seed):
                vocabulary = standard_vocabulary()
                workers, behaviors = population(
                    PopulationSpec(size=30, seed=seed), vocabulary
                )
                enforcer = (
                    PolicyEnforcer(preset(policy_name))
                    if policy_name != "none" else None
                )
                session = Session(
                    config=SessionConfig(
                        rounds=10, tasks_per_round=15, seed=seed,
                        review_policy=SilentRejectReview(threshold=0.6),
                        transparency=enforcer,
                    ),
                    workers=workers, behaviors=behaviors,
                    requesters=[Requester(
                        requester_id="r0001", hourly_wage=6.0,
                        payment_delay=5, recruitment_criteria="any",
                        rejection_criteria="quality",
                    )],
                    task_factory=TaskStream(
                        vocabulary=standard_vocabulary(),
                        tasks_per_round=15, skills_per_task=1,
                    ),
                )
                return {"retention": session.run().retention}

            return replicate(experiment, seeds=[1, 2, 3, 4])

        opaque = run("none").summary("retention")
        full = run("full").summary("retention")
        assert full.mean > opaque.mean
