"""Shape assertions for the E10 power analysis (small scale)."""

import pytest

from repro.experiments.e10_power_analysis import run as run_e10
from repro.platform.visibility import BiasedVisibility


@pytest.fixture(scope="module")
def e10():
    return run_e10(
        bias_probabilities=(0.0, 0.5, 1.0),
        n_workers=8, n_rounds=3, replications=5, seed=17,
    )


class TestE10Shapes:
    def test_no_false_positives_at_zero_bias(self, e10):
        rows = {r["bias_probability"]: r for r in e10.table().rows_as_dicts()}
        assert rows[0.0]["detection_rate"] == 0.0
        assert rows[0.0]["mean_score"] == 1.0

    def test_full_power_at_total_bias(self, e10):
        rows = {r["bias_probability"]: r for r in e10.table().rows_as_dicts()}
        assert rows[1.0]["detection_rate"] == 1.0

    def test_violations_monotone_in_bias(self, e10):
        violations = [
            r["mean_violations"] for r in e10.table().rows_as_dicts()
        ]
        assert all(a <= b + 1e-9 for a, b in zip(violations, violations[1:]))

    def test_score_monotone_decreasing_in_bias(self, e10):
        scores = [r["mean_score"] for r in e10.table().rows_as_dicts()]
        assert all(a >= b - 1e-9 for a, b in zip(scores, scores[1:]))


class TestStochasticBiasedVisibility:
    def test_probability_validated(self):
        with pytest.raises(ValueError):
            BiasedVisibility(attribute="g", disadvantaged_value="x",
                             reward_ceiling=0.2, bias_probability=1.5)

    def test_zero_probability_never_filters(self, vocabulary):
        import random

        from tests.conftest import make_task, make_worker

        policy = BiasedVisibility(
            attribute="group", disadvantaged_value="green",
            reward_ceiling=0.2, bias_probability=0.0,
        )
        green = make_worker("w1", vocabulary, declared={"group": "green"})
        tasks = [make_task("t1", vocabulary, reward=0.5)]
        for seed in range(10):
            assert policy.visible_tasks(green, tasks, random.Random(seed))

    def test_partial_probability_sometimes_filters(self, vocabulary):
        import random

        from tests.conftest import make_task, make_worker

        policy = BiasedVisibility(
            attribute="group", disadvantaged_value="green",
            reward_ceiling=0.2, bias_probability=0.5,
        )
        green = make_worker("w1", vocabulary, declared={"group": "green"})
        tasks = [make_task("t1", vocabulary, reward=0.5)]
        rng = random.Random(0)
        outcomes = {
            bool(policy.visible_tasks(green, tasks, rng)) for _ in range(40)
        }
        assert outcomes == {True, False}
