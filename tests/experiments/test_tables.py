"""Unit tests for the Table/series output helpers."""

import pytest

from repro.experiments.tables import Table, series_table


class TestTable:
    def test_add_and_column(self):
        table = Table(title="t", columns=("name", "value"))
        table.add_row("a", 1.0)
        table.add_row("b", 2.0)
        assert table.column("value") == [1.0, 2.0]
        assert table.column("name") == ["a", "b"]

    def test_wrong_arity_rejected(self):
        table = Table(title="t", columns=("a", "b"))
        with pytest.raises(ValueError, match="cells"):
            table.add_row(1)

    def test_unknown_column(self):
        table = Table(title="t", columns=("a",))
        with pytest.raises(KeyError):
            table.column("z")

    def test_row_dicts(self):
        table = Table(title="t", columns=("a", "b"))
        table.add_row(1, 2)
        assert table.row_dict(0) == {"a": 1, "b": 2}
        assert table.rows_as_dicts() == [{"a": 1, "b": 2}]

    def test_render_alignment_and_formatting(self):
        table = Table(title="demo", columns=("name", "score", "ok"))
        table.add_row("longish-name", 0.12345, True)
        text = table.render()
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "0.123" in text  # default 3-digit floats
        assert "yes" in text    # booleans humanized
        assert set(lines[2]) <= {"-", " "}

    def test_render_empty(self):
        table = Table(title="empty", columns=("a", "b"))
        text = table.render()
        assert "a" in text and "b" in text

    def test_float_precision(self):
        table = Table(title="t", columns=("x",), float_precision=1)
        table.add_row(0.46)
        assert "0.5" in table.render()


class TestSeriesTable:
    def test_series(self):
        table = series_table(
            "fig", "round",
            series={"a": [1.0, 2.0], "b": [3.0, 4.0]},
            x_values=[1, 2],
        )
        assert table.columns == ("round", "a", "b")
        assert table.column("a") == [1.0, 2.0]
        assert table.column("round") == [1, 2]
