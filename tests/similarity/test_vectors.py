"""Unit + property tests for vector and attribute similarities."""

import pytest
from hypothesis import given, strategies as st

from repro.core.entities import SkillVocabulary
from repro.similarity.vectors import (
    attribute_overlap_similarity,
    cosine_similarity,
    jaccard_similarity,
    skill_cosine,
    skill_jaccard,
)


class TestCosine:
    def test_identical(self):
        assert cosine_similarity((1.0, 0.0), (1.0, 0.0)) == 1.0

    def test_orthogonal(self):
        assert cosine_similarity((1.0, 0.0), (0.0, 1.0)) == 0.0

    def test_zero_vectors(self):
        assert cosine_similarity((0.0, 0.0), (0.0, 0.0)) == 1.0
        assert cosine_similarity((0.0, 0.0), (1.0, 0.0)) == 0.0

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            cosine_similarity((1.0,), (1.0, 0.0))

    @given(
        st.lists(st.floats(0.0, 10.0), min_size=1, max_size=8),
    )
    def test_self_similarity_is_one(self, values):
        assert cosine_similarity(values, values) == pytest.approx(1.0)

    @given(
        st.lists(st.floats(0.0, 10.0), min_size=3, max_size=6),
        st.lists(st.floats(0.0, 10.0), min_size=3, max_size=6),
    )
    def test_bounded_and_symmetric(self, left, right):
        size = min(len(left), len(right))
        left, right = left[:size], right[:size]
        forward = cosine_similarity(left, right)
        backward = cosine_similarity(right, left)
        assert 0.0 <= forward <= 1.0
        assert forward == pytest.approx(backward)


class TestJaccard:
    def test_identical(self):
        assert jaccard_similarity((True, False), (True, False)) == 1.0

    def test_disjoint(self):
        assert jaccard_similarity((True, False), (False, True)) == 0.0

    def test_empty(self):
        assert jaccard_similarity((False, False), (False, False)) == 1.0

    def test_partial(self):
        assert jaccard_similarity(
            (True, True, False), (True, False, True)
        ) == pytest.approx(1 / 3)

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            jaccard_similarity((True,), (True, False))


class TestSkillMeasures:
    def test_skill_cosine_matches_vector_cosine(self, vocabulary):
        left = vocabulary.vector(("survey", "labeling"))
        right = vocabulary.vector(("survey",))
        expected = cosine_similarity(left.as_floats(), right.as_floats())
        assert skill_cosine(left, right) == pytest.approx(expected)

    def test_skill_jaccard(self, vocabulary):
        left = vocabulary.vector(("survey", "labeling"))
        right = vocabulary.vector(("survey", "writing"))
        assert skill_jaccard(left, right) == pytest.approx(1 / 3)


class TestAttributeOverlap:
    def test_identical(self):
        attrs = {"group": "blue", "age": 30}
        assert attribute_overlap_similarity(attrs, attrs) == 1.0

    def test_empty_both(self):
        assert attribute_overlap_similarity({}, {}) == 1.0

    def test_one_sided_key_counts_against(self):
        assert attribute_overlap_similarity({"a": 1}, {}) == 0.0

    def test_partial_agreement(self):
        left = {"a": 1, "b": 2}
        right = {"a": 1, "b": 3}
        assert attribute_overlap_similarity(left, right) == 0.5

    def test_numeric_tolerance(self):
        left = {"ratio": 0.80}
        right = {"ratio": 0.85}
        assert attribute_overlap_similarity(left, right) == 0.0
        assert attribute_overlap_similarity(
            left, right, numeric_tolerance=0.1
        ) == 1.0

    def test_booleans_are_categorical(self):
        # True != 1-ish tolerance games: bools must match exactly.
        assert attribute_overlap_similarity(
            {"x": True}, {"x": False}, numeric_tolerance=10.0
        ) == 0.0
        assert attribute_overlap_similarity({"x": True}, {"x": True}) == 1.0

    def test_mixed_types_disagree(self):
        assert attribute_overlap_similarity({"x": "1"}, {"x": 1}) == 0.0
