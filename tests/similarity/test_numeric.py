"""Unit tests for numeric tolerance similarities."""

import pytest
from hypothesis import given, strategies as st

from repro.similarity.numeric import (
    absolute_tolerance_similarity,
    relative_tolerance_similarity,
    reward_comparability,
)


class TestAbsoluteTolerance:
    def test_exact_zero_tolerance(self):
        assert absolute_tolerance_similarity(1.0, 1.0) == 1.0
        assert absolute_tolerance_similarity(1.0, 1.001) == 0.0

    def test_within_tolerance(self):
        assert absolute_tolerance_similarity(1.0, 1.05, tolerance=0.1) == 1.0

    def test_linear_decay(self):
        assert absolute_tolerance_similarity(
            0.0, 0.15, tolerance=0.1
        ) == pytest.approx(0.5)

    def test_beyond_double_tolerance(self):
        assert absolute_tolerance_similarity(0.0, 0.25, tolerance=0.1) == 0.0

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError):
            absolute_tolerance_similarity(0.0, 0.0, tolerance=-1.0)


class TestRelativeTolerance:
    def test_zeros_identical(self):
        assert relative_tolerance_similarity(0.0, 0.0) == 1.0

    def test_within_relative_tolerance(self):
        assert relative_tolerance_similarity(100.0, 105.0, tolerance=0.1) == 1.0

    def test_far_apart(self):
        assert relative_tolerance_similarity(1.0, 100.0, tolerance=0.1) == 0.0

    @given(st.floats(0.01, 1000.0))
    def test_self_similarity(self, value):
        assert relative_tolerance_similarity(value, value) == 1.0

    @given(st.floats(0.01, 1000.0), st.floats(0.01, 1000.0))
    def test_symmetric_and_bounded(self, left, right):
        forward = relative_tolerance_similarity(left, right)
        assert 0.0 <= forward <= 1.0
        assert forward == pytest.approx(
            relative_tolerance_similarity(right, left)
        )


class TestRewardComparability:
    def test_comparable(self):
        assert reward_comparability(0.10, 0.11) == 1.0

    def test_not_comparable(self):
        assert reward_comparability(0.10, 0.50) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            reward_comparability(-0.1, 0.1)
