"""Unit + property tests for n-gram text similarity."""

import pytest
from hypothesis import given, strategies as st

from repro.similarity.text import ngram_profile, ngram_similarity


class TestNgramProfile:
    def test_basic_trigrams(self):
        profile = ngram_profile("abcd", n=3)
        assert profile == {"abc": 1, "bcd": 1}

    def test_case_normalization(self):
        assert ngram_profile("ABC") == ngram_profile("abc")

    def test_whitespace_collapse(self):
        assert ngram_profile("a  b\tc") == ngram_profile("a b c")

    def test_short_text(self):
        assert ngram_profile("ab", n=3) == {"ab": 1}

    def test_empty_text(self):
        assert ngram_profile("") == {}

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            ngram_profile("abc", n=0)


class TestNgramSimilarity:
    def test_identical_texts(self):
        assert ngram_similarity("hello world", "hello world") == 1.0

    def test_disjoint_texts(self):
        assert ngram_similarity("aaaa", "zzzz") == 0.0

    def test_both_empty(self):
        assert ngram_similarity("", "") == 1.0

    def test_one_empty(self):
        assert ngram_similarity("abc", "") == 0.0

    def test_near_duplicates_score_high(self):
        left = "the quick brown fox jumps over the lazy dog"
        right = "the quick brown fox jumped over the lazy dog"
        assert ngram_similarity(left, right) > 0.85

    def test_unrelated_score_low(self):
        left = "the quick brown fox"
        right = "statistical mechanics of lattices"
        assert ngram_similarity(left, right) < 0.3

    @given(st.text(alphabet="abcdef ", min_size=0, max_size=40))
    def test_self_similarity(self, text):
        assert ngram_similarity(text, text) == pytest.approx(1.0)

    @given(
        st.text(alphabet="abcdef ", min_size=0, max_size=30),
        st.text(alphabet="abcdef ", min_size=0, max_size=30),
    )
    def test_symmetric_and_bounded(self, left, right):
        forward = ngram_similarity(left, right)
        assert 0.0 <= forward <= 1.0
        assert forward == pytest.approx(ngram_similarity(right, left))
