"""Unit tests for the similarity protocol and contribution dispatch."""

import pytest

from repro.core.entities import Contribution
from repro.similarity.base import SimilarityThreshold, exact_equality, similar
from repro.similarity.contributions import ContributionSimilarity


class TestExactEquality:
    def test_equal(self):
        assert exact_equality("a", "a") == 1.0
        assert exact_equality(1, 1.0) == 1.0  # numeric equality semantics

    def test_unequal(self):
        assert exact_equality("a", "b") == 0.0


class TestSimilarityThreshold:
    def test_perfect_equality_threshold(self):
        judge = SimilarityThreshold(exact_equality, threshold=1.0)
        assert judge("x", "x")
        assert not judge("x", "y")

    def test_relaxed_threshold(self):
        judge = SimilarityThreshold(lambda a, b: 0.7, threshold=0.5)
        assert judge("anything", "else")

    def test_score_passthrough(self):
        judge = SimilarityThreshold(lambda a, b: 0.42, threshold=0.5)
        assert judge.score(None, None) == pytest.approx(0.42)

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            SimilarityThreshold(exact_equality, threshold=1.5)

    def test_similar_helper(self):
        assert similar("a", "a")
        assert not similar("a", "b")
        assert similar("a", "b", measure=lambda x, y: 0.9, threshold=0.5)


def _contribution(cid, payload, task_id="t1", worker_id="w1"):
    return Contribution(cid, task_id, worker_id, payload, submitted_at=0)


class TestContributionSimilarity:
    def test_label_kind_exact(self):
        sim = ContributionSimilarity()
        left = _contribution("c1", "A")
        right = _contribution("c2", "A", worker_id="w2")
        assert sim(left, right, kind="label") == 1.0
        wrong = _contribution("c3", "B", worker_id="w3")
        assert sim(left, wrong, kind="label") == 0.0

    def test_text_kind(self):
        sim = ContributionSimilarity()
        left = _contribution("c1", "the cat sat on the mat")
        right = _contribution("c2", "the cat sat on the mat", worker_id="w2")
        assert sim(left, right, kind="text") == pytest.approx(1.0)

    def test_ranking_kind(self):
        sim = ContributionSimilarity()
        left = _contribution("c1", ("a", "b", "c"))
        right = _contribution("c2", ("a", "b", "c"), worker_id="w2")
        assert sim(left, right, kind="ranking") == pytest.approx(1.0)

    def test_numeric_kind(self):
        sim = ContributionSimilarity()
        left = _contribution("c1", 100.0)
        right = _contribution("c2", 104.0, worker_id="w2")
        assert sim(left, right, kind="numeric") == 1.0
        far = _contribution("c3", 500.0, worker_id="w3")
        assert sim(left, far, kind="numeric") == 0.0

    def test_unknown_kind_falls_back_to_equality(self):
        sim = ContributionSimilarity()
        left = _contribution("c1", "A")
        right = _contribution("c2", "A", worker_id="w2")
        assert sim(left, right, kind="mystery") == 1.0

    def test_cross_task_rejected(self):
        sim = ContributionSimilarity()
        left = _contribution("c1", "A", task_id="t1")
        right = _contribution("c2", "A", task_id="t2")
        with pytest.raises(ValueError, match="same task"):
            sim(left, right)

    def test_non_sequence_ranking_degrades(self):
        sim = ContributionSimilarity()
        assert sim.payloads(1, 1, kind="ranking") == 1.0

    def test_non_numeric_numeric_degrades(self):
        assert ContributionSimilarity().payloads("a", "a", kind="numeric") == 1.0

    def test_custom_measure(self):
        sim = ContributionSimilarity(measures={"always": lambda a, b: 0.5})
        assert sim.payloads("x", "y", kind="always") == 0.5
