"""Unit + property tests for ranked-list similarity (DCG/nDCG [10])."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.similarity.ranking import (
    dcg,
    kendall_tau_similarity,
    ndcg,
    ranked_list_similarity,
)


class TestDCG:
    def test_single_item(self):
        assert dcg([3.0]) == pytest.approx(3.0)

    def test_discounting(self):
        # Second position discounted by log2(3).
        assert dcg([0.0, 2.0]) == pytest.approx(2.0 / math.log2(3))

    def test_empty(self):
        assert dcg([]) == 0.0


class TestNDCG:
    def test_ideal_order(self):
        assert ndcg([3.0, 2.0, 1.0]) == pytest.approx(1.0)

    def test_reversed_order_below_one(self):
        assert ndcg([1.0, 2.0, 3.0]) < 1.0

    def test_all_zero(self):
        assert ndcg([0.0, 0.0]) == 1.0

    def test_empty(self):
        assert ndcg([]) == 1.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ndcg([-1.0])

    @given(st.lists(st.floats(0.0, 10.0), min_size=1, max_size=8))
    def test_bounded(self, relevances):
        assert 0.0 <= ndcg(relevances) <= 1.0 + 1e-9


class TestRankedListSimilarity:
    def test_identical(self):
        assert ranked_list_similarity(("a", "b", "c"), ("a", "b", "c")) == (
            pytest.approx(1.0)
        )

    def test_both_empty(self):
        assert ranked_list_similarity((), ()) == 1.0

    def test_disjoint_low(self):
        assert ranked_list_similarity(("a", "b"), ("x", "y")) < 0.1

    def test_swap_penalized_less_than_disjoint(self):
        swapped = ranked_list_similarity(("a", "b", "c"), ("b", "a", "c"))
        disjoint = ranked_list_similarity(("a", "b", "c"), ("x", "y", "z"))
        assert disjoint < swapped < 1.0

    @given(st.permutations(["a", "b", "c", "d"]))
    def test_symmetric(self, permuted):
        reference = ["a", "b", "c", "d"]
        forward = ranked_list_similarity(reference, permuted)
        backward = ranked_list_similarity(permuted, reference)
        assert forward == pytest.approx(backward)
        assert 0.0 <= forward <= 1.0


class TestKendallTau:
    def test_identical(self):
        assert kendall_tau_similarity(("a", "b", "c"), ("a", "b", "c")) == 1.0

    def test_reversed(self):
        assert kendall_tau_similarity(("a", "b", "c"), ("c", "b", "a")) == 0.0

    def test_single_swap(self):
        assert kendall_tau_similarity(
            ("a", "b", "c"), ("b", "a", "c")
        ) == pytest.approx(2 / 3)

    def test_insufficient_overlap(self):
        assert kendall_tau_similarity(("a",), ("a",)) == 1.0
        assert kendall_tau_similarity(("a", "b"), ("a", "x")) == 0.5
