"""Differential tests: streaming audits must equal batch audits.

The :class:`~repro.core.audit.StreamingAuditEngine` contract is exact
equivalence — after observing the first ``N`` events of a trace, its
``snapshot()`` must equal ``AuditEngine.audit`` of the ``N``-event
prefix: same scores, same opportunity counts, same violations in the
same order.  These tests enforce the contract *at every prefix length*
over every labelled scenario (clean and malicious) and over
hypothesis-randomised market scripts, including the pair-sampling
fallback and the replay fallback for custom axioms.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.audit import AuditEngine, StreamingAuditEngine
from repro.core.axiom_assignment import (
    RequesterFairnessInAssignment,
    WorkerFairnessInAssignment,
)
from repro.core.axioms import Axiom, AxiomRegistry, default_registry
from repro.core.axiom_transparency import (
    REQUESTER_MANDATED_FIELDS,
    WORKER_MANDATED_FIELDS,
    requester_subject,
    worker_subject,
)
from repro.core.entities import Requester
from repro.core.events import TasksShown
from repro.core.trace import PlatformTrace
from repro.platform.behavior import behavior_named
from repro.platform.market import CrowdsourcingPlatform
from repro.platform.review import QualityThresholdReview, SilentRejectReview
from repro.workloads.scenarios import all_scenarios
from repro.workloads.skills import standard_vocabulary

from tests.conftest import make_task, make_worker

_VOCABULARY = standard_vocabulary()
_BEHAVIORS = ["diligent", "sloppy", "spammer", "malicious"]
_ACTIONS = [
    "work", "abandon", "cancel", "browse",
    "bonus_kept", "bonus_reneged", "disclose", "flag", "tick",
]


def assert_equivalent_at_every_prefix(trace, registry=None):
    """Replay ``trace`` event by event; streaming must equal batch at
    every prefix (strict dataclass equality: violations included)."""
    engine = AuditEngine(**({} if registry is None else {"registry": registry}))
    streaming = StreamingAuditEngine(
        **({} if registry is None else {"registry": registry})
    )
    prefix = PlatformTrace()
    for position, event in enumerate(trace, start=1):
        streaming.observe(event)
        prefix.append(event)
        snapshot = streaming.snapshot()
        batch = engine.audit(prefix)
        assert snapshot == batch, (
            f"streaming snapshot diverged from batch audit at prefix "
            f"{position}/{len(trace)}"
        )


class TestScenarioDifferential:
    """Streaming ≡ batch on every labelled Section 3.1 scenario."""

    @pytest.mark.parametrize(
        "scenario", all_scenarios(0), ids=lambda scenario: scenario.name
    )
    def test_every_prefix_matches_batch(self, scenario):
        assert_equivalent_at_every_prefix(scenario.trace)

    @pytest.mark.parametrize(
        "scenario", all_scenarios(7), ids=lambda scenario: scenario.name
    )
    def test_every_prefix_matches_batch_alternate_seed(self, scenario):
        assert_equivalent_at_every_prefix(scenario.trace)

    def test_streaming_still_detects_labelled_axioms(self):
        """End-of-trace snapshots reproduce each scenario's labels."""
        for scenario in all_scenarios(0):
            streaming = StreamingAuditEngine()
            streaming.observe_all(scenario.trace)
            report = streaming.snapshot()
            fired = {
                result.axiom_id
                for result in report.results
                if result.violation_count
            }
            assert scenario.violated_axioms <= fired, scenario.name

    def test_pair_sampling_fallback_matches_batch(self):
        """Tiny max_pairs forces the sampled path on axioms 1 and 2."""
        registry = default_registry(
            axiom1=WorkerFairnessInAssignment(max_pairs=3, sample_seed=11),
            axiom2=RequesterFairnessInAssignment(max_pairs=2, sample_seed=11),
        )
        for scenario in all_scenarios(0):
            assert_equivalent_at_every_prefix(scenario.trace, registry=registry)


class _EventCountAxiom(Axiom):
    """A custom axiom with no incremental implementation: exercises the
    ReplayChecker fallback inside the streaming engine."""

    axiom_id = 42
    title = "every trace under 10k events"

    def check(self, trace):
        return self._result([], opportunities=min(len(trace), 10_000))


class TestReplayFallback:
    def test_custom_axiom_streams_via_replay(self):
        registry = AxiomRegistry().register(_EventCountAxiom())
        trace = all_scenarios(0)[0].trace
        assert_equivalent_at_every_prefix(trace, registry=registry)


@st.composite
def audit_scripts(draw):
    """A random but always-valid platform run touching every axiom's
    evidence: work/review/pay cycles, cancellations, bonuses,
    disclosures, malice flags, and (optionally) delayed payments."""
    n_workers = draw(st.integers(2, 5))
    delayed_payments = draw(st.booleans())
    silent_reviews = draw(st.booleans())
    threshold = draw(st.sampled_from([0.0, 0.3, 0.6]))
    steps = draw(
        st.lists(
            st.tuples(
                st.integers(0, n_workers - 1),
                st.sampled_from(_BEHAVIORS),
                st.sampled_from(_ACTIONS),
            ),
            min_size=1,
            max_size=18,
        )
    )
    seed = draw(st.integers(0, 10_000))
    return n_workers, delayed_payments, silent_reviews, threshold, steps, seed


def _run_script(n_workers, delayed_payments, silent_reviews, threshold,
                steps, seed):
    from repro.compensation.discriminatory import DelayedPaymentScheme

    review = (
        SilentRejectReview(threshold=threshold)
        if silent_reviews
        else QualityThresholdReview(threshold=threshold)
    )
    platform = CrowdsourcingPlatform(
        review_policy=review,
        pricing=DelayedPaymentScheme(delay_ticks=3) if delayed_payments else None,
        seed=seed,
    )
    requester = Requester(
        requester_id="r0001", hourly_wage=6.0, payment_delay=1,
        recruitment_criteria="any", rejection_criteria="quality",
    )
    platform.register_requester(requester)
    workers = [
        make_worker(f"w{i}", _VOCABULARY, skills=("survey",))
        for i in range(n_workers)
    ]
    for worker in workers:
        platform.register_worker(worker)
    rng = random.Random(seed)
    for step_index, (worker_index, behavior_name, action) in enumerate(steps):
        worker = workers[worker_index]
        if action == "bonus_kept":
            platform.promise_bonus(requester.requester_id, worker.worker_id,
                                   0.25, condition="streak")
            platform.pay_bonus(requester.requester_id, worker.worker_id, 0.25)
            continue
        if action == "bonus_reneged":
            platform.promise_bonus(requester.requester_id, worker.worker_id,
                                   0.4, condition="streak")
            continue
        if action == "disclose":
            field_name = rng.choice(REQUESTER_MANDATED_FIELDS)
            platform.disclose(requester_subject(requester.requester_id),
                              field_name, getattr(requester, field_name))
            worker_field = rng.choice(WORKER_MANDATED_FIELDS)
            platform.disclose(worker_subject(worker.worker_id), worker_field,
                              "n/a", audience_worker_id=worker.worker_id)
            continue
        if action == "flag":
            platform.flag_malice(worker.worker_id, detector="script", score=0.9)
            continue
        if action == "tick":
            platform.clock.tick(2)
            platform.settle_due_payments()
            continue
        task = make_task(
            f"t{step_index:03d}", _VOCABULARY, skills=("survey",),
            reward=0.1, gold_answer="A", duration=2,
        )
        platform.post_task(task)
        if action == "browse":
            platform.browse(worker.worker_id)
            if rng.random() < 0.5:
                other = workers[(worker_index + 1) % n_workers]
                platform.browse(other.worker_id)
            platform.close_task(task.task_id)
            continue
        platform.start_work(worker.worker_id, task.task_id)
        if action == "abandon":
            platform.abandon_work(worker.worker_id, task.task_id)
            platform.close_task(task.task_id)
        elif action == "cancel":
            platform.cancel_task(task.task_id)
        else:
            platform.process_contribution(
                worker.worker_id, task.task_id, behavior_named(behavior_name)
            )
            platform.close_task(task.task_id)
    platform.settle_due_payments()
    return platform.trace


class TestRandomisedDifferential:
    @settings(max_examples=20, deadline=None)
    @given(script=audit_scripts())
    def test_every_prefix_matches_batch(self, script):
        assert_equivalent_at_every_prefix(_run_script(*script))

    @settings(max_examples=10, deadline=None)
    @given(script=audit_scripts())
    def test_attached_engine_tracks_live_trace(self, script):
        """An engine attached before the run observes appends as they
        happen and lands on the batch verdict."""
        trace = _run_script(*script)
        live = PlatformTrace()
        streaming = StreamingAuditEngine().attach(live)
        for event in trace:
            live.append(event)
        assert streaming.observed_events == len(trace)
        assert streaming.snapshot() == AuditEngine().audit(live)

    @settings(max_examples=10, deadline=None)
    @given(script=audit_scripts())
    def test_snapshot_is_pure(self, script):
        """Snapshots do not mutate checker state: two snapshots with no
        events in between are identical, and interleaved snapshots do
        not perturb the final verdict."""
        trace = _run_script(*script)
        streaming = StreamingAuditEngine()
        rng = random.Random(0)
        for event in trace:
            streaming.observe(event)
            if rng.random() < 0.2:
                streaming.snapshot()
        assert streaming.snapshot() == streaming.snapshot()
        assert streaming.snapshot() == AuditEngine().audit(
            PlatformTrace(trace)
        )


class TestSamplingEquivalenceUnderGrowth:
    def test_worker_population_crossing_sampling_cap(self):
        """The axiom 1 checker flips to the sampled path mid-stream as
        the population grows; equivalence must survive the flip."""
        registry = default_registry(
            axiom1=WorkerFairnessInAssignment(max_pairs=6, sample_seed=3),
        )
        platform = CrowdsourcingPlatform(seed=0)
        platform.register_requester(Requester(requester_id="r0001"))
        trace_events = []
        # 6 workers -> 15 pairs > 6: sampling engages around worker 4.
        for i in range(6):
            worker = make_worker(f"w{i}", _VOCABULARY, skills=("survey",))
            platform.register_worker(worker)
            task = make_task(f"t{i}", _VOCABULARY, skills=("survey",))
            platform.post_task(task)
            for registered in range(i + 1):
                platform.browse(f"w{registered}")
            platform.clock.tick(1)
        trace_events = list(platform.trace)
        assert any(isinstance(e, TasksShown) for e in trace_events)
        assert_equivalent_at_every_prefix(platform.trace, registry=registry)
