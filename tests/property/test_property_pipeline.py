"""Differential tests for the staged ingest pipeline.

Three contracts, mirroring the acceptance criteria of the pipeline PR:

* **Batch-boundary equivalence.**  A pipelined runner with coalescing
  disabled must deliver, at every batch boundary, exactly what the
  sequential runner delivers — same indexes, revisions, positions,
  verdicts, new-violation deltas, and stats (modulo the audit-lag
  watermark, which only the pipeline carries) — over all 12 labelled
  scenarios and both on-disk formats, with byte-identical destination
  stores.

* **Kill/resume equivalence.**  Killing a pipelined ingest at any
  batch count (including between append and checkpoint) and resuming —
  pipelined or sequential, in either direction — must converge on a
  destination byte-identical to an uninterrupted sequential ingest.

* **Merge determinism.**  Ingesting N exports through
  :class:`~repro.ingest.MergedSource` yields a time-sorted stream that
  preserves every export's internal order and is bit-for-bit invariant
  under batch size, kill/resume, and sequential-vs-pipelined drivers.
"""

import dataclasses
import os
import sqlite3

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.store import PersistentTraceStore, SQLiteTraceStore
from repro.core.trace import PlatformTrace
from repro.ingest import (
    IngestRunner,
    JSONLExportSource,
    MergedSource,
    PipelinedIngestRunner,
    checkpoint_path_for,
    export_jsonl,
    read_checkpoint,
)
from repro.workloads.scenarios import all_scenarios


def _scenarios_by_name(seed=0):
    return {scenario.name: scenario for scenario in all_scenarios(seed)}


_SCENARIO_NAMES = sorted(_scenarios_by_name())


def _make_store(dest, backend):
    return (
        SQLiteTraceStore.create(dest)
        if backend == "sqlite"
        else PersistentTraceStore.create(dest)
    )


def _reopen(dest, backend):
    return (
        SQLiteTraceStore.open(dest)
        if backend == "sqlite"
        else PersistentTraceStore.open(dest)
    )


def _fingerprint(path):
    path = os.fspath(path)
    if os.path.isdir(path):
        return {
            name: open(os.path.join(path, name), "rb").read()
            for name in sorted(os.listdir(path))
        }
    with sqlite3.connect(path) as conn:
        return "\n".join(conn.iterdump())


def _normalise_stats(stats):
    return (
        None if stats is None
        else dataclasses.replace(stats, audit_lag=None)
    )


def _batch_key(batch):
    return (
        batch.index, batch.events, batch.store_revision,
        batch.source_position, batch.report, batch.new_violations,
        _normalise_stats(batch.stats),
    )


def _collecting_run(runner, collected):
    try:
        return runner.run(
            idle_limit=1, on_batch=lambda batch: collected.append(batch)
        )
    finally:
        runner.close()


# ----------------------------------------------------------------------
# Batch-boundary equivalence: pipelined (uncoalesced) == sequential.


def assert_pipelined_equals_sequential(
    events, tmp_path, backend, batch_events
):
    export = export_jsonl(events, tmp_path / "export.jsonl")
    suffix = ".db" if backend == "sqlite" else ""

    seq_dest = tmp_path / f"seq{suffix}"
    seq_store = _make_store(seq_dest, backend)
    seq_batches = []
    seq_summary = _collecting_run(
        IngestRunner(
            JSONLExportSource(export), seq_store,
            batch_events=batch_events, audit=True, stats_cadence=2,
        ),
        seq_batches,
    )
    seq_store.close()

    pipe_dest = tmp_path / f"pipe{suffix}"
    pipe_store = _make_store(pipe_dest, backend)
    pipe_batches = []
    pipe_summary = _collecting_run(
        PipelinedIngestRunner(
            JSONLExportSource(export), pipe_store,
            batch_events=batch_events, audit=True, stats_cadence=2,
            pipeline_depth=3, coalesce_audits=False,
        ),
        pipe_batches,
    )
    pipe_store.close()

    assert [_batch_key(b) for b in pipe_batches] == [
        _batch_key(b) for b in seq_batches
    ], "pipelined batch stream diverged from sequential"
    assert dataclasses.replace(
        pipe_summary, max_audit_lag_batches=0, max_audit_lag_events=0
    ) == seq_summary
    assert _fingerprint(pipe_dest) == _fingerprint(seq_dest)


@pytest.mark.parametrize("backend", ["persistent", "sqlite"])
@pytest.mark.parametrize("name", _SCENARIO_NAMES)
def test_pipelined_batches_equal_sequential(name, backend, tmp_path):
    events = list(_scenarios_by_name()[name].trace)
    assert_pipelined_equals_sequential(
        events, tmp_path, backend, batch_events=25
    )


@settings(max_examples=8, deadline=None)
@given(
    name=st.sampled_from(_SCENARIO_NAMES),
    backend=st.sampled_from(["persistent", "sqlite"]),
    batch_events=st.integers(min_value=1, max_value=64),
)
def test_pipelined_equivalence_over_random_batch_sizes(
    name, backend, batch_events, tmp_path_factory
):
    events = list(_scenarios_by_name()[name].trace)
    tmp_path = tmp_path_factory.mktemp("pipe-diff")
    assert_pipelined_equals_sequential(
        events, tmp_path, backend, batch_events=batch_events
    )


def test_coalesced_final_verdict_equals_sequential(tmp_path):
    """With coalescing ON intermediate boundaries may be skipped, but
    the final report and the stored bytes must still match."""
    events = list(_scenarios_by_name()["unequal_pay"].trace)
    export = export_jsonl(events, tmp_path / "export.jsonl")

    seq_store = SQLiteTraceStore.create(tmp_path / "seq.db")
    seq = IngestRunner(
        JSONLExportSource(export), seq_store, batch_events=10, audit=True
    ).run(idle_limit=1)
    seq_store.close()

    pipe_store = SQLiteTraceStore.create(tmp_path / "pipe.db")
    runner = PipelinedIngestRunner(
        JSONLExportSource(export), pipe_store, batch_events=10,
        audit=True, pipeline_depth=4,
    )
    try:
        pipe = runner.run(idle_limit=1)
    finally:
        runner.close()
    pipe_store.close()

    assert pipe.report == seq.report
    assert _fingerprint(tmp_path / "pipe.db") == _fingerprint(
        tmp_path / "seq.db"
    )


# ----------------------------------------------------------------------
# Kill/resume equivalence, including cross-mode resumes.


_RUNNERS = {
    "sequential": IngestRunner,
    "pipelined": PipelinedIngestRunner,
}


def assert_pipelined_kill_resume_identical(
    events, tmp_path, backend, batch_events, kill_after_batches,
    orphan_events=0, killed_mode="pipelined", resumed_mode="pipelined",
):
    export = export_jsonl(events, tmp_path / "export.jsonl")
    suffix = ".db" if backend == "sqlite" else ""

    baseline = tmp_path / f"uninterrupted{suffix}"
    store = _make_store(baseline, backend)
    IngestRunner(
        JSONLExportSource(export), store, batch_events=batch_events
    ).run(idle_limit=1)
    store.close()

    killed = tmp_path / f"killed{suffix}"
    checkpoint = checkpoint_path_for(killed)
    store = _make_store(killed, backend)
    runner = _RUNNERS[killed_mode](
        JSONLExportSource(export), store,
        checkpoint_path=checkpoint, batch_events=batch_events,
    )
    try:
        runner.run(max_batches=kill_after_batches, idle_limit=1)
    finally:
        runner.close()
    if orphan_events:
        orphan = JSONLExportSource(export)
        orphan.seek(read_checkpoint(checkpoint).source_position)
        polled = orphan.poll(orphan_events)
        if polled:
            store.append_batch(polled)
            save = getattr(store, "save", None)
            if callable(save):
                save()
    store.close()

    reopened = _reopen(killed, backend)
    resumed = _RUNNERS[resumed_mode].resume(
        JSONLExportSource(export), reopened, checkpoint,
        batch_events=batch_events,
    )
    try:
        resumed.run(idle_limit=1)
    finally:
        resumed.close()
    reopened.close()

    assert _fingerprint(killed) == _fingerprint(baseline), (
        f"{killed_mode} kill after {kill_after_batches} batches "
        f"(+{orphan_events} orphans) resumed {resumed_mode} diverged "
        f"from the uninterrupted ingest on the {backend} backend"
    )
    final = _reopen(killed, backend)
    assert list(final.events) == events
    final.close()


@pytest.mark.parametrize("backend", ["persistent", "sqlite"])
@pytest.mark.parametrize("kill_after", [1, 2, 3])
def test_pipelined_kill_resume_is_byte_identical(
    backend, kill_after, tmp_path
):
    events = list(_scenarios_by_name()["clean"].trace)
    assert_pipelined_kill_resume_identical(
        events, tmp_path, backend,
        batch_events=30, kill_after_batches=kill_after,
    )


@pytest.mark.parametrize("backend", ["persistent", "sqlite"])
def test_pipelined_kill_with_orphan_append(backend, tmp_path):
    events = list(_scenarios_by_name()["clean"].trace)
    assert_pipelined_kill_resume_identical(
        events, tmp_path, backend,
        batch_events=30, kill_after_batches=2, orphan_events=17,
    )


@pytest.mark.parametrize(
    "killed_mode, resumed_mode",
    [("pipelined", "sequential"), ("sequential", "pipelined")],
)
def test_cross_mode_resume_is_byte_identical(
    killed_mode, resumed_mode, tmp_path
):
    """A checkpoint written by either runner is resumable by the other."""
    events = list(_scenarios_by_name()["clean"].trace)
    assert_pipelined_kill_resume_identical(
        events, tmp_path, "sqlite",
        batch_events=30, kill_after_batches=2,
        killed_mode=killed_mode, resumed_mode=resumed_mode,
    )


@settings(max_examples=8, deadline=None)
@given(
    name=st.sampled_from(_SCENARIO_NAMES),
    backend=st.sampled_from(["persistent", "sqlite"]),
    batch_events=st.integers(min_value=5, max_value=70),
    kill_after=st.integers(min_value=1, max_value=4),
    orphan=st.integers(min_value=0, max_value=20),
    resumed_mode=st.sampled_from(["pipelined", "sequential"]),
)
def test_pipelined_kill_resume_over_random_splits(
    name, backend, batch_events, kill_after, orphan, resumed_mode,
    tmp_path_factory,
):
    events = list(_scenarios_by_name()[name].trace)
    tmp_path = tmp_path_factory.mktemp("pipe-kill")
    assert_pipelined_kill_resume_identical(
        events, tmp_path, backend,
        batch_events=batch_events, kill_after_batches=kill_after,
        orphan_events=orphan, resumed_mode=resumed_mode,
    )


# ----------------------------------------------------------------------
# Merge determinism under randomised interleavings.


def _split_exports(events, assignment, n_sources, tmp_path):
    """Scatter ``events`` over ``n_sources`` JSONL exports, preserving
    relative order (each export stays time-sorted because the original
    stream is)."""
    streams = [[] for _ in range(n_sources)]
    for event, pick in zip(events, assignment):
        streams[pick % n_sources].append(event)
    return [
        export_jsonl(stream, tmp_path / f"part-{i}.jsonl")
        for i, stream in enumerate(streams)
    ]


def _merged_ingest(
    paths, batch_events, pipelined=False, kill_after=None
):
    """Ingest the merge into memory; returns the stored event list."""
    def make_source():
        return MergedSource(
            [JSONLExportSource(path) for path in paths]
        )

    trace = PlatformTrace()
    if kill_after is not None:
        import tempfile

        with tempfile.TemporaryDirectory() as scratch:
            checkpoint = os.path.join(scratch, "merge.ckpt")
            runner = IngestRunner(
                make_source(), trace, checkpoint_path=checkpoint,
                batch_events=batch_events,
            )
            runner.run(max_batches=kill_after, idle_limit=1)
            resumed = IngestRunner.resume(
                make_source(), trace, checkpoint,
                batch_events=batch_events,
            )
            resumed.run(idle_limit=1)
            return list(trace)
    runner_cls = PipelinedIngestRunner if pipelined else IngestRunner
    runner = runner_cls(make_source(), trace, batch_events=batch_events)
    try:
        runner.run(idle_limit=1)
    finally:
        runner.close()
    return list(trace)


def _is_subsequence(needle, haystack):
    position = iter(haystack)
    return all(item in position for item in needle)


def _assert_valid_merge(result, events, assignment, n_sources):
    from collections import Counter

    from repro.core.serialize import event_to_dict

    assert all(
        result[i].time <= result[i + 1].time
        for i in range(len(result) - 1)
    ), "merged stream is not time-sorted"
    # Same multiset of events (duplicates included), and each source's
    # internal order preserved as a subsequence of the merge.
    serialised = [repr(event_to_dict(event)) for event in result]
    original = [repr(event_to_dict(event)) for event in events]
    assert Counter(serialised) == Counter(original)
    for source_index in range(n_sources):
        expected = [
            line for line, pick in zip(original, assignment)
            if pick % n_sources == source_index
        ]
        assert _is_subsequence(expected, serialised), (
            f"source {source_index}'s internal order was not preserved"
        )


@settings(max_examples=10, deadline=None)
@given(
    name=st.sampled_from(_SCENARIO_NAMES),
    n_sources=st.integers(min_value=2, max_value=4),
    data=st.data(),
    batch_a=st.integers(min_value=1, max_value=40),
    batch_b=st.integers(min_value=1, max_value=40),
    kill_after=st.integers(min_value=1, max_value=3),
)
def test_merged_ingest_is_deterministic(
    name, n_sources, data, batch_a, batch_b, kill_after,
    tmp_path_factory,
):
    events = list(_scenarios_by_name()[name].trace)
    assignment = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=n_sources - 1),
            min_size=len(events), max_size=len(events),
        )
    )
    tmp_path = tmp_path_factory.mktemp("merge")
    paths = _split_exports(events, assignment, n_sources, tmp_path)

    reference = _merged_ingest(paths, batch_events=batch_a)
    _assert_valid_merge(reference, events, assignment, n_sources)

    assert _merged_ingest(paths, batch_events=batch_b) == reference, (
        "merge order changed with the batch size"
    )
    assert _merged_ingest(
        paths, batch_events=batch_a, pipelined=True
    ) == reference, "pipelined merge diverged from sequential"
    assert _merged_ingest(
        paths, batch_events=batch_a, kill_after=kill_after
    ) == reference, "kill/resume changed the merge order"
