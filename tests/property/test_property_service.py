"""Differential tests: the service is the library, over the wire.

Two acceptance contracts for the audit-as-a-service PR, each proven
over all 12 labelled scenarios:

* **Query equivalence.**  Every ``TraceQuery`` shape the endpoint
  accepts (filters, projections, count, count-by-kind, seq windows)
  returns over HTTP exactly what the same query object returns locally
  against the same events.
* **Report equivalence.**  A service-hosted delta audit renders, in
  every registered format, byte-identical to the CLI path
  (``AuditEngine().audit`` + ``audit_document`` + exporter) over the
  same store — the only degree of freedom being the document's
  ``source`` label, pinned to the tenant name on both sides.
"""

import pytest

from repro.core.audit import AuditEngine
from repro.core.serialize import event_to_dict
from repro.core.trace import PlatformTrace
from repro.report import audit_document, jsonable, make_exporter
from repro.query import TraceQuery
from repro.service import AuditService, ServiceClient
from repro.workloads.scenarios import all_scenarios

SCENARIOS = all_scenarios(0)

#: Query shapes exercised per scenario: (client kwargs, local builder).
QUERY_SHAPES = [
    ("everything", {}, lambda q: q),
    ("one_kind", {"kind": ["payment_issued"]},
     lambda q: q.of_kind("payment_issued")),
    ("two_kinds", {"kind": ["payment_issued", "contribution_reviewed"]},
     lambda q: q.of_kind("payment_issued", "contribution_reviewed")),
    ("entity", {"entity": ["w0001"]}, lambda q: q.entity("w0001")),
    ("entity_role", {"entity": ["w0001"], "entity_kind": "worker"},
     lambda q: q.entity("w0001", kind="worker")),
    ("time_window", {"since": 2, "until": 9},
     lambda q: q.time_range(2, 9)),
    ("one_round", {"round_tick": 3}, lambda q: q.at_round(3)),
    ("seq_window", {"seq_start": 5, "seq_end": 40},
     lambda q: q.seq_range(5, 40)),
    ("limited", {"kind": ["tasks_shown"], "limit": 3},
     lambda q: q.of_kind("tasks_shown").take(3)),
]


@pytest.fixture(scope="module")
def hosted():
    """One service hosting all 12 scenarios as memory tenants."""
    with AuditService(None, port=0) as service:
        client = ServiceClient(service.url, timeout=60.0)
        local = {}
        for scenario in SCENARIOS:
            client.create_tenant(scenario.name, backend="memory")
            client.append(
                scenario.name,
                [event_to_dict(e) for e in scenario.trace],
            )
            local[scenario.name] = scenario.trace
        yield client, local


@pytest.mark.parametrize(
    "shape, kwargs, build",
    QUERY_SHAPES,
    ids=[shape for shape, _, _ in QUERY_SHAPES],
)
@pytest.mark.parametrize(
    "scenario", SCENARIOS, ids=[s.name for s in SCENARIOS]
)
def test_query_over_http_equals_local(hosted, scenario, shape, kwargs, build):
    client, local = hosted
    trace = local[scenario.name]
    query = build(TraceQuery())

    wire_events = client.query(scenario.name, **kwargs)["events"]
    assert wire_events == [
        event_to_dict(e) for e in query.run(trace)
    ]

    wire_count = client.query(scenario.name, count=True, **kwargs)["count"]
    assert wire_count == query.count(trace)

    wire_histogram = client.query(
        scenario.name, count_by_kind=True, **kwargs
    )["count_by_kind"]
    assert wire_histogram == query.count_by_kind(trace)

    wire_rows = client.query(
        scenario.name, project=["time", "kind", "worker_id"], **kwargs
    )["rows"]
    assert wire_rows == [
        jsonable(row)
        for row in query.project(trace, "time", "kind", "worker_id")
    ]


@pytest.mark.parametrize("fmt", ["csv", "jsonl", "md", "html"])
@pytest.mark.parametrize(
    "scenario", SCENARIOS, ids=[s.name for s in SCENARIOS]
)
def test_service_report_equals_cli_path(hosted, scenario, fmt):
    client, local = hosted
    client.run_audit(scenario.name)
    served = client.report(scenario.name, format=fmt)

    # The CLI path (trace report): batch audit + document + exporter.
    store = PlatformTrace(local[scenario.name]).store
    report = AuditEngine().audit(store)
    document = audit_document(report, store, source=scenario.name)
    assert served == make_exporter(fmt).render(document)


@pytest.mark.parametrize(
    "scenario", SCENARIOS, ids=[s.name for s in SCENARIOS]
)
def test_stats_and_info_over_http_equal_local(hosted, scenario):
    from repro.query import trace_info, trace_stats

    client, local = hosted
    trace = local[scenario.name]
    assert client.stats(scenario.name) == trace_stats(trace).as_dict()
    wire_info = client.info(scenario.name)
    local_info = trace_info(trace)
    # The hosted store and the local one agree on everything except
    # the backend-specific path, which only disk stores carry.
    wire_info.pop("path", None)
    local_info.pop("path", None)
    assert wire_info == local_info
