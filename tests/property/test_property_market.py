"""Property tests over randomly scripted markets.

Invariants that must hold for *any* sequence of valid market
operations: trace time-ordering, ledger/trace payment agreement,
computed-attribute derivation consistency, and audit purity.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.core.audit import AuditEngine
from repro.core.entities import Requester
from repro.core.events import PaymentIssued
from repro.platform.behavior import behavior_named
from repro.platform.market import CrowdsourcingPlatform
from repro.platform.review import QualityThresholdReview
from repro.workloads.skills import standard_vocabulary

from tests.conftest import make_task, make_worker

_VOCABULARY = standard_vocabulary()
_BEHAVIORS = ["diligent", "sloppy", "spammer", "malicious"]


@st.composite
def market_scripts(draw):
    """A random but always-valid market interaction script."""
    n_workers = draw(st.integers(1, 5))
    steps = draw(
        st.lists(
            st.tuples(
                st.integers(0, n_workers - 1),          # worker index
                st.sampled_from(_BEHAVIORS),            # behaviour
                st.sampled_from(["work", "abandon", "cancel", "browse"]),
            ),
            min_size=1,
            max_size=25,
        )
    )
    return n_workers, steps, draw(st.integers(0, 10_000))


def _run_script(n_workers, steps, seed):
    platform = CrowdsourcingPlatform(
        review_policy=QualityThresholdReview(threshold=0.5), seed=seed
    )
    platform.register_requester(Requester(requester_id="r0001"))
    workers = [
        make_worker(f"w{i}", _VOCABULARY, skills=("survey",))
        for i in range(n_workers)
    ]
    for worker in workers:
        platform.register_worker(worker)
    for step_index, (worker_index, behavior_name, action) in enumerate(steps):
        worker = workers[worker_index]
        task = make_task(
            f"t{step_index:03d}", _VOCABULARY, skills=("survey",),
            reward=0.1, gold_answer="A", duration=2,
        )
        platform.post_task(task)
        if action == "browse":
            platform.browse(worker.worker_id)
            platform.close_task(task.task_id)
            continue
        platform.start_work(worker.worker_id, task.task_id)
        if action == "abandon":
            platform.abandon_work(worker.worker_id, task.task_id)
            platform.close_task(task.task_id)
        elif action == "cancel":
            platform.cancel_task(task.task_id)
        else:
            platform.process_contribution(
                worker.worker_id, task.task_id, behavior_named(behavior_name)
            )
            platform.close_task(task.task_id)
    return platform


@settings(max_examples=40, deadline=None)
@given(script=market_scripts())
def test_trace_time_ordering_invariant(script):
    platform = _run_script(*script)
    times = [event.time for event in platform.trace]
    assert times == sorted(times)


@settings(max_examples=40, deadline=None)
@given(script=market_scripts())
def test_ledger_matches_trace_payments(script):
    platform = _run_script(*script)
    trace_totals = platform.trace.payments_by_worker()
    for worker_id, worker in platform.workers.items():
        ledger_balance = platform.ledger.balance(worker_id)
        assert abs(trace_totals.get(worker_id, 0.0) - ledger_balance) < 1e-9


@settings(max_examples=40, deadline=None)
@given(script=market_scripts())
def test_computed_attributes_always_honestly_derived(script):
    platform = _run_script(*script)
    for worker in platform.workers.values():
        if worker.computed.derivation:
            assert worker.computed.derivation_consistent()


@settings(max_examples=25, deadline=None)
@given(script=market_scripts())
def test_payments_only_for_submitted_contributions(script):
    platform = _run_script(*script)
    submitted = set(platform.trace.contributions)
    for event in platform.trace.of_kind(PaymentIssued):
        assert event.contribution_id in submitted


@settings(max_examples=15, deadline=None)
@given(script=market_scripts())
def test_audit_never_crashes_and_is_pure(script):
    platform = _run_script(*script)
    engine = AuditEngine()
    first = engine.audit(platform.trace)
    second = engine.audit(platform.trace)
    assert first.scores() == second.scores()
    for result in first.results:
        assert 0.0 <= result.score <= 1.0


@settings(max_examples=25, deadline=None)
@given(script=market_scripts())
def test_serialization_round_trips_random_traces(script):
    """Any trace the market can produce survives JSON round-tripping
    with identical events and identical audit outcome."""
    from repro.core.serialize import trace_from_json, trace_to_json

    platform = _run_script(*script)
    restored = trace_from_json(trace_to_json(platform.trace))
    assert restored.events == platform.trace.events
    engine = AuditEngine()
    assert engine.audit(restored).scores() == engine.audit(platform.trace).scores()
