"""Differential tests for the query subsystem: indexed SQL ≡ scan.

A :class:`~repro.query.TraceQuery` has one contract and two execution
plans — indexed SQL on the SQLite backend, a generic cursor scan
everywhere else.  These tests run a structured family of queries (all
filters, alone and combined) plus hypothesis-randomised filter
combinations over the labelled scenarios and random market scripts,
asserting that events, counts, kind histograms, and per-entity counts
are identical between the two plans.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.events import (
    ContributionSubmitted,
    DisclosureShown,
    PaymentIssued,
    TasksShown,
)
from repro.core.store import SQLiteTraceStore
from repro.core.trace import PlatformTrace
from repro.query import ENTITY_KINDS, TraceQuery, entity_event_counts
from repro.query.stats import trace_stats
from repro.workloads.scenarios import all_scenarios

from tests.property.test_property_streaming_audit import (
    _run_script,
    audit_scripts,
)


def _twin(trace, tmp_path, name="twin.db"):
    """The same events, memory-backed and sqlite-backed."""
    store = SQLiteTraceStore.create(tmp_path / name)
    sqlite_trace = PlatformTrace(trace, store=store)
    return trace, sqlite_trace


def _sample_entities(trace):
    """A few ids of every entity kind present in the trace."""
    entities = {
        "worker": list(trace.worker_ids)[:2],
        "task": list(trace.tasks)[:2],
        "requester": list(trace.requesters)[:2],
        "contribution": list(trace.contributions)[:2],
    }
    return {kind: ids for kind, ids in entities.items() if ids}


def _query_family(trace):
    """A structured sweep of filter shapes over one trace."""
    end = trace.end_time
    queries = [
        TraceQuery(),
        TraceQuery().of_kind(TasksShown),
        TraceQuery().of_kind(PaymentIssued, DisclosureShown),
        TraceQuery().time_range(0, max(end // 2, 1)),
        TraceQuery().time_range(end // 2, None),
        TraceQuery().at_round(min(1, end)),
        TraceQuery().seq_range(len(trace) // 3, 2 * len(trace) // 3),
        TraceQuery().take(5),
    ]
    for kind, ids in _sample_entities(trace).items():
        queries.append(TraceQuery().entity(*ids))
        queries.append(TraceQuery().entity(*ids, kind=kind))
        queries.append(
            TraceQuery().entity(ids[0], kind=kind).of_kind(TasksShown)
        )
        queries.append(
            TraceQuery().entity(ids[0]).time_range(1, end + 1).take(3)
        )
    return queries


def assert_queries_agree(memory_trace, sqlite_trace, queries):
    for query in queries:
        scan = query.run(memory_trace)
        indexed = query.run(sqlite_trace)
        assert scan == indexed, f"events diverged for {query}"
        assert query.count(memory_trace) == query.count(sqlite_trace), (
            f"count diverged for {query}"
        )
        assert query.count_by_kind(memory_trace) == query.count_by_kind(
            sqlite_trace
        ), f"kind histogram diverged for {query}"


class TestQueryDifferential:
    @pytest.mark.parametrize(
        "scenario", all_scenarios(0), ids=lambda scenario: scenario.name
    )
    def test_structured_family_agrees(self, scenario, tmp_path):
        memory_trace, sqlite_trace = _twin(scenario.trace, tmp_path)
        assert_queries_agree(
            memory_trace, sqlite_trace, _query_family(memory_trace)
        )

    @pytest.mark.parametrize(
        "scenario", all_scenarios(0)[:3], ids=lambda scenario: scenario.name
    )
    def test_entity_counts_agree(self, scenario, tmp_path):
        memory_trace, sqlite_trace = _twin(scenario.trace, tmp_path)
        for kind in ENTITY_KINDS:
            assert entity_event_counts(
                memory_trace, kind
            ) == entity_event_counts(sqlite_trace, kind), kind

    def test_stats_agree_modulo_backend_name(self, tmp_path):
        scenario = all_scenarios(0)[0]
        memory_trace, sqlite_trace = _twin(scenario.trace, tmp_path)
        scan = trace_stats(memory_trace).as_dict()
        indexed = trace_stats(sqlite_trace).as_dict()
        scan.pop("backend"), indexed.pop("backend")
        assert scan == indexed

    @settings(max_examples=10, deadline=None)
    @given(
        script=audit_scripts(),
        seed=st.integers(0, 2**16),
        spec=st.tuples(
            st.booleans(),  # scope to an entity?
            st.sampled_from([None, *ENTITY_KINDS]),
            st.booleans(),  # scope to kinds?
            st.integers(0, 12),  # time start
            st.integers(0, 12),  # time width
            st.booleans(),  # seq range?
            st.sampled_from([None, 1, 3, 10]),  # limit
        ),
    )
    def test_randomised_filters_agree(
        self, script, seed, spec, tmp_path_factory
    ):
        import random

        trace = _run_script(*script)
        tmp_path = tmp_path_factory.mktemp("query")
        memory_trace, sqlite_trace = _twin(trace, tmp_path)

        use_entity, entity_kind, use_kinds, start, width, use_seq, limit = spec
        rng = random.Random(seed)
        query = TraceQuery().time_range(start, start + width + 1)
        if use_entity:
            pools = _sample_entities(memory_trace)
            if entity_kind is not None and entity_kind in pools:
                query = query.entity(
                    rng.choice(pools[entity_kind]), kind=entity_kind
                )
            elif pools:
                kind = rng.choice(sorted(pools))
                query = query.entity(rng.choice(pools[kind]))
        if use_kinds:
            query = query.of_kind(
                rng.choice(
                    [TasksShown, PaymentIssued, ContributionSubmitted]
                )
            )
        if use_seq:
            lo = rng.randrange(max(len(trace), 1))
            query = query.seq_range(lo, lo + rng.randrange(20))
        if limit is not None:
            query = query.take(limit)
        assert_queries_agree(memory_trace, sqlite_trace, [query])
