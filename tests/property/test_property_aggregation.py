"""Property tests for crowd-answer aggregation."""

from hypothesis import given, settings, strategies as st

from repro.aggregation import MajorityVote, OneCoinEM, TaskAnswers, WeightedVote

_LABELS = ("A", "B", "C")


@st.composite
def task_answers(draw, min_votes=0, max_votes=12):
    n = draw(st.integers(min_votes, max_votes))
    votes = tuple(
        (f"w{i}", draw(st.sampled_from(_LABELS))) for i in range(n)
    )
    return TaskAnswers(task_id="t1", answers=votes)


@settings(max_examples=100, deadline=None)
@given(answers=task_answers())
def test_majority_returns_observed_answer_or_none(answers):
    result = MajorityVote().aggregate(answers)
    if answers.answers:
        assert result in set(answers.payloads())
    else:
        assert result is None


@settings(max_examples=100, deadline=None)
@given(answers=task_answers(min_votes=1))
def test_majority_is_actually_maximal(answers):
    from collections import Counter

    result = MajorityVote().aggregate(answers)
    counts = Counter(answers.payloads())
    assert counts[result] == max(counts.values())


@settings(max_examples=100, deadline=None)
@given(answers=task_answers())
def test_weighted_with_uniform_reliability_matches_majority_count(answers):
    """With identical weights, the weighted winner ties the majority
    winner's vote count (tie-breaks may differ only among tied labels)."""
    from collections import Counter

    weighted = WeightedVote(prior_accuracy=0.7).aggregate(answers)
    majority = MajorityVote().aggregate(answers)
    if not answers.answers:
        assert weighted is None and majority is None
        return
    counts = Counter(answers.payloads())
    assert counts[weighted] == counts[majority]


@settings(max_examples=50, deadline=None)
@given(answers=task_answers(min_votes=1, max_votes=8))
def test_em_returns_observed_answer(answers):
    result = OneCoinEM(iterations=5).aggregate(answers)
    assert result in set(answers.payloads())


@settings(max_examples=50, deadline=None)
@given(
    answers=task_answers(min_votes=2, max_votes=8),
    boost=st.sampled_from(["w0", "w1"]),
)
def test_weighted_vote_monotone_in_reliability(answers, boost):
    """Raising one voter's reliability never flips the result away from
    that voter's answer."""
    voter_answer = dict(answers.answers)[boost]
    baseline = WeightedVote(prior_accuracy=0.7).aggregate(answers)
    boosted = WeightedVote(
        reliability={boost: 0.999}, prior_accuracy=0.7
    ).aggregate(answers)
    if baseline == voter_answer:
        assert boosted == voter_answer
