"""Differential tests for the live-ingestion subsystem.

Two contracts, mirroring the acceptance criteria of the ingest PR:

* **Cadence equivalence.**  A cadenced :class:`IngestRunner` that
  delta-audits after every batch must report, at *every batch
  boundary*, exactly what a one-shot batch audit of the events ingested
  so far reports — over all 12 labelled scenarios and over
  hypothesis-randomised batch sizes and live-append interleavings.

* **Kill/resume equivalence.**  Killing an ingest at any point —
  cleanly between batches, after an append but before its checkpoint,
  or mid-write on the destination's own files — and resuming from the
  checkpoint must produce a destination store *byte-identical* to an
  uninterrupted ingest of the same export: identical segment bytes for
  the persistent backend, identical SQL dumps for the sqlite backend
  (page layout is allocator-dependent; the dump is the byte-exact
  logical content).
"""

import os
import sqlite3

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.audit import AuditEngine
from repro.core.store import PersistentTraceStore, SQLiteTraceStore
from repro.core.trace import PlatformTrace
from repro.ingest import (
    IngestRunner,
    JSONLExportSource,
    checkpoint_path_for,
    export_jsonl,
    read_checkpoint,
)
from repro.workloads.scenarios import all_scenarios


def _scenarios_by_name(seed=0):
    return {scenario.name: scenario for scenario in all_scenarios(seed)}


_SCENARIO_NAMES = sorted(_scenarios_by_name())


# ----------------------------------------------------------------------
# Cadence equivalence: runner + delta audit == one-shot batch audit
# at every batch boundary.


def assert_cadenced_audit_equals_batch(events, tmp_path, batch_events):
    export = export_jsonl(events, tmp_path / "export.jsonl")
    runner = IngestRunner(
        JSONLExportSource(export), PlatformTrace(),
        batch_events=batch_events, audit=True,
    )
    engine = AuditEngine()
    boundaries = []

    def check(batch):
        one_shot = engine.audit(PlatformTrace(runner.trace))
        assert batch.report == one_shot, (
            f"cadenced audit diverged from one-shot batch audit at "
            f"batch {batch.index} (revision {batch.store_revision})"
        )
        boundaries.append(batch.store_revision)

    runner.run(idle_limit=1, on_batch=check)
    assert boundaries and boundaries[-1] == len(events)


@pytest.mark.parametrize("name", _SCENARIO_NAMES)
def test_cadenced_tail_audit_equals_one_shot_batch_audit(name, tmp_path):
    scenario = _scenarios_by_name()[name]
    assert_cadenced_audit_equals_batch(
        list(scenario.trace), tmp_path, batch_events=25
    )


@settings(max_examples=12, deadline=None)
@given(
    name=st.sampled_from(_SCENARIO_NAMES),
    batch_events=st.integers(min_value=1, max_value=64),
    seed=st.integers(min_value=0, max_value=3),
)
def test_cadence_equivalence_over_random_batch_sizes(
    name, batch_events, seed, tmp_path_factory
):
    scenario = _scenarios_by_name(seed)[name]
    tmp_path = tmp_path_factory.mktemp("cadence")
    assert_cadenced_audit_equals_batch(
        list(scenario.trace), tmp_path, batch_events=batch_events
    )


@settings(max_examples=10, deadline=None)
@given(
    name=st.sampled_from(_SCENARIO_NAMES),
    splits=st.lists(
        st.integers(min_value=1, max_value=80), min_size=1, max_size=12
    ),
)
def test_cadence_equivalence_while_export_still_growing(
    name, splits, tmp_path_factory
):
    """The live-follow path: the export grows *between* runner steps in
    hypothesis-chosen chunks; every audited boundary must still equal a
    one-shot batch audit of what has been ingested."""
    events = list(_scenarios_by_name()[name].trace)
    tmp_path = tmp_path_factory.mktemp("live")
    export = tmp_path / "growing.jsonl"
    export_jsonl([], export)
    runner = IngestRunner(
        JSONLExportSource(export), PlatformTrace(),
        batch_events=10_000, audit=True,
    )
    engine = AuditEngine()
    position = 0
    for size in splits:
        chunk = events[position:position + size]
        position += len(chunk)
        export_jsonl(chunk, export, append=True)
        batch = runner.step()
        if not chunk:
            assert batch is None
            continue
        assert batch is not None
        assert batch.report == engine.audit(PlatformTrace(runner.trace))
    assert list(runner.trace) == events[:position]


# ----------------------------------------------------------------------
# Kill/resume equivalence: byte-identical destination stores.


def _fingerprint(path):
    """Byte-exact content of a destination store.

    Persistent logs: every file's raw bytes.  SQLite: the full SQL dump
    (logical pages are allocator-dependent; the dump is canonical).
    """
    path = os.fspath(path)
    if os.path.isdir(path):
        return {
            name: open(os.path.join(path, name), "rb").read()
            for name in sorted(os.listdir(path))
        }
    with sqlite3.connect(path) as conn:
        return "\n".join(conn.iterdump())


def _ingest_all(export, dest, backend, batch_events, checkpoint=None):
    store = (
        SQLiteTraceStore.create(dest)
        if backend == "sqlite"
        else PersistentTraceStore.create(dest)
    )
    runner = IngestRunner(
        JSONLExportSource(export), store,
        checkpoint_path=checkpoint, batch_events=batch_events,
    )
    summary = runner.run(idle_limit=1)
    store.close()
    return summary


def _reopen(dest, backend):
    return (
        SQLiteTraceStore.open(dest)
        if backend == "sqlite"
        else PersistentTraceStore.open(dest)
    )


def assert_kill_resume_identical(
    events, tmp_path, backend, batch_events, kill_after_batches,
    orphan_events=0,
):
    """Interrupt after ``kill_after_batches`` (optionally appending
    ``orphan_events`` beyond the checkpoint first, simulating a kill
    between append and checkpoint write), resume, and compare against
    an uninterrupted ingest byte for byte."""
    export = export_jsonl(events, tmp_path / "export.jsonl")
    suffix = ".db" if backend == "sqlite" else ""

    baseline = tmp_path / f"uninterrupted{suffix}"
    _ingest_all(export, baseline, backend, batch_events)

    killed = tmp_path / f"killed{suffix}"
    checkpoint = checkpoint_path_for(killed)
    store = (
        SQLiteTraceStore.create(killed)
        if backend == "sqlite"
        else PersistentTraceStore.create(killed)
    )
    runner = IngestRunner(
        JSONLExportSource(export), store,
        checkpoint_path=checkpoint, batch_events=batch_events,
    )
    runner.run(max_batches=kill_after_batches, idle_limit=1)
    if orphan_events:
        # The batch the crash interrupted: appended + committed, but
        # its checkpoint never made it out.
        orphan = JSONLExportSource(export)
        orphan.seek(read_checkpoint(checkpoint).source_position)
        store.append_batch(orphan.poll(orphan_events))
        save = getattr(store, "save", None)
        if callable(save):
            save()
    store.close()

    reopened = _reopen(killed, backend)
    resumed = IngestRunner.resume(
        JSONLExportSource(export), reopened, checkpoint,
        batch_events=batch_events,
    )
    resumed.run(idle_limit=1)
    reopened.close()

    assert _fingerprint(killed) == _fingerprint(baseline), (
        f"kill-after-{kill_after_batches}-batches + resume diverged "
        f"from uninterrupted ingest on the {backend} backend"
    )
    final = _reopen(killed, backend)
    assert list(final.events) == events
    final.close()


@pytest.mark.parametrize("backend", ["persistent", "sqlite"])
@pytest.mark.parametrize("name", _SCENARIO_NAMES)
def test_kill_and_resume_is_byte_identical(name, backend, tmp_path):
    events = list(_scenarios_by_name()[name].trace)
    assert_kill_resume_identical(
        events, tmp_path, backend,
        batch_events=max(1, len(events) // 5), kill_after_batches=2,
    )


@pytest.mark.parametrize("backend", ["persistent", "sqlite"])
def test_kill_between_append_and_checkpoint_is_byte_identical(
    backend, tmp_path
):
    events = list(_scenarios_by_name()["clean"].trace)
    assert_kill_resume_identical(
        events, tmp_path, backend,
        batch_events=30, kill_after_batches=2, orphan_events=17,
    )


@settings(max_examples=10, deadline=None)
@given(
    name=st.sampled_from(_SCENARIO_NAMES),
    backend=st.sampled_from(["persistent", "sqlite"]),
    batch_events=st.integers(min_value=5, max_value=70),
    kill_after=st.integers(min_value=1, max_value=4),
    orphan=st.integers(min_value=0, max_value=20),
)
def test_kill_resume_identical_over_random_splits(
    name, backend, batch_events, kill_after, orphan, tmp_path_factory
):
    events = list(_scenarios_by_name()[name].trace)
    tmp_path = tmp_path_factory.mktemp("kill")
    assert_kill_resume_identical(
        events, tmp_path, backend,
        batch_events=batch_events, kill_after_batches=kill_after,
        orphan_events=orphan,
    )


def test_kill_mid_write_on_persistent_destination(tmp_path):
    """The hardest crash: the destination's own segment file has a torn
    tail (killed mid-append-write) AND the checkpoint lags.  Reopen
    recovers the torn line, resume re-ingests it; the final store must
    still match the uninterrupted baseline byte for byte."""
    events = list(_scenarios_by_name()["clean"].trace)
    export = export_jsonl(events, tmp_path / "export.jsonl")

    baseline = tmp_path / "uninterrupted"
    _ingest_all(export, baseline, "persistent", batch_events=40)

    killed = tmp_path / "killed"
    checkpoint = checkpoint_path_for(killed)
    store = PersistentTraceStore.create(killed)
    runner = IngestRunner(
        JSONLExportSource(export), store,
        checkpoint_path=checkpoint, batch_events=40,
    )
    runner.run(max_batches=2)
    store.close()
    # Torn tail: half of one post-checkpoint record hits the segment.
    with open(killed / "events-00000.jsonl", "ab") as handle:
        handle.write(b'{"kind": "worker_upd')
    with pytest.warns(RuntimeWarning, match="truncated line"):
        reopened = PersistentTraceStore.open(killed)
    resumed = IngestRunner.resume(
        JSONLExportSource(export), reopened, checkpoint, batch_events=40
    )
    resumed.run(idle_limit=1)
    reopened.close()
    assert _fingerprint(killed) == _fingerprint(baseline)
