"""Differential tests: sharded audits ≡ unsharded delta ≡ batch.

The :class:`~repro.shard.ShardedDeltaAuditEngine` contract is exact
equivalence at every batch boundary: after any sequence of appends, its
report equals both a fresh :class:`~repro.core.audit.AuditEngine` batch
audit of the prefix and the single-threaded
:class:`~repro.core.audit.DeltaAuditEngine` session — violations,
order, opportunity counts.  This suite pins that over

* all 12 labelled scenarios × shard counts {1, 2, 4, 7} × the memory
  and sqlite backends (on sqlite the partition checkers pull their
  per-entity evidence through seq-bounded indexed ``TraceQuery`` point
  queries),
* hypothesis-randomised market scripts and batch sizes,
* hypothesis-random partition assignments (any deterministic
  entity -> shard mapping must merge exactly; balance only affects
  speed),
* the size-balanced partitioner built from observed entity weights,
* Axiom 2's pair-sampling fallback engaging mid-stream,
* custom axioms (no partitionable sweep -> exact driver-side path),
* and the process worker backend (verdicts identical to threads).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.audit import AuditEngine, DeltaAuditEngine
from repro.core.axiom_assignment import (
    RequesterFairnessInAssignment,
    WorkerFairnessInAssignment,
)
from repro.core.axioms import AxiomRegistry, default_registry
from repro.core.store import SQLiteTraceStore, collect_touched
from repro.core.trace import PlatformTrace
from repro.query import entity_event_counts
from repro.shard import (
    MappedPartitioner,
    ShardedDeltaAuditEngine,
    size_balanced_partitioner,
)
from repro.workloads.scenarios import all_scenarios

from tests.property.test_property_streaming_audit import (
    _run_script,
    audit_scripts,
)
from tests.property.test_property_trace_stores import _EventParityAxiom

#: The acceptance grid: every scenario runs at each of these counts.
SHARD_COUNTS = (1, 2, 4, 7)

#: Store backends the sharded differential runs on.
_BACKENDS = ("memory", "sqlite")


def _prefix_trace(backend, tmp_path):
    if backend == "memory":
        return PlatformTrace()
    if backend == "sqlite":
        return PlatformTrace(
            store=SQLiteTraceStore.create(tmp_path / "sharded-prefix.db")
        )
    raise AssertionError(f"unknown backend {backend!r}")


def _entity_ids(trace):
    """Every entity id the trace touches (candidate partition keys)."""
    touched = collect_touched(trace)
    return sorted(
        touched.worker_ids | touched.task_ids
        | touched.requester_ids | touched.contribution_ids
    )


def assert_sharded_equivalent_at_batch_boundaries(
    trace,
    *,
    batch_size=7,
    shard_counts=SHARD_COUNTS,
    registry=None,
    prefix_trace=None,
    partitioners=None,
    backend="thread",
):
    """Append in batches; at every boundary the batch, delta, and every
    sharded engine's reports must coincide.

    ``partitioners`` optionally maps a shard count to an explicit
    partitioner (default: the engine's stable hash partitioner).
    """
    events = list(trace)
    registry_kwargs = {} if registry is None else {"registry": registry}
    engine = AuditEngine(**registry_kwargs)
    delta_session = DeltaAuditEngine(**registry_kwargs)
    sharded_sessions = {
        shards: ShardedDeltaAuditEngine(
            shards=shards,
            backend=backend,
            partitioner=(partitioners or {}).get(shards),
            **registry_kwargs,
        )
        for shards in shard_counts
    }
    prefix = prefix_trace if prefix_trace is not None else PlatformTrace()
    try:
        for start in range(0, len(events), batch_size):
            prefix.extend(events[start:start + batch_size])
            boundary = f"boundary at event {min(start + batch_size, len(events))}"
            batch_report = engine.audit(prefix)
            assert delta_session.audit(prefix) == batch_report, (
                f"delta diverged from batch at {boundary}"
            )
            for shards, session in sharded_sessions.items():
                assert session.audit(prefix) == batch_report, (
                    f"{shards}-shard audit diverged from batch at {boundary}"
                )
    finally:
        for session in sharded_sessions.values():
            session.close()


class TestShardedDifferential:
    @pytest.mark.parametrize("backend", _BACKENDS)
    @pytest.mark.parametrize(
        "scenario", all_scenarios(0), ids=lambda scenario: scenario.name
    )
    def test_scenarios_at_every_batch_boundary(
        self, scenario, backend, tmp_path
    ):
        assert_sharded_equivalent_at_batch_boundaries(
            scenario.trace,
            prefix_trace=_prefix_trace(backend, tmp_path),
        )

    @settings(max_examples=10, deadline=None)
    @given(
        script=audit_scripts(),
        batch_size=st.integers(min_value=1, max_value=25),
    )
    def test_randomised_scripts_and_batch_sizes(self, script, batch_size):
        assert_sharded_equivalent_at_batch_boundaries(
            _run_script(*script),
            batch_size=batch_size,
            shard_counts=(3,),
        )

    @settings(max_examples=10, deadline=None)
    @given(data=st.data())
    def test_random_partitions_merge_exactly(self, data):
        """Any deterministic entity->shard assignment is exact —
        balance affects only speed, never verdicts."""
        scenarios = {s.name: s for s in all_scenarios(0)}
        scenario = scenarios[
            data.draw(
                st.sampled_from(
                    ("clean", "corrupt_reputation", "undetected_malice")
                )
            )
        ]
        shards = data.draw(st.integers(min_value=1, max_value=8))
        entity_ids = _entity_ids(scenario.trace)
        assignments = {
            entity_id: data.draw(
                st.integers(min_value=0, max_value=shards - 1)
            )
            for entity_id in data.draw(
                st.lists(st.sampled_from(entity_ids), unique=True)
            )
        }
        assert_sharded_equivalent_at_batch_boundaries(
            scenario.trace,
            batch_size=13,
            shard_counts=(shards,),
            partitioners={shards: MappedPartitioner(assignments, shards)},
        )

    @pytest.mark.parametrize("backend", _BACKENDS)
    def test_size_balanced_partitioner_stays_exact(self, backend, tmp_path):
        """The balanced strategy (weights from observed entity event
        counts) is just another deterministic assignment."""
        scenario = next(
            s for s in all_scenarios(0) if s.name == "undetected_malice"
        )
        weights = {}
        for kind in ("worker", "task", "requester", "contribution"):
            weights.update(entity_event_counts(scenario.trace, kind))
        assert_sharded_equivalent_at_batch_boundaries(
            scenario.trace,
            prefix_trace=_prefix_trace(backend, tmp_path),
            shard_counts=(4,),
            partitioners={4: size_balanced_partitioner(weights, 4)},
        )

    @pytest.mark.parametrize("backend", _BACKENDS)
    def test_pair_sampling_fallback_matches_batch(self, backend, tmp_path):
        """Tiny max_pairs flips both assignment axioms to their sampled
        paths mid-stream; every shard count must follow exactly."""
        registry = default_registry(
            axiom1=WorkerFairnessInAssignment(max_pairs=3, sample_seed=11),
            axiom2=RequesterFairnessInAssignment(max_pairs=2, sample_seed=11),
        )
        for index, scenario in enumerate(all_scenarios(0)):
            assert_sharded_equivalent_at_batch_boundaries(
                scenario.trace,
                registry=registry,
                shard_counts=(1, 4),
                prefix_trace=(
                    _prefix_trace(backend, tmp_path / str(index))
                    if backend != "memory"
                    else None
                ),
            )

    def test_custom_axiom_registry_stays_exact(self):
        """A registry without partitionable axioms runs entirely on the
        driver — still exact, no pool needed (and the engine announces
        the unused parallelism)."""
        registry = AxiomRegistry().register(_EventParityAxiom())
        scenario = next(s for s in all_scenarios(0) if s.name == "clean")
        with pytest.warns(RuntimeWarning, match="supports partitioning"):
            assert_sharded_equivalent_at_batch_boundaries(
                scenario.trace, registry=registry, shard_counts=(4,)
            )

    def test_process_backend_matches_thread_backend(self):
        """Worker processes (replicated fold, pipe-shipped deltas)
        produce byte-identical reports."""
        scenario = next(
            s for s in all_scenarios(0) if s.name == "corrupt_reputation"
        )
        assert_sharded_equivalent_at_batch_boundaries(
            scenario.trace, shard_counts=(2,), backend="process"
        )
