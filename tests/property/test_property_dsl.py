"""Property tests for the transparency DSL: generated policies
round-trip through serialization and never crash the toolchain."""

from hypothesis import given, settings, strategies as st

from repro.transparency.ast_nodes import (
    Audience,
    Comparison,
    Condition,
    DiscloseRule,
    FairnessRequirement,
    FieldRef,
    Policy,
    Subject,
)
from repro.transparency.compare import compare_policies
from repro.transparency.parser import parse_policy
from repro.transparency.policy import TransparencyPolicy
from repro.transparency.render import render_policy
from repro.transparency.semantics import DisclosureSchema

_SCHEMA = DisclosureSchema()

_VALID_AUDIENCES = {
    Subject.REQUESTER: [Audience.WORKERS, Audience.REQUESTERS, Audience.SELF,
                        Audience.PUBLIC],
    Subject.WORKER: [Audience.WORKERS, Audience.REQUESTERS, Audience.SELF,
                     Audience.PUBLIC],
    Subject.TASK: [Audience.WORKERS, Audience.REQUESTERS, Audience.PUBLIC],
    Subject.PLATFORM: [Audience.WORKERS, Audience.REQUESTERS, Audience.PUBLIC],
}


@st.composite
def field_refs(draw, field_type=None):
    subject = draw(st.sampled_from(list(Subject)))
    candidates = [
        name
        for name in sorted(_SCHEMA.all_fields(subject))
        if field_type is None
        or _SCHEMA.field_type(FieldRef(subject, name)) == field_type
    ]
    if not candidates:
        # Every subject has at least one numeric and one string field
        # except some combinations; fall back to any field.
        candidates = sorted(_SCHEMA.all_fields(subject))
    return FieldRef(subject, draw(st.sampled_from(candidates)))


@st.composite
def conditions(draw):
    ref = draw(field_refs())
    field_type = _SCHEMA.field_type(ref)
    if field_type == "number":
        op = draw(st.sampled_from(list(Comparison)))
        literal = draw(
            st.one_of(st.integers(-100, 100),
                      st.floats(-100, 100).map(lambda f: round(f, 3)))
        )
    elif field_type == "boolean":
        op = draw(st.sampled_from([Comparison.EQ, Comparison.NE]))
        literal = draw(st.booleans())
    else:
        op = draw(st.sampled_from([Comparison.EQ, Comparison.NE]))
        literal = draw(st.text(alphabet="abc xyz_", min_size=0, max_size=10))
    return Condition(ref, op, literal)


@st.composite
def rules(draw):
    ref = draw(field_refs())
    audience = draw(st.sampled_from(_VALID_AUDIENCES[ref.subject]))
    condition = draw(st.none() | conditions())
    return DiscloseRule(field=ref, audience=audience, condition=condition)


@st.composite
def requirements(draw):
    # Thresholds rounded so the %g serialization round-trips exactly.
    threshold = round(draw(st.floats(0.0, 1.0)), 4)
    op = draw(st.sampled_from([Comparison.GE, Comparison.GT, Comparison.EQ]))
    return FairnessRequirement(
        axiom_id=draw(st.integers(1, 7)), op=op, threshold=threshold
    )


@st.composite
def policies(draw):
    name = draw(st.text(alphabet="abcdefghij_-", min_size=1, max_size=16))
    rule_list = draw(st.lists(rules(), min_size=0, max_size=8))
    # Drop duplicate unconditional (field, audience) pairs, which the
    # semantic validator rejects by design.
    seen = set()
    cleaned = []
    for rule in rule_list:
        key = (rule.field, rule.audience)
        if rule.condition is None and key in seen:
            continue
        seen.add(key)
        cleaned.append(rule)
    requirement_list = draw(st.lists(requirements(), min_size=0, max_size=4))
    # One requirement per axiom, per the semantic validator.
    by_axiom = {}
    for requirement in requirement_list:
        by_axiom.setdefault(requirement.axiom_id, requirement)
    return Policy(
        name=name, rules=tuple(cleaned),
        requirements=tuple(by_axiom.values()),
    )


@settings(max_examples=80, deadline=None)
@given(policy=policies())
def test_policy_round_trips_through_source(policy):
    """str(policy) reparses to an identical AST."""
    assert parse_policy(str(policy)) == policy


@settings(max_examples=60, deadline=None)
@given(policy=policies())
def test_validated_policy_tools_never_crash(policy):
    """Coverage, rendering, and self-comparison work on any valid policy."""
    wrapped = TransparencyPolicy(ast=policy)
    assert 0.0 <= wrapped.mandated_coverage() <= 1.0
    assert 0.0 <= wrapped.schema_coverage() <= 1.0
    text = render_policy(policy)
    assert policy.name in text or "discloses nothing" in text
    diff = compare_policies(wrapped, wrapped)
    assert diff.identical


@settings(max_examples=40, deadline=None)
@given(left=policies(), right=policies())
def test_comparison_is_antisymmetric(left, right):
    forward = compare_policies(
        TransparencyPolicy(ast=left), TransparencyPolicy(ast=right)
    )
    backward = compare_policies(
        TransparencyPolicy(ast=right), TransparencyPolicy(ast=left)
    )
    assert set(forward.only_left) == set(backward.only_right)
    assert set(forward.shared) == set(backward.shared)
    assert forward.coverage_gap == -backward.coverage_gap
