"""Differential tests: every store backend and the delta-aware batch
path must be audit-equivalent to the seed batch audit.

Two contracts, each enforced at *every prefix* of the labelled
scenarios and of hypothesis-randomised market scripts:

* **Backends.**  A trace rebuilt through the windowed backend (window
  covering the trace — the bounded-memory backend's exactness regime),
  the persistent JSONL backend, or the indexed SQLite backend must
  audit identically to the in-memory baseline at every prefix.
  Evicting-window semantics are pinned separately in
  ``tests/core/test_trace_stores.py``.
* **Delta path.**  A :class:`~repro.core.audit.DeltaAuditEngine`
  audited after every append must equal a fresh batch audit of each
  prefix — violations, order, opportunity counts — including when pair
  sampling engages mid-stream and for custom axioms with and without
  delta support.  The delta differential runs on the memory *and* the
  sqlite backend: on sqlite the touched-entity re-sweeps of Axioms 2,
  6, and 7 fetch their per-entity slices through indexed
  :class:`~repro.query.TraceQuery` point queries, so this suite pins
  the query-served path to the same exactness.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.audit import AuditEngine, DeltaAuditEngine
from repro.core.axiom_assignment import (
    RequesterFairnessInAssignment,
    WorkerFairnessInAssignment,
)
from repro.core.axioms import Axiom, AxiomRegistry, default_registry
from repro.core.store import (
    PersistentTraceStore,
    SQLiteTraceStore,
    WindowedTraceStore,
)
from repro.core.trace import PlatformTrace
from repro.workloads.scenarios import all_scenarios

from tests.property.test_property_streaming_audit import (
    _run_script,
    audit_scripts,
)

#: Scenarios exercised at every prefix (the largest plus two violation-
#: heavy ones); all 12 are covered end-to-end below and by the delta
#: differential.
_PREFIX_SCENARIOS = ("clean", "corrupt_reputation", "undetected_malice")

#: Backends the delta differential runs on: the baseline and the
#: indexed one whose per-entity re-sweeps flow through TraceQuery.
_DELTA_BACKENDS = ("memory", "sqlite")


def _scenarios_by_name(seed=0):
    return {scenario.name: scenario for scenario in all_scenarios(seed)}


def _delta_prefix_trace(backend, tmp_path):
    if backend == "memory":
        return PlatformTrace()
    if backend == "sqlite":
        return PlatformTrace(
            store=SQLiteTraceStore.create(tmp_path / "delta-prefix.db")
        )
    raise AssertionError(f"unknown delta backend {backend!r}")


def assert_backends_equivalent_at_every_prefix(trace, tmp_path):
    """Rebuild ``trace`` event by event in each backend; audits of all
    backends must coincide with the in-memory baseline at each prefix."""
    engine = AuditEngine()
    shadows = {
        "memory": PlatformTrace(),
        "windowed": PlatformTrace(
            store=WindowedTraceStore(window=max(len(trace), 1))
        ),
        "persistent": PlatformTrace(
            store=PersistentTraceStore(tmp_path / "prefix-log")
        ),
        "sqlite": PlatformTrace(
            store=SQLiteTraceStore(tmp_path / "prefix.db")
        ),
    }
    for position, event in enumerate(trace, start=1):
        for shadow in shadows.values():
            shadow.append(event)
        baseline = engine.audit(shadows["memory"])
        for name, shadow in shadows.items():
            report = engine.audit(shadow)
            assert report == baseline, (
                f"{name} backend diverged from the in-memory audit at "
                f"prefix {position}/{len(trace)}"
            )


def assert_delta_equivalent_at_every_prefix(
    trace, registry=None, prefix_trace=None
):
    """Delta-audit after every append; each report must equal a fresh
    batch audit of the prefix.  ``prefix_trace`` selects the store the
    growing prefix lives in (in-memory when not given)."""
    engine = AuditEngine(
        **({} if registry is None else {"registry": registry})
    )
    session = DeltaAuditEngine(
        **({} if registry is None else {"registry": registry})
    )
    prefix = prefix_trace if prefix_trace is not None else PlatformTrace()
    for position, event in enumerate(trace, start=1):
        prefix.append(event)
        delta_report = session.audit(prefix)
        batch_report = engine.audit(prefix)
        assert delta_report == batch_report, (
            f"delta audit diverged from batch at prefix "
            f"{position}/{len(trace)}"
        )


class TestBackendDifferential:
    @pytest.mark.parametrize("name", _PREFIX_SCENARIOS)
    def test_every_prefix_matches_in_memory(self, name, tmp_path):
        scenario = _scenarios_by_name()[name]
        assert_backends_equivalent_at_every_prefix(scenario.trace, tmp_path)

    def test_all_scenarios_match_end_to_end(self, tmp_path):
        """Cheaper full coverage: every labelled scenario audits
        identically from all four backends (and from reopened
        persistent/sqlite logs) at full length."""
        engine = AuditEngine()
        for scenario in all_scenarios(0):
            events = list(scenario.trace)
            baseline = engine.audit(scenario.trace)
            windowed = PlatformTrace(
                events, store=WindowedTraceStore(window=len(events))
            )
            assert engine.audit(windowed) == baseline, scenario.name
            path = tmp_path / scenario.name
            PlatformTrace(
                events, store=PersistentTraceStore(path)
            )
            assert engine.audit(PlatformTrace.open(path)) == baseline, (
                scenario.name
            )
            db_path = tmp_path / f"{scenario.name}.db"
            with SQLiteTraceStore.create(db_path) as capture:
                PlatformTrace(events, store=capture)
                capture.save()
            assert engine.audit(PlatformTrace.open(db_path)) == baseline, (
                scenario.name
            )

    @settings(max_examples=8, deadline=None)
    @given(script=audit_scripts())
    def test_randomised_scripts_match_across_backends(
        self, script, tmp_path_factory
    ):
        trace = _run_script(*script)
        tmp_path = tmp_path_factory.mktemp("stores")
        assert_backends_equivalent_at_every_prefix(trace, tmp_path)


class TestDeltaDifferential:
    @pytest.mark.parametrize("backend", _DELTA_BACKENDS)
    @pytest.mark.parametrize(
        "scenario", all_scenarios(0), ids=lambda scenario: scenario.name
    )
    def test_every_prefix_matches_batch(self, scenario, backend, tmp_path):
        assert_delta_equivalent_at_every_prefix(
            scenario.trace,
            prefix_trace=_delta_prefix_trace(backend, tmp_path),
        )

    @pytest.mark.parametrize("backend", _DELTA_BACKENDS)
    def test_pair_sampling_fallbacks_match_batch(self, backend, tmp_path):
        """Tiny max_pairs flips both assignment axioms to their sampled
        paths mid-stream; the delta session must follow exactly."""
        registry = default_registry(
            axiom1=WorkerFairnessInAssignment(max_pairs=3, sample_seed=11),
            axiom2=RequesterFairnessInAssignment(max_pairs=2, sample_seed=11),
        )
        for index, scenario in enumerate(all_scenarios(0)):
            assert_delta_equivalent_at_every_prefix(
                scenario.trace,
                registry=registry,
                prefix_trace=_delta_prefix_trace(
                    backend, tmp_path / str(index)
                )
                if backend != "memory"
                else None,
            )

    @settings(max_examples=15, deadline=None)
    @given(script=audit_scripts())
    def test_randomised_scripts_match_batch(self, script):
        assert_delta_equivalent_at_every_prefix(_run_script(*script))

    @settings(max_examples=8, deadline=None)
    @given(script=audit_scripts())
    def test_randomised_scripts_match_batch_on_sqlite(
        self, script, tmp_path_factory
    ):
        tmp_path = tmp_path_factory.mktemp("delta-sqlite")
        assert_delta_equivalent_at_every_prefix(
            _run_script(*script),
            prefix_trace=_delta_prefix_trace("sqlite", tmp_path),
        )

    @settings(max_examples=8, deadline=None)
    @given(
        script=audit_scripts(),
        chunk_size=st.integers(min_value=2, max_value=25),
    )
    def test_chunked_deltas_match_batch(self, script, chunk_size):
        """Deltas covering several events at once (the realistic audit
        cadence) must be just as exact as per-event deltas."""
        trace = _run_script(*script)
        events = list(trace)
        engine = AuditEngine()
        session = DeltaAuditEngine()
        prefix = PlatformTrace()
        for start in range(0, len(events), chunk_size):
            prefix.extend(events[start:start + chunk_size])
            assert session.audit(prefix) == engine.audit(prefix)


class _EventParityAxiom(Axiom):
    """Custom axiom without delta support: the engine's full-recheck
    fallback must keep sessions exact."""

    axiom_id = 43
    title = "even number of events"

    def check(self, trace):
        return self._result([], opportunities=len(trace) % 2)


class _OptedInParityAxiom(_EventParityAxiom):
    axiom_id = 44
    supports_delta = True  # exercises the replay-backed default adapter


class TestDeltaCustomAxioms:
    @pytest.mark.parametrize(
        "axiom", [_EventParityAxiom(), _OptedInParityAxiom()],
        ids=["full-recheck", "replay-adapter"],
    )
    def test_custom_axiom_stays_exact(self, axiom):
        registry = AxiomRegistry().register(axiom)
        trace = _scenarios_by_name()["clean"].trace
        assert_delta_equivalent_at_every_prefix(trace, registry=registry)
