"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.core.attributes import ComputedAttributes, DeclaredAttributes
from repro.core.entities import Requester, SkillVocabulary, Task, Worker
from repro.platform.market import CrowdsourcingPlatform
from repro.platform.review import QualityThresholdReview


@pytest.fixture
def vocabulary() -> SkillVocabulary:
    return SkillVocabulary(("translation", "survey", "labeling", "writing"))


@pytest.fixture
def rng() -> random.Random:
    return random.Random(0)


def make_worker(
    worker_id: str,
    vocabulary: SkillVocabulary,
    skills: tuple[str, ...] = ("survey",),
    declared: dict | None = None,
    computed: dict | None = None,
) -> Worker:
    return Worker(
        worker_id=worker_id,
        declared=DeclaredAttributes(declared or {}),
        computed=ComputedAttributes(computed or {}),
        skills=vocabulary.vector(skills),
    )


def make_task(
    task_id: str,
    vocabulary: SkillVocabulary,
    requester_id: str = "r0001",
    skills: tuple[str, ...] = ("survey",),
    reward: float = 0.1,
    kind: str = "label",
    duration: int = 1,
    gold_answer: object | None = None,
) -> Task:
    return Task(
        task_id=task_id,
        requester_id=requester_id,
        required_skills=vocabulary.vector(skills),
        reward=reward,
        kind=kind,
        duration=duration,
        gold_answer=gold_answer,
    )


@pytest.fixture
def worker(vocabulary) -> Worker:
    return make_worker("w0001", vocabulary)


@pytest.fixture
def task(vocabulary) -> Task:
    return make_task("t0001", vocabulary)


@pytest.fixture
def requester() -> Requester:
    return Requester(
        requester_id="r0001",
        name="acme",
        hourly_wage=6.0,
        payment_delay=5,
        recruitment_criteria="anyone qualified",
        rejection_criteria="quality below 0.5",
    )


@pytest.fixture
def platform(requester, vocabulary) -> CrowdsourcingPlatform:
    """A platform with one requester and two identical workers."""
    platform = CrowdsourcingPlatform(
        review_policy=QualityThresholdReview(threshold=0.3), seed=0
    )
    platform.register_requester(requester)
    platform.register_worker(make_worker("w0001", vocabulary))
    platform.register_worker(make_worker("w0002", vocabulary))
    return platform
