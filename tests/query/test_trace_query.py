"""Unit tests for the ``repro.query`` subsystem.

The SQL-vs-scan equivalence is pinned by the differential suite
(``tests/property/test_property_trace_query.py``); these tests cover
the query builder's validation, execution semantics on the generic
path (including evicting backends), projection, aggregates, stats,
and the per-entity slice helpers the delta audits use.
"""

import pytest

from repro.core.events import PaymentIssued, TaskPosted, TasksShown
from repro.core.store import SQLiteTraceStore, WindowedTraceStore
from repro.core.trace import PlatformTrace
from repro.errors import QueryError
from repro.query import (
    ENTITY_KINDS,
    TraceQuery,
    entity_event_counts,
    task_audience,
    trace_info,
    trace_stats,
)
from repro.workloads.scenarios import clean_scenario


@pytest.fixture(scope="module")
def trace():
    return clean_scenario(rounds=3).trace


class TestBuilder:
    def test_builders_return_new_queries(self):
        base = TraceQuery()
        scoped = base.worker("w0001").of_kind(TasksShown).take(3)
        assert base == TraceQuery()
        assert scoped.entity_ids == ("w0001",)
        assert scoped.entity_kind == "worker"
        assert scoped.kinds == ("tasks_shown",)
        assert scoped.limit == 3

    def test_kind_accepts_classes_and_names(self):
        by_class = TraceQuery().of_kind(PaymentIssued, TaskPosted)
        by_name = TraceQuery().of_kind("payment_issued", "task_posted")
        assert by_class.kinds == by_name.kinds

    def test_validation_errors(self):
        with pytest.raises(QueryError, match="unknown event kind"):
            TraceQuery().of_kind("no_such_kind")
        with pytest.raises(QueryError, match="unknown event type"):
            TraceQuery().of_kind(int)
        with pytest.raises(QueryError, match="at least one entity id"):
            TraceQuery().entity()
        with pytest.raises(QueryError, match="at least one event kind"):
            TraceQuery().of_kind()
        with pytest.raises(QueryError, match="unknown entity kind"):
            TraceQuery().entity("x", kind="moderator")
        with pytest.raises(QueryError, match="empty time range"):
            TraceQuery().time_range(5, 2)
        with pytest.raises(QueryError, match="must be >= 0"):
            TraceQuery().time_range(-1, 2)
        with pytest.raises(QueryError, match="limit must be >= 0"):
            TraceQuery().take(-1)
        with pytest.raises(QueryError, match="filters nothing"):
            TraceQuery(entity_kind="worker")

    def test_source_type_checked(self):
        with pytest.raises(QueryError, match="PlatformTrace or TraceStore"):
            TraceQuery().run([1, 2, 3])


class TestExecution:
    def test_no_filters_returns_everything(self, trace):
        assert TraceQuery().run(trace) == tuple(trace)
        assert TraceQuery().count(trace) == len(trace)

    def test_kind_filter(self, trace):
        events = TraceQuery().of_kind(TasksShown).run(trace)
        assert events == tuple(trace.of_kind(TasksShown))

    def test_entity_filter_matches_touched_semantics(self, trace):
        from repro.core.store import collect_touched

        worker_id = trace.worker_ids[0]
        scoped = TraceQuery().worker(worker_id).run(trace)
        expected = tuple(
            event
            for event in trace
            if worker_id in collect_touched((event,)).worker_ids
        )
        assert scoped == expected
        any_role = TraceQuery().entity(worker_id).run(trace)
        assert all(event in any_role for event in scoped)

    def test_time_round_and_seq_filters(self, trace):
        mid = trace.end_time // 2
        windowed = TraceQuery().time_range(0, mid + 1).run(trace)
        assert all(event.time <= mid for event in windowed)
        one_round = TraceQuery().at_round(mid).run(trace)
        assert all(event.time == mid for event in one_round)
        sliced = TraceQuery().seq_range(5, 10).run(trace)
        assert sliced == tuple(trace.events[5:10])

    def test_take_limits_run_but_not_count(self, trace):
        query = TraceQuery().take(4)
        assert len(query.run(trace)) == 4
        assert query.count(trace) == len(trace)

    def test_count_by_kind_matches_manual_histogram(self, trace):
        histogram = TraceQuery().count_by_kind(trace)
        manual = {}
        for event in trace:
            manual[event.kind] = manual.get(event.kind, 0) + 1
        assert histogram == manual
        assert list(histogram) == sorted(histogram)

    def test_project(self, trace):
        rows = TraceQuery().of_kind(PaymentIssued).project(
            trace, "time", "worker_id", "amount"
        )
        expected = [
            (event.time, event.worker_id, event.amount)
            for event in trace.of_kind(PaymentIssued)
        ]
        assert rows == expected

    def test_project_missing_fields_are_none(self, trace):
        rows = TraceQuery().of_kind(TaskPosted).project(trace, "kind", "worker_id")
        assert rows and all(row == ("task_posted", None) for row in rows)
        with pytest.raises(QueryError, match="at least one field"):
            TraceQuery().project(trace)

    def test_runs_against_bare_store(self, trace):
        store = trace.store
        assert TraceQuery().count(store) == len(trace)


class TestEvictingBackends:
    def test_scan_covers_retained_window_with_global_seqs(self, trace):
        """On an evicted windowed store the generic scan sees retained
        events only, and seq filters stay global append positions."""
        events = list(trace)
        window = 40
        store = WindowedTraceStore(window=window)
        for event in events:
            store.append(event)
        assert store.first_retained > 0
        retained = TraceQuery().run(store)
        assert retained == tuple(store.events)
        # A seq range entirely before the window matches nothing.
        assert TraceQuery().seq_range(0, store.first_retained).run(store) == ()
        # A global seq range inside the window addresses the same events.
        lo = store.first_retained + 5
        assert TraceQuery().seq_range(lo, lo + 3).run(store) == tuple(
            store.events[5:8]
        )


class TestAggregatesAndStats:
    def test_entity_event_counts_kinds_validated(self, trace):
        with pytest.raises(QueryError, match="unknown entity kind"):
            entity_event_counts(trace, "moderator")
        for kind in ENTITY_KINDS:
            counts = entity_event_counts(trace, kind)
            assert all(count > 0 for count in counts.values())
            assert list(counts) == sorted(counts)

    def test_trace_info_shape(self, trace, tmp_path):
        info = trace_info(trace)
        assert info["backend"] == "memory"
        assert info["events"] == info["revision"] == len(trace)
        assert info["workers"] == len(trace.worker_ids)
        assert "path" not in info
        db = tmp_path / "log.db"
        trace.save(db)
        disk_info = trace_info(PlatformTrace.open(db))
        assert disk_info["backend"] == "sqlite"
        assert disk_info["path"] == str(db)
        assert disk_info["events"] == len(trace)

    def test_trace_stats_counts(self, trace):
        stats = trace_stats(trace)
        assert stats.events == len(trace)
        assert stats.kind_counts == TraceQuery().count_by_kind(trace)
        assert stats.per_worker_events == entity_event_counts(trace, "worker")
        assert set(stats.violation_adjacent) == {
            "silent_rejections", "involuntary_interruptions",
            "malice_flags", "task_cancellations",
        }
        assert stats.violation_adjacent["silent_rejections"] == 0
        assert stats.summary_lines()[0].startswith(f"{len(trace)} events")
        assert stats.as_dict()["backend"] == "memory"

    def test_trace_stats_federated_sources(self, trace):
        """The merged-tail counters surface in both output shapes."""
        plain = trace_stats(trace)
        assert plain.sources is None
        assert "sources" not in plain.as_dict()
        assert not any(
            "federated" in line for line in plain.summary_lines()
        )

        sources = {
            "kind": "merged",
            "watermark": 9,
            "sources": [
                {"kind": "jsonl", "path": "a.jsonl",
                 "events": 3, "watermark": 7},
                {"kind": "csv", "path": "b.csv",
                 "events": 5, "watermark": 9},
            ],
        }
        stats = trace_stats(trace, sources=sources)
        assert stats.as_dict()["sources"] == sources
        lines = stats.summary_lines()
        federated = [line for line in lines if "federated" in line]
        assert federated == ["federated sources: 2 merged, watermark t=9"]
        assert "  jsonl a.jsonl: 3 event(s), watermark t=7" in lines
        assert "  csv b.csv: 5 event(s), watermark t=9" in lines


class TestSliceHelpers:
    def test_task_audience_matches_trace_view(self, trace, tmp_path):
        store = SQLiteTraceStore.create(tmp_path / "log.db")
        sqlite_trace = PlatformTrace(trace, store=store)
        audiences = trace.audience_by_task()
        for task_id in trace.tasks:
            assert task_audience(sqlite_trace, task_id) == audiences.get(
                task_id, set()
            )
