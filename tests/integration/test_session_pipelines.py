"""Integration tests for session-level mechanisms added on top of the
base market: multi-requester Axiom 2 auditing, delayed-payment
settlement, and adaptive assignment inside a live session."""

import pytest

from repro.assignment import AdaptiveAssigner
from repro.compensation.discriminatory import DelayedPaymentScheme
from repro.core.audit import AuditEngine
from repro.core.entities import Requester
from repro.core.events import ContributionSubmitted, PaymentIssued
from repro.platform.session import Session, SessionConfig
from repro.workloads.skills import standard_vocabulary
from repro.workloads.tasks import TaskStream
from repro.workloads.workers import PopulationSpec, population


def _requesters():
    return [
        Requester(requester_id="r0001", name="alpha", hourly_wage=6.0,
                  payment_delay=5, recruitment_criteria="any",
                  rejection_criteria="quality"),
        Requester(requester_id="r0002", name="beta", hourly_wage=6.0,
                  payment_delay=5, recruitment_criteria="any",
                  rejection_criteria="quality"),
    ]


def _session(pricing=None, assigner=None, rounds=6, seed=9):
    vocabulary = standard_vocabulary()
    workers, behaviors = population(
        PopulationSpec(size=24, seed=seed), vocabulary
    )
    stream = TaskStream(
        vocabulary=vocabulary, tasks_per_round=16,
        requester_ids=("r0001", "r0002"), skills_per_task=1,
    )
    return Session(
        config=SessionConfig(
            rounds=rounds, tasks_per_round=16, seed=seed,
            pricing=pricing, assigner=assigner,
            base_churn=0.0, satisfaction_threshold=0.0,
        ),
        workers=workers, behaviors=behaviors,
        requesters=_requesters(), task_factory=stream,
    )


class TestMultiRequesterAxiom2:
    def test_show_all_session_passes_axiom2_with_real_opportunities(self):
        result = _session().run()
        check = AuditEngine().audit_axioms(result.trace, [2]).result_for(2)
        assert check.opportunities > 0  # comparable cross-requester pairs
        assert check.passed             # show-all visibility is fair


class TestDelayedPaymentsInSession:
    def test_queued_payments_eventually_settle(self):
        result = _session(
            pricing=DelayedPaymentScheme(delay_ticks=3), rounds=8
        ).run()
        payments = result.trace.of_kind(PaymentIssued)
        assert payments  # delays elapsed within the session
        # Every payment respects the contractual delay.
        submitted = {
            e.contribution.contribution_id: e.time
            for e in result.trace.of_kind(ContributionSubmitted)
        }
        for payment in payments:
            assert payment.time - submitted[payment.contribution_id] >= 3

    def test_axiom6_flags_breach_of_declared_delay(self):
        # Declared delay is 5; contractual delay 20 -> every settled
        # payment is late.
        result = _session(
            pricing=DelayedPaymentScheme(delay_ticks=20), rounds=10
        ).run()
        check = AuditEngine().audit_axioms(result.trace, [6]).result_for(6)
        late = [
            v for v in check.violations
            if v.witness.get("type") == "late_payment"
        ]
        if result.trace.of_kind(PaymentIssued):
            assert late


class TestAdaptiveInSession:
    def test_adaptive_assigner_allocates_every_round(self):
        assigner = AdaptiveAssigner()
        result = _session(assigner=assigner, rounds=5).run()
        assert all(r.assignments > 0 for r in result.rounds)
        # The posterior absorbed the session's review stream.
        assert assigner._observed_reviews > 0
