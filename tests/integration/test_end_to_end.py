"""Integration tests: full pipelines across modules.

Each test wires several subsystems together the way a downstream user
would: simulate a market, enforce a policy, audit the trace, compute
the Section 4 measures.
"""

import pytest

from repro.assignment import FairnessConstrainedAssigner, RequesterCentricAssigner
from repro.core.audit import AuditEngine
from repro.core.entities import Requester
from repro.malice import EnsembleDetector, evaluate_detector
from repro.metrics.parity import assignment_disparate_impact
from repro.metrics.quality import mean_quality
from repro.metrics.retention import retention_rate
from repro.platform.review import SilentRejectReview
from repro.platform.session import Session, SessionConfig
from repro.transparency.enforcement import PolicyEnforcer
from repro.transparency.presets import preset
from repro.workloads.skills import standard_vocabulary
from repro.workloads.tasks import TaskStream
from repro.workloads.workers import PopulationSpec, population


def _requester():
    return Requester(
        requester_id="r0001", name="acme", hourly_wage=6.0, payment_delay=5,
        recruitment_criteria="any", rejection_criteria="low quality",
    )


def _run_market(assigner=None, transparency=None, review=None, seed=0,
                behavior_mix=None, rounds=8, n_workers=30):
    vocabulary = standard_vocabulary()
    spec = PopulationSpec(
        size=n_workers, seed=seed,
        behavior_mix=behavior_mix or {"diligent": 0.7, "sloppy": 0.3},
    )
    workers, behaviors = population(spec, vocabulary)
    stream = TaskStream(vocabulary=vocabulary, tasks_per_round=20,
                        skills_per_task=1, gold_fraction=1.0)
    config = SessionConfig(
        rounds=rounds, tasks_per_round=20, seed=seed,
        assigner=assigner, review_policy=review, transparency=transparency,
    )
    session = Session(
        config=config, workers=workers, behaviors=behaviors,
        requesters=[_requester()], task_factory=stream,
    )
    return session.run()


class TestMarketAuditPipeline:
    def test_transparent_fair_market_scores_high(self):
        result = _run_market(transparency=PolicyEnforcer(preset("full")))
        report = AuditEngine().audit(result.trace)
        # Axioms 5-7 should be clean; axiom 6 passes because the fair
        # review policy explains rejections and the policy discloses all.
        assert report.result_for(5).passed
        assert report.result_for(6).passed
        assert report.result_for(7).passed
        # Axiom 3 under the strict payload-only reading may flag the
        # quality-threshold review (identical payloads, different latent
        # quality, opposite verdicts) — the E3 ablation finding — so the
        # overall score is high but not necessarily 1.0.
        assert report.overall_score > 0.8

    def test_opaque_market_fails_transparency_axioms(self):
        result = _run_market(review=SilentRejectReview(threshold=0.6))
        report = AuditEngine().audit(result.trace)
        assert not report.result_for(6).passed
        assert not report.result_for(7).passed

    def test_fair_assigner_improves_group_parity(self):
        unfair = _run_market(assigner=RequesterCentricAssigner(), seed=4)
        fair = _run_market(
            assigner=FairnessConstrainedAssigner("group", epsilon=0.05),
            seed=4,
        )
        # Reputation differences in a session develop endogenously and
        # stay small, so allow parity noise around the comparison.
        assert assignment_disparate_impact(fair.trace) >= (
            assignment_disparate_impact(unfair.trace) - 0.05
        )

    def test_section4_measures_computable(self):
        result = _run_market()
        assert 0.0 < mean_quality(result.trace) <= 1.0
        assert 0.0 <= retention_rate(result.trace) <= 1.0


class TestMaliceDetectionPipeline:
    def test_spammers_detected_in_simulated_market(self):
        result = _run_market(
            behavior_mix={"diligent": 0.6, "spammer": 0.4},
            rounds=10, seed=2,
        )
        # Ground truth: spammers have low mean latent quality.
        from repro.metrics.quality import quality_by_worker

        per_worker = quality_by_worker(result.trace)
        truly_bad = {w for w, q in per_worker.items() if q < 0.35}
        if not truly_bad:
            pytest.skip("seed produced no active spammers")
        outcome = evaluate_detector(
            EnsembleDetector(), result.trace, truly_bad, threshold=0.5
        )
        assert outcome.recall > 0.5
        assert outcome.precision > 0.5


class TestTraceReplayability:
    def test_audit_is_pure(self):
        """Auditing the same trace twice yields identical reports."""
        result = _run_market(seed=9)
        engine = AuditEngine()
        first = engine.audit(result.trace)
        second = engine.audit(result.trace)
        assert first.scores() == second.scores()
        assert first.total_violations == second.total_violations

    def test_trace_slicing_supports_windowed_audit(self):
        result = _run_market(seed=9)
        full = result.trace
        window = full.slice(0, max(1, full.end_time // 2))
        report = AuditEngine().audit(window)
        assert report.trace_length <= len(full)
