"""The metrics core: instruments, families, registries, spans."""

import pytest

from repro.telemetry import (
    DEFAULT_LATENCY_BUCKETS,
    NULL_REGISTRY,
    MetricsRegistry,
    TelemetryError,
    current_span,
    get_registry,
    set_registry,
    span,
    using_registry,
)


class TestCounter:
    def test_counts_up(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_widgets_total")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5.0

    def test_rejects_negative_increments(self):
        counter = MetricsRegistry().counter("repro_widgets_total")
        with pytest.raises(TelemetryError, match="only go up"):
            counter.inc(-1)

    def test_labelled_children_are_independent(self):
        registry = MetricsRegistry()
        registry.counter("repro_widgets_total", tenant="a").inc()
        registry.counter("repro_widgets_total", tenant="b").inc(2)
        assert registry.counter("repro_widgets_total", tenant="a").value == 1
        assert registry.counter("repro_widgets_total", tenant="b").value == 2

    def test_same_labels_return_the_same_child(self):
        registry = MetricsRegistry()
        first = registry.counter("repro_widgets_total", tenant="a")
        again = registry.counter("repro_widgets_total", tenant="a")
        assert first is again


class TestGauge:
    def test_moves_anywhere(self):
        gauge = MetricsRegistry().gauge("repro_depth")
        gauge.set(7)
        gauge.inc(2)
        gauge.dec(10)
        assert gauge.value == -1.0


class TestHistogram:
    def test_observations_land_in_log_scale_buckets(self):
        histogram = MetricsRegistry().histogram("repro_lat_seconds")
        histogram.observe(0.002)   # -> the 0.0025 bucket
        histogram.observe(0.3)     # -> the 0.5 bucket
        histogram.observe(99.0)    # -> +Inf only
        cumulative = histogram.cumulative_counts()
        bounds = list(DEFAULT_LATENCY_BUCKETS)
        assert cumulative[bounds.index(0.001)] == 0
        assert cumulative[bounds.index(0.0025)] == 1
        assert cumulative[bounds.index(0.25)] == 1
        assert cumulative[bounds.index(0.5)] == 2
        assert cumulative[bounds.index(30.0)] == 2
        assert cumulative[-1] == 3  # +Inf sees everything
        assert histogram.count == 3
        assert histogram.sum == pytest.approx(99.302)

    def test_exact_boundary_lands_in_its_bucket(self):
        # le is inclusive: an observation equal to a bound counts there.
        histogram = MetricsRegistry().histogram("repro_lat_seconds")
        histogram.observe(0.005)
        bounds = list(DEFAULT_LATENCY_BUCKETS)
        assert histogram.cumulative_counts()[bounds.index(0.005)] == 1

    def test_custom_buckets_must_increase(self):
        registry = MetricsRegistry()
        with pytest.raises(TelemetryError, match="strictly increasing"):
            registry.histogram("repro_bad_seconds", buckets=(1.0, 1.0))


class TestRegistry:
    def test_validates_metric_names(self):
        with pytest.raises(TelemetryError, match="invalid metric name"):
            MetricsRegistry().counter("bad-name_total")

    def test_validates_label_names(self):
        with pytest.raises(TelemetryError, match="invalid label name"):
            MetricsRegistry().counter("repro_x_total", **{"bad-label": "v"})

    def test_kind_clash_fails_loudly(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total")
        with pytest.raises(TelemetryError, match="is a counter"):
            registry.gauge("repro_x_total")

    def test_label_set_clash_fails_loudly(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total", tenant="a")
        with pytest.raises(TelemetryError, match="one family, one label set"):
            registry.counter("repro_x_total", route="/x")

    def test_snapshot_is_json_shaped(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total", tenant="a").inc(3)
        registry.histogram("repro_lat_seconds").observe(0.1)
        document = registry.snapshot()
        assert document["repro_x_total"]["kind"] == "counter"
        assert document["repro_x_total"]["samples"] == [
            {"labels": {"tenant": "a"}, "value": 3.0}
        ]
        histogram = document["repro_lat_seconds"]["samples"][0]
        assert histogram["count"] == 1
        assert len(histogram["counts"]) == len(histogram["buckets"]) + 1


class TestDefaultRegistry:
    def test_swap_and_restore(self):
        fresh = MetricsRegistry()
        with using_registry(fresh):
            assert get_registry() is fresh
            get_registry().counter("repro_x_total").inc()
        assert get_registry() is not fresh
        assert fresh.counter("repro_x_total").value == 1

    def test_set_registry_returns_previous(self):
        fresh = MetricsRegistry()
        previous = set_registry(fresh)
        try:
            assert get_registry() is fresh
        finally:
            set_registry(previous)


class TestNullRegistry:
    def test_records_nothing(self):
        NULL_REGISTRY.counter("repro_x_total", tenant="a").inc(5)
        NULL_REGISTRY.gauge("repro_depth").set(9)
        NULL_REGISTRY.histogram("repro_lat_seconds").observe(1.0)
        assert NULL_REGISTRY.snapshot() == {}
        assert NULL_REGISTRY.families() == []
        assert NULL_REGISTRY.enabled is False

    def test_instruments_are_shared_no_ops(self):
        first = NULL_REGISTRY.counter("repro_a_total")
        second = NULL_REGISTRY.histogram("repro_b_seconds")
        assert first is second  # one singleton serves every kind


class TestSpans:
    def test_span_records_a_duration_histogram(self):
        registry = MetricsRegistry()
        with using_registry(registry):
            with span("rebuild"):
                pass
        histogram = registry.histogram(
            "repro_span_rebuild_seconds", parent=""
        )
        assert histogram.count == 1

    def test_spans_nest_with_parent_attribution(self):
        registry = MetricsRegistry()
        with using_registry(registry):
            with span("request"):
                assert current_span() == "request"
                with span("audit"):
                    assert current_span() == "audit"
                assert current_span() == "request"
            assert current_span() == ""
        child = registry.histogram(
            "repro_span_audit_seconds", parent="request"
        )
        assert child.count == 1

    def test_span_as_decorator(self):
        registry = MetricsRegistry()

        @span("judge")
        def judge() -> int:
            return 42

        with using_registry(registry):
            assert judge() == 42
            assert judge() == 42
        histogram = registry.histogram("repro_span_judge_seconds", parent="")
        assert histogram.count == 2

    def test_span_pops_its_frame_on_error(self):
        registry = MetricsRegistry()
        with using_registry(registry):
            with pytest.raises(RuntimeError):
                with span("request"):
                    raise RuntimeError("boom")
            assert current_span() == ""  # no leaked stack frame

    def test_disabled_registry_skips_recording(self):
        with using_registry(NULL_REGISTRY):
            with span("rebuild"):
                assert current_span() == ""  # no stack bookkeeping either

    def test_span_name_is_validated(self):
        with pytest.raises(TelemetryError):
            span("bad-name")
