"""The JSONL snapshot writer: cadence, schema, elapsed_s stamping."""

import json

import pytest

from repro.telemetry import (
    MetricsRegistry,
    MetricsSnapshotWriter,
    read_snapshots,
)


@pytest.fixture()
def registry():
    registry = MetricsRegistry()
    registry.counter("repro_x_total").inc()
    return registry


class TestCadence:
    def test_every_n_batches_writes_one_line(self, tmp_path, registry):
        path = tmp_path / "metrics.jsonl"
        with MetricsSnapshotWriter(path, every=2, registry=registry) as w:
            for _ in range(6):
                w.observe_batch()
        assert len(read_snapshots(path)) == 3

    def test_close_flushes_a_trailing_partial_cadence(
        self, tmp_path, registry
    ):
        path = tmp_path / "metrics.jsonl"
        writer = MetricsSnapshotWriter(path, every=4, registry=registry)
        for _ in range(5):  # one snapshot at 4, one pending batch
            writer.observe_batch()
        writer.close()
        lines = read_snapshots(path)
        assert [line["batch"] for line in lines] == [4, 5]

    def test_close_is_idempotent(self, tmp_path, registry):
        writer = MetricsSnapshotWriter(
            tmp_path / "m.jsonl", registry=registry
        )
        writer.observe_batch()
        writer.close()
        writer.close()

    def test_rejects_non_positive_cadence(self, tmp_path):
        with pytest.raises(ValueError, match=">= 1"):
            MetricsSnapshotWriter(tmp_path / "m.jsonl", every=0)


class TestSchema:
    def test_lines_carry_elapsed_batch_and_metrics(self, tmp_path, registry):
        path = tmp_path / "metrics.jsonl"
        with MetricsSnapshotWriter(path, registry=registry) as writer:
            writer.observe_batch()
            registry.counter("repro_x_total").inc()
            writer.observe_batch()
        first, second = read_snapshots(path)
        assert set(first) == {"elapsed_s", "batch", "metrics"}
        assert first["batch"] == 1 and second["batch"] == 2
        # elapsed_s is monotonic across the series.
        assert 0 <= first["elapsed_s"] <= second["elapsed_s"]
        # Each line is a full registry snapshot at that moment.
        assert (
            first["metrics"]["repro_x_total"]["samples"][0]["value"] == 1.0
        )
        assert (
            second["metrics"]["repro_x_total"]["samples"][0]["value"] == 2.0
        )

    def test_appends_to_an_existing_file(self, tmp_path, registry):
        path = tmp_path / "metrics.jsonl"
        path.write_text(json.dumps({"batch": 0, "elapsed_s": 0.0,
                                    "metrics": {}}) + "\n")
        with MetricsSnapshotWriter(path, registry=registry) as writer:
            writer.observe_batch()
        assert len(read_snapshots(path)) == 2
