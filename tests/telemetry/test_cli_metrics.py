"""CLI observability surfaces: --metrics-out/--metrics-every snapshots,
elapsed_s-stamped stats_snapshots, and the trace stats telemetry section.
"""

import json

import pytest

from repro.cli import main
from repro.telemetry import read_snapshots


@pytest.fixture()
def export_log(tmp_path, capsys):
    path = tmp_path / "export-log"
    assert main(
        ["trace", "save", str(path), "--scenario", "unequal_pay",
         "--segment-events", "10"]
    ) == 0
    capsys.readouterr()
    return path


class TestMetricsOut:
    def test_tail_appends_jsonl_snapshots_on_the_cadence(
        self, export_log, tmp_path, capsys
    ):
        metrics_path = tmp_path / "metrics.jsonl"
        assert main(
            ["trace", "tail", str(export_log), str(tmp_path / "live.db"),
             "--interval", "0", "--until-idle", "1", "--batch-events", "20",
             "--audit", "--metrics-out", str(metrics_path),
             "--metrics-every", "2"]
        ) == 0
        err = capsys.readouterr().err
        assert "telemetry snapshots" in err
        lines = read_snapshots(metrics_path)
        assert lines  # 46 events / 20 per batch = 3 batches -> 2 lines
        for line in lines:
            assert set(line) == {"elapsed_s", "batch", "metrics"}
            assert "repro_ingest_stage_batches_total" in line["metrics"]
            assert "repro_audit_runs_total" in line["metrics"]
        elapsed = [line["elapsed_s"] for line in lines]
        assert elapsed == sorted(elapsed)  # monotonic series

    def test_resume_accepts_the_flags_too(
        self, export_log, tmp_path, capsys
    ):
        dest = tmp_path / "live.db"
        metrics_path = tmp_path / "metrics.jsonl"
        assert main(
            ["trace", "tail", str(export_log), str(dest),
             "--interval", "0", "--max-batches", "1",
             "--batch-events", "20"]
        ) == 0
        capsys.readouterr()
        assert main(
            ["trace", "resume", str(export_log), str(dest),
             "--interval", "0", "--until-idle", "1", "--batch-events", "20",
             "--metrics-out", str(metrics_path)]
        ) == 0
        assert read_snapshots(metrics_path)


class TestStatsSnapshotsElapsed:
    def test_json_summary_snapshots_carry_elapsed_s(
        self, export_log, tmp_path, capsys
    ):
        assert main(
            ["trace", "tail", str(export_log), str(tmp_path / "live.db"),
             "--interval", "0", "--until-idle", "1", "--batch-events", "20",
             "--stats-every", "1", "--format", "json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        snapshots = payload["stats_snapshots"]
        assert len(snapshots) == 3
        for snapshot in snapshots:
            assert isinstance(snapshot["elapsed_s"], float)
            assert snapshot["elapsed_s"] >= 0
            assert "events" in snapshot  # the TraceStats fields survive
        elapsed = [s["elapsed_s"] for s in snapshots]
        assert elapsed == sorted(elapsed)


class TestTraceStatsTelemetry:
    def test_stats_json_includes_a_telemetry_section(
        self, export_log, capsys
    ):
        assert main(
            ["trace", "stats", str(export_log), "--format", "json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["events"] == 46  # the stats fields are unchanged
        telemetry = payload["telemetry"]
        # Computing the stats exercised the instrumented query layer.
        assert "repro_store_queries_total" in telemetry
