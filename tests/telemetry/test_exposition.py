"""Prometheus text exposition and the naming-convention lint."""

import json

import pytest

from repro.telemetry import (
    MetricsRegistry,
    lint_registry,
    render_json,
    render_prometheus,
)


@pytest.fixture()
def registry():
    return MetricsRegistry()


class TestPrometheusRendering:
    def test_counter_with_help_type_and_labels(self, registry):
        registry.counter(
            "repro_requests_total", help="Requests served.",
            route="/tenants", tenant="acme",
        ).inc(3)
        text = render_prometheus(registry)
        assert "# HELP repro_requests_total Requests served.\n" in text
        assert "# TYPE repro_requests_total counter\n" in text
        assert (
            'repro_requests_total{route="/tenants",tenant="acme"} 3\n'
            in text
        )

    def test_unlabelled_sample_has_no_braces(self, registry):
        registry.gauge("repro_depth").set(4)
        assert "\nrepro_depth 4\n" in render_prometheus(registry)

    def test_histogram_expands_to_cumulative_buckets(self, registry):
        histogram = registry.histogram(
            "repro_lat_seconds", buckets=(0.1, 1.0), stage="poll"
        )
        histogram.observe(0.05)
        histogram.observe(0.5)
        histogram.observe(5.0)
        text = render_prometheus(registry)
        assert 'repro_lat_seconds_bucket{stage="poll",le="0.1"} 1\n' in text
        assert 'repro_lat_seconds_bucket{stage="poll",le="1"} 2\n' in text
        assert 'repro_lat_seconds_bucket{stage="poll",le="+Inf"} 3\n' in text
        assert 'repro_lat_seconds_sum{stage="poll"} 5.55' in text
        assert 'repro_lat_seconds_count{stage="poll"} 3\n' in text

    def test_label_values_are_escaped(self, registry):
        registry.counter(
            "repro_errors_total", type='Bad"Quote\\Path\nLine'
        ).inc()
        text = render_prometheus(registry)
        assert r'type="Bad\"Quote\\Path\nLine"' in text

    def test_empty_registry_renders_empty(self, registry):
        assert render_prometheus(registry) == ""

    def test_families_sorted_by_name(self, registry):
        registry.counter("repro_b_total").inc()
        registry.counter("repro_a_total").inc()
        text = render_prometheus(registry)
        assert text.index("repro_a_total") < text.index("repro_b_total")


class TestJsonRendering:
    def test_round_trips_the_snapshot(self, registry):
        registry.counter("repro_x_total", tenant="a").inc(2)
        document = json.loads(render_json(registry))
        assert document == registry.snapshot()


class TestLint:
    def test_clean_registry_lints_clean(self, registry):
        registry.counter("repro_requests_total")
        registry.histogram("repro_latency_seconds")
        registry.gauge("repro_inflight_requests")
        assert lint_registry(registry) == []

    def test_counter_must_end_in_total(self, registry):
        registry.counter("repro_requests")
        problems = lint_registry(registry)
        assert problems == ["repro_requests: counter names must end in _total"]

    def test_histogram_must_end_in_seconds(self, registry):
        registry.histogram("repro_latency")
        assert any("_seconds" in p for p in lint_registry(registry))

    def test_gauge_must_not_claim_reserved_suffixes(self, registry):
        registry.gauge("repro_depth_total")
        registry.gauge("repro_depth_count")
        problems = lint_registry(registry)
        assert len(problems) == 2


class TestVocabularyLint:
    """Every metric the system actually registers passes the lint.

    This is the exposition self-check the issue asks for: exercise the
    full instrument vocabulary against a fresh registry and assert a
    scraper would accept all of it.
    """

    def test_instrument_vocabulary_is_scrapable(self):
        from repro.telemetry import instruments

        registry = MetricsRegistry()
        instruments.record_store_append("sqlite", 10, 0.1, registry=registry)
        instruments.record_store_commit("sqlite", 0.1, registry=registry)
        instruments.record_store_query(
            "memory", "count", 0.1, registry=registry
        )
        instruments.record_audit("delta", 10, 2, 0.1, registry=registry)
        instruments.record_shard_judge(3, 0.1, registry=registry)
        instruments.record_ingest_stage("poll", 10, 0.1, registry=registry)
        instruments.set_ingest_queue_depth("audit", 4, registry=registry)
        instruments.set_audit_lag(2, 40, registry=registry)
        instruments.record_service_request(
            "/tenants/{tenant}", "GET", "acme", 200, 0.1, registry=registry
        )
        instruments.record_service_error("NotFound", 404, registry=registry)
        instruments.service_inflight_gauge(registry=registry).inc()
        assert len(registry.families()) >= 15
        assert lint_registry(registry) == []

    def test_span_names_lint_clean(self):
        from repro.telemetry import span, using_registry

        registry = MetricsRegistry()
        with using_registry(registry):
            with span("request"):
                pass
        assert lint_registry(registry) == []
