"""Thread-safety hammer: N threads, exact totals, no lost updates."""

import threading

import pytest

from repro.telemetry import MetricsRegistry

THREADS = 8
ITERATIONS = 2_000


def _hammer(worker):
    """Run ``worker(thread_index)`` from THREADS threads at once."""
    barrier = threading.Barrier(THREADS)
    failures = []

    def body(index):
        barrier.wait()  # maximise interleaving: everyone starts together
        try:
            worker(index)
        except BaseException as error:  # pragma: no cover - diagnostics
            failures.append(error)

    threads = [
        threading.Thread(target=body, args=(i,)) for i in range(THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not failures


class TestConcurrentUpdates:
    def test_shared_counter_loses_no_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_hammer_total")
        _hammer(lambda i: [counter.inc() for _ in range(ITERATIONS)])
        assert counter.value == THREADS * ITERATIONS

    def test_lazy_child_creation_is_race_free(self):
        # Every thread resolves the same (name, labels) child while
        # incrementing — registration and updates interleave.
        registry = MetricsRegistry()

        def worker(index):
            for _ in range(ITERATIONS):
                registry.counter(
                    "repro_hammer_total", tenant="shared"
                ).inc()

        _hammer(worker)
        child = registry.counter("repro_hammer_total", tenant="shared")
        assert child.value == THREADS * ITERATIONS

    def test_per_thread_labels_stay_separate(self):
        registry = MetricsRegistry()

        def worker(index):
            counter = registry.counter(
                "repro_hammer_total", shard=index
            )
            for _ in range(ITERATIONS):
                counter.inc()

        _hammer(worker)
        for index in range(THREADS):
            assert registry.counter(
                "repro_hammer_total", shard=index
            ).value == ITERATIONS

    def test_shared_histogram_keeps_exact_count_and_sum(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("repro_hammer_seconds")

        def worker(index):
            for _ in range(ITERATIONS):
                histogram.observe(0.001)

        _hammer(worker)
        expected = THREADS * ITERATIONS
        assert histogram.count == expected
        assert histogram.sum == pytest.approx(0.001 * expected, rel=1e-9)
        # Cumulative bucket counts agree with the total at +Inf.
        assert histogram.cumulative_counts()[-1] == expected

    def test_snapshot_during_hammer_never_corrupts(self):
        # Readers (snapshot/exposition) run concurrently with writers;
        # the test asserts no exception and a sane final total.
        from repro.telemetry import render_prometheus

        registry = MetricsRegistry()
        counter = registry.counter("repro_hammer_total")
        stop = threading.Event()

        def reader():
            while not stop.is_set():
                registry.snapshot()
                render_prometheus(registry)

        snapshotter = threading.Thread(target=reader)
        snapshotter.start()
        try:
            _hammer(lambda i: [counter.inc() for _ in range(ITERATIONS)])
        finally:
            stop.set()
            snapshotter.join()
        assert counter.value == THREADS * ITERATIONS
