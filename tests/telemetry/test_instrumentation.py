"""The instrumented layers actually record: drive real store/audit/
ingest workloads under a fresh registry and assert the families fill.
"""

import pytest

from repro.core.audit import AuditEngine
from repro.core.store.sqlite import SQLiteTraceStore
from repro.core.trace import PlatformTrace
from repro.ingest import IngestRunner, JSONLExportSource
from repro.ingest.pipeline import PipelinedIngestRunner
from repro.query import TraceQuery
from repro.shard import make_audit_session
from repro.telemetry import MetricsRegistry, using_registry
from repro.workloads.scenarios import all_scenarios


@pytest.fixture(scope="module")
def scenario_trace():
    scenarios = {s.name: s for s in all_scenarios(0)}
    return scenarios["unequal_pay"].trace


@pytest.fixture(scope="module")
def export_path(scenario_trace, tmp_path_factory):
    import json

    from repro.core.serialize import event_to_dict

    path = tmp_path_factory.mktemp("telemetry") / "export.jsonl"
    with path.open("w") as handle:
        for event in scenario_trace:
            handle.write(json.dumps(event_to_dict(event)) + "\n")
    return path


def counter_total(registry, name, **labels):
    return registry.counter(name, **labels).value


class TestStoreInstrumentation:
    def test_append_batch_and_commit_record_per_backend(
        self, scenario_trace, tmp_path
    ):
        registry = MetricsRegistry()
        with using_registry(registry):
            store = SQLiteTraceStore(tmp_path / "t.db")
            store.append_batch(list(scenario_trace))
            store.save()
            store.close()
        events = len(scenario_trace.events)
        assert counter_total(
            registry, "repro_store_append_events_total", backend="sqlite"
        ) == events
        assert counter_total(
            registry, "repro_store_append_batches_total", backend="sqlite"
        ) == 1
        assert counter_total(
            registry, "repro_store_commits_total", backend="sqlite"
        ) >= 2  # batch commit + save
        histogram = registry.histogram(
            "repro_store_append_seconds", backend="sqlite"
        )
        assert histogram.count == 1

    def test_queries_record_backend_and_op(self, scenario_trace):
        registry = MetricsRegistry()
        with using_registry(registry):
            TraceQuery().count(scenario_trace)
            TraceQuery().count_by_kind(scenario_trace)
            TraceQuery().run(scenario_trace)
        assert counter_total(
            registry, "repro_store_queries_total",
            backend="memory", op="count",
        ) == 1
        assert counter_total(
            registry, "repro_store_queries_total",
            backend="memory", op="run",
        ) == 1

    def test_null_registry_keeps_behaviour_identical(self, scenario_trace):
        # The recording path and the disabled path must agree on results.
        recorded = MetricsRegistry()
        with using_registry(recorded):
            count_recorded = TraceQuery().count(scenario_trace)
        count_plain = TraceQuery().count(scenario_trace)
        assert count_recorded == count_plain


class TestAuditInstrumentation:
    def test_batch_audit_records_engine_events_violations(
        self, scenario_trace
    ):
        registry = MetricsRegistry()
        with using_registry(registry):
            report = AuditEngine().audit(scenario_trace)
        assert counter_total(
            registry, "repro_audit_runs_total", engine="batch"
        ) == 1
        assert counter_total(
            registry, "repro_audit_events_total", engine="batch"
        ) == report.trace_length
        assert counter_total(
            registry, "repro_audit_violations_total", engine="batch"
        ) == report.total_violations

    def test_delta_audit_records_delta_sized_events(self, scenario_trace):
        registry = MetricsRegistry()
        events = list(scenario_trace)
        with using_registry(registry):
            trace = PlatformTrace()
            session = AuditEngine().delta_session()
            trace.append_batch(events[:20])
            session.audit(trace)
            trace.append_batch(events[20:])
            session.audit(trace)
        assert counter_total(
            registry, "repro_audit_runs_total", engine="delta"
        ) == 2
        # Delta audits pay per new event: 20 then the remainder.
        assert counter_total(
            registry, "repro_audit_events_total", engine="delta"
        ) == len(events)

    def test_sharded_audit_records_per_shard_judge_time(
        self, scenario_trace
    ):
        registry = MetricsRegistry()
        with using_registry(registry):
            trace = PlatformTrace()
            trace.append_batch(list(scenario_trace))
            with make_audit_session(jobs=2) as session:
                session.audit(trace)
        assert counter_total(
            registry, "repro_audit_runs_total", engine="sharded"
        ) == 1
        judged = sum(
            registry.histogram(
                "repro_audit_shard_judge_seconds", shard=shard
            ).count
            for shard in range(2)
        )
        assert judged == 2  # one judge per shard


class TestIngestInstrumentation:
    def test_sequential_runner_records_stages(self, export_path, tmp_path):
        registry = MetricsRegistry()
        with using_registry(registry):
            source = JSONLExportSource(str(export_path))
            runner = IngestRunner(
                source, PlatformTrace(), audit=True, batch_events=16,
                checkpoint_path=str(tmp_path / "ckpt.json"),
            )
            summary = runner.run(idle_limit=1)
            runner.close()
            source.close()
        for stage in ("poll", "append", "audit", "checkpoint"):
            assert counter_total(
                registry, "repro_ingest_stage_batches_total", stage=stage
            ) >= summary.batches, stage
        assert counter_total(
            registry, "repro_ingest_stage_events_total", stage="append"
        ) == summary.events

    def test_pipelined_runner_records_stages_and_lag_gauges(
        self, export_path, tmp_path
    ):
        registry = MetricsRegistry()
        with using_registry(registry):
            source = JSONLExportSource(str(export_path))
            runner = PipelinedIngestRunner(
                source, PlatformTrace(), audit=True, batch_events=16,
                interval=0.0, pipeline_depth=2,
                checkpoint_path=str(tmp_path / "ckpt.json"),
            )
            summary = runner.run(idle_limit=3)
            runner.close()
            source.close()
        assert counter_total(
            registry, "repro_ingest_stage_events_total", stage="append"
        ) == summary.events
        assert counter_total(
            registry, "repro_ingest_stage_batches_total", stage="audit"
        ) >= 1
        # The audit-lag watermark drained to zero once the flush audit
        # caught up with the append stage.
        assert registry.gauge("repro_ingest_audit_lag_batches").value == 0
        assert registry.gauge("repro_ingest_audit_lag_events").value == 0
        # Queue depth gauges registered (their last value is timing-
        # dependent; existence and non-negativity are the contract).
        assert registry.gauge(
            "repro_ingest_queue_depth", queue="poll"
        ).value >= 0
