"""Unit tests for the cross-platform comparison report."""

import pytest

from repro.core.audit import AuditEngine
from repro.core.axioms import AxiomRegistry
from repro.core.axiom_completion import WorkerFairnessInCompletion
from repro.core.comparison import best_platform, comparison_table
from repro.errors import AuditError
from repro.workloads.scenarios import (
    clean_scenario,
    survey_cancellation_scenario,
    unequal_pay_scenario,
)


@pytest.fixture(scope="module")
def reports():
    engine = AuditEngine()
    return {
        "fair-market": engine.audit(clean_scenario().trace),
        "wage-cheat": engine.audit(unequal_pay_scenario().trace),
        "interrupter": engine.audit(survey_cancellation_scenario().trace),
    }


class TestComparisonTable:
    def test_ranked_by_overall_score(self, reports):
        table = comparison_table(reports)
        platforms = table.column("platform")
        assert platforms[0] == "fair-market"
        overall = table.column("overall")
        assert overall == sorted(overall, reverse=True)

    def test_contains_per_axiom_columns(self, reports):
        table = comparison_table(reports)
        assert "compensation" in table.columns
        assert "no-interrupt" in table.columns
        row = next(
            r for r in table.rows_as_dicts() if r["platform"] == "wage-cheat"
        )
        assert row["compensation"] < 1.0
        assert row["no-interrupt"] == 1.0

    def test_violation_counts(self, reports):
        table = comparison_table(reports)
        row = next(
            r for r in table.rows_as_dicts() if r["platform"] == "fair-market"
        )
        assert row["violations"] == 0

    def test_empty_rejected(self):
        with pytest.raises(AuditError, match="nothing to compare"):
            comparison_table({})

    def test_mismatched_suites_rejected(self, reports):
        narrow_engine = AuditEngine(
            registry=AxiomRegistry().register(WorkerFairnessInCompletion())
        )
        narrow = narrow_engine.audit(clean_scenario().trace)
        with pytest.raises(AuditError, match="lacks axioms"):
            comparison_table({**reports, "narrow": narrow})

    def test_renderable(self, reports):
        text = comparison_table(reports).render()
        assert "fair-market" in text
        assert "overall" in text


class TestBestPlatform:
    def test_best(self, reports):
        assert best_platform(reports) == "fair-market"

    def test_empty_rejected(self):
        with pytest.raises(AuditError):
            best_platform({})
