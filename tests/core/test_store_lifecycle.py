"""Regression tests for the store close/exit lifecycle contract.

Every backend must survive double-``close()`` and ``__exit__`` after an
explicit ``close()`` (the natural shape of ``with store: ...;
store.close()``), and the SQLite backend must not persist uncommitted
appends when the ``with`` block exits on an exception — closing after a
failed batch used to commit a partial prefix the caller believed
abandoned.
"""

import pytest

from repro.core.store import (
    InMemoryTraceStore,
    PersistentTraceStore,
    SQLiteTraceStore,
    WindowedTraceStore,
    make_store,
)
from repro.core.trace import PlatformTrace
from repro.workloads.scenarios import clean_scenario


@pytest.fixture()
def clean_events():
    return list(clean_scenario(rounds=3).trace)


def _make_backends(tmp_path):
    return [
        InMemoryTraceStore(),
        WindowedTraceStore(window=100),
        PersistentTraceStore.create(tmp_path / "log"),
        SQLiteTraceStore.create(tmp_path / "log.db"),
    ]


class TestIdempotentClose:
    def test_double_close_is_a_noop_on_every_backend(
        self, clean_events, tmp_path
    ):
        for store in _make_backends(tmp_path):
            store.append_batch(clean_events[:20])
            store.close()
            store.close()  # must not raise (sqlite3.ProgrammingError before)

    def test_exit_after_explicit_close(self, clean_events, tmp_path):
        for store in _make_backends(tmp_path):
            with store:
                store.append_batch(clean_events[:20])
                store.close()  # __exit__ closes again on the way out

    def test_every_backend_is_a_context_manager(self, tmp_path):
        for store in _make_backends(tmp_path):
            with store as entered:
                assert entered is store

    def test_sqlite_closed_property(self, tmp_path):
        store = SQLiteTraceStore.create(tmp_path / "log.db")
        assert not store.closed
        store.close()
        assert store.closed

    def test_make_store_backends_close_unconditionally(self, tmp_path):
        # The getattr(store, "close", ...) dance is no longer needed
        # anywhere: the base protocol guarantees close() exists.
        for backend, options in (
            ("memory", {}),
            ("windowed", {"window": 10}),
            ("persistent", {"path": tmp_path / "mk-log"}),
            ("sqlite", {"path": tmp_path / "mk-log.db"}),
        ):
            store = make_store(backend, **options)
            store.close()
            store.close()


class TestRollbackOnException:
    def test_exception_exit_rolls_back_uncommitted_appends(
        self, clean_events, tmp_path
    ):
        """Appends buffered inside a failed ``with`` block must not be
        committed by the implicit close — the caller saw the block
        abort and believes nothing after the last commit survived."""
        path = tmp_path / "log.db"
        with pytest.raises(RuntimeError, match="aborted"):
            with SQLiteTraceStore.create(path, commit_every=10_000) as store:
                store.append_batch(clean_events[:10])  # commits itself
                for event in clean_events[10:20]:      # buffered only
                    store.append(event)
                raise RuntimeError("aborted mid-ingest")
        reopened = SQLiteTraceStore.open(path)
        assert reopened.revision == 10
        assert list(reopened.events) == clean_events[:10]
        reopened.close()

    def test_clean_exit_still_commits_buffered_appends(
        self, clean_events, tmp_path
    ):
        path = tmp_path / "log.db"
        with SQLiteTraceStore.create(path, commit_every=10_000) as store:
            for event in clean_events[:15]:
                store.append(event)
        reopened = SQLiteTraceStore.open(path)
        assert reopened.revision == 15
        reopened.close()

    def test_explicit_save_survives_a_later_exception_exit(
        self, clean_events, tmp_path
    ):
        path = tmp_path / "log.db"
        with pytest.raises(RuntimeError):
            with SQLiteTraceStore.create(path, commit_every=10_000) as store:
                for event in clean_events[:5]:
                    store.append(event)
                store.save()  # durable from here on
                for event in clean_events[5:12]:
                    store.append(event)
                raise RuntimeError("late failure")
        reopened = SQLiteTraceStore.open(path)
        assert reopened.revision == 5
        reopened.close()

    def test_persistent_backend_write_through_is_exception_proof(
        self, clean_events, tmp_path
    ):
        """The JSONL backend has no commit buffer: appends that happened
        before the failure are on disk, by design."""
        path = tmp_path / "log"
        with pytest.raises(RuntimeError):
            with PersistentTraceStore.create(path) as store:
                store.append_batch(clean_events[:8])
                raise RuntimeError("aborted")
        reopened = PersistentTraceStore.open(path)
        assert reopened.revision == 8
        reopened.close()

    def test_trace_facade_with_sqlite_store_rolls_back(
        self, clean_events, tmp_path
    ):
        path = tmp_path / "log.db"
        with pytest.raises(RuntimeError):
            with SQLiteTraceStore.create(path, commit_every=10_000) as store:
                trace = PlatformTrace(store=store)
                for event in clean_events[:7]:
                    trace.append(event)
                raise RuntimeError("aborted")
        reopened = SQLiteTraceStore.open(path)
        assert reopened.revision == 0
        reopened.close()
