"""Unit tests for Axiom 6 and Axiom 7 checkers."""

import pytest

from repro.core.attributes import ComputedAttributes
from repro.core.axiom_transparency import (
    REQUESTER_MANDATED_FIELDS,
    PlatformTransparency,
    RequesterTransparency,
    WORKER_MANDATED_FIELDS,
    requester_subject,
    worker_subject,
)
from repro.core.entities import Contribution, Requester
from repro.core.events import (
    ContributionReviewed,
    ContributionSubmitted,
    DisclosureShown,
    PaymentIssued,
    RequesterRegistered,
    TaskPosted,
    WorkerRegistered,
)
from repro.core.trace import PlatformTrace

from tests.conftest import make_task, make_worker


def _requester_trace(vocabulary, disclose_fields=(), feedback="explained",
                     accepted=False, payment_delay=5, pay_at=None):
    requester = Requester(
        "r0001", hourly_wage=6.0, payment_delay=payment_delay,
        recruitment_criteria="any", rejection_criteria="quality",
    )
    trace = PlatformTrace()
    trace.append(RequesterRegistered(time=0, requester=requester))
    trace.append(WorkerRegistered(time=0, worker=make_worker("w1", vocabulary)))
    for field_name in disclose_fields:
        trace.append(
            DisclosureShown(
                time=0, subject=requester_subject("r0001"),
                field_name=field_name, value="x",
            )
        )
    trace.append(TaskPosted(time=1, task=make_task("t1", vocabulary)))
    contribution = Contribution("c1", "t1", "w1", "A", submitted_at=2, quality=0.9)
    trace.append(ContributionSubmitted(time=2, contribution=contribution))
    trace.append(
        ContributionReviewed(
            time=3, contribution_id="c1", task_id="t1", worker_id="w1",
            accepted=accepted, feedback=feedback,
        )
    )
    if pay_at is not None:
        trace.append(
            PaymentIssued(time=pay_at, worker_id="w1", task_id="t1",
                          contribution_id="c1", amount=0.1)
        )
    return trace


class TestAxiom6:
    def test_full_disclosure_with_feedback_passes(self, vocabulary):
        trace = _requester_trace(
            vocabulary, disclose_fields=REQUESTER_MANDATED_FIELDS
        )
        check = RequesterTransparency().check(trace)
        assert check.passed

    def test_missing_fields_flagged(self, vocabulary):
        trace = _requester_trace(vocabulary, disclose_fields=("hourly_wage",))
        check = RequesterTransparency().check(trace)
        missing = {
            v.witness["field"] for v in check.violations
            if v.witness["type"] == "undisclosed_field"
        }
        assert missing == set(REQUESTER_MANDATED_FIELDS) - {"hourly_wage"}

    def test_silent_rejection_flagged(self, vocabulary):
        trace = _requester_trace(
            vocabulary, disclose_fields=REQUESTER_MANDATED_FIELDS, feedback=""
        )
        check = RequesterTransparency().check(trace)
        assert any(
            v.witness["type"] == "silent_rejection" for v in check.violations
        )

    def test_accepted_contribution_needs_no_feedback(self, vocabulary):
        trace = _requester_trace(
            vocabulary, disclose_fields=REQUESTER_MANDATED_FIELDS,
            feedback="", accepted=True,
        )
        check = RequesterTransparency().check(trace)
        assert check.passed

    def test_late_payment_flagged(self, vocabulary):
        trace = _requester_trace(
            vocabulary, disclose_fields=REQUESTER_MANDATED_FIELDS,
            accepted=True, payment_delay=3, pay_at=20,
        )
        check = RequesterTransparency().check(trace)
        late = [v for v in check.violations if v.witness["type"] == "late_payment"]
        assert len(late) == 1
        assert late[0].witness["actual_delay"] == 18

    def test_on_time_payment_passes(self, vocabulary):
        trace = _requester_trace(
            vocabulary, disclose_fields=REQUESTER_MANDATED_FIELDS,
            accepted=True, payment_delay=5, pay_at=4,
        )
        check = RequesterTransparency().check(trace)
        assert check.passed

    def test_subchecks_can_be_disabled(self, vocabulary):
        trace = _requester_trace(
            vocabulary, disclose_fields=REQUESTER_MANDATED_FIELDS,
            feedback="", payment_delay=0, pay_at=30, accepted=False,
        )
        check = RequesterTransparency(
            check_rejection_feedback=False, check_payment_delay=False
        ).check(trace)
        assert check.passed


class TestAxiom7:
    def _worker_trace(self, vocabulary, disclose=(), audience="w1"):
        worker = make_worker("w1", vocabulary).with_computed(
            ComputedAttributes.from_history(3, 4, 5)
        )
        trace = PlatformTrace()
        trace.append(WorkerRegistered(time=0, worker=worker))
        for field_name in disclose:
            trace.append(
                DisclosureShown(
                    time=1, subject=worker_subject("w1"),
                    field_name=field_name, value=0.75,
                    audience_worker_id=audience,
                )
            )
        return trace

    def test_full_disclosure_passes(self, vocabulary):
        trace = self._worker_trace(vocabulary, disclose=WORKER_MANDATED_FIELDS)
        check = PlatformTransparency().check(trace)
        assert check.passed
        assert check.opportunities == len(WORKER_MANDATED_FIELDS)

    def test_missing_disclosure_flagged(self, vocabulary):
        trace = self._worker_trace(vocabulary, disclose=("acceptance_ratio",))
        check = PlatformTransparency().check(trace)
        assert not check.passed
        assert check.violations[0].witness["field"] == "tasks_completed"

    def test_disclosure_to_wrong_audience_does_not_count(self, vocabulary):
        trace = self._worker_trace(
            vocabulary, disclose=WORKER_MANDATED_FIELDS, audience="w999"
        )
        check = PlatformTransparency().check(trace)
        assert not check.passed

    def test_public_disclosure_counts(self, vocabulary):
        trace = self._worker_trace(
            vocabulary, disclose=WORKER_MANDATED_FIELDS, audience=""
        )
        check = PlatformTransparency().check(trace)
        assert check.passed

    def test_worker_without_computed_attributes_vacuous(self, vocabulary):
        trace = PlatformTrace()
        trace.append(WorkerRegistered(time=0, worker=make_worker("w1", vocabulary)))
        check = PlatformTransparency().check(trace)
        assert check.opportunities == 0
        assert check.passed
