"""Unit tests for the axiom registry and audit engine."""

import pytest

from repro.core.audit import AuditEngine, AuditReport
from repro.core.axioms import (
    Axiom,
    AxiomCheck,
    AxiomRegistry,
    default_registry,
    sampled_pairs,
)
from repro.core.trace import PlatformTrace
from repro.core.violations import Violation, ViolationSeverity
from repro.errors import AuditError
from repro.workloads.scenarios import clean_scenario, unequal_pay_scenario


class _StubAxiom(Axiom):
    axiom_id = 99
    title = "stub"

    def __init__(self, violations=0, opportunities=10):
        self._violations = violations
        self._opportunities = opportunities

    def check(self, trace):
        return self._result(
            [
                Violation(axiom_id=99, message=f"v{i}", time=0,
                          severity=ViolationSeverity.CRITICAL,
                          witness={"type": "stub"})
                for i in range(self._violations)
            ],
            self._opportunities,
        )


class TestAxiomCheck:
    def test_score(self):
        check = AxiomCheck(1, "t", violations=(), opportunities=10)
        assert check.score == 1.0
        assert check.passed

    def test_score_with_violations(self):
        violations = tuple(
            Violation(axiom_id=1, message="m", time=0) for _ in range(3)
        )
        check = AxiomCheck(1, "t", violations=violations, opportunities=10)
        assert check.score == pytest.approx(0.7)
        assert not check.passed

    def test_zero_opportunities_vacuous(self):
        check = AxiomCheck(1, "t", violations=(), opportunities=0)
        assert check.score == 1.0

    def test_score_floor(self):
        violations = tuple(
            Violation(axiom_id=1, message="m", time=0) for _ in range(20)
        )
        check = AxiomCheck(1, "t", violations=violations, opportunities=10)
        assert check.score == 0.0


class TestRegistry:
    def test_default_registry_has_seven(self):
        registry = default_registry()
        assert len(registry) == 7
        assert [a.axiom_id for a in registry] == [1, 2, 3, 4, 5, 6, 7]

    def test_duplicate_registration_rejected(self):
        registry = AxiomRegistry()
        registry.register(_StubAxiom())
        with pytest.raises(AuditError, match="twice"):
            registry.register(_StubAxiom())

    def test_get(self):
        registry = AxiomRegistry().register(_StubAxiom())
        assert registry.get(99).title == "stub"
        with pytest.raises(AuditError):
            registry.get(1)

    def test_override_replaces_default(self):
        from repro.core.axiom_compensation import FairCompensation

        custom = FairCompensation(similarity_threshold=0.5)
        registry = default_registry(axiom3=custom)
        assert registry.get(3).similarity_threshold == 0.5

    def test_unknown_override_rejected(self):
        with pytest.raises(AuditError, match="unknown axiom overrides"):
            default_registry(axiom99=_StubAxiom())


class TestSampledPairs:
    def test_all_pairs_when_under_cap(self):
        pairs = list(sampled_pairs(["a", "b", "c"], max_pairs=10))
        assert len(pairs) == 3

    def test_cap_enforced(self):
        items = list(range(20))
        pairs = list(sampled_pairs(items, max_pairs=7))
        assert len(pairs) == 7
        assert len(set(pairs)) == 7  # no duplicates

    def test_deterministic(self):
        items = list(range(20))
        first = list(sampled_pairs(items, max_pairs=5, seed=1))
        second = list(sampled_pairs(items, max_pairs=5, seed=1))
        assert first == second

    def test_no_cap(self):
        pairs = list(sampled_pairs(list(range(10)), max_pairs=None))
        assert len(pairs) == 45


class TestAuditEngine:
    def test_audit_clean_scenario_passes(self):
        report = AuditEngine().audit(clean_scenario().trace)
        assert report.passed
        assert report.overall_score == 1.0
        assert report.total_violations == 0

    def test_audit_unfair_scenario_fails(self):
        report = AuditEngine().audit(unequal_pay_scenario().trace)
        assert not report.passed
        assert report.result_for(3).violation_count > 0
        assert report.overall_score < 1.0

    def test_result_for_unknown_axiom(self):
        report = AuditEngine().audit(PlatformTrace())
        with pytest.raises(AuditError):
            report.result_for(42)

    def test_result_for_unknown_axiom_names_available_ids(self):
        """The error must tell the caller which axiom ids *are* in the
        report, not just that theirs is missing."""
        report = AuditEngine().audit(PlatformTrace())
        with pytest.raises(
            AuditError,
            match=r"no result for axiom 42.*\[1, 2, 3, 4, 5, 6, 7\]",
        ):
            report.result_for(42)

    def test_result_for_on_empty_report_says_so(self):
        report = AuditReport(results=(), trace_length=0)
        with pytest.raises(AuditError, match="empty report"):
            report.result_for(1)

    def test_audit_axioms_subset(self):
        engine = AuditEngine()
        report = engine.audit_axioms(clean_scenario().trace, [3, 5])
        assert {r.axiom_id for r in report.results} == {3, 5}

    def test_audit_axioms_unknown_rejected(self):
        with pytest.raises(AuditError, match="lacks axioms"):
            AuditEngine().audit_axioms(PlatformTrace(), [42])

    def test_compare_multiple_traces(self):
        engine = AuditEngine()
        reports = engine.compare(
            {
                "clean": clean_scenario().trace,
                "unfair": unequal_pay_scenario().trace,
            }
        )
        assert reports["clean"].passed
        assert not reports["unfair"].passed

    def test_summary_lines(self):
        report = AuditEngine().audit(clean_scenario().trace)
        lines = report.summary_lines()
        assert "PASS" in lines[0]
        assert len(lines) == 8  # header + 7 axioms

    def test_violations_by_type(self):
        report = AuditEngine().audit(unequal_pay_scenario().trace)
        histogram = report.violations_by_type()
        assert histogram.get("unequal_pay", 0) > 0

    def test_critical_violations(self):
        report = AuditEngine().audit(unequal_pay_scenario().trace)
        criticals = report.critical_violations()
        assert criticals
        assert all(v.severity is ViolationSeverity.CRITICAL for v in criticals)

    def test_stub_axiom_engine(self):
        registry = AxiomRegistry().register(_StubAxiom(violations=2))
        report = AuditEngine(registry=registry).audit(PlatformTrace())
        assert report.result_for(99).violation_count == 2
        assert report.overall_score == pytest.approx(0.8)
