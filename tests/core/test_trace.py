"""Unit tests for the platform trace and its indexes."""

import pytest

from repro.core.attributes import ComputedAttributes
from repro.core.entities import Contribution, Requester
from repro.core.events import (
    AssignmentMade,
    ContributionReviewed,
    ContributionSubmitted,
    PaymentIssued,
    RequesterRegistered,
    TaskPosted,
    TasksShown,
    WorkerRegistered,
    WorkerUpdated,
)
from repro.core.trace import PlatformTrace
from repro.errors import TraceError, UnknownEntityError

from tests.conftest import make_task, make_worker


@pytest.fixture
def trace(vocabulary):
    trace = PlatformTrace()
    trace.append(RequesterRegistered(time=0, requester=Requester("r0001")))
    trace.append(WorkerRegistered(time=0, worker=make_worker("w1", vocabulary)))
    trace.append(WorkerRegistered(time=0, worker=make_worker("w2", vocabulary)))
    trace.append(TaskPosted(time=1, task=make_task("t1", vocabulary)))
    trace.append(TaskPosted(time=1, task=make_task("t2", vocabulary)))
    trace.append(
        TasksShown(time=1, worker_id="w1", task_ids=frozenset({"t1", "t2"}))
    )
    trace.append(TasksShown(time=1, worker_id="w2", task_ids=frozenset({"t1"})))
    trace.append(AssignmentMade(time=2, worker_id="w1", task_id="t1"))
    contribution = Contribution("c1", "t1", "w1", "A", submitted_at=3, quality=0.9)
    trace.append(ContributionSubmitted(time=3, contribution=contribution))
    trace.append(
        ContributionReviewed(
            time=3, contribution_id="c1", task_id="t1", worker_id="w1",
            accepted=True, feedback="ok",
        )
    )
    trace.append(
        PaymentIssued(time=4, worker_id="w1", task_id="t1",
                      contribution_id="c1", amount=0.1)
    )
    return trace


class TestAppendOrdering:
    def test_out_of_order_rejected(self, vocabulary):
        trace = PlatformTrace()
        trace.append(TaskPosted(time=5, task=make_task("t1", vocabulary)))
        with pytest.raises(TraceError, match="time-ordered"):
            trace.append(TaskPosted(time=4, task=make_task("t2", vocabulary)))

    def test_same_time_allowed(self, vocabulary):
        trace = PlatformTrace()
        trace.append(TaskPosted(time=5, task=make_task("t1", vocabulary)))
        trace.append(TaskPosted(time=5, task=make_task("t2", vocabulary)))
        assert len(trace) == 2

    def test_duplicate_task_post_rejected(self, vocabulary):
        trace = PlatformTrace()
        trace.append(TaskPosted(time=0, task=make_task("t1", vocabulary)))
        with pytest.raises(TraceError, match="posted twice"):
            trace.append(TaskPosted(time=0, task=make_task("t1", vocabulary)))

    def test_constructor_accepts_events(self, vocabulary):
        events = [TaskPosted(time=0, task=make_task("t1", vocabulary))]
        assert len(PlatformTrace(events)) == 1

    def test_rejected_append_leaves_trace_untouched(self, vocabulary):
        """A rejected event must not be half-indexed: length, kind
        indexes, and cursors all stay as they were."""
        trace = PlatformTrace()
        trace.append(TaskPosted(time=0, task=make_task("t1", vocabulary)))
        with pytest.raises(TraceError):
            trace.append(TaskPosted(time=0, task=make_task("t1", vocabulary)))
        assert len(trace) == 1
        assert len(trace.of_kind(TaskPosted)) == 1
        assert trace.events_since(0) == trace.events


class TestStreamingAccess:
    def test_events_since_positions(self, trace):
        assert trace.events_since(0) == trace.events
        assert trace.events_since(len(trace)) == ()
        assert trace.events_since(3) == trace.events[3:]

    def test_events_since_bounds_checked(self, trace):
        with pytest.raises(TraceError, match=">= 0"):
            trace.events_since(-1)
        with pytest.raises(TraceError, match="past the end"):
            trace.events_since(len(trace) + 1)

    def test_cursor_never_skips_or_duplicates_under_interleaving(
        self, vocabulary
    ):
        """Interleave appends with drains in every batching pattern: the
        concatenation of drains is exactly the event sequence."""
        events = [
            TaskPosted(time=t, task=make_task(f"t{t}", vocabulary))
            for t in range(12)
        ]
        for batch_size in (1, 2, 3, 5):
            trace = PlatformTrace()
            cursor = trace.cursor()
            seen = []
            for index, event in enumerate(events):
                trace.append(event)
                if (index + 1) % batch_size == 0:
                    seen.extend(cursor.drain())
            seen.extend(cursor.drain())
            assert list(seen) == events
            assert cursor.drain() == ()
            assert cursor.position == len(trace)

    def test_cursor_start_validation(self, trace):
        with pytest.raises(TraceError, match="outside"):
            trace.cursor(start=len(trace) + 1)
        with pytest.raises(TraceError, match="outside"):
            trace.cursor(start=-1)
        assert trace.cursor(start=len(trace)).drain() == ()

    def test_listener_sees_every_event_in_order(self, vocabulary):
        trace = PlatformTrace()
        heard = []
        unsubscribe = trace.subscribe(heard.append)
        events = [
            TaskPosted(time=t, task=make_task(f"t{t}", vocabulary))
            for t in range(5)
        ]
        for event in events[:3]:
            trace.append(event)
        unsubscribe()
        unsubscribe()  # idempotent
        for event in events[3:]:
            trace.append(event)
        assert heard == events[:3]

    def test_listener_notified_after_indexing(self, vocabulary):
        """A listener may read the trace and must see the event it was
        just notified about already indexed."""
        trace = PlatformTrace()
        observed_lengths = []
        trace.subscribe(lambda event: observed_lengths.append(len(trace)))
        trace.append(TaskPosted(time=0, task=make_task("t1", vocabulary)))
        trace.append(TaskPosted(time=0, task=make_task("t2", vocabulary)))
        assert observed_lengths == [1, 2]

    def test_rejected_append_not_delivered_to_listeners(self, vocabulary):
        trace = PlatformTrace()
        heard = []
        trace.subscribe(heard.append)
        trace.append(TaskPosted(time=1, task=make_task("t1", vocabulary)))
        with pytest.raises(TraceError):
            trace.append(TaskPosted(time=0, task=make_task("t2", vocabulary)))
        assert len(heard) == 1


class TestLookups:
    def test_task_and_requester(self, trace):
        assert trace.task("t1").task_id == "t1"
        assert trace.requester("r0001").requester_id == "r0001"

    def test_unknown_lookups_raise(self, trace):
        with pytest.raises(UnknownEntityError):
            trace.task("nope")
        with pytest.raises(UnknownEntityError):
            trace.requester("nope")
        with pytest.raises(UnknownEntityError):
            trace.contribution("nope")
        with pytest.raises(UnknownEntityError):
            trace.worker_at("nope", 0)

    def test_contribution_lookup(self, trace):
        assert trace.contribution("c1").worker_id == "w1"

    def test_end_time(self, trace):
        assert trace.end_time == 4
        assert PlatformTrace().end_time == 0

    def test_of_kind(self, trace):
        assert len(trace.of_kind(TaskPosted)) == 2
        assert len(trace.of_kind(PaymentIssued)) == 1

    def test_where(self, trace):
        shown = trace.where(lambda e: isinstance(e, TasksShown))
        assert len(shown) == 2


class TestWorkerSnapshots:
    def test_worker_at_returns_latest_before_time(self, vocabulary):
        trace = PlatformTrace()
        w_initial = make_worker("w1", vocabulary)
        trace.append(WorkerRegistered(time=0, worker=w_initial))
        w_updated = w_initial.with_computed(
            ComputedAttributes({"acceptance_ratio": 0.5})
        )
        trace.append(WorkerUpdated(time=5, worker=w_updated))
        assert trace.worker_at("w1", 3).computed.as_dict() == {}
        assert trace.worker_at("w1", 5).computed["acceptance_ratio"] == 0.5
        assert trace.final_worker("w1").computed["acceptance_ratio"] == 0.5

    def test_worker_before_registration_raises(self, vocabulary):
        trace = PlatformTrace()
        trace.append(TaskPosted(time=0, task=make_task("t1", vocabulary)))
        trace.append(WorkerRegistered(time=5, worker=make_worker("w1", vocabulary)))
        with pytest.raises(UnknownEntityError, match="not yet registered"):
            trace.worker_at("w1", 2)

    def test_final_workers(self, trace):
        finals = trace.final_workers()
        assert set(finals) == {"w1", "w2"}


class TestDerivedViews:
    def test_visibility_by_worker(self, trace):
        visibility = trace.visibility_by_worker()
        assert visibility["w1"] == {"t1", "t2"}
        assert visibility["w2"] == {"t1"}

    def test_audience_by_task(self, trace):
        audience = trace.audience_by_task()
        assert audience["t1"] == {"w1", "w2"}
        assert audience["t2"] == {"w1"}

    def test_assignments_by_worker(self, trace):
        assert [a.task_id for a in trace.assignments_by_worker()["w1"]] == ["t1"]

    def test_contributions_by_task(self, trace):
        grouped = trace.contributions_by_task()
        assert [c.contribution_id for c in grouped["t1"]] == ["c1"]

    def test_payments_by_worker(self, trace):
        assert trace.payments_by_worker() == {"w1": pytest.approx(0.1)}

    def test_payment_for_contribution(self, trace):
        assert trace.payment_for_contribution("c1") == pytest.approx(0.1)
        assert trace.payment_for_contribution("nope") == 0.0

    def test_reviews_by_contribution(self, trace):
        reviews = trace.reviews_by_contribution()
        assert reviews["c1"].accepted

    def test_slice_keeps_entities(self, trace):
        sliced = trace.slice(3, 5)
        # Entity registrations before the window are retained.
        assert sliced.task("t1").task_id == "t1"
        assert len(sliced.of_kind(TasksShown)) == 0
        assert len(sliced.of_kind(PaymentIssued)) == 1


class TestEventKinds:
    def test_kind_names(self, vocabulary):
        event = TaskPosted(time=0, task=make_task("t1", vocabulary))
        assert event.kind == "task_posted"
        shown = TasksShown(time=0, worker_id="w", task_ids=frozenset())
        assert shown.kind == "tasks_shown"
