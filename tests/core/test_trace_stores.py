"""Unit tests for the pluggable TraceStore backends."""

import json
import os

import pytest

from repro.core.audit import AuditEngine
from repro.core.events import TaskPosted, TasksShown, WorkerRegistered, WorkerUpdated
from repro.core.serialize import load_trace, save_trace
from repro.core.store import (
    STORE_BACKENDS,
    InMemoryTraceStore,
    PersistentTraceStore,
    WindowedTraceStore,
    collect_touched,
    make_store,
)
from repro.core.trace import PlatformTrace, as_trace
from repro.errors import TraceError
from repro.workloads.scenarios import all_scenarios, clean_scenario


@pytest.fixture(scope="module")
def clean_events():
    return list(clean_scenario(rounds=3).trace)


class TestFactory:
    def test_known_backends(self):
        assert set(STORE_BACKENDS) == {
            "memory", "windowed", "persistent", "sqlite",
        }
        assert isinstance(make_store(), InMemoryTraceStore)
        assert isinstance(make_store("windowed", window=5), WindowedTraceStore)

    def test_persistent_needs_path(self, tmp_path):
        store = make_store("persistent", path=tmp_path / "log")
        assert isinstance(store, PersistentTraceStore)

    def test_unknown_backend(self):
        with pytest.raises(TraceError, match="unknown trace backend"):
            make_store("papyrus")

    def test_unknown_backend_names_attempted_path(self, tmp_path):
        """When the caller supplied a path option, the error names it —
        an operator juggling several stores sees which one failed."""
        with pytest.raises(TraceError) as excinfo:
            make_store("papyrus", path=tmp_path / "run.db")
        assert str(tmp_path / "run.db") in str(excinfo.value)

    def test_unknown_backend_is_value_error_naming_backends(self):
        """CLI/config validators catch plain ValueError; the message
        must name every available backend."""
        with pytest.raises(ValueError) as excinfo:
            make_store("papyrus")
        message = str(excinfo.value)
        for name in ("memory", "windowed", "persistent", "sqlite"):
            assert name in message


class TestFacade:
    def test_default_store_is_memory(self):
        assert isinstance(PlatformTrace().store, InMemoryTraceStore)

    def test_as_trace_wraps_store_without_copy(self, clean_events):
        store = InMemoryTraceStore(clean_events)
        trace = as_trace(store)
        assert trace.store is store
        assert as_trace(trace) is trace
        assert len(trace) == len(clean_events)

    def test_as_trace_rejects_other_types(self):
        with pytest.raises(TraceError, match="expected a PlatformTrace"):
            as_trace(["not", "a", "trace"])

    def test_listeners_fire_on_any_backend(self, clean_events, tmp_path):
        for store in (
            InMemoryTraceStore(),
            WindowedTraceStore(window=10),
            PersistentTraceStore(tmp_path / "log"),
        ):
            trace = PlatformTrace(store=store)
            seen = []
            trace.subscribe(seen.append)
            trace.extend(clean_events[:20])
            assert seen == clean_events[:20]

    def test_validation_shared_by_backends(self, clean_events, tmp_path):
        first_posted = next(
            e for e in clean_events if isinstance(e, TaskPosted)
        )
        for store in (
            InMemoryTraceStore(),
            WindowedTraceStore(window=10_000),
            PersistentTraceStore(tmp_path / "log2"),
        ):
            trace = PlatformTrace(clean_events, store=store)
            with pytest.raises(TraceError, match="time-ordered"):
                trace.append(TasksShown(time=0, worker_id="w", task_ids=frozenset()))
            with pytest.raises(TraceError, match="posted twice"):
                trace.append(
                    TaskPosted(time=trace.end_time, task=first_posted.task)
                )


class TestWindowedStore:
    def test_window_validated(self):
        with pytest.raises(TraceError, match="window must be >= 1"):
            WindowedTraceStore(window=0)

    def test_no_eviction_below_window(self, clean_events):
        store = WindowedTraceStore(window=len(clean_events))
        trace = PlatformTrace(clean_events, store=store)
        assert store.first_retained == 0
        assert list(trace) == clean_events
        assert AuditEngine().audit(trace) == AuditEngine().audit(
            PlatformTrace(clean_events)
        )

    def test_eviction_preserves_sequence_numbers(self, clean_events):
        store = WindowedTraceStore(window=25)
        trace = PlatformTrace(clean_events, store=store)
        assert trace.revision == len(clean_events)
        assert len(trace) == len(clean_events)
        assert store.first_retained > 0
        assert store.retained <= 2 * store.window
        # Retained events keep their global positions.
        assert trace.events_since(store.first_retained) == tuple(
            clean_events[store.first_retained:]
        )
        assert trace.events_since(len(trace)) == ()

    def test_evicted_cursor_raises(self, clean_events):
        store = WindowedTraceStore(window=25)
        PlatformTrace(clean_events, store=store)
        with pytest.raises(TraceError, match="evicted"):
            store.events_since(0)

    def test_entity_registries_survive_eviction(self, clean_events):
        store = WindowedTraceStore(window=10)
        trace = PlatformTrace(clean_events, store=store)
        full = PlatformTrace(clean_events)
        assert trace.tasks == full.tasks
        assert trace.requesters == full.requesters
        assert trace.contributions == full.contributions
        assert trace.worker_ids == full.worker_ids
        for worker_id in trace.worker_ids:
            assert trace.final_worker(worker_id) == full.final_worker(worker_id)

    def test_worker_lookup_valid_for_retained_times(self, clean_events):
        store = WindowedTraceStore(window=20)
        trace = PlatformTrace(clean_events, store=store)
        full = PlatformTrace(clean_events)
        for event in store.events:
            if isinstance(event, TasksShown):
                assert trace.worker_at(event.worker_id, event.time) == (
                    full.worker_at(event.worker_id, event.time)
                )

    def test_eviction_semantics_by_reconstruction(self, clean_events):
        """After eviction the audit is fairness-over-the-recent-window:
        event-derived evidence is restricted to retained events, entity
        lookups stay complete.  Pinned by reconstruction: every axiom
        except 2 equals an audit of (pre-window entity events + retained
        suffix); Axiom 2 — whose posting-time evidence is the TaskPosted
        events themselves — equals an audit of the retained suffix
        alone."""
        from repro.core.axiom_assignment import RequesterFairnessInAssignment

        store = WindowedTraceStore(window=30)
        trace = PlatformTrace(clean_events, store=store)
        cut = store.first_retained
        assert cut > 0
        entity_prefix = [
            event
            for event in clean_events[:cut]
            if isinstance(
                event, (WorkerRegistered, WorkerUpdated, TaskPosted)
            )
            or event.kind == "requester_registered"
        ]
        reconstruction = PlatformTrace(entity_prefix + clean_events[cut:])
        windowed_report = AuditEngine().audit(trace)
        expected_report = AuditEngine().audit(reconstruction)
        for axiom_id in (1, 3, 4, 5, 6, 7):
            assert windowed_report.result_for(axiom_id) == (
                expected_report.result_for(axiom_id)
            ), f"axiom {axiom_id}"
        suffix_only = PlatformTrace(clean_events[cut:])
        assert windowed_report.result_for(2) == (
            RequesterFairnessInAssignment().check(suffix_only)
        )


class TestPersistentStore:
    def test_round_trip_with_segments(self, clean_events, tmp_path):
        path = tmp_path / "log"
        store = PersistentTraceStore.create(path, segment_events=40)
        trace = PlatformTrace(clean_events, store=store)
        store.close()
        segments = [
            name for name in os.listdir(path) if name.endswith(".jsonl")
        ]
        assert len(segments) == -(-len(clean_events) // 40)  # ceil
        reopened = PlatformTrace.open(path)
        assert list(reopened) == clean_events
        assert len(reopened) == len(trace)

    def test_append_after_reopen_continues_log(self, clean_events, tmp_path):
        path = tmp_path / "log"
        with PersistentTraceStore.create(path, segment_events=32) as store:
            PlatformTrace(clean_events[:100], store=store)
        with PersistentTraceStore.open(path) as store:
            trace = PlatformTrace(store=store)
            assert len(trace) == 100
            trace.extend(clean_events[100:])
        final = PlatformTrace.open(path)
        assert list(final) == clean_events

    def test_create_refuses_existing_open_refuses_missing(self, tmp_path):
        path = tmp_path / "log"
        PersistentTraceStore.create(path).close()
        with pytest.raises(TraceError, match="already exists"):
            PersistentTraceStore.create(path)
        with pytest.raises(TraceError, match="no trace log"):
            PersistentTraceStore.open(tmp_path / "absent")

    def test_unsupported_version_rejected(self, tmp_path):
        path = tmp_path / "log"
        PersistentTraceStore.create(path).close()
        meta = path / "meta.json"
        meta.write_text(json.dumps({"format_version": 99}))
        with pytest.raises(
            TraceError, match="unsupported trace log version"
        ) as excinfo:
            PersistentTraceStore.open(path)
        assert str(meta) in str(excinfo.value)  # names the attempted path

    def test_corrupt_segment_line_reported(self, clean_events, tmp_path):
        path = tmp_path / "log"
        with PersistentTraceStore.create(path) as store:
            PlatformTrace(clean_events[:10], store=store)
        segment = path / "events-00000.jsonl"
        segment.write_text(segment.read_text() + "{nope\n")
        with pytest.raises(
            TraceError, match="corrupt trace log line"
        ) as excinfo:
            PersistentTraceStore.open(path)
        assert str(segment) in str(excinfo.value)  # full path, not basename

    def test_save_trace_and_load_trace_helpers(self, clean_events, tmp_path):
        trace = PlatformTrace(clean_events)
        path = save_trace(trace, tmp_path / "log", segment_events=64)
        restored = load_trace(path)
        assert list(restored) == clean_events
        rehomed = load_trace(path, store=WindowedTraceStore(window=10_000))
        assert isinstance(rehomed.store, WindowedTraceStore)
        assert list(rehomed) == clean_events

    def test_trace_save_convenience(self, clean_events, tmp_path):
        trace = PlatformTrace(clean_events)
        trace.save(tmp_path / "copy")
        assert list(PlatformTrace.open(tmp_path / "copy")) == clean_events


class TestCrashRecovery:
    """A crash mid-append leaves the final segment with an unterminated
    tail line; ``open`` must recover the complete prefix and keep the
    log appendable."""

    def _last_segment(self, path):
        return sorted(path.glob("events-*.jsonl"))[-1]

    def test_truncated_tail_recovered_with_warning(
        self, clean_events, tmp_path
    ):
        path = tmp_path / "log"
        with PersistentTraceStore.create(path, segment_events=50) as store:
            PlatformTrace(clean_events, store=store)
        segment = self._last_segment(path)
        raw = segment.read_bytes().splitlines(keepends=True)
        segment.write_bytes(b"".join(raw[:-1]) + raw[-1][:25])  # mid-append
        with pytest.warns(RuntimeWarning, match="truncated line"):
            store = PersistentTraceStore.open(path)
        assert list(store.events) == clean_events[:-1]
        # ...and keep appending: the recovered log continues cleanly.
        PlatformTrace(store=store).append(clean_events[-1])
        store.close()
        assert list(PersistentTraceStore.open(path).events) == clean_events

    def test_truncated_tail_in_single_line_segment(
        self, clean_events, tmp_path
    ):
        """Segment roll puts the torn line alone in the last file."""
        path = tmp_path / "log"
        with PersistentTraceStore.create(path, segment_events=10) as store:
            PlatformTrace(clean_events[:11], store=store)
        segment = self._last_segment(path)
        segment.write_bytes(segment.read_bytes()[:-10])
        with pytest.warns(RuntimeWarning, match="truncated line"):
            store = PersistentTraceStore.open(path)
        assert list(store.events) == clean_events[:10]

    def test_unterminated_but_parseable_tail_is_kept_and_repaired(
        self, clean_events, tmp_path
    ):
        """A crash between the JSON write and the newline loses nothing:
        the event is kept and the newline repaired."""
        path = tmp_path / "log"
        with PersistentTraceStore.create(path) as store:
            PlatformTrace(clean_events[:10], store=store)
        segment = self._last_segment(path)
        segment.write_bytes(segment.read_bytes()[:-1])  # strip newline only
        store = PersistentTraceStore.open(path)
        assert list(store.events) == clean_events[:10]
        assert segment.read_bytes().endswith(b"\n")

    def test_complete_corrupt_line_still_fatal(self, clean_events, tmp_path):
        """A newline-terminated corrupt line is damage, not a crash tail."""
        path = tmp_path / "log"
        with PersistentTraceStore.create(path) as store:
            PlatformTrace(clean_events[:10], store=store)
        segment = self._last_segment(path)
        with segment.open("ab") as handle:
            handle.write(b"{nope\n")
        with pytest.raises(TraceError, match="corrupt trace log line"):
            PersistentTraceStore.open(path)

    def test_corrupt_line_mid_file_still_fatal(self, clean_events, tmp_path):
        """An unterminated line that is not the trailing one (data after
        it) cannot be a crash tail either."""
        path = tmp_path / "log"
        with PersistentTraceStore.create(path, segment_events=10) as store:
            PlatformTrace(clean_events[:25], store=store)
        first = sorted(path.glob("events-*.jsonl"))[0]
        lines = first.read_bytes().splitlines(keepends=True)
        first.write_bytes(lines[0][:20] + b"\n" + b"".join(lines[1:]))
        with pytest.raises(TraceError, match="corrupt trace log line"):
            PersistentTraceStore.open(path)


class TestReopenedAuditRegression:
    def test_reopened_log_reports_byte_identical_for_all_scenarios(
        self, tmp_path
    ):
        """The capture-once-audit-forever contract: a reopened persistent
        trace must produce a byte-identical AuditReport to the original
        in-memory one, for every labelled scenario."""
        engine = AuditEngine()
        scenarios = all_scenarios(0)
        assert len(scenarios) == 12
        for scenario in scenarios:
            original = engine.audit(scenario.trace)
            path = tmp_path / scenario.name
            save_trace(scenario.trace, path)
            reopened = engine.audit(PlatformTrace.open(path))
            assert reopened == original, scenario.name
            assert repr(reopened) == repr(original), scenario.name


class TestTouchedEntities:
    def test_collects_all_reference_kinds(self, clean_events):
        touched = collect_touched(clean_events)
        full = PlatformTrace(clean_events)
        assert touched.worker_ids == set(full.worker_ids)
        assert touched.task_ids >= set(full.tasks)
        assert touched.requester_ids == set(full.requesters)
        assert touched.contribution_ids == set(full.contributions)
        assert touched.total == (
            len(touched.worker_ids) + len(touched.task_ids)
            + len(touched.requester_ids) + len(touched.contribution_ids)
        )

    def test_empty(self):
        assert collect_touched([]).total == 0


class TestOpenDiagnostics:
    """Opening something that is not (or no longer) a trace log must
    say what was found, where, and what formats were expected."""

    def test_open_directory_without_manifest(self, tmp_path):
        bare = tmp_path / "not-a-log"
        bare.mkdir()
        with pytest.raises(TraceError) as caught:
            PlatformTrace.open(bare)
        message = str(caught.value)
        assert str(bare) in message
        assert "meta.json" in message
        assert "SQLite" in message  # names the expected formats

    def test_open_store_matches_facade_diagnostic(self, tmp_path):
        from repro.core.store import open_store

        bare = tmp_path / "not-a-log"
        bare.mkdir()
        with pytest.raises(TraceError, match="no meta.json manifest"):
            open_store(bare)

    def test_open_empty_manifest(self, tmp_path):
        path = tmp_path / "log"
        path.mkdir()
        (path / "meta.json").write_text("")
        with pytest.raises(TraceError) as caught:
            PlatformTrace.open(path)
        message = str(caught.value)
        assert "meta.json" in message and str(path) in message
        assert "format_version" in message  # says what was expected

    def test_open_garbage_manifest(self, tmp_path):
        path = tmp_path / "log"
        path.mkdir()
        (path / "meta.json").write_text("not json at all {{{")
        with pytest.raises(TraceError, match="unreadable trace log manifest"):
            PlatformTrace.open(path)

    def test_open_non_object_manifest(self, tmp_path):
        path = tmp_path / "log"
        path.mkdir()
        (path / "meta.json").write_text('["format_version", 1]')
        with pytest.raises(TraceError, match="not a JSON object"):
            PlatformTrace.open(path)

    def test_valid_logs_still_open(self, clean_events, tmp_path):
        path = tmp_path / "ok-log"
        with PersistentTraceStore.create(path) as store:
            PlatformTrace(clean_events[:10], store=store)
        assert len(PlatformTrace.open(path)) == 10
