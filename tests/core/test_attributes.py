"""Unit tests for declared/computed attributes and their derivation."""

import pytest

from repro.core.attributes import ComputedAttributes, DeclaredAttributes
from repro.errors import EntityError


class TestDeclaredAttributes:
    def test_mapping_interface(self):
        attrs = DeclaredAttributes({"group": "blue", "location": "us"})
        assert attrs["group"] == "blue"
        assert "location" in attrs
        assert len(attrs) == 2
        assert set(attrs) == {"group", "location"}
        assert attrs.get("missing", "x") == "x"
        assert attrs.as_dict() == {"group": "blue", "location": "us"}

    def test_rejects_non_scalar_values(self):
        with pytest.raises(EntityError, match="unsupported type"):
            DeclaredAttributes({"bad": [1, 2]})

    def test_rejects_empty_keys(self):
        with pytest.raises(EntityError, match="non-empty"):
            DeclaredAttributes({"": "x"})

    def test_immutable_snapshot(self):
        source = {"group": "blue"}
        attrs = DeclaredAttributes(source)
        source["group"] = "green"
        assert attrs["group"] == "blue"


class TestComputedAttributes:
    def test_from_history_basic(self):
        computed = ComputedAttributes.from_history(
            accepted=8, reviewed=10, submitted=12,
            quality_sum=7.2, quality_count=9,
        )
        assert computed["acceptance_ratio"] == pytest.approx(0.8)
        assert computed["tasks_completed"] == 12
        assert computed["mean_quality"] == pytest.approx(0.8)

    def test_from_history_no_reviews_optimistic(self):
        computed = ComputedAttributes.from_history(0, 0, 0)
        assert computed["acceptance_ratio"] == 1.0
        assert "mean_quality" not in computed

    def test_from_history_invalid_counters(self):
        with pytest.raises(EntityError):
            ComputedAttributes.from_history(accepted=5, reviewed=3, submitted=5)
        with pytest.raises(EntityError):
            ComputedAttributes.from_history(accepted=1, reviewed=2, submitted=1)

    def test_rederive_roundtrip(self):
        computed = ComputedAttributes.from_history(3, 4, 5, 2.0, 3)
        again = computed.rederive()
        assert again.as_dict() == computed.as_dict()

    def test_rederive_without_derivation_raises(self):
        with pytest.raises(EntityError, match="no derivation"):
            ComputedAttributes({"acceptance_ratio": 1.0}).rederive()

    def test_derivation_consistent_true(self):
        computed = ComputedAttributes.from_history(3, 4, 5, 2.0, 3)
        assert computed.derivation_consistent()

    def test_derivation_consistent_detects_tampering(self):
        honest = ComputedAttributes.from_history(3, 4, 5, 2.0, 3)
        tampered = ComputedAttributes(
            values={**honest.as_dict(), "acceptance_ratio": 0.1},
            derivation=honest.derivation,
        )
        assert not tampered.derivation_consistent()

    def test_derivation_consistent_missing_field(self):
        honest = ComputedAttributes.from_history(3, 4, 5)
        stripped = ComputedAttributes(
            values={"tasks_completed": 5},  # acceptance_ratio removed
            derivation=honest.derivation,
        )
        assert not stripped.derivation_consistent()

    def test_derivation_consistent_no_derivation_false(self):
        assert not ComputedAttributes({"acceptance_ratio": 1.0}).derivation_consistent()

    def test_extra_published_fields_allowed(self):
        honest = ComputedAttributes.from_history(3, 4, 5)
        extended = ComputedAttributes(
            values={**honest.as_dict(), "badge_count": 7},
            derivation=honest.derivation,
        )
        assert extended.derivation_consistent()
