"""Unit tests for violation records."""

from repro.core.violations import Violation, ViolationSeverity


class TestViolation:
    def test_involves(self):
        violation = Violation(
            axiom_id=1, message="m", time=0, subjects=("w1", "w2")
        )
        assert violation.involves("w1")
        assert not violation.involves("w3")

    def test_describe_contains_key_facts(self):
        violation = Violation(
            axiom_id=3, message="unequal pay", time=7,
            severity=ViolationSeverity.CRITICAL, subjects=("w1",),
        )
        text = violation.describe()
        assert "axiom 3" in text
        assert "critical" in text
        assert "t=7" in text
        assert "w1" in text
        assert "unequal pay" in text

    def test_describe_without_subjects(self):
        violation = Violation(axiom_id=1, message="m", time=0)
        assert "(-)" in violation.describe()

    def test_witness_snapshot(self):
        witness = {"a": 1}
        violation = Violation(axiom_id=1, message="m", time=0, witness=witness)
        witness["a"] = 2
        assert violation.witness["a"] == 1


class TestSeverityOrdering:
    def test_ordering(self):
        assert ViolationSeverity.INFO < ViolationSeverity.WARNING
        assert ViolationSeverity.WARNING < ViolationSeverity.CRITICAL
        assert not ViolationSeverity.CRITICAL < ViolationSeverity.INFO
