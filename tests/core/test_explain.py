"""Unit tests for audit-finding explanations."""

import pytest

from repro.core.audit import AuditEngine
from repro.core.explain import (
    explain_for_subject,
    explain_violation,
    grievance_report,
)
from repro.core.violations import Violation, ViolationSeverity
from repro.workloads.scenarios import (
    clean_scenario,
    survey_cancellation_scenario,
    unequal_pay_scenario,
)


class TestExplainViolation:
    def test_typed_violation_uses_template(self):
        violation = Violation(
            axiom_id=3, message="raw checker message", time=7,
            severity=ViolationSeverity.CRITICAL, subjects=("w1",),
            witness={"type": "bonus_reneged"},
        )
        text = explain_violation(violation)
        assert "w1" in text
        assert "promised a bonus that was never paid" in text
        assert text.startswith("Serious:")
        assert "t=7" in text

    def test_untyped_violation_falls_back_to_message(self):
        violation = Violation(
            axiom_id=1, message="something unusual", time=0, subjects=("w1",)
        )
        assert "something unusual" in explain_violation(violation)

    def test_warning_has_no_serious_prefix(self):
        violation = Violation(
            axiom_id=6, message="m", time=0, subjects=("r1",),
            witness={"type": "silent_rejection"},
        )
        assert not explain_violation(violation).startswith("Serious")


class TestExplainForSubject:
    def test_interrupted_worker_explained(self):
        report = AuditEngine().audit(survey_cancellation_scenario().trace)
        # Workers w0002..w0005 were interrupted.
        sentences = explain_for_subject(report, "w0002")
        assert sentences
        assert any("interrupted" in s for s in sentences)

    def test_uninvolved_subject_empty(self):
        report = AuditEngine().audit(survey_cancellation_scenario().trace)
        assert explain_for_subject(report, "w0001") == []

    def test_time_ordered(self):
        report = AuditEngine().audit(unequal_pay_scenario().trace)
        workers = {
            subject
            for violation in report.violations
            for subject in violation.subjects
        }
        for worker in workers:
            sentences = explain_for_subject(report, worker)
            times = [int(s.split("t=")[1].split(",")[0]) for s in sentences]
            assert times == sorted(times)


class TestGrievanceReport:
    def test_clean_report(self):
        report = AuditEngine().audit(clean_scenario().trace)
        assert "No grievances" in grievance_report(report)

    def test_unfair_report_lists_subjects(self):
        report = AuditEngine().audit(unequal_pay_scenario().trace)
        text = grievance_report(report)
        assert "Grievance report" in text
        assert "grievance(s):" in text
        assert "paid differently" in text

    def test_limit_caps_subjects(self):
        report = AuditEngine().audit(unequal_pay_scenario().trace)
        limited = grievance_report(report, limit=1)
        full = grievance_report(report)
        assert len(limited.splitlines()) <= len(full.splitlines())

    def test_most_wronged_first(self):
        report = AuditEngine().audit(survey_cancellation_scenario().trace)
        lines = grievance_report(report).splitlines()
        counts = [
            int(line.split("—")[1].split()[0])
            for line in lines if "—" in line
        ]
        assert counts == sorted(counts, reverse=True)
