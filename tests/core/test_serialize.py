"""Unit tests for trace JSON serialization."""

import json

import pytest

from repro.core.audit import AuditEngine
from repro.core.serialize import (
    FORMAT_VERSION,
    event_from_dict,
    event_to_dict,
    trace_from_json,
    trace_to_json,
)
from repro.errors import TraceError
from repro.workloads.scenarios import all_scenarios, clean_scenario


class TestRoundTrip:
    @pytest.mark.parametrize(
        "scenario", all_scenarios(seed=0), ids=lambda s: s.name
    )
    def test_every_scenario_trace_round_trips(self, scenario):
        text = trace_to_json(scenario.trace)
        restored = trace_from_json(text)
        assert len(restored) == len(scenario.trace)
        assert restored.events == scenario.trace.events

    def test_audit_identical_after_round_trip(self):
        trace = clean_scenario().trace
        restored = trace_from_json(trace_to_json(trace))
        engine = AuditEngine()
        assert engine.audit(restored).scores() == engine.audit(trace).scores()

    def test_indexes_rebuilt(self):
        trace = clean_scenario().trace
        restored = trace_from_json(trace_to_json(trace))
        assert restored.tasks.keys() == trace.tasks.keys()
        assert set(restored.worker_ids) == set(trace.worker_ids)
        assert restored.requesters.keys() == trace.requesters.keys()
        assert restored.payments_by_worker() == trace.payments_by_worker()

    def test_indent_pretty_prints(self):
        trace = clean_scenario().trace
        pretty = trace_to_json(trace, indent=2)
        assert "\n" in pretty
        assert trace_from_json(pretty).events == trace.events

    def test_tuple_payloads_survive(self):
        from repro.core.entities import Contribution
        from repro.core.events import ContributionSubmitted
        from repro.core.trace import PlatformTrace

        trace = PlatformTrace()
        contribution = Contribution(
            "c1", "t1", "w1", ("a", "b", "c"), submitted_at=0
        )
        trace.append(ContributionSubmitted(time=0, contribution=contribution))
        restored = trace_from_json(trace_to_json(trace))
        assert restored.contribution("c1").payload == ("a", "b", "c")


class TestEventCodecs:
    def test_event_dict_contains_kind_and_time(self):
        trace = clean_scenario().trace
        for event in trace:
            data = event_to_dict(event)
            assert data["kind"] == event.kind
            assert data["time"] == event.time
            assert event_from_dict(data) == event

    def test_frozenset_serialized_as_sorted_list(self):
        from repro.core.events import TasksShown

        event = TasksShown(time=0, worker_id="w1",
                           task_ids=frozenset({"t2", "t1"}))
        data = event_to_dict(event)
        assert data["task_ids"] == ["t1", "t2"]
        assert event_from_dict(data) == event


class TestErrors:
    def test_invalid_json(self):
        with pytest.raises(TraceError, match="invalid trace JSON"):
            trace_from_json("{nope")

    def test_wrong_shape(self):
        with pytest.raises(TraceError, match="'events'"):
            trace_from_json(json.dumps({"foo": 1}))

    def test_wrong_version(self):
        document = {"format_version": FORMAT_VERSION + 1, "events": []}
        with pytest.raises(TraceError, match="unsupported"):
            trace_from_json(json.dumps(document))

    def test_unknown_kind(self):
        with pytest.raises(TraceError, match="unknown event kind"):
            event_from_dict({"kind": "martian", "time": 0})

    def test_missing_time(self):
        with pytest.raises(TraceError, match="integer time"):
            event_from_dict({"kind": "task_cancelled"})
