"""Unit tests for the Section 3.2 data model."""

import pytest

from repro.core.attributes import ComputedAttributes, DeclaredAttributes
from repro.core.entities import (
    Contribution,
    SkillVector,
    SkillVocabulary,
    Task,
    Worker,
    validate_population,
)
from repro.errors import EntityError, VocabularyMismatchError

from tests.conftest import make_task, make_worker


class TestSkillVocabulary:
    def test_basic_construction(self):
        vocab = SkillVocabulary(("a", "b", "c"))
        assert len(vocab) == 3
        assert list(vocab) == ["a", "b", "c"]
        assert "b" in vocab
        assert "z" not in vocab

    def test_duplicate_keywords_rejected(self):
        with pytest.raises(EntityError, match="duplicate"):
            SkillVocabulary(("a", "a"))

    def test_empty_keyword_rejected(self):
        with pytest.raises(EntityError):
            SkillVocabulary(("a", ""))

    def test_index(self):
        vocab = SkillVocabulary(("a", "b"))
        assert vocab.index("b") == 1

    def test_index_unknown_raises(self):
        vocab = SkillVocabulary(("a",))
        with pytest.raises(EntityError, match="unknown skill"):
            vocab.index("z")

    def test_vector_factory(self):
        vocab = SkillVocabulary(("a", "b", "c"))
        vector = vocab.vector(("a", "c"))
        assert vector.bits == (True, False, True)

    def test_full_vector(self):
        vocab = SkillVocabulary(("a", "b"))
        assert vocab.full_vector().bits == (True, True)

    def test_from_keywords_accepts_iterables(self):
        vocab = SkillVocabulary.from_keywords(k for k in ("x", "y"))
        assert vocab.keywords == ("x", "y")


class TestSkillVector:
    def test_dimension_mismatch_rejected(self):
        vocab = SkillVocabulary(("a", "b"))
        with pytest.raises(EntityError, match="bits"):
            SkillVector(vocab, (True,))

    def test_unknown_keyword_rejected(self):
        vocab = SkillVocabulary(("a",))
        with pytest.raises(EntityError, match="unknown"):
            SkillVector.from_keywords(vocab, ("zzz",))

    def test_keywords_roundtrip(self):
        vocab = SkillVocabulary(("a", "b", "c"))
        vector = vocab.vector(("b",))
        assert vector.keywords == ("b",)
        assert "b" in vector
        assert "a" not in vector
        assert 42 not in vector

    def test_count(self):
        vocab = SkillVocabulary(("a", "b", "c"))
        assert vocab.vector(("a", "b")).count() == 2
        assert vocab.vector().count() == 0

    def test_covers(self):
        vocab = SkillVocabulary(("a", "b", "c"))
        worker_skills = vocab.vector(("a", "b"))
        assert worker_skills.covers(vocab.vector(("a",)))
        assert worker_skills.covers(vocab.vector(()))
        assert not worker_skills.covers(vocab.vector(("c",)))

    def test_intersection_union_hamming(self):
        vocab = SkillVocabulary(("a", "b", "c"))
        left = vocab.vector(("a", "b"))
        right = vocab.vector(("b", "c"))
        assert left.intersection_count(right) == 1
        assert left.union_count(right) == 3
        assert left.hamming_distance(right) == 2

    def test_cross_vocabulary_rejected(self):
        left = SkillVocabulary(("a",)).vector(("a",))
        right = SkillVocabulary(("b",)).vector(("b",))
        with pytest.raises(VocabularyMismatchError):
            left.covers(right)

    def test_as_floats(self):
        vocab = SkillVocabulary(("a", "b"))
        assert vocab.vector(("a",)).as_floats() == (1.0, 0.0)


class TestTask:
    def test_negative_reward_rejected(self, vocabulary):
        with pytest.raises(EntityError, match="negative reward"):
            make_task("t1", vocabulary, reward=-0.1)

    def test_zero_duration_rejected(self, vocabulary):
        with pytest.raises(EntityError, match="duration"):
            make_task("t1", vocabulary, duration=0)

    def test_qualifies(self, vocabulary):
        task = make_task("t1", vocabulary, skills=("survey",))
        qualified = make_worker("w1", vocabulary, skills=("survey", "writing"))
        unqualified = make_worker("w2", vocabulary, skills=("writing",))
        assert task.qualifies(qualified)
        assert not task.qualifies(unqualified)

    def test_metadata_defaults_empty(self, vocabulary):
        assert make_task("t1", vocabulary).metadata == {}


class TestWorker:
    def test_with_computed_replaces_only_computed(self, vocabulary):
        worker = make_worker("w1", vocabulary, declared={"group": "blue"})
        updated = worker.with_computed(
            ComputedAttributes({"acceptance_ratio": 0.5})
        )
        assert updated.worker_id == worker.worker_id
        assert updated.declared["group"] == "blue"
        assert updated.computed["acceptance_ratio"] == 0.5
        assert worker.computed.as_dict() == {}  # original untouched

    def test_qualifies_for(self, vocabulary):
        worker = make_worker("w1", vocabulary, skills=("survey",))
        assert worker.qualifies_for(make_task("t1", vocabulary, skills=("survey",)))
        assert not worker.qualifies_for(
            make_task("t2", vocabulary, skills=("writing",))
        )


class TestContribution:
    def test_quality_bounds(self):
        with pytest.raises(EntityError, match="quality"):
            Contribution("c1", "t1", "w1", "A", submitted_at=0, quality=1.5)

    def test_quality_none_allowed(self):
        contribution = Contribution("c1", "t1", "w1", "A", submitted_at=0)
        assert contribution.quality is None


class TestValidatePopulation:
    def test_accepts_valid(self, vocabulary):
        workers = [make_worker(f"w{i}", vocabulary) for i in range(3)]
        validate_population(workers, vocabulary)

    def test_rejects_duplicates(self, vocabulary):
        workers = [make_worker("w1", vocabulary), make_worker("w1", vocabulary)]
        with pytest.raises(EntityError, match="duplicate"):
            validate_population(workers, vocabulary)

    def test_rejects_foreign_vocabulary(self, vocabulary):
        other = SkillVocabulary(("x",))
        workers = [make_worker("w1", vocabulary),
                   make_worker("w2", other, skills=("x",))]
        with pytest.raises(VocabularyMismatchError):
            validate_population(workers, vocabulary)


class TestRequester:
    def test_disclosable_fields(self, requester):
        fields = requester.disclosable_fields()
        assert fields["hourly_wage"] == 6.0
        assert fields["payment_delay"] == 5
        assert set(fields) == {
            "hourly_wage", "payment_delay", "recruitment_criteria",
            "rejection_criteria", "rating",
        }
