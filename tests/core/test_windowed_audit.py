"""Unit tests for fairness-over-time (windowed) auditing."""

import pytest

from repro.core.audit import AuditEngine
from repro.errors import AuditError
from repro.workloads.scenarios import (
    clean_scenario,
    survey_cancellation_scenario,
)


class TestWindowedAudit:
    def test_windows_cover_whole_trace(self):
        trace = clean_scenario(rounds=4).trace
        engine = AuditEngine()
        windows = engine.windowed_audit(trace, window=3)
        starts = [start for start, _ in windows]
        assert starts[0] == 0
        assert starts == sorted(starts)
        assert starts[-1] <= trace.end_time
        # Consecutive, evenly spaced starts.
        assert all(b - a == 3 for a, b in zip(starts, starts[1:]))

    def test_clean_trace_clean_in_every_window(self):
        trace = clean_scenario(rounds=4).trace
        for _, report in AuditEngine().windowed_audit(trace, window=4):
            assert report.result_for(5).passed
            assert report.result_for(3).passed

    def test_violation_localized_to_its_window(self):
        trace = survey_cancellation_scenario().trace
        engine = AuditEngine()
        cancellation_time = max(e.time for e in trace.events)
        windows = engine.windowed_audit(trace, window=2)
        flagged = [
            start
            for start, report in windows
            if report.result_for(5).violation_count > 0
        ]
        assert flagged  # the interruption shows up somewhere...
        for start in flagged:  # ...and only near when it happened
            assert start <= cancellation_time < start + 2 or (
                start <= trace.end_time
            )

    def test_window_validated(self):
        with pytest.raises(AuditError, match="window"):
            AuditEngine().windowed_audit(clean_scenario().trace, window=0)

    def test_single_window_equals_full_audit(self):
        trace = clean_scenario(rounds=2).trace
        engine = AuditEngine()
        full = engine.audit(trace)
        windows = engine.windowed_audit(trace, window=trace.end_time + 1)
        assert len(windows) == 1
        assert windows[0][1].scores() == full.scores()
