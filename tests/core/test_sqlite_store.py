"""Unit tests for the SQLite trace backend and on-disk format detection.

The audit-equivalence of the backend is pinned by the differential
property suite (``tests/property/test_property_trace_stores.py``);
these tests cover the lifecycle (create/open/save/close), durability
boundaries, format detection (``open_store`` / ``PlatformTrace.open`` /
``infer_disk_backend``), and the error paths.
"""

import json
import sqlite3

import pytest

from repro.core.audit import AuditEngine
from repro.core.serialize import load_trace, save_trace
from repro.core.store import (
    SQLiteTraceStore,
    is_sqlite_trace,
    make_store,
    open_store,
)
from repro.core.store.sqlite import DB_FORMAT_VERSION
from repro.core.trace import PlatformTrace, infer_disk_backend
from repro.errors import QueryError, TraceError
from repro.workloads.scenarios import clean_scenario


@pytest.fixture()
def clean_events():
    return list(clean_scenario(rounds=3).trace)


class TestLifecycle:
    def test_create_save_reopen_round_trip(self, clean_events, tmp_path):
        path = tmp_path / "log.db"
        with SQLiteTraceStore.create(path) as store:
            PlatformTrace(clean_events, store=store)
            assert store.save() == str(path)
        reopened = SQLiteTraceStore.open(path)
        assert list(reopened.events) == clean_events
        assert reopened.revision == len(clean_events)
        assert reopened.backend_name == "sqlite"
        assert reopened.supports_indexed_query

    def test_reopened_log_audits_byte_identically(self, clean_events, tmp_path):
        path = tmp_path / "log.db"
        trace = PlatformTrace(clean_events)
        trace.save(path)
        engine = AuditEngine()
        assert engine.audit(PlatformTrace.open(path)) == engine.audit(trace)

    def test_append_after_reopen_continues_log(self, clean_events, tmp_path):
        path = tmp_path / "log.db"
        with SQLiteTraceStore.create(path) as store:
            PlatformTrace(clean_events[:100], store=store)
        with SQLiteTraceStore.open(path) as store:
            trace = PlatformTrace(store=store)
            assert len(trace) == 100
            trace.extend(clean_events[100:])
        final = PlatformTrace.open(path)
        assert list(final) == clean_events

    def test_create_refuses_existing_open_refuses_missing(self, tmp_path):
        path = tmp_path / "log.db"
        SQLiteTraceStore.create(path).close()
        with pytest.raises(TraceError, match="already exists"):
            SQLiteTraceStore.create(path)
        with pytest.raises(TraceError, match="no trace database"):
            SQLiteTraceStore.open(tmp_path / "absent.db")

    def test_uncommitted_appends_visible_to_own_queries(
        self, clean_events, tmp_path
    ):
        """Readers on the store's connection see appends before commit."""
        from repro.query import TraceQuery

        store = SQLiteTraceStore.create(tmp_path / "log.db", commit_every=10_000)
        PlatformTrace(clean_events, store=store)
        assert TraceQuery().count(store) == len(clean_events)

    def test_commit_every_validated(self, tmp_path):
        with pytest.raises(TraceError, match="commit_every must be >= 1"):
            SQLiteTraceStore(tmp_path / "log.db", commit_every=0)

    def test_make_store_constructs_sqlite(self, tmp_path):
        store = make_store("sqlite", path=tmp_path / "log.db")
        assert isinstance(store, SQLiteTraceStore)
        assert store.path == str(tmp_path / "log.db")


class TestErrorPaths:
    def test_non_sqlite_file_rejected(self, tmp_path):
        path = tmp_path / "notdb.db"
        path.write_text("plain text, not a database")
        with pytest.raises(TraceError, match="not a SQLite database"):
            SQLiteTraceStore(path)

    def test_foreign_sqlite_database_rejected(self, tmp_path):
        """A valid SQLite file that is not a trace db is refused, not
        adopted: no tables added, no journal-mode flip, no -wal/-shm
        sidecars left behind."""
        path = tmp_path / "other.db"
        with sqlite3.connect(path) as conn:
            conn.execute("CREATE TABLE users (id INTEGER PRIMARY KEY)")
        with pytest.raises(TraceError, match="not a trace database"):
            SQLiteTraceStore.open(path)
        with sqlite3.connect(path) as conn:
            tables = {
                name
                for (name,) in conn.execute(
                    "SELECT name FROM sqlite_master WHERE type = 'table'"
                )
            }
            journal_mode = conn.execute("PRAGMA journal_mode").fetchone()[0]
        assert "events" not in tables
        assert journal_mode == "delete"
        assert not (tmp_path / "other.db-wal").exists()

    def test_damaged_file_with_sqlite_magic_raises_trace_error(
        self, tmp_path
    ):
        """A torn file that still bears the SQLite magic must surface as
        TraceError (the CLI's clean exit), not raw sqlite3 errors."""
        from repro.core.store import open_store
        from repro.core.store.sqlite import SQLITE_MAGIC

        path = tmp_path / "torn.db"
        path.write_bytes(SQLITE_MAGIC + b"\x00" * 400)
        with pytest.raises(TraceError):
            SQLiteTraceStore.open(path)
        with pytest.raises(TraceError):
            open_store(path)

    def test_unsupported_version_rejected(self, tmp_path):
        path = tmp_path / "log.db"
        SQLiteTraceStore.create(path).close()
        with sqlite3.connect(path) as conn:
            conn.execute(
                "UPDATE meta SET value = '99' WHERE key = 'format_version'"
            )
        with pytest.raises(
            TraceError, match="unsupported trace database"
        ) as excinfo:
            SQLiteTraceStore.open(path)
        assert str(path) in str(excinfo.value)  # names the attempted path
        assert DB_FORMAT_VERSION == 1

    def test_corrupt_payload_reported(self, clean_events, tmp_path):
        path = tmp_path / "log.db"
        with SQLiteTraceStore.create(path) as store:
            PlatformTrace(clean_events[:5], store=store)
        with sqlite3.connect(path) as conn:
            conn.execute("UPDATE events SET payload = '{nope' WHERE seq = 3")
        with pytest.raises(
            TraceError, match="corrupt payload in trace database"
        ) as excinfo:
            SQLiteTraceStore.open(path)
        assert str(path) in str(excinfo.value)  # names the attempted path

    def test_unknown_entity_kind_count_rejected(self, tmp_path):
        store = SQLiteTraceStore.create(tmp_path / "log.db")
        with pytest.raises(QueryError, match="unknown entity kind"):
            store.query_entity_counts("moderator")


class TestFormatDetection:
    def test_is_sqlite_trace(self, tmp_path):
        db = tmp_path / "log.db"
        SQLiteTraceStore.create(db).close()
        assert is_sqlite_trace(db)
        text = tmp_path / "log.txt"
        text.write_text("nope")
        assert not is_sqlite_trace(text)
        assert not is_sqlite_trace(tmp_path)          # a directory
        assert not is_sqlite_trace(tmp_path / "gone")  # missing

    def test_open_store_detects_both_formats(self, clean_events, tmp_path):
        trace = PlatformTrace(clean_events)
        jsonl = trace.save(tmp_path / "log", backend="persistent")
        db = trace.save(tmp_path / "log.db")
        assert open_store(jsonl).backend_name == "persistent"
        assert open_store(db).backend_name == "sqlite"

    def test_open_store_rejects_unknown(self, tmp_path):
        stray = tmp_path / "stray.bin"
        stray.write_bytes(b"\x00\x01")
        with pytest.raises(TraceError, match="neither"):
            open_store(stray)
        with pytest.raises(TraceError, match="no trace log"):
            open_store(tmp_path / "absent")

    def test_infer_disk_backend(self, tmp_path):
        assert infer_disk_backend("runs/log") == "persistent"
        assert infer_disk_backend("runs/log.db") == "sqlite"
        assert infer_disk_backend("runs/log.SQLITE") == "sqlite"
        assert infer_disk_backend("runs/log", "sqlite") == "sqlite"
        assert infer_disk_backend("runs/log.db", "persistent") == "persistent"
        with pytest.raises(
            TraceError, match="unknown on-disk trace backend"
        ) as excinfo:
            infer_disk_backend("runs/log", "papyrus")
        assert "runs/log" in str(excinfo.value)  # names the attempted path

    def test_save_load_trace_helpers_sqlite(self, clean_events, tmp_path):
        trace = PlatformTrace(clean_events)
        path = save_trace(trace, tmp_path / "log", backend="sqlite")
        restored = load_trace(path)
        assert isinstance(restored.store, SQLiteTraceStore)
        assert list(restored) == clean_events


class TestIndexedTables:
    def test_entity_index_rows_cover_touched_entities(
        self, clean_events, tmp_path
    ):
        """Every (event, touched entity) pair has exactly one index row."""
        from repro.core.store import collect_touched

        path = tmp_path / "log.db"
        with SQLiteTraceStore.create(path) as store:
            PlatformTrace(clean_events, store=store)
            store.save()
            expected = 0
            for event in clean_events:
                touched = collect_touched((event,))
                expected += (
                    len(touched.worker_ids) + len(touched.task_ids)
                    + len(touched.requester_ids)
                    + len(touched.contribution_ids)
                )
            with sqlite3.connect(path) as conn:
                rows = conn.execute(
                    "SELECT COUNT(*) FROM event_entities"
                ).fetchone()[0]
                events_rows = conn.execute(
                    "SELECT COUNT(*) FROM events"
                ).fetchone()[0]
        assert rows == expected
        assert events_rows == len(clean_events)

    def test_payloads_match_serialize_codec(self, clean_events, tmp_path):
        from repro.core.serialize import event_to_dict

        path = tmp_path / "log.db"
        with SQLiteTraceStore.create(path) as store:
            PlatformTrace(clean_events[:20], store=store)
            payloads = list(store.iter_payloads())
        assert payloads == [event_to_dict(event) for event in clean_events[:20]]
        assert all(isinstance(json.dumps(p), str) for p in payloads)


class TestAppendBatch:
    """`append_batch`: executemany + one commit, state-identical to a
    per-event append loop (the satellite behind batched ingestion)."""

    def test_batch_equals_per_event_appends(self, clean_events, tmp_path):
        loop_path = tmp_path / "loop.db"
        with SQLiteTraceStore.create(loop_path, commit_every=1) as store:
            for event in clean_events:
                store.append(event)
            loop_payloads = list(store.iter_payloads())
        batch_path = tmp_path / "batch.db"
        with SQLiteTraceStore.create(batch_path) as store:
            appended = store.append_batch(clean_events)
            assert appended == len(clean_events)
            assert store.revision == len(clean_events)
            batch_payloads = list(store.iter_payloads())
        assert batch_payloads == loop_payloads
        reopened = SQLiteTraceStore.open(batch_path)
        assert list(reopened.events) == clean_events
        reopened.close()

    def test_batch_is_durable_without_explicit_save(
        self, clean_events, tmp_path
    ):
        """append_batch commits; a crash right after it loses nothing."""
        path = tmp_path / "durable.db"
        store = SQLiteTraceStore.create(path, commit_every=10_000)
        store.append_batch(clean_events[:50])
        # Read through an independent connection: only committed rows.
        with sqlite3.connect(path) as conn:
            committed = conn.execute("SELECT COUNT(*) FROM events").fetchone()
        assert committed[0] == 50
        store.close()

    def test_mid_batch_failure_keeps_ram_and_db_consistent(
        self, clean_events, tmp_path
    ):
        from repro.core.events import WorkerDeparted

        path = tmp_path / "partial.db"
        time_travel = WorkerDeparted(time=0, worker_id="w0001", reason="x")
        batch = clean_events[:30] + [time_travel] + clean_events[30:]
        store = SQLiteTraceStore.create(path)
        with pytest.raises(TraceError, match="time-ordered"):
            store.append_batch(batch)
        # The valid prefix is kept, in RAM and (committed) on disk.
        assert store.revision == 30
        assert list(store.events) == clean_events[:30]
        store.close()
        reopened = SQLiteTraceStore.open(path)
        assert list(reopened.events) == clean_events[:30]
        reopened.close()

    def test_base_backends_inherit_loop_semantics(self, clean_events):
        store = make_store("memory")
        assert store.append_batch(clean_events[:7]) == 7
        assert list(store.events) == clean_events[:7]

    def test_trace_facade_batch_notifies_listeners(self, clean_events):
        trace = PlatformTrace()
        heard = []
        trace.subscribe(heard.append)
        assert trace.append_batch(clean_events[:9]) == 9
        assert heard == clean_events[:9]

    def test_save_trace_routes_through_append_batch(
        self, clean_events, tmp_path, monkeypatch
    ):
        """save_trace uses the batched write path (one transaction for
        the whole capture) instead of per-event appends."""
        per_event_calls = []
        original = SQLiteTraceStore.append

        def counting_append(self, event):
            per_event_calls.append(event)
            return original(self, event)

        monkeypatch.setattr(SQLiteTraceStore, "append", counting_append)
        trace = PlatformTrace(clean_events)
        path = save_trace(trace, tmp_path / "cap.db")
        assert per_event_calls == []
        assert list(load_trace(path)) == clean_events
