"""Unit tests for the Axiom 3 checker."""

import pytest

from repro.core.axiom_compensation import FairCompensation
from repro.core.entities import Contribution, Requester
from repro.core.events import (
    BonusPaid,
    BonusPromised,
    ContributionReviewed,
    ContributionSubmitted,
    PaymentIssued,
    RequesterRegistered,
    TaskPosted,
    WorkerRegistered,
)
from repro.core.trace import PlatformTrace

from tests.conftest import make_task, make_worker


def _pay_trace(vocabulary, payments, accepted=(True, True), kind="label",
               payloads=("A", "A"), qualities=(0.9, 0.9)):
    """Two workers answering the same task, then reviewed and paid."""
    trace = PlatformTrace()
    trace.append(RequesterRegistered(time=0, requester=Requester("r0001")))
    trace.append(WorkerRegistered(time=0, worker=make_worker("w1", vocabulary)))
    trace.append(WorkerRegistered(time=0, worker=make_worker("w2", vocabulary)))
    trace.append(TaskPosted(time=0, task=make_task("t1", vocabulary, kind=kind)))
    for i in range(2):
        contribution = Contribution(
            f"c{i+1}", "t1", f"w{i+1}", payloads[i], submitted_at=1,
            quality=qualities[i],
        )
        trace.append(ContributionSubmitted(time=1, contribution=contribution))
    for i in range(2):
        trace.append(
            ContributionReviewed(
                time=2, contribution_id=f"c{i+1}", task_id="t1",
                worker_id=f"w{i+1}", accepted=accepted[i], feedback="r",
            )
        )
    for i in range(2):
        trace.append(
            PaymentIssued(
                time=3, worker_id=f"w{i+1}", task_id="t1",
                contribution_id=f"c{i+1}", amount=payments[i],
            )
        )
    return trace


class TestEqualPay:
    def test_equal_pay_for_identical_contributions_passes(self, vocabulary):
        check = FairCompensation().check(_pay_trace(vocabulary, (0.1, 0.1)))
        assert check.passed
        assert check.opportunities == 1

    def test_unequal_pay_flagged(self, vocabulary):
        check = FairCompensation().check(_pay_trace(vocabulary, (0.1, 0.05)))
        assert not check.passed
        violation = check.violations[0]
        assert violation.witness["type"] == "unequal_pay"
        assert violation.axiom_id == 3

    def test_dissimilar_payloads_not_compared(self, vocabulary):
        trace = _pay_trace(vocabulary, (0.1, 0.0), payloads=("A", "B"))
        check = FairCompensation().check(trace)
        assert check.opportunities == 0

    def test_payment_tolerance(self, vocabulary):
        trace = _pay_trace(vocabulary, (0.10, 0.11))
        strict = FairCompensation().check(trace)
        tolerant = FairCompensation(payment_tolerance=0.02).check(trace)
        assert not strict.passed
        assert tolerant.passed

    def test_text_contributions_compared_by_ngram(self, vocabulary):
        trace = _pay_trace(
            vocabulary, (0.1, 0.0), kind="text",
            payloads=("the picture shows a red car",
                      "the picture shows a red car"),
        )
        check = FairCompensation().check(trace)
        assert not check.passed

    def test_quality_tolerance_excludes_quality_gaps(self, vocabulary):
        trace = _pay_trace(vocabulary, (0.1, 0.05), qualities=(0.9, 0.5))
        strict = FairCompensation().check(trace)
        quality_aware = FairCompensation(quality_tolerance=0.1).check(trace)
        assert not strict.passed
        assert quality_aware.opportunities == 0


class TestWrongfulRejection:
    def test_opposite_verdicts_on_similar_work_flagged(self, vocabulary):
        trace = _pay_trace(vocabulary, (0.1, 0.1), accepted=(True, False))
        check = FairCompensation().check(trace)
        assert not check.passed
        assert any(
            v.witness["type"] == "wrongful_rejection" for v in check.violations
        )
        rejected = next(
            v for v in check.violations
            if v.witness["type"] == "wrongful_rejection"
        )
        assert rejected.subjects == ("w2",)

    def test_wrongful_rejection_check_optional(self, vocabulary):
        trace = _pay_trace(vocabulary, (0.1, 0.1), accepted=(True, False))
        check = FairCompensation(check_wrongful_rejection=False).check(trace)
        assert check.passed

    def test_unequal_pay_takes_precedence(self, vocabulary):
        # Different pay AND different verdicts: reported as unequal pay.
        trace = _pay_trace(vocabulary, (0.1, 0.0), accepted=(True, False))
        check = FairCompensation().check(trace)
        assert [v.witness["type"] for v in check.violations] == ["unequal_pay"]


class TestBonusPromises:
    def _bonus_trace(self, vocabulary, pay_back: bool, amount_paid: float = 0.5):
        trace = PlatformTrace()
        trace.append(RequesterRegistered(time=0, requester=Requester("r0001")))
        trace.append(WorkerRegistered(time=0, worker=make_worker("w1", vocabulary)))
        trace.append(
            BonusPromised(time=1, requester_id="r0001", worker_id="w1",
                          amount=0.5, condition="streak")
        )
        if pay_back:
            trace.append(
                BonusPaid(time=2, requester_id="r0001", worker_id="w1",
                          amount=amount_paid)
            )
        return trace

    def test_honoured_promise_passes(self, vocabulary):
        check = FairCompensation().check(self._bonus_trace(vocabulary, True))
        assert check.passed
        assert check.opportunities == 1

    def test_reneged_promise_flagged(self, vocabulary):
        check = FairCompensation().check(self._bonus_trace(vocabulary, False))
        assert not check.passed
        assert check.violations[0].witness["type"] == "bonus_reneged"

    def test_wrong_amount_does_not_settle(self, vocabulary):
        check = FairCompensation().check(
            self._bonus_trace(vocabulary, True, amount_paid=0.25)
        )
        assert not check.passed

    def test_bonus_check_optional(self, vocabulary):
        check = FairCompensation(check_bonus_promises=False).check(
            self._bonus_trace(vocabulary, False)
        )
        assert check.passed

    def test_payment_before_promise_does_not_settle(self, vocabulary):
        trace = PlatformTrace()
        trace.append(WorkerRegistered(time=0, worker=make_worker("w1", vocabulary)))
        trace.append(
            BonusPaid(time=0, requester_id="r0001", worker_id="w1", amount=0.5)
        )
        trace.append(
            BonusPromised(time=1, requester_id="r0001", worker_id="w1",
                          amount=0.5)
        )
        check = FairCompensation().check(trace)
        assert not check.passed
