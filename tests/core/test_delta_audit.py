"""Unit tests for the delta-aware batch audit engine."""

import pytest

from repro.core.audit import AuditEngine, DeltaAuditEngine
from repro.core.axiom_assignment import (
    RequesterFairnessInAssignment,
    WorkerFairnessInAssignment,
)
from repro.core.axioms import Axiom, AxiomRegistry, default_registry
from repro.core.store import WindowedTraceStore, make_store
from repro.core.trace import PlatformTrace
from repro.errors import AuditError
from repro.workloads.scenarios import all_scenarios, clean_scenario


@pytest.fixture(scope="module")
def clean_events():
    return list(clean_scenario(rounds=3).trace)


def audit_in_chunks(events, chunk_size, registry=None):
    """Delta-audit a growing trace every ``chunk_size`` events; assert
    every report equals a fresh batch audit at that point."""
    engine = AuditEngine(
        **({} if registry is None else {"registry": registry})
    )
    delta_engine = engine.delta_session()
    trace = PlatformTrace()
    for start in range(0, len(events), chunk_size):
        trace.extend(events[start:start + chunk_size])
        delta_report = delta_engine.audit(trace)
        batch_report = engine.audit(trace)
        assert delta_report == batch_report, (
            f"delta diverged from batch after {len(trace)} events "
            f"(chunk size {chunk_size})"
        )
    return delta_engine


class TestDeltaEquivalence:
    @pytest.mark.parametrize("chunk_size", [1, 7, 50])
    def test_chunked_audits_match_batch(self, clean_events, chunk_size):
        audit_in_chunks(clean_events, chunk_size)

    def test_final_reports_match_for_all_scenarios(self):
        engine = AuditEngine()
        for scenario in all_scenarios(0):
            session = engine.delta_session()
            trace = PlatformTrace()
            events = list(scenario.trace)
            # Two audits: mid-trace and at the end (multi-event deltas).
            trace.extend(events[: len(events) // 2])
            session.audit(trace)
            trace.extend(events[len(events) // 2:])
            assert session.audit(trace) == engine.audit(trace), scenario.name

    def test_no_new_events_is_a_noop_delta(self, clean_events):
        trace = PlatformTrace(clean_events)
        session = DeltaAuditEngine()
        first = session.audit(trace)
        second = session.audit(trace)
        assert first == second
        assert session.last_delta.event_count == 0
        assert session.last_delta.touched.total == 0

    def test_works_over_windowed_and_persistent_backends(
        self, clean_events, tmp_path
    ):
        batch = AuditEngine().audit(PlatformTrace(clean_events))
        for store in (
            WindowedTraceStore(window=len(clean_events)),
            make_store("persistent", path=tmp_path / "log"),
        ):
            trace = PlatformTrace(store=store)
            session = DeltaAuditEngine()
            trace.extend(clean_events[:80])
            session.audit(trace)
            trace.extend(clean_events[80:])
            assert session.audit(trace) == batch


class TestDeltaBookkeeping:
    def test_records_revision_and_touched_entities(self, clean_events):
        trace = PlatformTrace()
        session = DeltaAuditEngine()
        trace.extend(clean_events[:10])
        session.audit(trace)
        assert session.revision == 10
        delta = session.last_delta
        assert (delta.from_revision, delta.to_revision) == (0, 10)
        assert delta.new_events == tuple(clean_events[:10])
        assert delta.touched.total > 0
        trace.extend(clean_events[10:25])
        session.audit(trace)
        assert session.last_delta.from_revision == 10
        assert session.last_delta.to_revision == 25

    def test_session_bound_to_one_trace(self, clean_events):
        session = DeltaAuditEngine()
        session.audit(PlatformTrace(clean_events[:5]))
        with pytest.raises(AuditError, match="bound to one trace"):
            session.audit(PlatformTrace(clean_events[:5]))

    def test_delta_session_shares_registry(self):
        engine = AuditEngine()
        assert engine.delta_session().registry is engine.registry


class _OpportunityPerEventAxiom(Axiom):
    """Custom axiom with no delta support: the engine must fall back to
    exact full re-checks, and the fallback must stay correct."""

    axiom_id = 41
    title = "one opportunity per event"

    def check(self, trace):
        return self._result([], opportunities=len(trace))


class _ReplayDeltaAxiom(_OpportunityPerEventAxiom):
    """Custom axiom that opts in via supports_delta without overriding
    delta_checker: exercises the IncrementalDeltaChecker-over-
    ReplayChecker default path."""

    axiom_id = 42
    supports_delta = True


class TestOptInHook:
    def test_all_builtin_axioms_opt_in(self):
        for axiom in default_registry():
            assert axiom.supports_delta, axiom.axiom_id
            assert axiom.delta_checker() is not None, axiom.axiom_id

    def test_custom_axiom_without_support_full_checks(self, clean_events):
        registry = AxiomRegistry().register(_OpportunityPerEventAxiom())
        assert _OpportunityPerEventAxiom().delta_checker() is None
        session = audit_in_chunks(clean_events, 20, registry=registry)
        assert session.audit is not None  # session remained usable

    def test_custom_axiom_with_replay_delta_default(self, clean_events):
        registry = AxiomRegistry().register(_ReplayDeltaAxiom())
        audit_in_chunks(clean_events, 20, registry=registry)


class TestDeltaSamplingFallbacks:
    def test_axiom2_pair_sampling_engages_mid_stream(self, clean_events):
        """Tiny max_pairs flips the Axiom 2 delta checker to the
        memoised full scan mid-stream; equivalence must survive."""
        registry = default_registry(
            axiom2=RequesterFairnessInAssignment(max_pairs=2, sample_seed=11),
        )
        audit_in_chunks(clean_events, 9, registry=registry)

    def test_axiom1_sampling_via_incremental_adapter(self, clean_events):
        registry = default_registry(
            axiom1=WorkerFairnessInAssignment(max_pairs=3, sample_seed=11),
        )
        audit_in_chunks(clean_events, 9, registry=registry)


class TestStoreCoercion:
    def test_audit_accepts_raw_store(self, clean_events):
        from repro.core.store import InMemoryTraceStore

        store = InMemoryTraceStore(clean_events)
        engine = AuditEngine()
        assert engine.audit(store) == engine.audit(PlatformTrace(clean_events))

    def test_windowed_audit_accepts_any_backend(self, clean_events, tmp_path):
        engine = AuditEngine()
        baseline = engine.windowed_audit(PlatformTrace(clean_events), window=4)
        windowed_backend = PlatformTrace(
            clean_events,
            store=WindowedTraceStore(window=len(clean_events)),
        )
        assert engine.windowed_audit(windowed_backend, window=4) == baseline
        persistent = make_store("persistent", path=tmp_path / "log")
        PlatformTrace(clean_events, store=persistent)
        assert engine.windowed_audit(persistent, window=4) == baseline

    def test_audit_axioms_and_compare_accept_stores(self, clean_events):
        from repro.core.store import InMemoryTraceStore

        store = InMemoryTraceStore(clean_events)
        engine = AuditEngine()
        assert engine.audit_axioms(store, [5]).result_for(5).passed
        by_name = engine.compare({"stored": store})
        assert by_name["stored"] == engine.audit(PlatformTrace(clean_events))
