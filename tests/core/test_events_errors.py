"""Coverage for the event taxonomy and the error hierarchy."""

import pytest

from repro.core import events as events_module
from repro.core.events import ALL_EVENT_TYPES, CustomEvent, Event
from repro.errors import (
    AssignmentError,
    AuditError,
    CompensationError,
    EntityError,
    PolicySemanticsError,
    PolicySyntaxError,
    ReproError,
    SimulationError,
    TraceError,
    UnknownEntityError,
    VocabularyMismatchError,
)


class TestEventTaxonomy:
    def test_all_event_types_have_unique_kinds(self):
        kinds = [events_module._KIND_NAMES[t] for t in ALL_EVENT_TYPES]
        assert len(set(kinds)) == len(kinds)

    def test_every_concrete_event_registered(self):
        concrete = [
            obj for name, obj in vars(events_module).items()
            if isinstance(obj, type)
            and issubclass(obj, Event)
            and obj not in (Event, CustomEvent)
        ]
        assert set(concrete) == set(ALL_EVENT_TYPES)

    def test_custom_event(self):
        event = CustomEvent(time=3, name="plugin", payload={"x": 1})
        assert event.kind == "custom"
        assert event.payload["x"] == 1

    def test_events_are_immutable(self):
        event = CustomEvent(time=0)
        with pytest.raises(AttributeError):
            event.time = 5  # type: ignore[misc]


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "error_type",
        [
            AssignmentError, AuditError, CompensationError, EntityError,
            PolicySemanticsError, SimulationError, TraceError,
            UnknownEntityError, VocabularyMismatchError,
        ],
    )
    def test_all_derive_from_repro_error(self, error_type):
        assert issubclass(error_type, ReproError)
        with pytest.raises(ReproError):
            raise error_type("boom")

    def test_unknown_entity_is_entity_error(self):
        assert issubclass(UnknownEntityError, EntityError)
        assert issubclass(VocabularyMismatchError, EntityError)

    def test_policy_syntax_error_carries_position(self):
        error = PolicySyntaxError("bad token", line=3, column=7)
        assert error.line == 3
        assert error.column == 7
        assert "line 3" in str(error)
        assert issubclass(PolicySyntaxError, ReproError)
