"""Unit tests for Axiom 4 and Axiom 5 checkers."""

import pytest

from repro.core.axiom_completion import (
    RequesterFairnessInCompletion,
    WorkerFairnessInCompletion,
)
from repro.core.entities import Contribution
from repro.core.events import (
    ContributionSubmitted,
    MaliceFlagged,
    TaskInterrupted,
    TaskPosted,
    TaskStarted,
    WorkerRegistered,
)
from repro.core.trace import PlatformTrace

from tests.conftest import make_task, make_worker


def _spam_trace(vocabulary, n_contributions=6, flagged=False, quality=0.1,
                gold="A", payload="B"):
    """One worker submitting low-quality answers to gold tasks."""
    trace = PlatformTrace()
    trace.append(WorkerRegistered(time=0, worker=make_worker("w1", vocabulary)))
    for i in range(n_contributions):
        task = make_task(f"t{i+1}", vocabulary, gold_answer=gold)
        trace.append(TaskPosted(time=i, task=task))
        contribution = Contribution(
            f"c{i+1}", task.task_id, "w1", payload, submitted_at=i,
            quality=quality,
        )
        trace.append(ContributionSubmitted(time=i, contribution=contribution))
    if flagged:
        trace.append(
            MaliceFlagged(time=n_contributions, worker_id="w1",
                          detector="gold", score=0.9)
        )
    return trace


class TestAxiom4:
    def test_unflagged_spammer_is_violation(self, vocabulary):
        check = RequesterFairnessInCompletion().check(_spam_trace(vocabulary))
        assert not check.passed
        assert check.violations[0].subjects == ("w1",)
        assert check.violations[0].witness["type"] == "undetected_malice"

    def test_flagged_spammer_passes(self, vocabulary):
        check = RequesterFairnessInCompletion().check(
            _spam_trace(vocabulary, flagged=True)
        )
        assert check.passed
        assert check.opportunities == 1

    def test_honest_worker_not_suspicious(self, vocabulary):
        trace = _spam_trace(vocabulary, quality=0.9, payload="A")
        check = RequesterFairnessInCompletion().check(trace)
        assert check.opportunities == 0

    def test_too_few_contributions_no_evidence(self, vocabulary):
        trace = _spam_trace(vocabulary, n_contributions=3)
        check = RequesterFairnessInCompletion().check(trace)
        assert check.opportunities == 0

    def test_suspicious_via_gold_only(self, vocabulary):
        # High latent quality recorded, but answers contradict gold.
        trace = _spam_trace(vocabulary, quality=0.9, payload="B")
        checker = RequesterFairnessInCompletion()
        suspicious = checker.suspicious_workers(trace)
        assert "w1" in suspicious
        assert suspicious["w1"]["gold_error_rate"] == 1.0

    def test_thresholds_configurable(self, vocabulary):
        trace = _spam_trace(vocabulary, quality=0.4, payload="A", gold="A")
        default = RequesterFairnessInCompletion().check(trace)
        strict = RequesterFairnessInCompletion(quality_floor=0.45).check(trace)
        assert default.opportunities == 0
        assert strict.opportunities == 1


class TestAxiom5:
    def test_requester_interruption_is_violation(self, vocabulary):
        trace = PlatformTrace()
        trace.append(WorkerRegistered(time=0, worker=make_worker("w1", vocabulary)))
        trace.append(TaskStarted(time=1, worker_id="w1", task_id="t1"))
        trace.append(
            TaskInterrupted(time=2, worker_id="w1", task_id="t1",
                            reason="cancelled", worker_initiated=False)
        )
        check = WorkerFairnessInCompletion().check(trace)
        assert not check.passed
        assert check.opportunities == 1
        assert check.violations[0].witness["type"] == "interruption"

    def test_worker_abandonment_allowed(self, vocabulary):
        trace = PlatformTrace()
        trace.append(WorkerRegistered(time=0, worker=make_worker("w1", vocabulary)))
        trace.append(TaskStarted(time=1, worker_id="w1", task_id="t1"))
        trace.append(
            TaskInterrupted(time=2, worker_id="w1", task_id="t1",
                            reason="bored", worker_initiated=True)
        )
        check = WorkerFairnessInCompletion().check(trace)
        assert check.passed

    def test_score_reflects_interruption_rate(self, vocabulary):
        trace = PlatformTrace()
        trace.append(WorkerRegistered(time=0, worker=make_worker("w1", vocabulary)))
        for i in range(4):
            trace.append(TaskStarted(time=i, worker_id="w1", task_id=f"t{i}"))
        trace.append(
            TaskInterrupted(time=5, worker_id="w1", task_id="t0",
                            reason="x", worker_initiated=False)
        )
        check = WorkerFairnessInCompletion().check(trace)
        assert check.score == pytest.approx(0.75)
