"""Unit tests for Axiom 1 and Axiom 2 checkers."""

import pytest

from repro.core.attributes import ComputedAttributes
from repro.core.axiom_assignment import (
    RequesterFairnessInAssignment,
    WorkerFairnessInAssignment,
)
from repro.core.entities import Requester
from repro.core.events import (
    RequesterRegistered,
    TaskPosted,
    TasksShown,
    WorkerRegistered,
)
from repro.core.trace import PlatformTrace

from tests.conftest import make_task, make_worker


def _two_worker_trace(vocabulary, left_view, right_view, left_declared=None,
                      right_declared=None):
    """Two workers registered at t=0, both shown views at t=1."""
    trace = PlatformTrace()
    trace.append(RequesterRegistered(time=0, requester=Requester("r0001")))
    trace.append(
        WorkerRegistered(
            time=0, worker=make_worker("w1", vocabulary, declared=left_declared)
        )
    )
    trace.append(
        WorkerRegistered(
            time=0, worker=make_worker("w2", vocabulary, declared=right_declared)
        )
    )
    for task_id in sorted(set(left_view) | set(right_view)):
        trace.append(TaskPosted(time=1, task=make_task(task_id, vocabulary)))
    trace.append(TasksShown(time=1, worker_id="w1", task_ids=frozenset(left_view)))
    trace.append(TasksShown(time=1, worker_id="w2", task_ids=frozenset(right_view)))
    return trace


class TestAxiom1:
    def test_identical_views_pass(self, vocabulary):
        trace = _two_worker_trace(vocabulary, {"t1", "t2"}, {"t1", "t2"})
        check = WorkerFairnessInAssignment().check(trace)
        assert check.passed
        assert check.opportunities == 1
        assert check.score == 1.0

    def test_different_views_fail(self, vocabulary):
        trace = _two_worker_trace(vocabulary, {"t1", "t2"}, {"t1"})
        check = WorkerFairnessInAssignment().check(trace)
        assert not check.passed
        assert check.violations[0].axiom_id == 1
        assert "t2" in check.violations[0].witness["only_shown_to_first"]

    def test_dissimilar_workers_not_compared(self, vocabulary):
        # Different skills -> not similar -> no opportunity.
        trace = PlatformTrace()
        trace.append(
            WorkerRegistered(
                time=0, worker=make_worker("w1", vocabulary, skills=("survey",))
            )
        )
        trace.append(
            WorkerRegistered(
                time=0, worker=make_worker("w2", vocabulary, skills=("writing",))
            )
        )
        trace.append(TaskPosted(time=1, task=make_task("t1", vocabulary)))
        trace.append(TasksShown(time=1, worker_id="w1", task_ids=frozenset({"t1"})))
        trace.append(TasksShown(time=1, worker_id="w2", task_ids=frozenset()))
        check = WorkerFairnessInAssignment().check(trace)
        assert check.opportunities == 0
        assert check.score == 1.0  # vacuous

    def test_protected_attribute_excluded_from_similarity(self, vocabulary):
        trace = _two_worker_trace(
            vocabulary, {"t1", "t2"}, {"t1"},
            left_declared={"group": "blue"}, right_declared={"group": "green"},
        )
        check = WorkerFairnessInAssignment().check(trace)
        assert not check.passed  # cross-group pair still compared

    def test_non_protected_attribute_breaks_similarity(self, vocabulary):
        trace = _two_worker_trace(
            vocabulary, {"t1", "t2"}, {"t1"},
            left_declared={"language": "en"}, right_declared={"language": "fr"},
        )
        check = WorkerFairnessInAssignment().check(trace)
        assert check.opportunities == 0

    def test_views_at_different_times_not_compared(self, vocabulary):
        trace = PlatformTrace()
        trace.append(WorkerRegistered(time=0, worker=make_worker("w1", vocabulary)))
        trace.append(WorkerRegistered(time=0, worker=make_worker("w2", vocabulary)))
        trace.append(TaskPosted(time=1, task=make_task("t1", vocabulary)))
        trace.append(TasksShown(time=1, worker_id="w1", task_ids=frozenset({"t1"})))
        trace.append(TasksShown(time=2, worker_id="w2", task_ids=frozenset()))
        check = WorkerFairnessInAssignment().check(trace)
        assert check.opportunities == 0

    def test_threshold_relaxation_tolerates_small_gaps(self, vocabulary):
        trace = _two_worker_trace(
            vocabulary, {"t1", "t2", "t3", "t4"}, {"t1", "t2", "t3"}
        )
        strict = WorkerFairnessInAssignment(visibility_threshold=1.0).check(trace)
        relaxed = WorkerFairnessInAssignment(visibility_threshold=0.7).check(trace)
        assert not strict.passed
        assert relaxed.passed

    def test_derivation_audit_flags_corruption(self, vocabulary):
        honest = ComputedAttributes.from_history(8, 10, 10)
        tampered = ComputedAttributes(
            values={**honest.as_dict(), "acceptance_ratio": 0.2},
            derivation=honest.derivation,
        )
        worker = make_worker("w1", vocabulary).with_computed(tampered)
        trace = PlatformTrace()
        trace.append(WorkerRegistered(time=0, worker=worker))
        check = WorkerFairnessInAssignment().check(trace)
        assert not check.passed
        assert any(
            v.witness.get("published") for v in check.violations
        )

    def test_derivation_audit_disabled(self, vocabulary):
        honest = ComputedAttributes.from_history(8, 10, 10)
        tampered = ComputedAttributes(
            values={**honest.as_dict(), "acceptance_ratio": 0.2},
            derivation=honest.derivation,
        )
        worker = make_worker("w1", vocabulary).with_computed(tampered)
        trace = PlatformTrace()
        trace.append(WorkerRegistered(time=0, worker=worker))
        check = WorkerFairnessInAssignment(audit_derivations=False).check(trace)
        assert check.passed

    def test_sampling_cap_respected(self, vocabulary):
        # 10 identical workers -> 45 pairs; cap at 5 -> at most 5 opportunities.
        trace = PlatformTrace()
        for i in range(10):
            trace.append(
                WorkerRegistered(time=0, worker=make_worker(f"w{i}", vocabulary))
            )
        trace.append(TaskPosted(time=1, task=make_task("t1", vocabulary)))
        for i in range(10):
            trace.append(
                TasksShown(time=1, worker_id=f"w{i}", task_ids=frozenset({"t1"}))
            )
        check = WorkerFairnessInAssignment(max_pairs=5).check(trace)
        assert check.opportunities == 5


class TestAxiom2:
    def _trace(self, vocabulary, audiences, rewards=(0.1, 0.1),
               requesters=("r0001", "r0002"), post_times=(0, 0)):
        trace = PlatformTrace()
        trace.append(RequesterRegistered(time=0, requester=Requester("r0001")))
        trace.append(RequesterRegistered(time=0, requester=Requester("r0002")))
        for worker_id in sorted({w for aud in audiences for w in aud}):
            trace.append(
                WorkerRegistered(time=0, worker=make_worker(worker_id, vocabulary))
            )
        tasks = [
            make_task(f"t{i+1}", vocabulary, requester_id=requesters[i],
                      reward=rewards[i])
            for i in range(2)
        ]
        for i, task in enumerate(tasks):
            trace.append(TaskPosted(time=post_times[i], task=task))
        time = max(post_times)
        for i, audience in enumerate(audiences):
            for worker_id in sorted(audience):
                trace.append(
                    TasksShown(
                        time=time, worker_id=worker_id,
                        task_ids=frozenset({f"t{i+1}"}),
                    )
                )
        return trace

    def test_equal_audiences_pass(self, vocabulary):
        trace = self._trace(vocabulary, [{"w1", "w2"}, {"w1", "w2"}])
        check = RequesterFairnessInAssignment().check(trace)
        assert check.passed
        assert check.opportunities == 1

    def test_unequal_audiences_fail(self, vocabulary):
        trace = self._trace(vocabulary, [{"w1", "w2"}, {"w1"}])
        check = RequesterFairnessInAssignment().check(trace)
        assert not check.passed
        assert check.violations[0].axiom_id == 2

    def test_same_requester_not_compared(self, vocabulary):
        trace = self._trace(
            vocabulary, [{"w1"}, set()], requesters=("r0001", "r0001")
        )
        check = RequesterFairnessInAssignment().check(trace)
        assert check.opportunities == 0

    def test_incomparable_rewards_not_compared(self, vocabulary):
        trace = self._trace(vocabulary, [{"w1"}, set()], rewards=(0.1, 0.5))
        check = RequesterFairnessInAssignment().check(trace)
        assert check.opportunities == 0

    def test_posting_window_excludes_stale_pairs(self, vocabulary):
        trace = self._trace(vocabulary, [{"w1"}, set()], post_times=(0, 9))
        narrow = RequesterFairnessInAssignment(posting_window=0).check(trace)
        wide = RequesterFairnessInAssignment(posting_window=20).check(trace)
        assert narrow.opportunities == 0
        assert wide.opportunities == 1
        assert not wide.passed

    def test_tasks_comparable_predicate(self, vocabulary):
        checker = RequesterFairnessInAssignment()
        left = make_task("t1", vocabulary, requester_id="r0001", reward=0.1)
        right = make_task("t2", vocabulary, requester_id="r0002", reward=0.105)
        assert checker.tasks_comparable(left, right)
        assert not checker.tasks_comparable(left, left)
