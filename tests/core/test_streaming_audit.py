"""Unit tests for the streaming audit engine and live platform wiring.

The exhaustive streaming-vs-batch equivalence proofs live in
``tests/property/test_property_streaming_audit.py``; these tests cover
the engine's lifecycle (attach/detach, observed-event accounting) and
the platform/session integration that flags violations the round they
occur.
"""

import pytest

from repro.core.audit import AuditEngine, StreamingAuditEngine
from repro.core.entities import Requester
from repro.core.events import WorkerDeparted
from repro.core.trace import PlatformTrace
from repro.errors import AuditError
from repro.platform.market import CrowdsourcingPlatform
from repro.platform.session import Session, SessionConfig
from repro.workloads.scenarios import (
    clean_scenario,
    survey_cancellation_scenario,
    unequal_pay_scenario,
)
from repro.workloads.skills import standard_vocabulary
from repro.workloads.tasks import TaskStream
from repro.workloads.workers import PopulationSpec, population


class TestStreamingAuditEngine:
    def test_empty_engine_matches_empty_batch_audit(self):
        assert StreamingAuditEngine().snapshot() == AuditEngine().audit(
            PlatformTrace()
        )

    def test_observed_events_counts(self):
        trace = clean_scenario().trace
        engine = StreamingAuditEngine()
        engine.observe_all(trace)
        assert engine.observed_events == len(trace)
        assert engine.snapshot().trace_length == len(trace)

    def test_attach_catches_up_on_existing_events(self):
        """Attaching mid-run replays history, then follows appends."""
        trace = PlatformTrace()
        events = list(unequal_pay_scenario().trace)
        midpoint = len(events) // 2
        for event in events[:midpoint]:
            trace.append(event)
        engine = StreamingAuditEngine().attach(trace)
        assert engine.observed_events == midpoint
        for event in events[midpoint:]:
            trace.append(event)
        assert engine.observed_events == len(events)
        assert engine.snapshot() == AuditEngine().audit(trace)

    def test_double_attach_rejected(self):
        engine = StreamingAuditEngine().attach(PlatformTrace())
        with pytest.raises(AuditError, match="already attached"):
            engine.attach(PlatformTrace())

    def test_detach_stops_observation(self):
        trace = PlatformTrace()
        engine = StreamingAuditEngine().attach(trace)
        engine.detach()
        trace.append(WorkerDeparted(time=0, worker_id="w1"))
        assert engine.observed_events == 0
        engine.detach()  # no-op, not an error

    def test_reattach_after_detach_allowed(self):
        trace = PlatformTrace()
        engine = StreamingAuditEngine().attach(trace)
        engine.detach()
        engine.attach(trace)
        trace.append(WorkerDeparted(time=0, worker_id="w1"))
        assert engine.observed_events == 1


class TestLivePlatformAuditor:
    def test_platform_feeds_auditor(self):
        auditor = StreamingAuditEngine()
        platform = CrowdsourcingPlatform(seed=0, auditor=auditor)
        platform.register_requester(Requester(requester_id="r0001"))
        assert platform.auditor is auditor
        assert auditor.observed_events == len(platform.trace) == 1
        assert auditor.snapshot() == AuditEngine().audit(platform.trace)

    def test_violation_flagged_in_its_round(self):
        """The live auditor sees the survey-cancellation violation in
        the snapshot taken right after it happens."""
        auditor = StreamingAuditEngine()
        scenario_events = list(survey_cancellation_scenario().trace)
        auditor.observe_all(scenario_events)
        assert auditor.snapshot().result_for(5).violation_count > 0


class TestSessionLiveAudit:
    def _session(self, live_audit, rounds=4):
        vocabulary = standard_vocabulary()
        workers, behaviors = population(
            PopulationSpec(size=8, seed=1), vocabulary
        )
        return Session(
            config=SessionConfig(
                rounds=rounds, tasks_per_round=4, seed=1,
                cancel_probability=0.3, live_audit=live_audit,
            ),
            workers=workers,
            behaviors=behaviors,
            requesters=[Requester(
                requester_id="r0001", hourly_wage=6.0, payment_delay=5,
                recruitment_criteria="any", rejection_criteria="quality",
            )],
            task_factory=TaskStream(
                vocabulary=vocabulary, tasks_per_round=4, skills_per_task=1
            ),
        )

    def test_disabled_by_default(self):
        result = self._session(live_audit=False).run()
        assert result.round_audits == ()
        assert result.new_violation_counts() == []

    def test_one_snapshot_per_round(self):
        result = self._session(live_audit=True).run()
        assert len(result.round_audits) == 4
        lengths = [report.trace_length for report in result.round_audits]
        assert lengths == sorted(lengths)

    def test_final_snapshot_equals_batch_audit(self):
        result = self._session(live_audit=True).run()
        assert result.round_audits[-1] == AuditEngine().audit(result.trace)

    def test_interruptions_flagged_the_round_they_occur(self):
        """cancel_probability forces Axiom 5 violations; the first round
        snapshot containing one must coincide with the first round whose
        trace prefix contains one."""
        result = self._session(live_audit=True, rounds=6).run()
        per_round = [
            report.result_for(5).violation_count
            for report in result.round_audits
        ]
        assert per_round[-1] > 0  # cancel_probability=0.3 over 6 rounds
        first_flagged = next(i for i, n in enumerate(per_round) if n)
        # Violation counts only grow for axiom 5 (verdicts are final).
        assert per_round == sorted(per_round)
        assert sum(result.new_violation_counts()) >= per_round[-1] > 0
        assert first_flagged < len(per_round)

    def test_live_audit_does_not_change_simulation(self):
        """Observing is passive: the market unfolds identically."""
        with_audit = self._session(live_audit=True).run()
        without = self._session(live_audit=False).run()
        assert with_audit.trace.events == without.trace.events
        assert with_audit.rounds == without.rounds


class TestAxiom1HistoryWindowEviction:
    """The ROADMAP satellite: incremental Axiom 1 checkers retain view
    history only for the pair-sampling fallback; a ``history_window``
    bounds that memory on unbounded streams."""

    @staticmethod
    def _browse_stream(ticks, n_workers=3):
        """A long stream of browse rounds: every worker sees one fresh
        task per tick, so every tick leaves a merged view behind."""
        from tests.conftest import make_task, make_worker

        vocabulary = standard_vocabulary()
        platform = CrowdsourcingPlatform(seed=0)
        platform.register_requester(Requester(requester_id="r0001"))
        for i in range(n_workers):
            platform.register_worker(
                make_worker(f"w{i}", vocabulary, skills=("survey",))
            )
        for tick in range(ticks):
            platform.post_task(
                make_task(f"t{tick:04d}", vocabulary, skills=("survey",))
            )
            for i in range(n_workers):
                platform.browse(f"w{i}")
            platform.clock.tick(1)
        return platform.trace

    def test_memory_bounded_on_long_stream(self):
        from repro.core.axiom_assignment import WorkerFairnessInAssignment

        window = 16
        axiom = WorkerFairnessInAssignment(history_window=window)
        checker = axiom.incremental()
        trace = self._browse_stream(ticks=200)
        for event in trace:
            checker.observe(event)
        # The window plus at most the still-open tick.
        assert checker.retained_view_ticks <= window + 1
        # Default (no window) retains every browse tick.
        unbounded = WorkerFairnessInAssignment().incremental()
        for event in trace:
            unbounded.observe(event)
        assert unbounded.retained_view_ticks == 200

    def test_eviction_preserves_exactness_without_sampling(self):
        """Finalised verdicts precede eviction, so while pair sampling
        never engages the windowed checker stays batch-exact."""
        from repro.core.axiom_assignment import WorkerFairnessInAssignment
        from repro.core.axioms import default_registry

        trace = self._browse_stream(ticks=60)
        registry = default_registry(
            axiom1=WorkerFairnessInAssignment(history_window=8),
        )
        streaming = StreamingAuditEngine(registry=registry)
        streaming.observe_all(trace)
        assert streaming.snapshot() == AuditEngine(registry=registry).audit(
            trace
        )

    def test_window_validated(self):
        from repro.core.axiom_assignment import WorkerFairnessInAssignment

        with pytest.raises(AuditError, match="history_window"):
            WorkerFairnessInAssignment(history_window=0)

    def test_open_tick_never_evicted(self):
        """Even a window of 1 keeps the still-open tick intact."""
        from repro.core.axiom_assignment import WorkerFairnessInAssignment

        axiom = WorkerFairnessInAssignment(history_window=1)
        checker = axiom.incremental()
        trace = self._browse_stream(ticks=20)
        for event in trace:
            checker.observe(event)
        assert 1 <= checker.retained_view_ticks <= 2
        final = checker.snapshot()
        batch = axiom.check(trace)
        # No sampling engaged (3 workers), so even the tightest window
        # stays exact.
        assert final == batch
