"""Command-line entry point: run the paper's experiments.

Usage::

    python -m repro                # run everything at default scale
    python -m repro E2 E4          # run selected experiments
    python -m repro E1 --seed 42   # with a different seed
    python -m repro --jobs 4       # run experiments 4 at a time
    python -m repro --jobs 4 --backend process   # over processes
    python -m repro --list         # show the experiment index
    python -m repro --stream-audit # live-audit the labelled scenarios

    python -m repro trace save runs/clean --scenario clean
    python -m repro trace save runs/clean.db --store sqlite
    python -m repro trace replay runs/clean --stream-audit
    python -m repro trace info runs/clean.db
    python -m repro trace query runs/clean.db --entity w0001 --kind payment_issued
    python -m repro trace stats runs/clean.db

``--jobs N`` fans the selected experiments out over N workers (threads
by default, processes with ``--backend process``); output order (and
content) is independent of N and backend.  ``--stream-audit`` replays
every labelled scenario from :mod:`repro.workloads.scenarios` through
the :class:`~repro.core.audit.StreamingAuditEngine` event by event —
the continuous-monitoring mode — and prints each scenario's final
snapshot, cross-checked against a batch audit of the same trace;
``--trace-backend`` selects which trace store backs the replayed
copies.

The ``trace`` subcommands are the real-log workflow: ``trace save``
captures a labelled scenario as an on-disk log (JSONL segments by
default, a single indexed SQLite database with ``--store sqlite`` or a
``.db`` path — the stand-in for a platform adapter's export), and
``trace replay`` feeds a saved log back through a
:class:`~repro.core.trace.TraceCursor` into the streaming engine,
cross-checking the final snapshot against a batch audit of the
reopened trace.  ``trace info``, ``trace query``, and ``trace stats``
answer questions about a saved log without re-auditing it: ``query``
executes :class:`~repro.query.TraceQuery` filters (entity / event-kind
/ time-range scoped, indexed SQL on the sqlite format) and ``stats``
prints per-entity event counts plus violation-adjacent counters.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.experiments.replication import REPLICATION_BACKENDS
from repro.experiments.runner import EXPERIMENTS, run_many

_DESCRIPTIONS: dict[str, str] = {
    "E1": "discriminatory power of task-assignment algorithms",
    "E2": "worker retention vs transparency level",
    "E3": "contribution quality vs compensation fairness",
    "E4": "per-axiom fairness-check benchmark suite",
    "E5": "malicious-worker detection across spam regimes",
    "E6": "transparency-DSL expressiveness and comparison",
    "E7": "cost of fairness: utility vs parity frontier",
    "E8": "ablation: similarity-threshold sensitivity of Axiom 1",
    "E9": "ablation: redundancy and aggregation (budget-optimal premise)",
    "E10": "statistical power of the Axiom 1 checker vs bias intensity",
}

_TRACE_BACKENDS = ("memory", "windowed", "persistent", "sqlite")
_ENTITY_KINDS = ("worker", "task", "requester", "contribution")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Reproduction experiments for 'Fairness and Transparency in "
            "Crowdsourcing' (EDBT 2017)."
        ),
    )
    parser.add_argument(
        "experiments", nargs="*", metavar="EXPERIMENT",
        help="experiment ids to run (default: all of E1..E7)",
    )
    parser.add_argument(
        "--seed", type=int, default=None,
        help="override the experiment seed",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (json emits one object per experiment)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="run up to N experiments concurrently (default 1; "
             "output is identical for any N)",
    )
    parser.add_argument(
        "--backend", choices=REPLICATION_BACKENDS, default="thread",
        help="worker pool for --jobs: threads (default) or processes "
             "(true multi-core; falls back to threads with a warning "
             "when something cannot be pickled)",
    )
    parser.add_argument(
        "--stream-audit", action="store_true", dest="stream_audit",
        help="replay the labelled scenarios through the streaming audit "
             "engine and print each final snapshot",
    )
    parser.add_argument(
        "--trace-backend", choices=_TRACE_BACKENDS, default="memory",
        dest="trace_backend", metavar="BACKEND",
        help="trace store backing the --stream-audit replays "
             f"({', '.join(_TRACE_BACKENDS)}; default memory)",
    )
    parser.add_argument(
        "--list", action="store_true", dest="list_experiments",
        help="list experiments and exit",
    )
    return parser


def build_trace_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments trace",
        description="Capture and replay persistent platform trace logs.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    save = commands.add_parser(
        "save", help="capture a labelled scenario as an on-disk log"
    )
    save.add_argument("path", help="log directory (or .db file) to create")
    save.add_argument(
        "--scenario", default="clean",
        help="labelled scenario name (see repro.workloads.scenarios; "
             "default clean)",
    )
    save.add_argument("--seed", type=int, default=0)
    save.add_argument(
        "--segment-events", type=int, default=4096, dest="segment_events",
        help="events per JSONL segment file (default 4096; persistent only)",
    )
    save.add_argument(
        "--store", choices=("persistent", "sqlite"), default=None,
        help="on-disk format (persistent JSONL segments or a single "
             "indexed sqlite database; default: inferred from the path "
             "suffix, .db/.sqlite means sqlite)",
    )

    replay = commands.add_parser(
        "replay", help="re-audit a saved log (captured once, audited forever)"
    )
    replay.add_argument("path", help="log directory or .db file to open")
    replay.add_argument(
        "--stream-audit", action="store_true", dest="stream_audit",
        help="feed the log through a TraceCursor into the streaming "
             "engine and cross-check against a batch audit",
    )
    replay.add_argument("--format", choices=("text", "json"), default="text")
    replay.add_argument(
        "--trace-backend", choices=("memory", "windowed", "sqlite"),
        default="memory", dest="trace_backend",
        help="store backend the replayed events are re-homed into "
             "(default memory; sqlite re-homes into a scratch database "
             "to exercise the indexed backend)",
    )

    info = commands.add_parser(
        "info", help="print backend, event count, entity counts, revision"
    )
    info.add_argument("path", help="log directory or .db file to open")
    info.add_argument("--format", choices=("text", "json"), default="text")

    query = commands.add_parser(
        "query",
        help="run an entity/kind/time-scoped TraceQuery over a saved log",
    )
    query.add_argument("path", help="log directory or .db file to open")
    query.add_argument(
        "--entity", action="append", default=[], metavar="ID",
        help="scope to events touching this entity id (repeatable)",
    )
    query.add_argument(
        "--entity-kind", choices=_ENTITY_KINDS, default=None,
        dest="entity_kind",
        help="restrict --entity matches to one entity role",
    )
    query.add_argument(
        "--kind", action="append", default=[], metavar="KIND",
        help="scope to this event kind, e.g. payment_issued (repeatable)",
    )
    query.add_argument(
        "--since", type=int, default=None, metavar="T",
        help="events at time >= T",
    )
    query.add_argument(
        "--until", type=int, default=None, metavar="T",
        help="events at time < T",
    )
    query.add_argument(
        "--round", type=int, default=None, dest="round_tick", metavar="N",
        help="events of one simulated round (= clock tick N)",
    )
    query.add_argument(
        "--limit", type=int, default=None, metavar="N",
        help="print at most N matching events",
    )
    query.add_argument(
        "--count", action="store_true",
        help="print only the number of matching events",
    )
    query.add_argument("--format", choices=("text", "json"), default="text")

    stats = commands.add_parser(
        "stats",
        help="per-worker/per-task event counts and violation-adjacent "
             "counters for a saved log",
    )
    stats.add_argument("path", help="log directory or .db file to open")
    stats.add_argument("--format", choices=("text", "json"), default="text")
    return parser


def _result_to_json(result) -> dict:
    return {
        "experiment_id": result.experiment_id,
        "title": result.title,
        "tables": [
            {
                "title": table.title,
                "columns": list(table.columns),
                "rows": table.rows_as_dicts(),
            }
            for table in result.tables
        ],
    }


def _rebuilt(trace, backend: str):
    """A copy of ``trace`` living in the chosen store backend."""
    from repro.core.store import make_store
    from repro.core.trace import PlatformTrace

    if backend == "memory":
        return PlatformTrace(trace)
    if backend == "windowed":
        # Non-evicting by construction: the point here is exercising the
        # backend, not truncating the audit evidence.
        return PlatformTrace(
            trace, store=make_store("windowed", window=max(len(trace), 1))
        )
    raise ValueError(f"unsupported replay backend {backend!r}")


def _stream_audit(seed: int, output_format: str, backend: str = "memory") -> int:
    """Replay every labelled scenario through the streaming engine."""
    import tempfile

    from repro.core.audit import AuditEngine, StreamingAuditEngine
    from repro.core.serialize import load_trace, save_trace
    from repro.workloads.scenarios import all_scenarios

    batch_engine = AuditEngine()
    summaries = []
    with tempfile.TemporaryDirectory() as scratch:
        for scenario in all_scenarios(seed):
            if backend in ("persistent", "sqlite"):
                import os

                suffix = ".db" if backend == "sqlite" else ""
                path = os.path.join(scratch, scenario.name + suffix)
                save_trace(scenario.trace, path, backend=backend)
                trace = load_trace(path)
            else:
                trace = _rebuilt(scenario.trace, backend)
            streaming = StreamingAuditEngine()
            streaming.observe_all(trace)
            snapshot = streaming.snapshot()
            agrees = snapshot == batch_engine.audit(trace)
            summaries.append((scenario, snapshot, agrees))
    if output_format == "json":
        import json

        print(json.dumps([
            {
                "scenario": scenario.name,
                "backend": backend,
                "events": snapshot.trace_length,
                "overall_score": snapshot.overall_score,
                "violations": snapshot.total_violations,
                "matches_batch_audit": agrees,
            }
            for scenario, snapshot, agrees in summaries
        ], indent=2))
    else:
        for scenario, snapshot, agrees in summaries:
            print(f"--- {scenario.name} "
                  f"({'matches' if agrees else 'DIVERGES FROM'} batch audit)")
            for line in snapshot.summary_lines():
                print(line)
            print()
    return 0 if all(agrees for _, _, agrees in summaries) else 1


def _trace_save(args: argparse.Namespace) -> int:
    from repro.core.serialize import save_trace
    from repro.errors import TraceError
    from repro.workloads.scenarios import all_scenarios

    scenarios = {s.name: s for s in all_scenarios(args.seed)}
    scenario = scenarios.get(args.scenario)
    if scenario is None:
        print(
            f"unknown scenario {args.scenario!r}; "
            f"known: {', '.join(sorted(scenarios))}",
            file=sys.stderr,
        )
        return 2
    try:
        path = save_trace(
            scenario.trace, args.path,
            segment_events=args.segment_events, backend=args.store,
        )
    except TraceError as error:
        print(f"cannot save to {args.path!r}: {error}", file=sys.stderr)
        return 2
    print(
        f"saved scenario {scenario.name!r} "
        f"({len(scenario.trace)} events) to {path}"
    )
    return 0


def _trace_replay(args: argparse.Namespace) -> int:
    import contextlib
    import tempfile

    from repro.core.serialize import load_trace
    from repro.core.store import make_store
    from repro.errors import TraceError

    with contextlib.ExitStack() as stack:
        try:
            trace = load_trace(args.path)
            if args.trace_backend != "memory":
                # Re-home the already-loaded events; no second disk read.
                import os

                from repro.core.trace import PlatformTrace

                opened = trace
                if args.trace_backend == "windowed":
                    store = make_store(
                        "windowed", window=max(len(opened), 1)
                    )
                else:  # sqlite: a scratch database exercising the indexes
                    scratch = stack.enter_context(
                        tempfile.TemporaryDirectory()
                    )
                    store = make_store(
                        "sqlite", path=os.path.join(scratch, "replay.db")
                    )
                    # Close before the directory is cleaned up.
                    stack.callback(store.close)
                trace = PlatformTrace(opened, store=store)
                opened.store.close()
        except TraceError as error:
            print(f"cannot replay {args.path!r}: {error}", file=sys.stderr)
            return 2
        return _replay_loaded(args, trace)


def _replay_loaded(args: argparse.Namespace, trace) -> int:
    from repro.core.audit import AuditEngine, StreamingAuditEngine

    batch = AuditEngine().audit(trace)
    if args.stream_audit:
        # The adapter path: a saved platform log drained through a
        # cursor into the continuous-monitoring engine.
        streaming = StreamingAuditEngine()
        cursor = trace.cursor()
        for event in cursor.drain():
            streaming.observe(event)
        report = streaming.snapshot()
        agrees = report == batch
    else:
        report = batch
        agrees = True
    if args.format == "json":
        import json

        print(json.dumps({
            "path": args.path,
            "events": report.trace_length,
            "overall_score": report.overall_score,
            "violations": report.total_violations,
            "streamed": bool(args.stream_audit),
            "matches_batch_audit": agrees,
        }, indent=2))
    else:
        mode = "streamed replay" if args.stream_audit else "batch audit"
        verdict = "matches" if agrees else "DIVERGES FROM"
        print(f"--- {args.path} ({mode}, {verdict} batch audit)")
        for line in report.summary_lines():
            print(line)
    return 0 if agrees else 1


def _opened_store(path: str):
    """Open a saved log of either on-disk format, or exit with code 2."""
    from repro.core.store import open_store
    from repro.errors import TraceError

    try:
        return open_store(path)
    except TraceError as error:
        print(f"cannot open {path!r}: {error}", file=sys.stderr)
        return None


def _trace_info(args: argparse.Namespace) -> int:
    from repro.query import trace_info

    store = _opened_store(args.path)
    if store is None:
        return 2
    info = trace_info(store)
    store.close()
    if args.format == "json":
        import json

        print(json.dumps(info, indent=2))
        return 0
    print(f"--- {args.path}")
    for key in ("backend", "events", "revision", "end_time",
                "workers", "tasks", "requesters", "contributions"):
        print(f"{key}: {info[key]}")
    return 0


def _trace_query(args: argparse.Namespace) -> int:
    from repro.core.serialize import event_to_dict
    from repro.errors import QueryError
    from repro.query import TraceQuery

    if args.entity_kind is not None and not args.entity:
        print("--entity-kind requires at least one --entity", file=sys.stderr)
        return 2
    if args.round_tick is not None and (
        args.since is not None or args.until is not None
    ):
        print(
            "--round selects one tick and cannot be combined with "
            "--since/--until",
            file=sys.stderr,
        )
        return 2
    store = _opened_store(args.path)
    if store is None:
        return 2
    try:
        query = TraceQuery()
        if args.entity:
            query = query.entity(*args.entity, kind=args.entity_kind)
        if args.kind:
            query = query.of_kind(*args.kind)
        if args.round_tick is not None:
            query = query.at_round(args.round_tick)
        elif args.since is not None or args.until is not None:
            query = query.time_range(args.since, args.until)
        if args.limit is not None:
            query = query.take(args.limit)
        if args.count:
            total = query.count(store)
        else:
            events = query.run(store)
    except QueryError as error:
        print(f"invalid query: {error}", file=sys.stderr)
        store.close()
        return 2
    store.close()
    if args.count:
        if args.format == "json":
            import json

            print(json.dumps({"count": total}))
        else:
            print(total)
        return 0
    if args.format == "json":
        import json

        print(json.dumps([event_to_dict(event) for event in events], indent=2))
        return 0
    for event in events:
        data = event_to_dict(event)
        rest = {
            key: value for key, value in data.items()
            if key not in ("kind", "time")
        }
        print(f"t={event.time:<6} {event.kind:<24} {rest}")
    print(f"({len(events)} event(s))")
    return 0


def _trace_stats(args: argparse.Namespace) -> int:
    from repro.query import trace_stats

    store = _opened_store(args.path)
    if store is None:
        return 2
    stats = trace_stats(store)
    store.close()
    if args.format == "json":
        import json

        print(json.dumps(stats.as_dict(), indent=2))
        return 0
    print(f"--- {args.path}")
    for line in stats.summary_lines():
        print(line)
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "trace":
        args = build_trace_parser().parse_args(argv[1:])
        handlers = {
            "save": _trace_save,
            "replay": _trace_replay,
            "info": _trace_info,
            "query": _trace_query,
            "stats": _trace_stats,
        }
        return handlers[args.command](args)
    args = build_parser().parse_args(argv)
    if args.list_experiments:
        for experiment_id in sorted(EXPERIMENTS):
            print(f"{experiment_id}: {_DESCRIPTIONS.get(experiment_id, '')}")
        return 0
    if args.jobs < 1:
        print(f"--jobs must be >= 1, got {args.jobs}", file=sys.stderr)
        return 2
    if args.stream_audit:
        if args.experiments:
            print(
                "note: --stream-audit replays the labelled scenarios; "
                f"ignoring experiment ids {', '.join(args.experiments)}",
                file=sys.stderr,
            )
        return _stream_audit(args.seed or 0, args.format, args.trace_backend)
    wanted = [e.upper() for e in args.experiments] or sorted(EXPERIMENTS)
    unknown = [e for e in wanted if e not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}", file=sys.stderr)
        print(f"known: {', '.join(sorted(EXPERIMENTS))}", file=sys.stderr)
        return 2
    kwargs = {} if args.seed is None else {"seed": args.seed}
    results = run_many(wanted, jobs=args.jobs, backend=args.backend, **kwargs)
    if args.format == "json":
        import json

        print(json.dumps([_result_to_json(r) for r in results], indent=2))
        return 0
    for result in results:
        print(result.render())
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
