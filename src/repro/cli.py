"""Command-line entry point: run the paper's experiments.

Usage::

    python -m repro                # run everything at default scale
    python -m repro E2 E4          # run selected experiments
    python -m repro E1 --seed 42   # with a different seed
    python -m repro --jobs 4       # run experiments 4 at a time
    python -m repro --jobs 4 --backend process   # over processes
    python -m repro --list         # show the experiment index
    python -m repro --stream-audit # live-audit the labelled scenarios

    python -m repro trace save runs/clean --scenario clean
    python -m repro trace save runs/clean.db --store sqlite
    python -m repro trace replay runs/clean --stream-audit
    python -m repro trace info runs/clean.db
    python -m repro trace query runs/clean.db --entity w0001 --kind payment_issued
    python -m repro trace query runs/clean.db --count-by-kind
    python -m repro trace stats runs/clean.db

    python -m repro trace tail export.jsonl runs/live.db --audit
    python -m repro trace resume export.jsonl runs/live.db --audit
    python -m repro trace tail export.jsonl runs/live.db --audit \\
        --report html --report jsonl
    python -m repro trace tail a.jsonl b.jsonl runs/live.db --audit --pipeline
    python -m repro trace resume export.jsonl runs/live.db --audit --verify

    python -m repro trace report runs/clean.db --format html --out audit.html
    python -m repro trace verify runs/live.db
    python -m repro trace repair runs/live.db runs/salvaged.db

``--jobs N`` fans the selected experiments out over N workers (threads
by default, processes with ``--backend process``); output order (and
content) is independent of N and backend.  ``--stream-audit`` replays
every labelled scenario from :mod:`repro.workloads.scenarios` through
the :class:`~repro.core.audit.StreamingAuditEngine` event by event —
the continuous-monitoring mode — and prints each scenario's final
snapshot, cross-checked against a batch audit of the same trace;
``--trace-backend`` selects which trace store backs the replayed
copies.

The ``trace`` subcommands are the real-log workflow: ``trace save``
captures a labelled scenario as an on-disk log (JSONL segments by
default, a single indexed SQLite database with ``--store sqlite`` or a
``.db`` path — the stand-in for a platform adapter's export), and
``trace replay`` feeds a saved log back through a
:class:`~repro.core.trace.TraceCursor` into the streaming engine,
cross-checking the final snapshot against a batch audit of the
reopened trace.  ``trace info``, ``trace query``, and ``trace stats``
answer questions about a saved log without re-auditing it: ``query``
executes :class:`~repro.query.TraceQuery` filters (entity / event-kind
/ time-range scoped, indexed SQL on the sqlite format, histogram via
``--count-by-kind``) and ``stats`` prints per-entity event counts plus
violation-adjacent counters.

``trace tail`` is the live-platform workflow (:mod:`repro.ingest`):
follow a growing export — JSONL file, persistent segment directory, or
mapped CSV — into a fresh on-disk store, delta-auditing each batch
with ``--audit`` and checkpointing after every batch so a killed tail
continues with ``trace resume`` without duplicating or dropping a
single event.  ``--audit-jobs N`` shards each batch's audit across N
partitioned workers (:mod:`repro.shard`) — identical reports, audit
throughput that scales with cores; the same flag on ``--stream-audit``
cross-checks the sharded engine against the batch verdict per
scenario.  ``--report FORMAT`` (repeatable, with ``--audit``) keeps a
rolling report file per format in ``--report-dir`` (default
``<dest>.reports``), re-rendered after every audited batch.
``--pipeline`` overlaps polling, appending, and auditing as staged
threads over bounded queues (:mod:`repro.ingest.pipeline`) — same
verdicts and stored bytes, higher throughput when audits dominate —
with ``--pipeline-depth`` sizing the queues; passing several ``SRC``
paths merges the exports by event time under one checkpoint.  ``trace
resume --verify`` deep-verifies the destination (read-only) before
ingesting anything and refuses — exit 1 — when it is damaged.

``trace report`` audits a saved log and exports it through
:mod:`repro.report` (CSV, JSONL, Markdown, or a self-contained HTML
dashboard; ``--what verify`` exports deep-verify findings through the
same sinks, and ``--what repair`` renders a saved ``*.loss.json`` loss
manifest through them).  ``trace verify`` runs the read-only integrity sweeps of
:mod:`repro.forensics` — exit 0 when sound, 1 when damaged, so it
scripts as a health check — and ``trace repair`` salvages a damaged
store into a fresh destination, keeping every verifiable event and
writing a loss manifest naming the exact seq ranges dropped and why.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.experiments.replication import REPLICATION_BACKENDS
from repro.experiments.runner import EXPERIMENTS, run_many

_DESCRIPTIONS: dict[str, str] = {
    "E1": "discriminatory power of task-assignment algorithms",
    "E2": "worker retention vs transparency level",
    "E3": "contribution quality vs compensation fairness",
    "E4": "per-axiom fairness-check benchmark suite",
    "E5": "malicious-worker detection across spam regimes",
    "E6": "transparency-DSL expressiveness and comparison",
    "E7": "cost of fairness: utility vs parity frontier",
    "E8": "ablation: similarity-threshold sensitivity of Axiom 1",
    "E9": "ablation: redundancy and aggregation (budget-optimal premise)",
    "E10": "statistical power of the Axiom 1 checker vs bias intensity",
}

_TRACE_BACKENDS = ("memory", "windowed", "persistent", "sqlite")
_ENTITY_KINDS = ("worker", "task", "requester", "contribution")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Reproduction experiments for 'Fairness and Transparency in "
            "Crowdsourcing' (EDBT 2017)."
        ),
    )
    parser.add_argument(
        "experiments", nargs="*", metavar="EXPERIMENT",
        help="experiment ids to run (default: all of E1..E7)",
    )
    parser.add_argument(
        "--seed", type=int, default=None,
        help="override the experiment seed",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (json emits one object per experiment)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="run up to N experiments concurrently (default 1; "
             "output is identical for any N)",
    )
    parser.add_argument(
        "--backend", choices=REPLICATION_BACKENDS, default="thread",
        help="worker pool for --jobs: threads (default) or processes "
             "(true multi-core; falls back to threads with a warning "
             "when something cannot be pickled)",
    )
    parser.add_argument(
        "--stream-audit", action="store_true", dest="stream_audit",
        help="replay the labelled scenarios through the streaming audit "
             "engine and print each final snapshot",
    )
    parser.add_argument(
        "--audit-jobs", type=int, default=0, metavar="N",
        dest="audit_jobs",
        help="with --stream-audit: additionally audit each scenario "
             "through the sharded delta engine with N partitions and "
             "cross-check it against the batch verdict (default 0 = "
             "skip the sharded cross-check)",
    )
    parser.add_argument(
        "--trace-backend", choices=_TRACE_BACKENDS, default="memory",
        dest="trace_backend", metavar="BACKEND",
        help="trace store backing the --stream-audit replays "
             f"({', '.join(_TRACE_BACKENDS)}; default memory)",
    )
    parser.add_argument(
        "--list", action="store_true", dest="list_experiments",
        help="list experiments and exit",
    )
    return parser


def build_trace_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments trace",
        description="Capture and replay persistent platform trace logs.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    save = commands.add_parser(
        "save", help="capture a labelled scenario as an on-disk log"
    )
    save.add_argument("path", help="log directory (or .db file) to create")
    save.add_argument(
        "--scenario", default="clean",
        help="labelled scenario name (see repro.workloads.scenarios; "
             "default clean)",
    )
    save.add_argument("--seed", type=int, default=0)
    save.add_argument(
        "--segment-events", type=int, default=4096, dest="segment_events",
        help="events per JSONL segment file (default 4096; persistent only)",
    )
    save.add_argument(
        "--store", choices=("persistent", "sqlite"), default=None,
        help="on-disk format (persistent JSONL segments or a single "
             "indexed sqlite database; default: inferred from the path "
             "suffix, .db/.sqlite means sqlite)",
    )

    replay = commands.add_parser(
        "replay", help="re-audit a saved log (captured once, audited forever)"
    )
    replay.add_argument("path", help="log directory or .db file to open")
    replay.add_argument(
        "--stream-audit", action="store_true", dest="stream_audit",
        help="feed the log through a TraceCursor into the streaming "
             "engine and cross-check against a batch audit",
    )
    replay.add_argument("--format", choices=("text", "json"), default="text")
    replay.add_argument(
        "--trace-backend", choices=("memory", "windowed", "sqlite"),
        default="memory", dest="trace_backend",
        help="store backend the replayed events are re-homed into "
             "(default memory; sqlite re-homes into a scratch database "
             "to exercise the indexed backend)",
    )

    info = commands.add_parser(
        "info", help="print backend, event count, entity counts, revision"
    )
    info.add_argument("path", help="log directory or .db file to open")
    info.add_argument("--format", choices=("text", "json"), default="text")

    query = commands.add_parser(
        "query",
        help="run an entity/kind/time-scoped TraceQuery over a saved log",
    )
    query.add_argument("path", help="log directory or .db file to open")
    query.add_argument(
        "--entity", action="append", default=[], metavar="ID",
        help="scope to events touching this entity id (repeatable)",
    )
    query.add_argument(
        "--entity-kind", choices=_ENTITY_KINDS, default=None,
        dest="entity_kind",
        help="restrict --entity matches to one entity role",
    )
    query.add_argument(
        "--kind", action="append", default=[], metavar="KIND",
        help="scope to this event kind, e.g. payment_issued (repeatable)",
    )
    query.add_argument(
        "--since", type=int, default=None, metavar="T",
        help="events at time >= T",
    )
    query.add_argument(
        "--until", type=int, default=None, metavar="T",
        help="events at time < T",
    )
    query.add_argument(
        "--round", type=int, default=None, dest="round_tick", metavar="N",
        help="events of one simulated round (= clock tick N)",
    )
    query.add_argument(
        "--limit", type=int, default=None, metavar="N",
        help="print at most N matching events",
    )
    query.add_argument(
        "--count", action="store_true",
        help="print only the number of matching events",
    )
    query.add_argument(
        "--count-by-kind", action="store_true", dest="count_by_kind",
        help="print a histogram of matching events by kind instead of "
             "the events themselves",
    )
    query.add_argument("--format", choices=("text", "json"), default="text")

    stats = commands.add_parser(
        "stats",
        help="per-worker/per-task event counts and violation-adjacent "
             "counters for a saved log",
    )
    stats.add_argument("path", help="log directory or .db file to open")
    stats.add_argument("--format", choices=("text", "json"), default="text")

    tail = commands.add_parser(
        "tail",
        help="follow one or more platform exports into a fresh "
             "checkpointed store, optionally delta-auditing each batch",
    )
    tail.add_argument(
        "source", nargs="+", metavar="SRC",
        help="export(s) to tail: JSONL files, segment-log directories, "
             "or .csv files (see --source-kind); several exports are "
             "interleaved by event time into one store under a single "
             "checkpoint",
    )
    tail.add_argument(
        "dest", help="destination store to create (log directory or .db file)"
    )
    tail.add_argument(
        "--store", choices=("persistent", "sqlite"), default=None,
        help="destination on-disk format (default: inferred from the "
             "dest path suffix, .db/.sqlite means sqlite)",
    )
    _add_tail_options(tail)

    resume = commands.add_parser(
        "resume",
        help="continue a killed or stopped 'trace tail' from its "
             "checkpoint, duplicating and dropping nothing",
    )
    resume.add_argument(
        "source", nargs="+", metavar="SRC",
        help="the export(s) the tail was following (same paths, same "
             "order)",
    )
    resume.add_argument(
        "dest", help="the destination store the tail was writing"
    )
    resume.add_argument(
        "--verify", action="store_true",
        help="deep-verify the destination store (read-only) before "
             "ingesting anything and refuse to resume — exit 1 — when "
             "it is damaged",
    )
    _add_tail_options(resume)

    report = commands.add_parser(
        "report",
        help="audit a saved log and export the violations as a "
             "CSV/JSONL/Markdown/HTML report",
    )
    report.add_argument(
        "path",
        help="log directory or .db file to open (for --what repair: "
             "the saved *.loss.json manifest to render)",
    )
    report.add_argument(
        "--format", choices=("csv", "jsonl", "md", "html"), default="md",
        help="report format (default md)",
    )
    report.add_argument(
        "--what", choices=("audit", "verify", "repair"), default="audit",
        help="report content: the fairness audit (default), the "
             "deep-verify findings of the same store, or a saved "
             "trace-repair loss manifest (PATH is the *.loss.json file)",
    )
    report.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the report to PATH instead of stdout",
    )

    verify = commands.add_parser(
        "verify",
        help="deep integrity checks over a saved log (read-only): "
             "payload validity, seq gaps, index cross-validation, "
             "segment reconciliation",
    )
    verify.add_argument("path", help="log directory or .db file to check")
    verify.add_argument("--format", choices=("text", "json"), default="text")

    repair = commands.add_parser(
        "repair",
        help="salvage a corrupted log into a fresh store, keeping every "
             "verifiable event and writing a loss manifest of exactly "
             "what was dropped and why",
    )
    repair.add_argument("source", help="the damaged log directory or .db file")
    repair.add_argument(
        "dest", help="fresh destination store to create (must not exist)"
    )
    repair.add_argument(
        "--store", choices=("persistent", "sqlite"), default=None,
        help="destination on-disk format (default: inferred from the "
             "dest path suffix, .db/.sqlite means sqlite)",
    )
    repair.add_argument(
        "--manifest", default=None, metavar="PATH",
        help="loss-manifest path (default: <dest>.loss.json)",
    )
    repair.add_argument("--format", choices=("text", "json"), default="text")

    serve = commands.add_parser(
        "serve",
        help="host stores, delta audits, queries, and reports as a "
             "multi-tenant HTTP service (audit-as-a-service)",
    )
    serve.add_argument(
        "data_dir", nargs="?", default=None, metavar="DATA_DIR",
        help="directory tenant stores and the tenant manifest live in "
             "(omit for an in-memory-only service: disk backends "
             "disabled, nothing survives shutdown)",
    )
    serve.add_argument(
        "--host", default="127.0.0.1",
        help="interface to bind (default 127.0.0.1)",
    )
    serve.add_argument(
        "--port", type=int, default=8023,
        help="port to bind (default 8023; 0 picks a free port)",
    )
    serve.add_argument(
        "--store", choices=("memory", "persistent", "sqlite"),
        default="sqlite",
        help="backend for tenants created without an explicit one "
             "(default sqlite)",
    )
    serve.add_argument(
        "--audit-jobs", type=int, default=1, metavar="N",
        dest="audit_jobs",
        help="default shard count for each tenant's delta audits "
             "(default 1 = single-threaded)",
    )
    return parser


def _add_tail_options(parser: argparse.ArgumentParser) -> None:
    """Flags shared by ``trace tail`` and ``trace resume``."""
    parser.add_argument(
        "--source-kind",
        choices=("auto", "jsonl", "segments", "csv", "http"),
        default="auto", dest="source_kind",
        help="how to read the export (auto: directory means segments, "
             ".csv means csv, http(s):// URLs mean an audit-service "
             "tenant's events endpoint, anything else jsonl)",
    )
    parser.add_argument(
        "--csv-map", action="append", default=[], metavar="COLUMN=FIELD",
        dest="csv_map",
        help="map a CSV column to an event field, e.g. who=worker_id "
             "(repeatable; required for csv sources)",
    )
    parser.add_argument(
        "--csv-const", action="append", default=[], metavar="FIELD=VALUE",
        dest="csv_const",
        help="fix an event field for every CSV row, e.g. "
             "kind=payment_issued (repeatable; values are JSON-decoded "
             "where possible)",
    )
    parser.add_argument(
        "--pipeline", action="store_true",
        help="overlap the source poll, the batched append+checkpoint, "
             "and the delta audit as concurrent stages over bounded "
             "queues (same stores, same verdicts, higher throughput; "
             "see --pipeline-depth)",
    )
    parser.add_argument(
        "--pipeline-depth", type=int, default=None, metavar="N",
        dest="pipeline_depth",
        help="with --pipeline: bound of each inter-stage queue in "
             "batches — the backpressure window before polling "
             "throttles (default 4)",
    )
    parser.add_argument(
        "--audit", action="store_true",
        help="run a delta audit after every batch and report "
             "newly appearing violations",
    )
    parser.add_argument(
        "--audit-jobs", type=int, default=1, metavar="N",
        dest="audit_jobs",
        help="shard each batch's delta audit across N partitioned "
             "workers (with --audit; default 1 = single-threaded; "
             "reports are identical for any N)",
    )
    parser.add_argument(
        "--report", action="append", default=[], dest="report_formats",
        choices=("csv", "jsonl", "md", "html"), metavar="FORMAT",
        help="with --audit: re-render a rolling report file in this "
             "format after every audited batch (repeatable; csv, jsonl, "
             "md, html)",
    )
    parser.add_argument(
        "--report-dir", default=None, metavar="PATH", dest="report_dir",
        help="directory the rolling --report files land in "
             "(default: <dest>.reports)",
    )
    parser.add_argument(
        "--stats-every", type=int, default=0, metavar="N", dest="stats_every",
        help="print a trace_stats snapshot every N batches (default: never)",
    )
    parser.add_argument(
        "--metrics-out", default=None, metavar="PATH", dest="metrics_out",
        help="append telemetry snapshots (the full metrics registry as "
             "JSON, stamped with monotonic elapsed_s) to this JSONL "
             "file while ingesting — the offline counterpart of the "
             "service's GET /metrics",
    )
    parser.add_argument(
        "--metrics-every", type=int, default=1, metavar="N",
        dest="metrics_every",
        help="with --metrics-out: snapshot every N batches (default 1)",
    )
    parser.add_argument(
        "--interval", type=float, default=1.0, metavar="SECONDS",
        help="cadence: seconds to sleep between polls (default 1.0)",
    )
    parser.add_argument(
        "--batch-events", type=int, default=256, metavar="N",
        dest="batch_events",
        help="maximum events ingested per batch (default 256)",
    )
    parser.add_argument(
        "--max-batches", type=int, default=None, metavar="N",
        dest="max_batches",
        help="stop after N non-empty batches (default: unbounded)",
    )
    parser.add_argument(
        "--until-idle", type=int, default=None, metavar="N",
        dest="until_idle",
        help="stop after N consecutive empty polls (default: follow "
             "the export forever)",
    )
    parser.add_argument(
        "--checkpoint", default=None, metavar="PATH",
        help="resume-token path (default: <dest>.checkpoint)",
    )
    parser.add_argument("--format", choices=("text", "json"), default="text")


def _result_to_json(result) -> dict:
    return {
        "experiment_id": result.experiment_id,
        "title": result.title,
        "tables": [
            {
                "title": table.title,
                "columns": list(table.columns),
                "rows": table.rows_as_dicts(),
            }
            for table in result.tables
        ],
    }


def _rebuilt(trace, backend: str):
    """A copy of ``trace`` living in the chosen store backend."""
    from repro.core.store import make_store
    from repro.core.trace import PlatformTrace

    if backend == "memory":
        return PlatformTrace(trace)
    if backend == "windowed":
        # Non-evicting by construction: the point here is exercising the
        # backend, not truncating the audit evidence.
        return PlatformTrace(
            trace, store=make_store("windowed", window=max(len(trace), 1))
        )
    raise ValueError(f"unsupported replay backend {backend!r}")


def _stream_audit(
    seed: int,
    output_format: str,
    backend: str = "memory",
    audit_jobs: int = 0,
) -> int:
    """Replay every labelled scenario through the streaming engine.

    ``audit_jobs >= 1`` additionally audits each scenario through a
    :class:`~repro.shard.ShardedDeltaAuditEngine` with that many
    partitions and cross-checks it against the batch verdict — the
    smoke test for the sharded audit path.
    """
    import tempfile

    from repro.core.audit import AuditEngine, StreamingAuditEngine
    from repro.core.serialize import load_trace, save_trace
    from repro.workloads.scenarios import all_scenarios

    batch_engine = AuditEngine()
    summaries = []
    with tempfile.TemporaryDirectory() as scratch:
        for scenario in all_scenarios(seed):
            if backend in ("persistent", "sqlite"):
                import os

                suffix = ".db" if backend == "sqlite" else ""
                path = os.path.join(scratch, scenario.name + suffix)
                save_trace(scenario.trace, path, backend=backend)
                trace = load_trace(path)
            else:
                trace = _rebuilt(scenario.trace, backend)
            streaming = StreamingAuditEngine()
            streaming.observe_all(trace)
            snapshot = streaming.snapshot()
            batch = batch_engine.audit(trace)
            agrees = snapshot == batch
            sharded_agrees = None
            if audit_jobs:
                from repro.shard import ShardedDeltaAuditEngine

                with ShardedDeltaAuditEngine(
                    shards=audit_jobs, jobs=audit_jobs
                ) as sharded:
                    sharded_agrees = sharded.audit(trace) == batch
            summaries.append((scenario, snapshot, agrees, sharded_agrees))
    if output_format == "json":
        import json

        print(json.dumps([
            {
                "scenario": scenario.name,
                "backend": backend,
                "events": snapshot.trace_length,
                "overall_score": snapshot.overall_score,
                "violations": snapshot.total_violations,
                "matches_batch_audit": agrees,
                **(
                    {}
                    if sharded_agrees is None
                    else {
                        "audit_jobs": audit_jobs,
                        "matches_sharded_audit": sharded_agrees,
                    }
                ),
            }
            for scenario, snapshot, agrees, sharded_agrees in summaries
        ], indent=2))
    else:
        for scenario, snapshot, agrees, sharded_agrees in summaries:
            verdict = "matches" if agrees else "DIVERGES FROM"
            sharded_note = ""
            if sharded_agrees is not None:
                sharded_note = (
                    f"; sharded x{audit_jobs} "
                    f"{'matches' if sharded_agrees else 'DIVERGES'}"
                )
            print(f"--- {scenario.name} "
                  f"({verdict} batch audit{sharded_note})")
            for line in snapshot.summary_lines():
                print(line)
            print()
    return (
        0
        if all(
            agrees and sharded_agrees is not False
            for _, _, agrees, sharded_agrees in summaries
        )
        else 1
    )


def _trace_save(args: argparse.Namespace) -> int:
    from repro.core.serialize import save_trace
    from repro.errors import TraceError
    from repro.workloads.scenarios import all_scenarios

    scenarios = {s.name: s for s in all_scenarios(args.seed)}
    scenario = scenarios.get(args.scenario)
    if scenario is None:
        print(
            f"unknown scenario {args.scenario!r}; "
            f"known: {', '.join(sorted(scenarios))}",
            file=sys.stderr,
        )
        return 2
    try:
        path = save_trace(
            scenario.trace, args.path,
            segment_events=args.segment_events, backend=args.store,
        )
    except TraceError as error:
        print(f"cannot save to {args.path!r}: {error}", file=sys.stderr)
        return 2
    print(
        f"saved scenario {scenario.name!r} "
        f"({len(scenario.trace)} events) to {path}"
    )
    return 0


def _trace_replay(args: argparse.Namespace) -> int:
    import contextlib
    import tempfile

    from repro.core.serialize import load_trace
    from repro.core.store import make_store
    from repro.errors import TraceError

    with contextlib.ExitStack() as stack:
        try:
            trace = load_trace(args.path)
            if args.trace_backend != "memory":
                # Re-home the already-loaded events; no second disk read.
                import os

                from repro.core.trace import PlatformTrace

                opened = trace
                if args.trace_backend == "windowed":
                    store = make_store(
                        "windowed", window=max(len(opened), 1)
                    )
                else:  # sqlite: a scratch database exercising the indexes
                    scratch = stack.enter_context(
                        tempfile.TemporaryDirectory()
                    )
                    store = make_store(
                        "sqlite", path=os.path.join(scratch, "replay.db")
                    )
                    # Close before the directory is cleaned up.
                    stack.callback(store.close)
                trace = PlatformTrace(opened, store=store)
                opened.store.close()
        except TraceError as error:
            print(f"cannot replay {args.path!r}: {error}", file=sys.stderr)
            return 2
        return _replay_loaded(args, trace)


def _replay_loaded(args: argparse.Namespace, trace) -> int:
    from repro.core.audit import AuditEngine, StreamingAuditEngine

    batch = AuditEngine().audit(trace)
    if args.stream_audit:
        # The adapter path: a saved platform log drained through a
        # cursor into the continuous-monitoring engine.
        streaming = StreamingAuditEngine()
        cursor = trace.cursor()
        for event in cursor.drain():
            streaming.observe(event)
        report = streaming.snapshot()
        agrees = report == batch
    else:
        report = batch
        agrees = True
    if args.format == "json":
        import json

        print(json.dumps({
            "path": args.path,
            "events": report.trace_length,
            "overall_score": report.overall_score,
            "violations": report.total_violations,
            "streamed": bool(args.stream_audit),
            "matches_batch_audit": agrees,
        }, indent=2))
    else:
        mode = "streamed replay" if args.stream_audit else "batch audit"
        verdict = "matches" if agrees else "DIVERGES FROM"
        print(f"--- {args.path} ({mode}, {verdict} batch audit)")
        for line in report.summary_lines():
            print(line)
    return 0 if agrees else 1


def _opened_store(path: str):
    """Open a saved log of either on-disk format, or exit with code 2."""
    from repro.core.store import open_store
    from repro.errors import TraceError

    try:
        return open_store(path)
    except TraceError as error:
        print(f"cannot open {path!r}: {error}", file=sys.stderr)
        return None


def _trace_info(args: argparse.Namespace) -> int:
    from repro.query import trace_info

    store = _opened_store(args.path)
    if store is None:
        return 2
    info = trace_info(store)
    store.close()
    if args.format == "json":
        import json

        print(json.dumps(info, indent=2))
        return 0
    print(f"--- {args.path}")
    for key in ("backend", "events", "revision", "end_time",
                "workers", "tasks", "requesters", "contributions"):
        print(f"{key}: {info[key]}")
    return 0


def _trace_query(args: argparse.Namespace) -> int:
    from repro.core.serialize import event_to_dict
    from repro.errors import QueryError
    from repro.query import TraceQuery

    if args.entity_kind is not None and not args.entity:
        print("--entity-kind requires at least one --entity", file=sys.stderr)
        return 2
    if args.count and args.count_by_kind:
        print(
            "--count and --count-by-kind are different aggregates; "
            "pick one",
            file=sys.stderr,
        )
        return 2
    if args.round_tick is not None and (
        args.since is not None or args.until is not None
    ):
        print(
            "--round selects one tick and cannot be combined with "
            "--since/--until",
            file=sys.stderr,
        )
        return 2
    store = _opened_store(args.path)
    if store is None:
        return 2
    try:
        query = TraceQuery()
        if args.entity:
            query = query.entity(*args.entity, kind=args.entity_kind)
        if args.kind:
            query = query.of_kind(*args.kind)
        if args.round_tick is not None:
            query = query.at_round(args.round_tick)
        elif args.since is not None or args.until is not None:
            query = query.time_range(args.since, args.until)
        if args.limit is not None:
            query = query.take(args.limit)
        if args.count:
            total = query.count(store)
        elif args.count_by_kind:
            histogram = query.count_by_kind(store)
        else:
            events = query.run(store)
    except QueryError as error:
        print(f"invalid query: {error}", file=sys.stderr)
        store.close()
        return 2
    store.close()
    if args.count:
        if args.format == "json":
            import json

            print(json.dumps({"count": total}))
        else:
            print(total)
        return 0
    if args.count_by_kind:
        if args.format == "json":
            import json

            print(json.dumps({"count_by_kind": histogram}, indent=2))
        else:
            for kind, count in histogram.items():
                print(f"{kind}: {count}")
            print(f"({sum(histogram.values())} event(s))")
        return 0
    if args.format == "json":
        import json

        print(json.dumps([event_to_dict(event) for event in events], indent=2))
        return 0
    for event in events:
        data = event_to_dict(event)
        rest = {
            key: value for key, value in data.items()
            if key not in ("kind", "time")
        }
        print(f"t={event.time:<6} {event.kind:<24} {rest}")
    print(f"({len(events)} event(s))")
    return 0


def _trace_stats(args: argparse.Namespace) -> int:
    from repro.query import trace_stats

    store = _opened_store(args.path)
    if store is None:
        return 2
    stats = trace_stats(store)
    store.close()
    if args.format == "json":
        import json

        from repro.telemetry import get_registry

        # The same numbers a served instance exposes on GET /metrics:
        # computing the stats above exercised the instrumented store
        # and query layers, so the registry snapshot here shows what a
        # live scrape of this workload would.
        print(json.dumps(
            {**stats.as_dict(), "telemetry": get_registry().snapshot()},
            indent=2,
        ))
        return 0
    print(f"--- {args.path}")
    for line in stats.summary_lines():
        print(line)
    return 0


def _parse_csv_mapping(args: argparse.Namespace):
    """--csv-map/--csv-const flags -> a CSVMapping (None when absent)."""
    import json

    from repro.ingest import CSVMapping

    if not args.csv_map and not args.csv_const:
        return None
    columns = {}
    for item in args.csv_map:
        column, sep, field_name = item.partition("=")
        if not sep or not column or not field_name:
            raise ValueError(
                f"--csv-map wants COLUMN=FIELD, got {item!r}"
            )
        columns[column] = field_name
    constants = {}
    for item in args.csv_const:
        field_name, sep, value = item.partition("=")
        if not sep or not field_name:
            raise ValueError(
                f"--csv-const wants FIELD=VALUE, got {item!r}"
            )
        try:
            constants[field_name] = json.loads(value)
        except json.JSONDecodeError:
            constants[field_name] = value
    return CSVMapping(columns=columns, constants=constants)


def _resolve_cli_source(args: argparse.Namespace):
    """The ingest source for the SRC argument(s): one tailer, or a
    time-ordered :class:`~repro.ingest.MergedSource` over several."""
    from repro.ingest import MergedSource, resolve_source

    mapping = _parse_csv_mapping(args)
    sources = [
        resolve_source(path, args.source_kind, csv_mapping=mapping)
        for path in args.source
    ]
    if len(sources) == 1:
        return sources[0]
    return MergedSource(sources)


def _source_display(args: argparse.Namespace) -> str:
    return " ".join(args.source)


def _pipeline_settings(args: argparse.Namespace) -> dict | None:
    """The PipelinedIngestRunner-only options (``None`` = sequential)."""
    if not args.pipeline:
        if args.pipeline_depth is not None:
            # Neutralise-don't-kill, like the other ignored flags.
            print(
                "note: --pipeline-depth sizes the --pipeline stage "
                "queues; ignoring it without --pipeline",
                file=sys.stderr,
            )
        return None
    depth = 4 if args.pipeline_depth is None else args.pipeline_depth
    return {"pipeline_depth": depth}


def _ingest_runner_options(args: argparse.Namespace) -> dict:
    audit_jobs = args.audit_jobs
    if not args.audit and audit_jobs != 1:
        # Without --audit the flag has no effect, so it is announced
        # and neutralised rather than validated — an ignored flag must
        # not be able to kill the tail.
        print(
            "note: --audit-jobs shards the per-batch audit, which only "
            "runs with --audit; ignoring it",
            file=sys.stderr,
        )
        audit_jobs = 1
    report_formats = list(dict.fromkeys(args.report_formats))
    report_dir = args.report_dir
    if (report_formats or report_dir) and not args.audit:
        # Same neutralise-don't-kill posture as --audit-jobs above.
        print(
            "note: --report/--report-dir render the per-batch audit "
            "report, which only runs with --audit; ignoring them",
            file=sys.stderr,
        )
        report_formats = []
        report_dir = None
    if report_dir and not report_formats:
        print(
            "note: --report-dir without --report names no formats; "
            "ignoring it",
            file=sys.stderr,
        )
        report_dir = None
    if report_formats and report_dir is None:
        report_dir = f"{args.dest}".rstrip("/") + ".reports"
    return {
        "batch_events": args.batch_events,
        "audit": args.audit,
        "audit_jobs": audit_jobs,
        "stats_cadence": args.stats_every,
        "interval": args.interval,
        "report_dir": report_dir,
        "report_formats": tuple(report_formats),
        "report_source": args.dest,
    }


def _drive_ingest(args: argparse.Namespace, runner, checkpoint_path: str) -> int:
    """Run a (resumed or fresh) ingest loop and render its progress."""
    import time as _time

    text = args.format == "text"
    snapshots: list = []
    started = _time.monotonic()
    metrics_writer = None
    if getattr(args, "metrics_out", None):
        from repro.telemetry import MetricsSnapshotWriter

        metrics_writer = MetricsSnapshotWriter(
            args.metrics_out, every=max(1, args.metrics_every)
        )

    def on_batch(batch) -> None:
        if metrics_writer is not None:
            metrics_writer.observe_batch()
        if batch.stats is not None:
            # Collected in both output modes: --format json emits the
            # cadenced snapshots (incl. federated per-source counters)
            # in the summary document instead of printing them live.
            # elapsed_s (monotonic, from drive start) makes the series
            # plottable without knowing the cadence.
            snapshots.append({
                **batch.stats.as_dict(),
                "elapsed_s": round(_time.monotonic() - started, 6),
            })
        if not text:
            return
        line = (
            f"batch {batch.index}: +{batch.events} event(s) "
            f"-> revision {batch.store_revision}"
        )
        if batch.report is not None:
            line += (
                f", {batch.report.total_violations} violation(s) "
                f"({len(batch.new_violations)} new)"
            )
        print(line, flush=True)
        for violation in batch.new_violations:
            print(f"  new: {violation.describe()}")
        if batch.stats is not None:
            for stat_line in batch.stats.summary_lines():
                print(f"  {stat_line}")

    interrupted = False
    try:
        summary = runner.run(
            max_batches=args.max_batches,
            idle_limit=args.until_idle,
            on_batch=on_batch,
        )
    except KeyboardInterrupt:
        interrupted = True
        summary = None
    finally:
        runner.close()  # audit worker pools, if any
        close = getattr(runner.trace.store, "close", None)
        if callable(close):
            close()
        runner.source.close()
        if metrics_writer is not None:
            metrics_writer.close()
            print(
                f"telemetry snapshots: {metrics_writer.path} "
                f"({metrics_writer.written} line(s))",
                file=sys.stderr,
            )
    if interrupted:
        print(
            f"interrupted; checkpoint at {checkpoint_path!r} — continue "
            f"with: python -m repro trace resume "
            f"{_source_display(args)} {args.dest}",
            file=sys.stderr,
        )
        return 130
    pipelined = bool(getattr(args, "pipeline", False))
    if args.format == "json":
        import json

        print(json.dumps({
            "source": (
                args.source[0] if len(args.source) == 1 else args.source
            ),
            "dest": args.dest,
            "checkpoint": checkpoint_path,
            "report_dir": getattr(runner, "report_dir", None),
            "batches": summary.batches,
            "events": summary.events,
            "store_revision": summary.store_revision,
            "stopped_on": summary.stopped_on,
            "pipelined": pipelined,
            "max_audit_lag_batches": summary.max_audit_lag_batches,
            "max_audit_lag_events": summary.max_audit_lag_events,
            "violations": (
                None if summary.report is None
                else summary.report.total_violations
            ),
            "overall_score": (
                None if summary.report is None
                else summary.report.overall_score
            ),
            **({"stats_snapshots": snapshots} if snapshots else {}),
        }, indent=2))
        return 0
    print(
        f"ingested {summary.events} event(s) in {summary.batches} "
        f"batch(es) -> revision {summary.store_revision} "
        f"(stopped on {summary.stopped_on}); checkpoint: {checkpoint_path}"
    )
    if pipelined:
        print(
            f"peak audit lag: {summary.max_audit_lag_batches} batch(es) "
            f"({summary.max_audit_lag_events} event(s)) behind the "
            "append stage"
        )
    if summary.report is not None:
        for line in summary.report.summary_lines():
            print(line)
    report_dir = getattr(runner, "report_dir", None)
    if report_dir is not None and summary.report is not None:
        print(f"rolling reports: {report_dir}")
    return 0


def _trace_tail(args: argparse.Namespace) -> int:
    import os

    from repro.core.trace import make_disk_store
    from repro.errors import IngestError, TraceError
    from repro.ingest import (
        IngestRunner,
        PipelinedIngestRunner,
        checkpoint_path_for,
    )

    checkpoint_path = args.checkpoint or checkpoint_path_for(args.dest)
    if os.path.exists(checkpoint_path):
        print(
            f"checkpoint {checkpoint_path!r} already exists; continue "
            f"with 'trace resume {_source_display(args)} {args.dest}' "
            "or delete it to start over",
            file=sys.stderr,
        )
        return 2
    options = _ingest_runner_options(args)
    pipeline = _pipeline_settings(args)
    try:
        from repro.ingest import validate_pipeline_options
        from repro.ingest.runner import validate_runner_options

        # Validate flags before the destination exists, so a bad flag
        # does not leave a stray empty store blocking the retry.
        validate_runner_options(
            options["batch_events"], options["stats_cadence"],
            options["interval"], options["audit_jobs"],
        )
        if pipeline is not None:
            validate_pipeline_options(pipeline["pipeline_depth"])
        source = _resolve_cli_source(args)
        store = make_disk_store(args.dest, args.store)
    except (TraceError, ValueError) as error:
        print(
            f"cannot tail {_source_display(args)!r}: {error}",
            file=sys.stderr,
        )
        return 2
    try:
        if pipeline is None:
            runner = IngestRunner(
                source, store, checkpoint_path=checkpoint_path, **options
            )
        else:
            runner = PipelinedIngestRunner(
                source, store, checkpoint_path=checkpoint_path,
                **pipeline, **options,
            )
        return _drive_ingest(args, runner, checkpoint_path)
    except (TraceError, IngestError) as error:
        print(f"ingest failed: {error}", file=sys.stderr)
        return 2


def _trace_resume(args: argparse.Namespace) -> int:
    from repro.core.store import open_store
    from repro.errors import IngestError, TraceError
    from repro.ingest import (
        IngestRunner,
        PipelinedIngestRunner,
        checkpoint_path_for,
    )

    checkpoint_path = args.checkpoint or checkpoint_path_for(args.dest)
    if args.verify:
        # The PR 6 read-only sweep, run *before* the store is even
        # opened for writing: resuming on top of silent corruption
        # would checkpoint right past it.
        from repro.forensics import verify_store

        try:
            result = verify_store(args.dest)
        except TraceError as error:
            print(f"cannot verify {args.dest!r}: {error}", file=sys.stderr)
            return 2
        verify_out = sys.stdout if args.format == "text" else sys.stderr
        for line in result.summary_lines():
            print(line, file=verify_out)
        if not result.ok:
            print(
                f"destination {args.dest!r} is damaged; refusing to "
                "resume — salvage it first (trace repair)",
                file=sys.stderr,
            )
            return 1
    pipeline = _pipeline_settings(args)
    try:
        source = _resolve_cli_source(args)
        store = open_store(args.dest)
    except (TraceError, ValueError) as error:
        print(f"cannot resume {args.dest!r}: {error}", file=sys.stderr)
        return 2
    try:
        if pipeline is None:
            runner = IngestRunner.resume(
                source, store, checkpoint_path,
                **_ingest_runner_options(args),
            )
        else:
            runner = PipelinedIngestRunner.resume(
                source, store, checkpoint_path,
                **pipeline, **_ingest_runner_options(args),
            )
        return _drive_ingest(args, runner, checkpoint_path)
    except (TraceError, IngestError) as error:
        close = getattr(store, "close", None)
        if callable(close):
            close()
        print(f"cannot resume {args.dest!r}: {error}", file=sys.stderr)
        return 2


def _trace_report(args: argparse.Namespace) -> int:
    from repro.errors import ReportError, TraceError
    from repro.report import (
        audit_document,
        make_exporter,
        manifest_document,
        verify_document,
    )

    if args.what == "verify":
        from repro.forensics import verify_store

        try:
            document = verify_document(verify_store(args.path))
        except TraceError as error:
            print(f"cannot verify {args.path!r}: {error}", file=sys.stderr)
            return 2
    elif args.what == "repair":
        from repro.forensics import read_manifest

        try:
            document = manifest_document(read_manifest(args.path))
        except TraceError as error:
            print(
                f"cannot load loss manifest {args.path!r}: {error}",
                file=sys.stderr,
            )
            return 2
    else:
        from repro.core.audit import AuditEngine

        store = _opened_store(args.path)
        if store is None:
            return 2
        try:
            report = AuditEngine().audit(store)
            document = audit_document(report, store, source=args.path)
        finally:
            store.close()
    exporter = make_exporter(args.format)
    if args.out is None:
        print(exporter.render(document), end="")
        return 0
    try:
        written = exporter.export(document, args.out)
    except ReportError as error:
        print(f"cannot export report: {error}", file=sys.stderr)
        return 2
    print(
        f"wrote {args.what} report ({exporter.format_name}, "
        f"{len(document.records)} record(s)) to {written}"
    )
    return 0


def _trace_verify(args: argparse.Namespace) -> int:
    from repro.errors import TraceError
    from repro.forensics import verify_store

    try:
        result = verify_store(args.path)
    except TraceError as error:
        print(f"cannot verify {args.path!r}: {error}", file=sys.stderr)
        return 2
    if args.format == "json":
        import json

        print(json.dumps(result.as_dict(), indent=2))
    else:
        for line in result.summary_lines():
            print(line)
    return 0 if result.ok else 1


def _trace_repair(args: argparse.Namespace) -> int:
    from repro.errors import TraceError
    from repro.forensics import repair_store

    try:
        result = repair_store(
            args.source, args.dest,
            dest_backend=args.store,
            manifest_path=args.manifest,
        )
    except TraceError as error:
        print(f"cannot repair {args.source!r}: {error}", file=sys.stderr)
        return 2
    if args.format == "json":
        import json

        print(json.dumps({
            "manifest": result.manifest.as_dict(),
            "manifest_path": result.manifest_path,
            "dest_verify": result.verify.as_dict(),
        }, indent=2))
    else:
        for line in result.manifest.summary_lines():
            print(line)
        print(f"loss manifest: {result.manifest_path}")
        for line in result.verify.summary_lines():
            print(line)
    # 0: sound salvage (possibly lossy — the manifest says exactly what
    # was lost); 1: the salvaged store itself fails verification.
    return 0 if result.ok else 1


def _trace_serve(args: argparse.Namespace) -> int:
    from repro.errors import ServiceError, TraceError
    from repro.service import AuditService

    try:
        service = AuditService(
            args.data_dir,
            host=args.host,
            port=args.port,
            default_backend=args.store,
            default_audit_jobs=args.audit_jobs,
        )
    except (ServiceError, TraceError, OSError, ValueError,
            OverflowError) as error:
        # OverflowError is what ``socket.bind`` raises for an
        # out-of-range port — a bad argument, not a crash.
        print(f"cannot serve: {error}", file=sys.stderr)
        return 2
    where = args.data_dir if args.data_dir else "memory only"
    print(f"audit service listening on {service.url} ({where}, "
          f"default backend {args.store})")
    print(f"{len(service.tenants.names())} tenant(s) hosted; "
          "Ctrl-C checkpoints and closes every tenant")
    # Backgrounded non-interactive shells (CI steps, `cmd &` in
    # scripts) start children with SIGINT ignored, and Python keeps the
    # inherited disposition — re-arm it, and give SIGTERM the same
    # checkpoint-then-exit path a daemon supervisor expects.
    import signal

    def _interrupt(signum, frame):
        raise KeyboardInterrupt

    signal.signal(signal.SIGINT, _interrupt)
    signal.signal(signal.SIGTERM, _interrupt)
    try:
        service.serve_forever()
    except KeyboardInterrupt:
        summary = service.close()
        print(
            f"\nshut down: {summary['tenants']} tenant(s) closed, "
            f"{summary['checkpointed']} checkpointed"
        )
        return 130
    service.close()
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "trace":
        args = build_trace_parser().parse_args(argv[1:])
        handlers = {
            "save": _trace_save,
            "replay": _trace_replay,
            "info": _trace_info,
            "query": _trace_query,
            "stats": _trace_stats,
            "tail": _trace_tail,
            "resume": _trace_resume,
            "report": _trace_report,
            "verify": _trace_verify,
            "repair": _trace_repair,
            "serve": _trace_serve,
        }
        return handlers[args.command](args)
    args = build_parser().parse_args(argv)
    if args.list_experiments:
        for experiment_id in sorted(EXPERIMENTS):
            print(f"{experiment_id}: {_DESCRIPTIONS.get(experiment_id, '')}")
        return 0
    if args.jobs < 1:
        print(f"--jobs must be >= 1, got {args.jobs}", file=sys.stderr)
        return 2
    if args.stream_audit:
        if args.experiments:
            print(
                "note: --stream-audit replays the labelled scenarios; "
                f"ignoring experiment ids {', '.join(args.experiments)}",
                file=sys.stderr,
            )
        if args.audit_jobs < 0:
            print(
                f"--audit-jobs must be >= 0, got {args.audit_jobs}",
                file=sys.stderr,
            )
            return 2
        return _stream_audit(
            args.seed or 0, args.format, args.trace_backend,
            args.audit_jobs,
        )
    if args.audit_jobs:
        print(
            "note: --audit-jobs applies to --stream-audit (and to "
            "trace tail/resume); ignoring it for experiment runs",
            file=sys.stderr,
        )
    wanted = [e.upper() for e in args.experiments] or sorted(EXPERIMENTS)
    unknown = [e for e in wanted if e not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}", file=sys.stderr)
        print(f"known: {', '.join(sorted(EXPERIMENTS))}", file=sys.stderr)
        return 2
    kwargs = {} if args.seed is None else {"seed": args.seed}
    results = run_many(wanted, jobs=args.jobs, backend=args.backend, **kwargs)
    if args.format == "json":
        import json

        print(json.dumps([_result_to_json(r) for r in results], indent=2))
        return 0
    for result in results:
        print(result.render())
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
