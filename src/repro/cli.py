"""Command-line entry point: run the paper's experiments.

Usage::

    python -m repro                # run everything at default scale
    python -m repro E2 E4          # run selected experiments
    python -m repro E1 --seed 42   # with a different seed
    python -m repro --jobs 4      # run experiments 4 at a time
    python -m repro --list         # show the experiment index
    python -m repro --stream-audit # live-audit the labelled scenarios

``--jobs N`` fans the selected experiments out over N workers; output
order (and content) is independent of N.  ``--stream-audit`` replays
every labelled scenario from :mod:`repro.workloads.scenarios` through
the :class:`~repro.core.audit.StreamingAuditEngine` event by event —
the continuous-monitoring mode — and prints each scenario's final
snapshot, cross-checked against a batch audit of the same trace.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.experiments.runner import EXPERIMENTS, run_many

_DESCRIPTIONS: dict[str, str] = {
    "E1": "discriminatory power of task-assignment algorithms",
    "E2": "worker retention vs transparency level",
    "E3": "contribution quality vs compensation fairness",
    "E4": "per-axiom fairness-check benchmark suite",
    "E5": "malicious-worker detection across spam regimes",
    "E6": "transparency-DSL expressiveness and comparison",
    "E7": "cost of fairness: utility vs parity frontier",
    "E8": "ablation: similarity-threshold sensitivity of Axiom 1",
    "E9": "ablation: redundancy and aggregation (budget-optimal premise)",
    "E10": "statistical power of the Axiom 1 checker vs bias intensity",
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Reproduction experiments for 'Fairness and Transparency in "
            "Crowdsourcing' (EDBT 2017)."
        ),
    )
    parser.add_argument(
        "experiments", nargs="*", metavar="EXPERIMENT",
        help="experiment ids to run (default: all of E1..E7)",
    )
    parser.add_argument(
        "--seed", type=int, default=None,
        help="override the experiment seed",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (json emits one object per experiment)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="run up to N experiments concurrently (default 1; "
             "output is identical for any N)",
    )
    parser.add_argument(
        "--stream-audit", action="store_true", dest="stream_audit",
        help="replay the labelled scenarios through the streaming audit "
             "engine and print each final snapshot",
    )
    parser.add_argument(
        "--list", action="store_true", dest="list_experiments",
        help="list experiments and exit",
    )
    return parser


def _result_to_json(result) -> dict:
    return {
        "experiment_id": result.experiment_id,
        "title": result.title,
        "tables": [
            {
                "title": table.title,
                "columns": list(table.columns),
                "rows": table.rows_as_dicts(),
            }
            for table in result.tables
        ],
    }


def _stream_audit(seed: int, output_format: str) -> int:
    """Replay every labelled scenario through the streaming engine."""
    from repro.core.audit import AuditEngine, StreamingAuditEngine
    from repro.workloads.scenarios import all_scenarios

    batch_engine = AuditEngine()
    summaries = []
    for scenario in all_scenarios(seed):
        streaming = StreamingAuditEngine()
        streaming.observe_all(scenario.trace)
        snapshot = streaming.snapshot()
        agrees = snapshot == batch_engine.audit(scenario.trace)
        summaries.append((scenario, snapshot, agrees))
    if output_format == "json":
        import json

        print(json.dumps([
            {
                "scenario": scenario.name,
                "events": snapshot.trace_length,
                "overall_score": snapshot.overall_score,
                "violations": snapshot.total_violations,
                "matches_batch_audit": agrees,
            }
            for scenario, snapshot, agrees in summaries
        ], indent=2))
    else:
        for scenario, snapshot, agrees in summaries:
            print(f"--- {scenario.name} "
                  f"({'matches' if agrees else 'DIVERGES FROM'} batch audit)")
            for line in snapshot.summary_lines():
                print(line)
            print()
    return 0 if all(agrees for _, _, agrees in summaries) else 1


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_experiments:
        for experiment_id in sorted(EXPERIMENTS):
            print(f"{experiment_id}: {_DESCRIPTIONS.get(experiment_id, '')}")
        return 0
    if args.jobs < 1:
        print(f"--jobs must be >= 1, got {args.jobs}", file=sys.stderr)
        return 2
    if args.stream_audit:
        if args.experiments:
            print(
                "note: --stream-audit replays the labelled scenarios; "
                f"ignoring experiment ids {', '.join(args.experiments)}",
                file=sys.stderr,
            )
        return _stream_audit(args.seed or 0, args.format)
    wanted = [e.upper() for e in args.experiments] or sorted(EXPERIMENTS)
    unknown = [e for e in wanted if e not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}", file=sys.stderr)
        print(f"known: {', '.join(sorted(EXPERIMENTS))}", file=sys.stderr)
        return 2
    kwargs = {} if args.seed is None else {"seed": args.seed}
    results = run_many(wanted, jobs=args.jobs, **kwargs)
    if args.format == "json":
        import json

        print(json.dumps([_result_to_json(r) for r in results], indent=2))
        return 0
    for result in results:
        print(result.render())
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
