"""The system's metric vocabulary: one helper per instrumentation site.

Every hot layer records through these helpers rather than naming
metrics inline, so the full set of families lives in one file — the
place to look when reading a ``/metrics`` scrape — and the naming
conventions (``_total`` counters, ``_seconds`` histograms; labels drawn
from ``tenant``/``route``/``stage``/``shard``/``backend``/``engine``)
are enforced in exactly one place, pinned by the lint test.

Each helper reads the process default registry per call (registries are
swappable in tests/benches) and short-circuits on ``registry.enabled``
— callers guard their own clock reads the same way::

    registry = get_registry()
    started = time.perf_counter() if registry.enabled else 0.0
    ...work...
    record_store_append(backend, n, time.perf_counter() - started)

Granularity is per *batch*, never per event: the telemetry bench gates
the instrumented ingest+audit path within 5% of the null-registry path,
and per-event recording would not clear that bar.
"""

from __future__ import annotations

from .registry import MetricsRegistry, get_registry

# ----------------------------------------------------------------------
# Store layer


def record_store_append(
    backend: str, events: int, seconds: float,
    registry: MetricsRegistry | None = None,
) -> None:
    registry = registry if registry is not None else get_registry()
    if not registry.enabled:
        return
    registry.counter(
        "repro_store_append_batches_total",
        help="Batches appended to a trace store.", backend=backend,
    ).inc()
    registry.counter(
        "repro_store_append_events_total",
        help="Events appended to a trace store.", backend=backend,
    ).inc(events)
    registry.histogram(
        "repro_store_append_seconds",
        help="Latency of trace-store batch appends.", backend=backend,
    ).observe(seconds)


def record_store_commit(
    backend: str, seconds: float,
    registry: MetricsRegistry | None = None,
) -> None:
    registry = registry if registry is not None else get_registry()
    if not registry.enabled:
        return
    registry.counter(
        "repro_store_commits_total",
        help="Durable commits (save/flush) of a trace store.",
        backend=backend,
    ).inc()
    registry.histogram(
        "repro_store_commit_seconds",
        help="Latency of trace-store commits.", backend=backend,
    ).observe(seconds)


def record_store_query(
    backend: str, op: str, seconds: float,
    registry: MetricsRegistry | None = None,
) -> None:
    registry = registry if registry is not None else get_registry()
    if not registry.enabled:
        return
    registry.counter(
        "repro_store_queries_total",
        help="TraceQuery executions against a store.",
        backend=backend, op=op,
    ).inc()
    registry.histogram(
        "repro_store_query_seconds",
        help="Latency of TraceQuery executions.", backend=backend, op=op,
    ).observe(seconds)


# ----------------------------------------------------------------------
# Audit layer


def record_audit(
    engine: str, events: int, violations: int, seconds: float,
    registry: MetricsRegistry | None = None,
) -> None:
    registry = registry if registry is not None else get_registry()
    if not registry.enabled:
        return
    registry.counter(
        "repro_audit_runs_total",
        help="Audit passes executed.", engine=engine,
    ).inc()
    registry.counter(
        "repro_audit_events_total",
        help="Events examined by audit passes (delta size for "
             "delta/sharded engines, full trace for batch).",
        engine=engine,
    ).inc(events)
    registry.counter(
        "repro_audit_violations_total",
        help="Violations emitted by audit passes.", engine=engine,
    ).inc(violations)
    registry.histogram(
        "repro_audit_seconds",
        help="Latency of audit passes.", engine=engine,
    ).observe(seconds)


def record_shard_judge(
    shard: int | str, seconds: float,
    registry: MetricsRegistry | None = None,
) -> None:
    registry = registry if registry is not None else get_registry()
    if not registry.enabled:
        return
    registry.histogram(
        "repro_audit_shard_judge_seconds",
        help="Per-shard judge time inside sharded audits.",
        shard=shard,
    ).observe(seconds)


# ----------------------------------------------------------------------
# Ingest layer


def record_ingest_stage(
    stage: str, events: int, seconds: float,
    registry: MetricsRegistry | None = None,
) -> None:
    registry = registry if registry is not None else get_registry()
    if not registry.enabled:
        return
    registry.counter(
        "repro_ingest_stage_batches_total",
        help="Batches processed per ingest stage.", stage=stage,
    ).inc()
    registry.counter(
        "repro_ingest_stage_events_total",
        help="Events processed per ingest stage.", stage=stage,
    ).inc(events)
    registry.histogram(
        "repro_ingest_stage_seconds",
        help="Time spent per ingest stage per batch.", stage=stage,
    ).observe(seconds)


def set_ingest_queue_depth(
    queue: str, depth: int,
    registry: MetricsRegistry | None = None,
) -> None:
    registry = registry if registry is not None else get_registry()
    if not registry.enabled:
        return
    registry.gauge(
        "repro_ingest_queue_depth",
        help="Occupancy of the pipelined ingest hand-off queues.",
        queue=queue,
    ).set(depth)


def set_audit_lag(
    batches: int, events: int,
    registry: MetricsRegistry | None = None,
) -> None:
    registry = registry if registry is not None else get_registry()
    if not registry.enabled:
        return
    registry.gauge(
        "repro_ingest_audit_lag_batches",
        help="Appended-but-unaudited batches (the audit-lag watermark).",
    ).set(batches)
    registry.gauge(
        "repro_ingest_audit_lag_events",
        help="Appended-but-unaudited events (the audit-lag watermark).",
    ).set(events)


# ----------------------------------------------------------------------
# Service layer


def record_service_request(
    route: str, method: str, tenant: str, status: int, seconds: float,
    registry: MetricsRegistry | None = None,
) -> None:
    registry = registry if registry is not None else get_registry()
    if not registry.enabled:
        return
    registry.counter(
        "repro_service_requests_total",
        help="HTTP requests served, by route pattern and tenant.",
        route=route, method=method, tenant=tenant, status=status,
    ).inc()
    registry.histogram(
        "repro_service_request_seconds",
        help="HTTP request latency, by route pattern.",
        route=route, method=method,
    ).observe(seconds)


def record_service_error(
    error_type: str, status: int,
    registry: MetricsRegistry | None = None,
) -> None:
    registry = registry if registry is not None else get_registry()
    if not registry.enabled:
        return
    registry.counter(
        "repro_service_errors_total",
        help="Error envelopes returned by the service, by error type.",
        type=error_type, status=status,
    ).inc()


def service_inflight_gauge(registry: MetricsRegistry | None = None):
    registry = registry if registry is not None else get_registry()
    return registry.gauge(
        "repro_service_inflight_requests",
        help="Requests currently being handled.",
    )
