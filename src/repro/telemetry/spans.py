"""Timing spans: ``with span("audit_run"): ...`` → a duration histogram.

A span records wall time (``time.perf_counter``) into a histogram named
``repro_span_<name>_seconds`` in the process default registry.  Spans
nest: each thread keeps a stack of active span names, and a child span
carries its parent's name as the ``parent`` label, which is enough for
the coarse request→stage attribution the service and ingest layers
need (e.g. ``repro_span_audit_seconds{parent="request"}``) without a
full tracing system.

``span`` doubles as a decorator::

    @span("judge")
    def judge(self): ...

When the default registry is the null registry the context manager
skips the clock reads entirely — the zero-cost-when-disabled contract
the telemetry bench holds the whole subsystem to.
"""

from __future__ import annotations

import functools
import threading
import time
from typing import Any, Callable, TypeVar

from .registry import get_registry, validate_metric_name

F = TypeVar("F", bound=Callable[..., Any])

_local = threading.local()


def _stack() -> list[str]:
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = []
        _local.stack = stack
    return stack


def current_span() -> str:
    """Name of the innermost active span on this thread ('' if none)."""
    stack = _stack()
    return stack[-1] if stack else ""


class span:
    """Context manager / decorator timing a named operation.

    The histogram is ``repro_span_<name>_seconds{parent=<outer span>}``
    so nested spans attribute their time to the enclosing operation.
    """

    __slots__ = ("name", "_start", "_parent", "_enabled")

    def __init__(self, name: str) -> None:
        validate_metric_name(name)
        self.name = name
        self._start = 0.0
        self._parent = ""
        self._enabled = False

    def __enter__(self) -> "span":
        registry = get_registry()
        self._enabled = registry.enabled
        if not self._enabled:
            return self
        stack = _stack()
        self._parent = stack[-1] if stack else ""
        stack.append(self.name)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        if not self._enabled:
            return
        elapsed = time.perf_counter() - self._start
        _stack().pop()
        get_registry().histogram(
            f"repro_span_{self.name}_seconds",
            help=f"Duration of {self.name} spans.",
            parent=self._parent,
        ).observe(elapsed)

    def __call__(self, func: F) -> F:
        @functools.wraps(func)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            with span(self.name):
                return func(*args, **kwargs)

        return wrapper  # type: ignore[return-value]
