"""Periodic JSONL metrics snapshots for offline trajectory analysis.

``trace tail --metrics-out metrics.jsonl --metrics-every 5`` appends
one JSON line every 5 ingested batches.  Line schema::

    {"elapsed_s": <monotonic seconds since the writer was opened>,
     "batch": <ingest batch ordinal at snapshot time>,
     "metrics": <MetricsRegistry.snapshot() document>}

``elapsed_s`` is monotonic (``time.monotonic``) so a snapshot series is
plottable without guessing the cadence; ``batch`` ties each snapshot to
the ingest progress axis.  The file is line-buffered append, so a
crashed run keeps every snapshot written before the crash — the same
durability idiom as the JSONL trace segments.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any

from .registry import MetricsRegistry, get_registry


class MetricsSnapshotWriter:
    """Appends registry snapshots to a JSONL file on a batch cadence."""

    def __init__(
        self,
        path: str | Path,
        every: int = 1,
        registry: MetricsRegistry | None = None,
    ) -> None:
        if every < 1:
            raise ValueError(f"snapshot cadence must be >= 1, got {every}")
        self.path = Path(path)
        self.every = every
        self._registry = registry
        self._handle = self.path.open("a", encoding="utf-8")
        self._start = time.monotonic()
        self._batches = 0
        self.written = 0

    def _snapshot(self, batch: int) -> None:
        registry = (
            self._registry if self._registry is not None else get_registry()
        )
        line = json.dumps(
            {
                "elapsed_s": round(time.monotonic() - self._start, 6),
                "batch": batch,
                "metrics": registry.snapshot(),
            },
            sort_keys=True,
        )
        self._handle.write(line + "\n")
        self._handle.flush()
        self.written += 1

    def observe_batch(self) -> bool:
        """Called once per ingest batch; snapshots on the cadence.

        Returns True when a snapshot line was written.
        """
        self._batches += 1
        if self._batches % self.every:
            return False
        self._snapshot(self._batches)
        return True

    def close(self) -> None:
        """Write one final snapshot (if any batch ran since the last
        one) and close the file."""
        if self._handle.closed:
            return
        if self._batches % self.every:
            self._snapshot(self._batches)
        self._handle.close()

    def __enter__(self) -> "MetricsSnapshotWriter":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def read_snapshots(path: str | Path) -> list[dict[str, Any]]:
    """Parse a snapshot JSONL file back into a list of documents."""
    lines = Path(path).read_text(encoding="utf-8").splitlines()
    return [json.loads(line) for line in lines if line.strip()]
