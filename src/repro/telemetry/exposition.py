"""Rendering a :class:`MetricsRegistry` as Prometheus text exposition.

The output follows the version 0.0.4 text format (the one every
Prometheus scraper speaks): ``# HELP`` / ``# TYPE`` headers per family,
one line per sample, histogram children expanded into cumulative
``_bucket{le=...}`` series plus ``_sum`` and ``_count``.  Label values
are escaped per the spec (backslash, double quote, newline).

:func:`lint_registry` is the test-time self-check the issue asks for:
every registered name must match the Prometheus charset, counters must
end in ``_total``, and duration histograms in ``_seconds`` — so a bad
metric name fails a unit test instead of silently producing output a
scraper drops.
"""

from __future__ import annotations

import json
from typing import Any

from .registry import (
    METRIC_NAME_RE,
    Histogram,
    MetricsRegistry,
    get_registry,
)

#: The content type scrapers expect from a /metrics endpoint.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", r"\\").replace("\n", r"\n").replace('"', r'\"')
    )


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    as_int = int(value)
    return str(as_int) if value == as_int else repr(value)


def _labels_text(label_names: tuple[str, ...], values: tuple[str, ...],
                 extra: "list[tuple[str, str]] | None" = None) -> str:
    pairs = [
        f'{name}="{_escape_label_value(value)}"'
        for name, value in zip(label_names, values)
    ]
    for name, value in extra or []:
        pairs.append(f'{name}="{_escape_label_value(value)}"')
    return "{" + ",".join(pairs) + "}" if pairs else ""


def render_prometheus(registry: MetricsRegistry | None = None) -> str:
    """The whole registry in Prometheus text exposition format."""
    registry = registry if registry is not None else get_registry()
    lines: list[str] = []
    for family in registry.families():
        help_text = family.help or family.name
        lines.append(f"# HELP {family.name} {help_text}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for values, instrument in family.items():
            if isinstance(instrument, Histogram):
                cumulative = instrument.cumulative_counts()
                bounds = [*instrument.buckets, float("inf")]
                for bound, count in zip(bounds, cumulative):
                    labels = _labels_text(
                        family.label_names, values,
                        [("le", _format_value(bound))],
                    )
                    lines.append(f"{family.name}_bucket{labels} {count}")
                base = _labels_text(family.label_names, values)
                lines.append(
                    f"{family.name}_sum{base} "
                    f"{_format_value(instrument.sum)}"
                )
                lines.append(f"{family.name}_count{base} {instrument.count}")
            else:
                labels = _labels_text(family.label_names, values)
                lines.append(
                    f"{family.name}{labels} "
                    f"{_format_value(instrument.value)}"
                )
    return "\n".join(lines) + "\n" if lines else ""


def render_json(registry: MetricsRegistry | None = None) -> str:
    """The registry snapshot as a JSON document (``?format=json``)."""
    registry = registry if registry is not None else get_registry()
    return json.dumps(registry.snapshot(), sort_keys=True)


def lint_registry(registry: MetricsRegistry | None = None) -> list[str]:
    """Naming-convention violations in the registry (empty = clean).

    Rules:

    * every metric name matches ``[a-zA-Z_:][a-zA-Z0-9_:]*``;
    * counters end in ``_total``;
    * histograms end in ``_seconds`` (every histogram here is a
      duration; a future byte-size histogram would extend this rule);
    * gauges end in neither ``_total`` nor reserved histogram suffixes
      (``_bucket``, ``_sum``, ``_count``), which scrapers special-case.
    """
    registry = registry if registry is not None else get_registry()
    problems: list[str] = []
    for family in registry.families():
        name = family.name
        if not METRIC_NAME_RE.match(name):
            problems.append(
                f"{name}: invalid charset (must match "
                "[a-zA-Z_:][a-zA-Z0-9_:]*)"
            )
        if family.kind == "counter" and not name.endswith("_total"):
            problems.append(f"{name}: counter names must end in _total")
        if family.kind == "histogram" and not name.endswith("_seconds"):
            problems.append(
                f"{name}: duration histogram names must end in _seconds"
            )
        if family.kind == "gauge":
            for suffix in ("_total", "_bucket", "_sum", "_count"):
                if name.endswith(suffix):
                    problems.append(
                        f"{name}: gauge names must not end in {suffix}"
                    )
        if family.kind == "histogram":
            for suffix in ("_total", "_bucket", "_count"):
                if name.endswith(suffix):
                    problems.append(
                        f"{name}: histogram names must not end in {suffix}"
                    )
    return problems
