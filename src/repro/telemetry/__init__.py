"""Stdlib-only telemetry: metrics registry, spans, exposition, snapshots.

Quick tour::

    from repro.telemetry import get_registry, span, render_prometheus

    get_registry().counter("repro_widgets_total", tenant="acme").inc()
    with span("rebuild"):
        ...
    print(render_prometheus())

See :mod:`repro.telemetry.instruments` for the system's full metric
vocabulary and :mod:`repro.telemetry.registry` for the threading and
zero-cost-when-disabled contracts.
"""

from .exposition import (
    PROMETHEUS_CONTENT_TYPE,
    lint_registry,
    render_json,
    render_prometheus,
)
from .registry import (
    DEFAULT_LATENCY_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    TelemetryError,
    get_registry,
    set_registry,
    using_registry,
)
from .snapshots import MetricsSnapshotWriter, read_snapshots
from .spans import current_span, span

__all__ = [
    "PROMETHEUS_CONTENT_TYPE",
    "DEFAULT_LATENCY_BUCKETS",
    "NULL_REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsSnapshotWriter",
    "NullRegistry",
    "TelemetryError",
    "current_span",
    "get_registry",
    "lint_registry",
    "read_snapshots",
    "render_json",
    "render_prometheus",
    "set_registry",
    "span",
    "using_registry",
]
