"""The metrics core: one registry of counters, gauges, and histograms.

Every layer of the system — stores, audit engines, ingest stages, the
HTTP service — records into one process-wide :class:`MetricsRegistry`
(see :func:`get_registry`).  The model is deliberately the Prometheus
one, because that is what the ``GET /metrics`` endpoint renders:

* a **family** is one metric name + kind + help string + label *names*
  (``repro_service_requests_total{route, method, tenant, status}``);
* a **child** is one concrete label-value combination of a family,
  holding the actual numbers;
* :class:`Counter` only goes up, :class:`Gauge` goes anywhere,
  :class:`Histogram` buckets observations into fixed log-scale latency
  buckets and keeps a running sum + count.

Everything is thread-safe: the registry guards family/child creation
with one lock, and each instrument guards its own numbers with its own
lock, so ingest stage threads, shard judges, and HTTP handler threads
can all record concurrently (pinned by the hammer test in
``tests/telemetry/test_concurrent.py``).

Instrumentation must be **zero-cost when disabled**: swap in the
:data:`NULL_REGISTRY` (``set_registry(NULL_REGISTRY)``) and every
``counter()/gauge()/histogram()`` call returns a shared no-op
instrument; hot paths can additionally branch on
:attr:`MetricsRegistry.enabled` to skip clock reads entirely.  The
overhead of the *enabled* default registry is itself gated within 5% of
the null path by ``benchmarks/test_bench_telemetry.py``.

Metric names are validated at registration time against the Prometheus
charset (``[a-zA-Z_:][a-zA-Z0-9_:]*``); the suffix *conventions*
(counters end ``_total``, duration histograms end ``_seconds``) are
enforced by the test-time lint in :func:`repro.telemetry.exposition.
lint_registry`, so exposition never silently produces unscrapable
output.
"""

from __future__ import annotations

import bisect
import re
import threading
from contextlib import contextmanager
from typing import Any, Iterator, Mapping, Sequence

#: Prometheus metric-name charset (label names drop the colon).
METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Fixed log-scale latency buckets (seconds): a 1-2.5-5 ladder from
#: 100µs to 30s.  Fixed — never data-dependent — so snapshots from
#: different processes and different runs are always mergeable and a
#: JSONL trajectory plots without bucket realignment.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.0001, 0.00025, 0.0005,
    0.001, 0.0025, 0.005,
    0.01, 0.025, 0.05,
    0.1, 0.25, 0.5,
    1.0, 2.5, 5.0,
    10.0, 30.0,
)


class TelemetryError(ValueError):
    """A metric was registered inconsistently (bad name, kind clash,
    label-set clash).  Raised at registration time — instrumentation
    bugs must fail the first call, not corrupt the exposition."""


def validate_metric_name(name: str) -> str:
    if not METRIC_NAME_RE.match(name):
        raise TelemetryError(
            f"invalid metric name {name!r}: must match "
            "[a-zA-Z_:][a-zA-Z0-9_:]*"
        )
    return name


def validate_label_name(name: str) -> str:
    if not LABEL_NAME_RE.match(name) or name.startswith("__"):
        raise TelemetryError(
            f"invalid label name {name!r}: must match "
            "[a-zA-Z_][a-zA-Z0-9_]* and not start with '__'"
        )
    return name


class Counter:
    """A monotonically increasing count (requests, events, errors)."""

    kind = "counter"
    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise TelemetryError(
                f"counters only go up; inc({amount}) is a gauge move"
            )
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def sample(self) -> dict[str, Any]:
        return {"value": self.value}


class Gauge:
    """A value that can go anywhere (queue depth, in-flight requests)."""

    kind = "gauge"
    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def sample(self) -> dict[str, Any]:
        return {"value": self.value}


class Histogram:
    """Observations bucketed into fixed upper bounds, plus sum + count.

    Bucket counts are *cumulative* on export (the Prometheus ``le``
    contract) but stored per-bucket internally so ``observe`` is one
    bisect + one add.
    """

    kind = "histogram"
    __slots__ = ("_lock", "buckets", "_counts", "_sum", "_count")

    def __init__(
        self, buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS
    ) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(
            b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])
        ):
            raise TelemetryError(
                f"histogram buckets must be strictly increasing and "
                f"non-empty, got {bounds!r}"
            )
        self._lock = threading.Lock()
        self.buckets = bounds
        self._counts = [0] * (len(bounds) + 1)  # +1: the +Inf bucket
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        index = bisect.bisect_left(self.buckets, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def cumulative_counts(self) -> tuple[int, ...]:
        """Per-bound cumulative counts, ending with the +Inf total."""
        with self._lock:
            counts = list(self._counts)
        total = 0
        out = []
        for c in counts:
            total += c
            out.append(total)
        return tuple(out)

    def sample(self) -> dict[str, Any]:
        with self._lock:
            counts = list(self._counts)
            total_sum = self._sum
            total_count = self._count
        return {
            "buckets": list(self.buckets),
            "counts": counts,
            "sum": total_sum,
            "count": total_count,
        }


class MetricFamily:
    """All children (label-value combinations) of one metric name."""

    def __init__(
        self,
        name: str,
        kind: str,
        help_text: str,
        label_names: tuple[str, ...],
        buckets: tuple[float, ...] | None = None,
    ) -> None:
        self.name = name
        self.kind = kind
        self.help = help_text
        self.label_names = label_names
        self.buckets = buckets
        self._lock = threading.Lock()
        self._children: dict[tuple[str, ...], Any] = {}

    def child(self, label_values: tuple[str, ...]) -> Any:
        with self._lock:
            instrument = self._children.get(label_values)
            if instrument is None:
                if self.kind == "counter":
                    instrument = Counter()
                elif self.kind == "gauge":
                    instrument = Gauge()
                else:
                    instrument = Histogram(
                        self.buckets or DEFAULT_LATENCY_BUCKETS
                    )
                self._children[label_values] = instrument
        return instrument

    def items(self) -> "list[tuple[tuple[str, ...], Any]]":
        with self._lock:
            return sorted(self._children.items())


class MetricsRegistry:
    """Thread-safe home of every metric family in one process."""

    #: Real registry: instrumentation should record.  The null registry
    #: flips this so hot paths can skip even the clock reads.
    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: dict[str, MetricFamily] = {}

    # ------------------------------------------------------------------
    # Registration / lookup

    def _family(
        self,
        name: str,
        kind: str,
        help_text: str,
        labels: Mapping[str, Any],
        buckets: tuple[float, ...] | None = None,
    ) -> tuple[MetricFamily, tuple[str, ...]]:
        label_names = tuple(sorted(labels))
        with self._lock:
            family = self._families.get(name)
            if family is None:
                validate_metric_name(name)
                for label in label_names:
                    validate_label_name(label)
                family = MetricFamily(
                    name, kind, help_text, label_names, buckets
                )
                self._families[name] = family
            else:
                if family.kind != kind:
                    raise TelemetryError(
                        f"metric {name!r} is a {family.kind}, not a {kind}"
                    )
                if family.label_names != label_names:
                    raise TelemetryError(
                        f"metric {name!r} was registered with labels "
                        f"{family.label_names!r}, got {label_names!r}; "
                        "one family, one label set"
                    )
        values = tuple(str(labels[label]) for label in family.label_names)
        return family, values

    def counter(self, name: str, help: str = "", **labels: Any) -> Counter:  # noqa: A002
        family, values = self._family(name, "counter", help, labels)
        return family.child(values)

    def gauge(self, name: str, help: str = "", **labels: Any) -> Gauge:  # noqa: A002
        family, values = self._family(name, "gauge", help, labels)
        return family.child(values)

    def histogram(
        self,
        name: str,
        help: str = "",  # noqa: A002
        buckets: Sequence[float] | None = None,
        **labels: Any,
    ) -> Histogram:
        family, values = self._family(
            name, "histogram", help, labels,
            None if buckets is None else tuple(float(b) for b in buckets),
        )
        return family.child(values)

    # ------------------------------------------------------------------
    # Introspection

    def families(self) -> "list[MetricFamily]":
        with self._lock:
            return [
                self._families[name] for name in sorted(self._families)
            ]

    def snapshot(self) -> dict[str, Any]:
        """The whole registry as one JSON-able document.

        Schema (also the per-line payload of
        :class:`~repro.telemetry.snapshots.MetricsSnapshotWriter`)::

            {"<name>": {
                "kind": "counter" | "gauge" | "histogram",
                "help": "...",
                "label_names": ["route", ...],
                "samples": [
                    {"labels": {"route": "/x"},
                     "value": 3.0}                         # counter/gauge
                    {"labels": {...}, "buckets": [...],
                     "counts": [...], "sum": s, "count": n}  # histogram
                ]}}
        """
        document: dict[str, Any] = {}
        for family in self.families():
            samples = []
            for values, instrument in family.items():
                samples.append({
                    "labels": dict(zip(family.label_names, values)),
                    **instrument.sample(),
                })
            document[family.name] = {
                "kind": family.kind,
                "help": family.help,
                "label_names": list(family.label_names),
                "samples": samples,
            }
        return document


class _NullInstrument:
    """One shared do-nothing stand-in for every instrument kind."""

    kind = "null"
    buckets: tuple[float, ...] = ()
    value = 0.0
    sum = 0.0
    count = 0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def cumulative_counts(self) -> tuple[int, ...]:
        return ()

    def sample(self) -> dict[str, Any]:
        return {"value": 0.0}


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry(MetricsRegistry):
    """A registry that records nothing and allocates nothing.

    Swap it in with ``set_registry(NULL_REGISTRY)`` to disable
    telemetry; every instrument accessor returns one shared no-op
    object, and :attr:`enabled` is False so instrumentation helpers can
    skip their clock reads too.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__()

    def counter(self, name: str, help: str = "", **labels: Any) -> Any:  # noqa: A002
        return _NULL_INSTRUMENT

    def gauge(self, name: str, help: str = "", **labels: Any) -> Any:  # noqa: A002
        return _NULL_INSTRUMENT

    def histogram(
        self,
        name: str,
        help: str = "",  # noqa: A002
        buckets: Sequence[float] | None = None,
        **labels: Any,
    ) -> Any:
        return _NULL_INSTRUMENT

    def families(self) -> "list[MetricFamily]":
        return []

    def snapshot(self) -> dict[str, Any]:
        return {}


#: The shared do-nothing registry (a singleton; identity-comparable).
NULL_REGISTRY = NullRegistry()

_default_registry: MetricsRegistry = MetricsRegistry()
_default_lock = threading.Lock()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry instrumentation records into."""
    return _default_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Replace the process default; returns the previous one."""
    global _default_registry
    with _default_lock:
        previous = _default_registry
        _default_registry = registry
    return previous


@contextmanager
def using_registry(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Temporarily swap the process default (tests, benches)."""
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)
