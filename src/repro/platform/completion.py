"""Task-completion bookkeeping: who is working on what, since when.

Axiom 5 ("a worker who started completing a task should not be
interrupted") is about in-progress work, so the platform needs an
explicit notion of it.  :class:`WorkTracker` records start times and
distinguishes worker-initiated abandonment (allowed) from
platform/requester-initiated interruption (an Axiom 5 violation when a
requester cancels a task mid-work, per the survey scenario of
Section 3.1.1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError


@dataclass(frozen=True)
class WorkSpell:
    """An open span of work by one worker on one task."""

    worker_id: str
    task_id: str
    started_at: int


class WorkTracker:
    """Tracks open work spells; at most one spell per (worker, task)."""

    def __init__(self) -> None:
        self._open: dict[tuple[str, str], WorkSpell] = {}

    def start(self, worker_id: str, task_id: str, time: int) -> WorkSpell:
        key = (worker_id, task_id)
        if key in self._open:
            raise SimulationError(
                f"worker {worker_id} already working on task {task_id}"
            )
        spell = WorkSpell(worker_id, task_id, time)
        self._open[key] = spell
        return spell

    def finish(self, worker_id: str, task_id: str) -> WorkSpell:
        """Close a spell normally (submission)."""
        try:
            return self._open.pop((worker_id, task_id))
        except KeyError:
            raise SimulationError(
                f"worker {worker_id} has no open work on task {task_id}"
            ) from None

    def interrupt(self, worker_id: str, task_id: str) -> WorkSpell:
        """Close a spell abnormally (interruption or abandonment)."""
        return self.finish(worker_id, task_id)

    def workers_on_task(self, task_id: str) -> list[WorkSpell]:
        """All open spells on a task (whom a cancellation would hurt)."""
        return [s for s in self._open.values() if s.task_id == task_id]

    def tasks_of_worker(self, worker_id: str) -> list[WorkSpell]:
        return [s for s in self._open.values() if s.worker_id == worker_id]

    def is_working(self, worker_id: str, task_id: str) -> bool:
        return (worker_id, task_id) in self._open

    def open_spells(self) -> list[WorkSpell]:
        return list(self._open.values())

    def __len__(self) -> int:
        return len(self._open)
