"""Worker behaviour models.

A behaviour model decides how a worker produces contributions: the
answer payload, its latent quality, and the time spent.  Four models
cover the populations discussed in the paper and in Vuurens et al. [20]
(who observed ~40 % malicious answers on AMT):

* :class:`DiligentBehavior` — honest, slow, high quality;
* :class:`SloppyBehavior` — honest but hurried, medium quality;
* :class:`SpammerBehavior` — answers uniformly at random, instantly;
* :class:`MaliciousBehavior` — deliberately wrong (adversarial) answers.

Quality is a latent value in ``[0, 1]``; for tasks with a gold answer it
is the probability of matching gold, realized per contribution.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Protocol

from repro.core.entities import Task, Worker

#: Label alphabet used when a labelling task does not define options.
DEFAULT_LABELS: tuple[str, ...] = ("A", "B", "C", "D")

#: Word pool for synthetic textual answers.
_WORDS: tuple[str, ...] = (
    "data", "image", "shows", "clear", "product", "review", "positive",
    "negative", "person", "object", "street", "quality", "summary",
    "report", "answer", "detail", "scene", "label", "content", "value",
)


@dataclass(frozen=True)
class WorkProduct:
    """What a behaviour produced for one task."""

    payload: object
    quality: float
    work_time: int


class BehaviorModel(Protocol):
    """Produces a :class:`WorkProduct` for a worker-task pair."""

    name: str

    def produce(
        self, worker: Worker, task: Task, rng: random.Random
    ) -> WorkProduct: ...


def _task_labels(task: Task) -> tuple[str, ...]:
    options = task.metadata.get("options")
    if isinstance(options, (list, tuple)) and options:
        return tuple(str(o) for o in options)
    return DEFAULT_LABELS


def _correct_label(task: Task, rng: random.Random) -> str:
    if task.gold_answer is not None:
        return str(task.gold_answer)
    # No gold: any consistent choice works; derive one from the task id
    # so all honest workers converge on the same answer.
    labels = _task_labels(task)
    return labels[hash(task.task_id) % len(labels)]


def _produce_payload(
    task: Task, quality: float, rng: random.Random
) -> object:
    """Realize a payload whose correctness probability is ``quality``."""
    kind = task.kind
    if kind == "label":
        labels = _task_labels(task)
        correct = _correct_label(task, rng)
        if rng.random() < quality:
            return correct
        wrong = [label for label in labels if label != correct]
        return rng.choice(wrong) if wrong else correct
    if kind == "text":
        # Higher quality -> longer, more on-topic text anchored on the
        # task id, so honest answers to the same task are similar.
        anchor_words = [_WORDS[(hash(task.task_id) + i) % len(_WORDS)] for i in range(6)]
        n_anchor = max(1, round(quality * len(anchor_words)))
        noise = [rng.choice(_WORDS) for _ in range(max(0, 8 - n_anchor))]
        words = anchor_words[:n_anchor] + noise
        rng.shuffle(words)
        return " ".join(words)
    if kind == "ranking":
        items = task.metadata.get("items")
        reference = [str(i) for i in items] if isinstance(items, (list, tuple)) else [
            f"item{i}" for i in range(5)
        ]
        ranking = list(reference)
        # Lower quality -> more random adjacent swaps.
        swaps = round((1.0 - quality) * len(ranking) * 2)
        for _ in range(swaps):
            i = rng.randrange(len(ranking) - 1)
            ranking[i], ranking[i + 1] = ranking[i + 1], ranking[i]
        return tuple(ranking)
    if kind == "numeric":
        truth = float(task.metadata.get("truth", 100.0))
        spread = (1.0 - quality) * 0.5 * truth
        return truth + rng.uniform(-spread, spread)
    # Unknown kinds degrade to a label answer.
    return _correct_label(task, rng)


@dataclass(frozen=True)
class DiligentBehavior:
    """Honest and careful: quality ~ U[base - 0.05, base + 0.05]."""

    base_quality: float = 0.9
    name: str = "diligent"

    def produce(self, worker: Worker, task: Task, rng: random.Random) -> WorkProduct:
        quality = min(1.0, max(0.0, self.base_quality + rng.uniform(-0.05, 0.05)))
        payload = _produce_payload(task, quality, rng)
        work_time = max(1, task.duration + rng.choice((0, 0, 1)))
        return WorkProduct(payload=payload, quality=quality, work_time=work_time)


@dataclass(frozen=True)
class SloppyBehavior:
    """Honest but hurried: medium quality, faster than the task needs."""

    base_quality: float = 0.65
    name: str = "sloppy"

    def produce(self, worker: Worker, task: Task, rng: random.Random) -> WorkProduct:
        quality = min(1.0, max(0.0, self.base_quality + rng.uniform(-0.15, 0.1)))
        payload = _produce_payload(task, quality, rng)
        work_time = max(1, task.duration - rng.choice((0, 1)))
        return WorkProduct(payload=payload, quality=quality, work_time=work_time)


@dataclass(frozen=True)
class SpammerBehavior:
    """Answers at random, as fast as possible (Vuurens et al.'s spammers)."""

    name: str = "spammer"

    def produce(self, worker: Worker, task: Task, rng: random.Random) -> WorkProduct:
        quality = rng.uniform(0.0, 0.3)
        payload = _produce_payload(task, quality, rng)
        return WorkProduct(payload=payload, quality=quality, work_time=1)


@dataclass(frozen=True)
class MaliciousBehavior:
    """Deliberately wrong answers: quality pinned near zero, but takes a
    plausible amount of time (harder to detect by timing alone)."""

    name: str = "malicious"

    def produce(self, worker: Worker, task: Task, rng: random.Random) -> WorkProduct:
        quality = rng.uniform(0.0, 0.1)
        payload = _produce_payload(task, quality, rng)
        work_time = max(1, task.duration + rng.choice((-1, 0)))
        return WorkProduct(payload=payload, quality=quality, work_time=work_time)


_BEHAVIORS: dict[str, BehaviorModel] = {
    "diligent": DiligentBehavior(),
    "sloppy": SloppyBehavior(),
    "spammer": SpammerBehavior(),
    "malicious": MaliciousBehavior(),
}


def behavior_named(name: str) -> BehaviorModel:
    """Look up a standard behaviour model by name."""
    try:
        return _BEHAVIORS[name]
    except KeyError:
        raise ValueError(
            f"unknown behaviour {name!r}; known: {sorted(_BEHAVIORS)}"
        ) from None
