"""Task visibility policies — who gets to see which tasks.

Visibility is where Axioms 1 and 2 bite: the platform decides which
subset of open tasks each worker's browse view contains.  Fair policies
(:class:`ShowAllVisibility`, :class:`QualificationVisibility`) show the
same tasks to equally qualified workers; the discriminatory policies
below inject exactly the failures the audit engine must catch.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Protocol, Sequence

from repro.core.entities import Task, Worker


class VisibilityPolicy(Protocol):
    """Selects the tasks a worker's browse view shows."""

    name: str

    def visible_tasks(
        self, worker: Worker, open_tasks: Sequence[Task], rng: random.Random
    ) -> list[Task]: ...


@dataclass(frozen=True)
class ShowAllVisibility:
    """Every worker sees every open task (the AMT browse-all model the
    paper calls 'fair because workers have access to the same set')."""

    name: str = "show_all"

    def visible_tasks(
        self, worker: Worker, open_tasks: Sequence[Task], rng: random.Random
    ) -> list[Task]:
        return list(open_tasks)


@dataclass(frozen=True)
class QualificationVisibility:
    """Workers see exactly the tasks they qualify for.

    Fair under Axiom 1 as long as the skill vectors themselves were
    derived fairly — two workers with similar skills see similar sets.
    """

    name: str = "qualification"

    def visible_tasks(
        self, worker: Worker, open_tasks: Sequence[Task], rng: random.Random
    ) -> list[Task]:
        return [task for task in open_tasks if task.qualifies(worker)]


@dataclass(frozen=True)
class BiasedVisibility:
    """Hides high-reward tasks from workers with a given declared
    attribute value — the Sweeney-style discrimination of the paper's
    introduction (ads for high-income jobs shown to men more often).

    Workers whose ``attribute`` equals ``disadvantaged_value`` only see
    tasks with reward strictly below ``reward_ceiling``.

    ``bias_probability`` makes the discrimination *stochastic*: each
    browse of a targeted worker is filtered with this probability (1.0,
    the default, is deterministic discrimination).  Partial bias is
    what real systems exhibit and what the E10 power analysis sweeps.
    """

    attribute: str
    disadvantaged_value: object
    reward_ceiling: float
    bias_probability: float = 1.0
    name: str = "biased"

    def __post_init__(self) -> None:
        if not 0.0 <= self.bias_probability <= 1.0:
            raise ValueError("bias_probability must be in [0, 1]")

    def visible_tasks(
        self, worker: Worker, open_tasks: Sequence[Task], rng: random.Random
    ) -> list[Task]:
        targeted = worker.declared.get(self.attribute) == self.disadvantaged_value
        if targeted and (
            self.bias_probability >= 1.0 or rng.random() < self.bias_probability
        ):
            return [t for t in open_tasks if t.reward < self.reward_ceiling]
        return list(open_tasks)


@dataclass(frozen=True)
class ReputationTieredVisibility:
    """Shows the best-paying tasks only to workers whose acceptance
    ratio clears ``threshold`` — a realistic, facially neutral policy
    that still violates Axiom 1 whenever the acceptance ratios were
    derived from biased reviews (Section 3.3.1's inter-dependency)."""

    threshold: float = 0.8
    premium_quantile: float = 0.5
    name: str = "reputation_tiered"

    def visible_tasks(
        self, worker: Worker, open_tasks: Sequence[Task], rng: random.Random
    ) -> list[Task]:
        if not open_tasks:
            return []
        rewards = sorted(task.reward for task in open_tasks)
        cut_index = int(len(rewards) * self.premium_quantile)
        cut_index = min(cut_index, len(rewards) - 1)
        cutoff = rewards[cut_index]
        ratio = worker.computed.get("acceptance_ratio", 1.0)
        if isinstance(ratio, (int, float)) and float(ratio) >= self.threshold:
            return list(open_tasks)
        return [task for task in open_tasks if task.reward <= cutoff]


@dataclass(frozen=True)
class RandomSubsetVisibility:
    """Shows each worker an independent random subset of tasks.

    Fair in expectation but unfair per-realization; useful for testing
    how strict the Axiom 1 checker's thresholds are.
    """

    keep_probability: float = 0.5
    name: str = "random_subset"

    def __post_init__(self) -> None:
        if not 0.0 <= self.keep_probability <= 1.0:
            raise ValueError("keep_probability must be in [0, 1]")

    def visible_tasks(
        self, worker: Worker, open_tasks: Sequence[Task], rng: random.Random
    ) -> list[Task]:
        return [t for t in open_tasks if rng.random() < self.keep_probability]


@dataclass(frozen=True)
class RequesterThrottledVisibility:
    """Suppresses tasks of the requesters in ``hidden_requesters`` from
    every browse view — the Axiom 2 failure mode (comparable tasks from
    different requesters not equally visible)."""

    hidden_requesters: frozenset[str] = field(default_factory=frozenset)
    name: str = "requester_throttled"

    def visible_tasks(
        self, worker: Worker, open_tasks: Sequence[Task], rng: random.Random
    ) -> list[Task]:
        return [
            task
            for task in open_tasks
            if task.requester_id not in self.hidden_requesters
        ]
