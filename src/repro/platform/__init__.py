"""Crowdsourcing platform simulator.

This package is the substrate the paper assumes: an AMT/CrowdFlower-like
marketplace whose every step is recorded as events in a
:class:`repro.core.trace.PlatformTrace` so the audit engine can check it
against the fairness and transparency axioms.

The simulator is deliberately *configurable towards unfairness*: biased
visibility policies, discriminatory review policies, and compensation
schemes that renege on bonuses let experiments inject exactly the
Section 3.1 discrimination scenarios and verify the checkers flag them.
"""

from repro.platform.behavior import (
    BehaviorModel,
    DiligentBehavior,
    MaliciousBehavior,
    SloppyBehavior,
    SpammerBehavior,
    behavior_named,
)
from repro.platform.clock import Clock
from repro.platform.ids import IdFactory
from repro.platform.market import CrowdsourcingPlatform
from repro.platform.payment import PaymentLedger
from repro.platform.review import (
    AcceptAllReview,
    BiasedReview,
    GoldAnswerReview,
    QualityThresholdReview,
    ReviewDecision,
    ReviewPolicy,
    SilentRejectReview,
)
from repro.platform.session import Session, SessionConfig, SessionResult
from repro.platform.visibility import (
    BiasedVisibility,
    QualificationVisibility,
    ReputationTieredVisibility,
    ShowAllVisibility,
    VisibilityPolicy,
)

__all__ = [
    "AcceptAllReview",
    "BehaviorModel",
    "BiasedReview",
    "BiasedVisibility",
    "Clock",
    "CrowdsourcingPlatform",
    "DiligentBehavior",
    "GoldAnswerReview",
    "IdFactory",
    "MaliciousBehavior",
    "PaymentLedger",
    "QualificationVisibility",
    "QualityThresholdReview",
    "ReputationTieredVisibility",
    "ReviewDecision",
    "ReviewPolicy",
    "Session",
    "SessionConfig",
    "SessionResult",
    "ShowAllVisibility",
    "SilentRejectReview",
    "SloppyBehavior",
    "SpammerBehavior",
    "VisibilityPolicy",
    "behavior_named",
]
