"""Contribution review policies.

A review policy is the requester's accept/reject decision plus the
feedback string shown to the worker.  The empty-feedback rejection is
the *requester opacity* of Section 3.1.2; the attribute-biased policy is
the wrongful-rejection discrimination of Section 3.1.1.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Protocol

from repro.core.entities import Contribution, Task, Worker


@dataclass(frozen=True)
class ReviewDecision:
    """Outcome of reviewing one contribution."""

    accepted: bool
    feedback: str = ""


class ReviewPolicy(Protocol):
    """Decides acceptance and feedback for a contribution."""

    name: str

    def review(
        self,
        contribution: Contribution,
        task: Task,
        worker: Worker,
        rng: random.Random,
    ) -> ReviewDecision: ...


@dataclass(frozen=True)
class AcceptAllReview:
    """Accepts everything (no quality control)."""

    name: str = "accept_all"

    def review(
        self, contribution: Contribution, task: Task, worker: Worker,
        rng: random.Random,
    ) -> ReviewDecision:
        return ReviewDecision(accepted=True, feedback="accepted")


@dataclass(frozen=True)
class QualityThresholdReview:
    """Accepts contributions whose latent quality clears ``threshold``
    and always explains the decision (a transparent requester)."""

    threshold: float = 0.5
    name: str = "quality_threshold"

    def review(
        self, contribution: Contribution, task: Task, worker: Worker,
        rng: random.Random,
    ) -> ReviewDecision:
        quality = contribution.quality if contribution.quality is not None else 0.0
        if quality >= self.threshold:
            return ReviewDecision(
                accepted=True,
                feedback=f"accepted: quality {quality:.2f} >= {self.threshold:.2f}",
            )
        return ReviewDecision(
            accepted=False,
            feedback=f"rejected: quality {quality:.2f} < {self.threshold:.2f}",
        )


@dataclass(frozen=True)
class GoldAnswerReview:
    """Accepts iff the payload matches the task's gold answer; tasks
    without gold fall back to a quality threshold."""

    fallback_threshold: float = 0.5
    name: str = "gold_answer"

    def review(
        self, contribution: Contribution, task: Task, worker: Worker,
        rng: random.Random,
    ) -> ReviewDecision:
        if task.gold_answer is not None:
            if str(contribution.payload) == str(task.gold_answer):
                return ReviewDecision(accepted=True, feedback="accepted: matches gold")
            return ReviewDecision(
                accepted=False, feedback="rejected: does not match gold answer"
            )
        quality = contribution.quality if contribution.quality is not None else 0.0
        accepted = quality >= self.fallback_threshold
        verdict = "accepted" if accepted else "rejected"
        return ReviewDecision(
            accepted=accepted, feedback=f"{verdict}: quality check (no gold)"
        )


@dataclass(frozen=True)
class SilentRejectReview:
    """Like a quality threshold, but rejections carry *no feedback* —
    the requester opacity workers complain about on Turker Nation."""

    threshold: float = 0.5
    name: str = "silent_reject"

    def review(
        self, contribution: Contribution, task: Task, worker: Worker,
        rng: random.Random,
    ) -> ReviewDecision:
        quality = contribution.quality if contribution.quality is not None else 0.0
        if quality >= self.threshold:
            return ReviewDecision(accepted=True, feedback="accepted")
        return ReviewDecision(accepted=False, feedback="")


@dataclass(frozen=True)
class BiasedReview:
    """Wrongfully rejects good work from a demographic group.

    Workers whose declared ``attribute`` equals ``disadvantaged_value``
    have their otherwise-acceptable contributions rejected with
    probability ``rejection_probability`` — the Section 3.1.1 wrongful
    rejection, and the Axiom 3 violation generator for experiments.
    """

    attribute: str
    disadvantaged_value: object
    rejection_probability: float = 0.5
    threshold: float = 0.5
    name: str = "biased"

    def __post_init__(self) -> None:
        if not 0.0 <= self.rejection_probability <= 1.0:
            raise ValueError("rejection_probability must be in [0, 1]")

    def review(
        self, contribution: Contribution, task: Task, worker: Worker,
        rng: random.Random,
    ) -> ReviewDecision:
        quality = contribution.quality if contribution.quality is not None else 0.0
        if quality < self.threshold:
            return ReviewDecision(
                accepted=False,
                feedback=f"rejected: quality {quality:.2f} < {self.threshold:.2f}",
            )
        targeted = worker.declared.get(self.attribute) == self.disadvantaged_value
        if targeted and rng.random() < self.rejection_probability:
            # Wrongful rejection; opaque feedback by construction.
            return ReviewDecision(accepted=False, feedback="")
        return ReviewDecision(accepted=True, feedback="accepted")
