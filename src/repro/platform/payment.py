"""Payment ledger: balances, pending payments, promised bonuses.

The ledger tracks every monetary fact a compensation audit needs:
amounts paid per worker/task/contribution, payment delays (time between
submission and payment — an Axiom 6 disclosure), and promised-vs-paid
bonuses (the reneging scenario of Section 3.1.1).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.errors import CompensationError


@dataclass(frozen=True)
class LedgerEntry:
    """One payment made to a worker."""

    time: int
    worker_id: str
    task_id: str
    contribution_id: str
    amount: float


@dataclass(frozen=True)
class BonusPromise:
    """A conditional bonus promised by a requester to a worker."""

    time: int
    requester_id: str
    worker_id: str
    amount: float
    condition: str = ""


@dataclass
class PaymentLedger:
    """Mutable record of payments and bonus promises for one run."""

    entries: list[LedgerEntry] = field(default_factory=list)
    promises: list[BonusPromise] = field(default_factory=list)
    bonus_payments: list[LedgerEntry] = field(default_factory=list)

    def pay(
        self,
        time: int,
        worker_id: str,
        task_id: str,
        contribution_id: str,
        amount: float,
    ) -> LedgerEntry:
        """Record a task payment; zero amounts are allowed (rejected work)."""
        if amount < 0:
            raise CompensationError(f"negative payment amount: {amount}")
        entry = LedgerEntry(time, worker_id, task_id, contribution_id, amount)
        self.entries.append(entry)
        return entry

    def promise_bonus(
        self,
        time: int,
        requester_id: str,
        worker_id: str,
        amount: float,
        condition: str = "",
    ) -> BonusPromise:
        if amount <= 0:
            raise CompensationError(f"bonus promise must be positive: {amount}")
        promise = BonusPromise(time, requester_id, worker_id, amount, condition)
        self.promises.append(promise)
        return promise

    def pay_bonus(
        self, time: int, requester_id: str, worker_id: str, amount: float
    ) -> LedgerEntry:
        if amount <= 0:
            raise CompensationError(f"bonus payment must be positive: {amount}")
        entry = LedgerEntry(time, worker_id, task_id="", contribution_id="",
                            amount=amount)
        self.bonus_payments.append(entry)
        return entry

    # ------------------------------------------------------------------
    # Queries

    def balance(self, worker_id: str) -> float:
        """Everything the worker has been paid, tasks plus bonuses."""
        tasks = sum(e.amount for e in self.entries if e.worker_id == worker_id)
        bonuses = sum(
            e.amount for e in self.bonus_payments if e.worker_id == worker_id
        )
        return tasks + bonuses

    def balances(self) -> dict[str, float]:
        totals: dict[str, float] = defaultdict(float)
        for entry in self.entries:
            totals[entry.worker_id] += entry.amount
        for entry in self.bonus_payments:
            totals[entry.worker_id] += entry.amount
        return dict(totals)

    def paid_for(self, contribution_id: str) -> float:
        return sum(
            e.amount for e in self.entries if e.contribution_id == contribution_id
        )

    def unpaid_promises(self) -> list[BonusPromise]:
        """Promises with no matching (worker, amount) bonus payment.

        Each bonus payment settles at most one promise of the same
        worker and amount, in promise order.
        """
        remaining = list(self.promises)
        for payment in self.bonus_payments:
            for promise in remaining:
                same_worker = promise.worker_id == payment.worker_id
                if same_worker and abs(promise.amount - payment.amount) < 1e-9:
                    remaining.remove(promise)
                    break
        return remaining

    def total_paid(self) -> float:
        return sum(e.amount for e in self.entries) + sum(
            e.amount for e in self.bonus_payments
        )
