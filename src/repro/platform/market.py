"""The crowdsourcing platform: entity registry, lifecycle, event trace.

:class:`CrowdsourcingPlatform` is the single mutable object of a
simulation.  Every externally observable step — posting, browsing,
assigning, working, reviewing, paying, disclosing — appends an event to
the platform's :class:`~repro.core.trace.PlatformTrace`, which is what
the audit engine later checks against the axioms.

The platform is policy-parameterised: visibility
(:mod:`repro.platform.visibility`), review
(:mod:`repro.platform.review`), and pricing (any object with a
``price(task, contribution, accepted)`` method, see
:mod:`repro.compensation`) are injected, so both fair and deliberately
discriminatory platforms are instances of this one class.

A platform can carry its own watchdog: pass ``auditor=`` (any object
with ``observe(event)``, normally a
:class:`~repro.core.audit.StreamingAuditEngine`) and every event is fed
to it the moment it is appended to the trace, so fairness verdicts are
available while the market runs instead of after a post-hoc scan.

Trace storage is pluggable: ``trace_store=`` accepts a
:class:`~repro.core.store.TraceStore` instance or a backend name for
:func:`~repro.core.store.make_store` (``"memory"``, ``"windowed"``,
``"persistent"`` — the latter needs an instance carrying its path), so
a long-running market can run with bounded memory or write its log
through to disk as it happens.
"""

from __future__ import annotations

import random
from typing import Protocol

from repro.core.attributes import ComputedAttributes
from repro.core.entities import Contribution, Requester, Task, Worker
from repro.core.events import (
    AssignmentMade,
    BonusPaid,
    BonusPromised,
    ContributionReviewed,
    ContributionSubmitted,
    DisclosureShown,
    MaliceFlagged,
    PaymentIssued,
    RequesterRegistered,
    TaskCancelled,
    TaskInterrupted,
    TaskPosted,
    TasksShown,
    TaskStarted,
    WorkerDeparted,
    WorkerRegistered,
    WorkerUpdated,
)
from repro.core.store import TraceStore, make_store
from repro.core.trace import PlatformTrace
from repro.errors import SimulationError, UnknownEntityError
from repro.platform.behavior import BehaviorModel, WorkProduct
from repro.platform.clock import Clock
from repro.platform.completion import WorkTracker
from repro.platform.ids import IdFactory
from repro.platform.payment import PaymentLedger
from repro.platform.review import QualityThresholdReview, ReviewPolicy
from repro.platform.visibility import ShowAllVisibility, VisibilityPolicy


class PricingScheme(Protocol):
    """Prices one reviewed contribution (see :mod:`repro.compensation`)."""

    name: str

    def price(
        self, task: Task, contribution: Contribution, accepted: bool
    ) -> float: ...


class LiveAuditor(Protocol):
    """Consumes platform events as they happen.

    Implemented by :class:`~repro.core.audit.StreamingAuditEngine`;
    structural so tests can pass plain recorders.
    """

    def observe(self, event: object) -> None: ...


class _FixedRewardPricing:
    """Default pricing: full reward when accepted, nothing otherwise."""

    name = "fixed_reward"

    def price(self, task: Task, contribution: Contribution, accepted: bool) -> float:
        return task.reward if accepted else 0.0


class _WorkerHistory:
    """Raw per-worker counters from which ``C_w`` is derived."""

    __slots__ = ("accepted", "reviewed", "submitted", "quality_sum", "quality_count")

    def __init__(self) -> None:
        self.accepted = 0
        self.reviewed = 0
        self.submitted = 0
        self.quality_sum = 0.0
        self.quality_count = 0

    def computed(self) -> ComputedAttributes:
        return ComputedAttributes.from_history(
            accepted=self.accepted,
            reviewed=self.reviewed,
            submitted=self.submitted,
            quality_sum=self.quality_sum,
            quality_count=self.quality_count,
        )


class CrowdsourcingPlatform:
    """An event-sourced crowdsourcing marketplace."""

    def __init__(
        self,
        visibility: VisibilityPolicy | None = None,
        review_policy: ReviewPolicy | None = None,
        pricing: PricingScheme | None = None,
        seed: int = 0,
        corrupt_computed_attributes: bool = False,
        auditor: "LiveAuditor | None" = None,
        trace_store: "TraceStore | str | None" = None,
    ) -> None:
        self.clock = Clock()
        self.ids = IdFactory()
        self.ledger = PaymentLedger()
        self.visibility = visibility if visibility is not None else ShowAllVisibility()
        self.review_policy = (
            review_policy if review_policy is not None else QualityThresholdReview()
        )
        self.pricing = pricing if pricing is not None else _FixedRewardPricing()
        self._rng = random.Random(seed)
        if isinstance(trace_store, str):
            trace_store = make_store(trace_store)
        self._trace = PlatformTrace(store=trace_store)
        self._workers: dict[str, Worker] = {}
        self._requesters: dict[str, Requester] = {}
        self._tasks: dict[str, Task] = {}
        self._open_tasks: dict[str, Task] = {}
        self._history: dict[str, _WorkerHistory] = {}
        self._work = WorkTracker()
        self._departed: set[str] = set()
        # Payments scheduled for a later tick (pricing schemes with a
        # ``delay_ticks`` attribute, e.g. DelayedPaymentScheme).
        self._pending_payments: list[tuple[int, str, str, str, float]] = []
        # When set, published C_w values are perturbed relative to their
        # derivation inputs — the unfair-derivation failure mode the
        # audit engine must detect (Section 3.3.1).
        self._corrupt_computed = corrupt_computed_attributes
        self._auditor = auditor
        if auditor is not None:
            self._trace.subscribe(auditor.observe)

    # ------------------------------------------------------------------
    # Introspection

    @property
    def trace(self) -> PlatformTrace:
        return self._trace

    @property
    def auditor(self) -> "LiveAuditor | None":
        """The live auditor observing this platform's trace, if any."""
        return self._auditor

    @property
    def now(self) -> int:
        return self.clock.now

    @property
    def workers(self) -> dict[str, Worker]:
        return dict(self._workers)

    @property
    def active_workers(self) -> list[Worker]:
        return [
            w for wid, w in self._workers.items() if wid not in self._departed
        ]

    @property
    def open_tasks(self) -> list[Task]:
        return list(self._open_tasks.values())

    def worker(self, worker_id: str) -> Worker:
        try:
            return self._workers[worker_id]
        except KeyError:
            raise UnknownEntityError(f"unknown worker {worker_id!r}") from None

    def task(self, task_id: str) -> Task:
        try:
            return self._tasks[task_id]
        except KeyError:
            raise UnknownEntityError(f"unknown task {task_id!r}") from None

    def has_departed(self, worker_id: str) -> bool:
        return worker_id in self._departed

    # ------------------------------------------------------------------
    # Registration

    def register_worker(self, worker: Worker) -> Worker:
        if worker.worker_id in self._workers:
            raise SimulationError(f"worker {worker.worker_id} already registered")
        self._workers[worker.worker_id] = worker
        self._history[worker.worker_id] = _WorkerHistory()
        self._trace.append(WorkerRegistered(time=self.now, worker=worker))
        return worker

    def register_requester(self, requester: Requester) -> Requester:
        if requester.requester_id in self._requesters:
            raise SimulationError(
                f"requester {requester.requester_id} already registered"
            )
        self._requesters[requester.requester_id] = requester
        self._trace.append(RequesterRegistered(time=self.now, requester=requester))
        return requester

    # ------------------------------------------------------------------
    # Task lifecycle

    def post_task(self, task: Task) -> Task:
        if task.requester_id not in self._requesters:
            raise UnknownEntityError(
                f"task {task.task_id} posted by unknown requester "
                f"{task.requester_id!r}"
            )
        if task.task_id in self._tasks:
            raise SimulationError(f"task {task.task_id} already posted")
        self._tasks[task.task_id] = task
        self._open_tasks[task.task_id] = task
        self._trace.append(TaskPosted(time=self.now, task=task))
        return task

    def browse(self, worker_id: str) -> list[Task]:
        """Show the worker their browse view; records a TasksShown event."""
        worker = self.worker(worker_id)
        if worker_id in self._departed:
            raise SimulationError(f"worker {worker_id} has departed")
        visible = self.visibility.visible_tasks(
            worker, list(self._open_tasks.values()), self._rng
        )
        self._trace.append(
            TasksShown(
                time=self.now,
                worker_id=worker_id,
                task_ids=frozenset(t.task_id for t in visible),
            )
        )
        return visible

    def assign(self, worker_id: str, task_id: str, assigner: str = "") -> None:
        """Record an allocation of a task to a worker."""
        self.worker(worker_id)
        if task_id not in self._open_tasks:
            raise SimulationError(f"task {task_id} is not open")
        self._trace.append(
            AssignmentMade(
                time=self.now, worker_id=worker_id, task_id=task_id,
                assigner=assigner,
            )
        )

    def start_work(self, worker_id: str, task_id: str) -> None:
        self.worker(worker_id)
        if task_id not in self._open_tasks:
            raise SimulationError(f"task {task_id} is not open")
        self._work.start(worker_id, task_id, self.now)
        self._trace.append(
            TaskStarted(time=self.now, worker_id=worker_id, task_id=task_id)
        )

    def abandon_work(self, worker_id: str, task_id: str, reason: str = "") -> None:
        """Worker-initiated stop: allowed under Axiom 5."""
        self._work.interrupt(worker_id, task_id)
        self._trace.append(
            TaskInterrupted(
                time=self.now, worker_id=worker_id, task_id=task_id,
                reason=reason or "worker abandoned", worker_initiated=True,
            )
        )

    def cancel_task(self, task_id: str, reason: str = "") -> list[str]:
        """Requester withdraws a task.

        Any worker mid-completion is interrupted (not worker-initiated)
        — the survey-quota scenario of Section 3.1.1.  Returns the ids
        of interrupted workers.
        """
        if task_id not in self._open_tasks:
            raise SimulationError(f"task {task_id} is not open")
        interrupted: list[str] = []
        for spell in self._work.workers_on_task(task_id):
            self._work.interrupt(spell.worker_id, task_id)
            interrupted.append(spell.worker_id)
            self._trace.append(
                TaskInterrupted(
                    time=self.now, worker_id=spell.worker_id, task_id=task_id,
                    reason=reason or "task cancelled by requester",
                    worker_initiated=False,
                )
            )
        del self._open_tasks[task_id]
        self._trace.append(
            TaskCancelled(time=self.now, task_id=task_id, reason=reason)
        )
        return interrupted

    def close_task(self, task_id: str) -> None:
        """Remove a task from the open pool without cancelling work."""
        self._open_tasks.pop(task_id, None)

    # ------------------------------------------------------------------
    # Work production and review

    def submit_work(
        self, worker_id: str, task_id: str, behavior: BehaviorModel
    ) -> Contribution:
        """The worker completes the task per their behaviour model.

        The platform clock advances by the work time, the work spell
        closes, and a ContributionSubmitted event is recorded.  The
        contribution is *not* yet reviewed or paid.
        """
        worker = self.worker(worker_id)
        task = self.task(task_id)
        if not self._work.is_working(worker_id, task_id):
            raise SimulationError(
                f"worker {worker_id} must start task {task_id} before submitting"
            )
        product: WorkProduct = behavior.produce(worker, task, self._rng)
        self.clock.tick(product.work_time)
        self._work.finish(worker_id, task_id)
        contribution = Contribution(
            contribution_id=self.ids.contribution(),
            task_id=task_id,
            worker_id=worker_id,
            payload=product.payload,
            submitted_at=self.now,
            quality=product.quality,
            work_time=product.work_time,
        )
        history = self._history[worker_id]
        history.submitted += 1
        self._trace.append(
            ContributionSubmitted(time=self.now, contribution=contribution)
        )
        return contribution

    def review(self, contribution: Contribution) -> bool:
        """Review a contribution; updates ``C_w`` and emits events."""
        task = self.task(contribution.task_id)
        worker = self.worker(contribution.worker_id)
        decision = self.review_policy.review(contribution, task, worker, self._rng)
        self._trace.append(
            ContributionReviewed(
                time=self.now,
                contribution_id=contribution.contribution_id,
                task_id=contribution.task_id,
                worker_id=contribution.worker_id,
                accepted=decision.accepted,
                feedback=decision.feedback,
            )
        )
        history = self._history[contribution.worker_id]
        history.reviewed += 1
        if decision.accepted:
            history.accepted += 1
        if contribution.quality is not None:
            history.quality_sum += contribution.quality
            history.quality_count += 1
        self._refresh_worker(contribution.worker_id)
        return decision.accepted

    def pay(self, contribution: Contribution, accepted: bool) -> float:
        """Price a reviewed contribution; pay now or schedule it.

        Pricing schemes exposing a positive ``delay_ticks`` attribute
        (contractual payment delay) have their payments queued and
        settled by :meth:`settle_due_payments` once the clock passes the
        due time — which is what lets the Axiom 6 checker compare the
        *actual* delay against the requester's declared one.  Returns
        the amount owed either way.
        """
        task = self.task(contribution.task_id)
        amount = self.pricing.price(task, contribution, accepted)
        delay = int(getattr(self.pricing, "delay_ticks", 0) or 0)
        if delay > 0 and amount > 0:
            self._pending_payments.append(
                (
                    self.now + delay,
                    contribution.worker_id,
                    contribution.task_id,
                    contribution.contribution_id,
                    amount,
                )
            )
            return amount
        self._issue_payment(
            contribution.worker_id, contribution.task_id,
            contribution.contribution_id, amount,
        )
        return amount

    def settle_due_payments(self) -> int:
        """Issue every queued payment whose due time has passed.

        Returns the number of payments settled.  Call after advancing
        the clock (the session driver does this every round).
        """
        due = [p for p in self._pending_payments if p[0] <= self.now]
        self._pending_payments = [
            p for p in self._pending_payments if p[0] > self.now
        ]
        for _, worker_id, task_id, contribution_id, amount in due:
            self._issue_payment(worker_id, task_id, contribution_id, amount)
        return len(due)

    @property
    def pending_payment_count(self) -> int:
        return len(self._pending_payments)

    def _issue_payment(
        self, worker_id: str, task_id: str, contribution_id: str,
        amount: float,
    ) -> None:
        self.ledger.pay(
            time=self.now, worker_id=worker_id, task_id=task_id,
            contribution_id=contribution_id, amount=amount,
        )
        self._trace.append(
            PaymentIssued(
                time=self.now, worker_id=worker_id, task_id=task_id,
                contribution_id=contribution_id, amount=amount,
            )
        )

    def process_contribution(
        self, worker_id: str, task_id: str, behavior: BehaviorModel
    ) -> tuple[Contribution, bool, float]:
        """Convenience: submit, review, and pay in one step."""
        contribution = self.submit_work(worker_id, task_id, behavior)
        accepted = self.review(contribution)
        amount = self.pay(contribution, accepted)
        return contribution, accepted, amount

    # ------------------------------------------------------------------
    # Bonuses, malice flags, disclosures, departures

    def promise_bonus(
        self, requester_id: str, worker_id: str, amount: float, condition: str = ""
    ) -> None:
        self.ledger.promise_bonus(self.now, requester_id, worker_id, amount, condition)
        self._trace.append(
            BonusPromised(
                time=self.now, requester_id=requester_id, worker_id=worker_id,
                amount=amount, condition=condition,
            )
        )

    def pay_bonus(self, requester_id: str, worker_id: str, amount: float) -> None:
        self.ledger.pay_bonus(self.now, requester_id, worker_id, amount)
        self._trace.append(
            BonusPaid(
                time=self.now, requester_id=requester_id, worker_id=worker_id,
                amount=amount,
            )
        )

    def flag_malice(self, worker_id: str, detector: str, score: float) -> None:
        self._trace.append(
            MaliceFlagged(
                time=self.now, worker_id=worker_id, detector=detector, score=score
            )
        )

    def disclose(
        self, subject: str, field_name: str, value: object,
        audience_worker_id: str = "",
    ) -> None:
        self._trace.append(
            DisclosureShown(
                time=self.now, subject=subject, field_name=field_name,
                value=value, audience_worker_id=audience_worker_id,
            )
        )

    def depart_worker(self, worker_id: str, reason: str = "") -> None:
        self.worker(worker_id)
        if worker_id in self._departed:
            return
        self._departed.add(worker_id)
        self._trace.append(
            WorkerDeparted(time=self.now, worker_id=worker_id, reason=reason)
        )

    # ------------------------------------------------------------------
    # Internal

    def _refresh_worker(self, worker_id: str) -> None:
        """Recompute and publish ``C_w`` after a review."""
        computed = self._history[worker_id].computed()
        if self._corrupt_computed:
            computed = self._corrupted(computed)
        updated = self._workers[worker_id].with_computed(computed)
        self._workers[worker_id] = updated
        self._trace.append(WorkerUpdated(time=self.now, worker=updated))

    def _corrupted(self, computed: ComputedAttributes) -> ComputedAttributes:
        """Perturb the published acceptance ratio away from its derivation."""
        values = computed.as_dict()
        ratio = values.get("acceptance_ratio")
        if isinstance(ratio, (int, float)):
            values["acceptance_ratio"] = max(
                0.0, min(1.0, float(ratio) - 0.25 - 0.1 * self._rng.random())
            )
        return ComputedAttributes(values=values, derivation=computed.derivation)
