"""Seeded randomness helpers.

Every stochastic component takes a ``random.Random`` instance rather
than using the module-level RNG, so simulations are reproducible and
components can be given independent streams derived from one master
seed.
"""

from __future__ import annotations

import random
from typing import Iterator


def master_rng(seed: int) -> random.Random:
    """The root RNG for a simulation run."""
    return random.Random(seed)


def spawn(rng: random.Random, label: str) -> random.Random:
    """A child RNG deterministically derived from ``rng`` and a label.

    Independent subsystems (behaviour, review, arrivals) get their own
    streams so adding draws to one does not perturb the others.
    """
    return random.Random(f"{rng.random()}::{label}")


def weighted_choice(
    rng: random.Random, weights: dict[str, float]
) -> str:
    """Choose a key proportionally to its non-negative weight."""
    if not weights:
        raise ValueError("weights must be non-empty")
    if any(w < 0 for w in weights.values()):
        raise ValueError("weights must be non-negative")
    total = sum(weights.values())
    if total == 0:
        return rng.choice(sorted(weights))
    point = rng.random() * total
    cumulative = 0.0
    for key in sorted(weights):
        cumulative += weights[key]
        if point <= cumulative:
            return key
    return sorted(weights)[-1]


def bernoulli(rng: random.Random, probability: float) -> bool:
    """A single biased coin flip."""
    if not 0.0 <= probability <= 1.0:
        raise ValueError(f"probability must be in [0, 1], got {probability}")
    return rng.random() < probability


def stream(rng: random.Random, labels: list[str]) -> Iterator[random.Random]:
    """Independent child streams, one per label, in label order."""
    for label in labels:
        yield spawn(rng, label)
