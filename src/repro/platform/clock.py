"""Simulated discrete clock.

The platform advances in integer ticks.  A tick is the unit of both
work time (a task's ``duration`` is ticks of honest effort) and payment
delay, so wage-per-tick and hourly-wage analogies are direct.
"""

from __future__ import annotations


class Clock:
    """Monotonic integer clock starting at 0."""

    def __init__(self, start: int = 0) -> None:
        if start < 0:
            raise ValueError("clock cannot start before 0")
        self._now = start

    @property
    def now(self) -> int:
        return self._now

    def tick(self, steps: int = 1) -> int:
        """Advance by ``steps`` ticks and return the new time."""
        if steps < 0:
            raise ValueError("clock cannot move backwards")
        self._now += steps
        return self._now

    def advance_to(self, time: int) -> int:
        """Jump forward to ``time`` (no-op when already past it)."""
        if time > self._now:
            self._now = time
        return self._now
