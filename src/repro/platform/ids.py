"""Sequential, prefixed identifier generation.

Deterministic ids ("w0001", "t0042") keep simulations reproducible and
traces readable; a single :class:`IdFactory` per platform guarantees
uniqueness within a run.
"""

from __future__ import annotations

from collections import defaultdict


class IdFactory:
    """Produces ids of the form ``<prefix><counter:04d>`` per prefix."""

    def __init__(self, width: int = 4) -> None:
        if width < 1:
            raise ValueError("width must be >= 1")
        self._width = width
        self._counters: dict[str, int] = defaultdict(int)

    def next(self, prefix: str) -> str:
        """The next id for ``prefix`` ('w' -> 'w0001', 'w0002', ...)."""
        self._counters[prefix] += 1
        return f"{prefix}{self._counters[prefix]:0{self._width}d}"

    def worker(self) -> str:
        return self.next("w")

    def task(self) -> str:
        return self.next("t")

    def requester(self) -> str:
        return self.next("r")

    def contribution(self) -> str:
        return self.next("c")

    def issued(self, prefix: str) -> int:
        """How many ids were issued for ``prefix``."""
        return self._counters[prefix]
