"""Multi-round market simulation: the controlled-experiment driver.

Section 4.1 proposes validating fairness and transparency with
"objective measures such as quality of worker contribution and worker
retention ... in controlled experiments".  :class:`Session` is that
controlled experiment: a market run for ``rounds`` rounds, where each
round posts tasks, shows them, assigns, completes, reviews, pays,
discloses, and finally lets dissatisfied workers churn.

Worker satisfaction model
-------------------------
Each worker carries a satisfaction score in ``[0, 1]`` (start 1.0).
Per-round deltas, grounded in the frustrations the paper catalogues:

* accepted and paid work:                        ``+0.04``
* rejection *with* feedback:                     ``-0.05``
* rejection *without* feedback (opacity):        ``-0.18``
* accepted but unpaid (wage theft):              ``-0.25``
* non-worker-initiated interruption (Axiom 5):   ``-0.20``
* idle round (nothing assigned):                 ``-0.02``

Transparency mitigation: disclosures soften opacity-driven penalties.
With disclosure coverage ``tau`` in [0, 1] (fraction of the mandated
Axiom 6/7 fields the platform's policy discloses), every *opacity*
penalty (feedback-less rejection, idle uncertainty) is scaled by
``(1 - 0.6 tau)`` — informed workers attribute outcomes rather than
distrust the platform ([12, 16]: feedback and requester information
increase motivation).  Quality coupling: a worker's effective quality is
scaled by ``0.5 + 0.5 x satisfaction``, so unfair treatment degrades
contribution quality — the fairness/quality link E3 measures.

Departure: at the end of a round a worker leaves with probability
``churn = base_churn + max(0, threshold - satisfaction)``; satisfied
workers churn at the small base rate only.

Live auditing: with ``SessionConfig.live_audit`` set, the session
attaches a :class:`~repro.core.audit.StreamingAuditEngine` to the
platform trace and snapshots it at the end of every round, so each
:class:`SessionResult` carries the fairness verdict *as of each round*
(``round_audits``) and the violations are flagged the round they occur
(``new_violation_counts``) — the paper's §3.3.1 "fairness checks for
existing crowdsourcing systems" run against the live platform, at
per-round cost proportional to that round's events, not the whole
history.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Mapping, Protocol, Sequence

from repro.assignment.base import Assigner, AssignmentInstance
from repro.core.audit import AuditReport, StreamingAuditEngine
from repro.core.entities import Requester, Task, Worker
from repro.core.store import TraceStore, make_store
from repro.core.trace import PlatformTrace
from repro.errors import SimulationError
from repro.platform.behavior import BehaviorModel, DiligentBehavior, WorkProduct
from repro.platform.market import CrowdsourcingPlatform, PricingScheme
from repro.platform.review import ReviewPolicy
from repro.platform.rng import bernoulli, spawn
from repro.platform.visibility import VisibilityPolicy


class TransparencyEnforcer(Protocol):
    """Applies a transparency policy to the platform each round.

    Implemented by :class:`repro.transparency.enforcement.PolicyEnforcer`;
    ``coverage`` is the fraction of mandated disclosure fields the policy
    discloses (drives the satisfaction mitigation).
    """

    coverage: float

    def apply_round(self, platform: CrowdsourcingPlatform) -> None: ...


class _NoTransparency:
    """A fully opaque platform (coverage 0, discloses nothing)."""

    coverage = 0.0

    def apply_round(self, platform: CrowdsourcingPlatform) -> None:
        return None


@dataclass
class SessionConfig:
    """Parameters of a controlled market experiment."""

    rounds: int = 20
    tasks_per_round: int = 30
    capacity: int = 2
    seed: int = 0
    base_churn: float = 0.01
    satisfaction_threshold: float = 0.45
    cancel_probability: float = 0.0
    assigner: Assigner | None = None
    visibility: VisibilityPolicy | None = None
    review_policy: ReviewPolicy | None = None
    pricing: PricingScheme | None = None
    transparency: TransparencyEnforcer | None = None
    #: Attach a streaming auditor and snapshot it every round.
    live_audit: bool = False
    #: Trace storage: a backend name for
    #: :func:`~repro.core.store.make_store` or a zero-argument factory
    #: returning a fresh :class:`~repro.core.store.TraceStore` per run
    #: (a factory because each ``Session.run`` needs its own store).
    trace_store: str | Callable[[], TraceStore] | None = None

    def make_trace_store(self) -> TraceStore | None:
        """A fresh store for one run (None = backend default)."""
        if self.trace_store is None:
            return None
        if isinstance(self.trace_store, str):
            return make_store(self.trace_store)
        return self.trace_store()

    def __post_init__(self) -> None:
        if self.rounds < 1:
            raise SimulationError("rounds must be >= 1")
        if self.tasks_per_round < 0:
            raise SimulationError("tasks_per_round must be >= 0")
        if not 0.0 <= self.base_churn <= 1.0:
            raise SimulationError("base_churn must be in [0, 1]")
        if not 0.0 <= self.cancel_probability <= 1.0:
            raise SimulationError("cancel_probability must be in [0, 1]")


@dataclass(frozen=True)
class RoundStats:
    """Per-round observables of the session."""

    round_index: int
    active_workers: int
    departures: int
    assignments: int
    submissions: int
    acceptances: int
    mean_quality: float
    total_paid: float
    mean_satisfaction: float


@dataclass(frozen=True)
class SessionResult:
    """Everything a metric needs after a session run."""

    trace: PlatformTrace
    rounds: tuple[RoundStats, ...]
    final_satisfaction: Mapping[str, float]
    initial_workers: int
    #: One streaming-audit snapshot per round (``live_audit`` only).
    round_audits: tuple[AuditReport, ...] = ()

    def new_violation_counts(self) -> list[int]:
        """Violations first flagged in each round (``live_audit`` only).

        Compares the violation *lists* of consecutive round snapshots:
        a violation counts as new when it was absent from the previous
        snapshot.  Identity deliberately ignores the ``time`` field —
        sweep-style violations (undisclosed fields, undetected malice)
        are re-stamped with the trace end time at every snapshot and
        would otherwise re-count as new each round.  A verdict can also
        be *cleared* by later evidence (a payment settling, an audience
        converging); cleared violations simply stop appearing and never
        offset the count of new ones.
        """

        def identity(violation):
            return (
                violation.axiom_id,
                violation.message,
                violation.severity,
                violation.subjects,
                repr(sorted(violation.witness.items())),
            )

        counts: list[int] = []
        previous: list = []
        for report in self.round_audits:
            current = [identity(v) for v in report.violations]
            carried = list(previous)
            new = 0
            for key in current:
                if key in carried:
                    carried.remove(key)
                else:
                    new += 1
            counts.append(new)
            previous = current
        return counts

    @property
    def surviving_workers(self) -> int:
        return self.rounds[-1].active_workers if self.rounds else self.initial_workers

    @property
    def retention(self) -> float:
        """Fraction of the initial population still active at the end."""
        if self.initial_workers == 0:
            return 1.0
        return self.surviving_workers / self.initial_workers

    def retention_series(self) -> list[float]:
        """Active fraction after each round (the E2 series)."""
        if self.initial_workers == 0:
            return [1.0 for _ in self.rounds]
        return [r.active_workers / self.initial_workers for r in self.rounds]

    def quality_series(self) -> list[float]:
        return [r.mean_quality for r in self.rounds]


# Satisfaction deltas (documented in the module docstring).
_DELTA_PAID = 0.04
_DELTA_REJECT_FEEDBACK = -0.05
_DELTA_REJECT_SILENT = -0.18
_DELTA_UNPAID_ACCEPTED = -0.25
_DELTA_INTERRUPTED = -0.20
_DELTA_IDLE = -0.02
_OPACITY_MITIGATION = 0.6


class Session:
    """Runs a configured market for a fixed number of rounds."""

    def __init__(
        self,
        config: SessionConfig,
        workers: Sequence[Worker],
        behaviors: Mapping[str, BehaviorModel],
        requesters: Sequence[Requester],
        task_factory: Callable[[int, random.Random], list[Task]],
    ) -> None:
        """``task_factory(round_index, rng)`` returns the tasks to post
        that round; ``behaviors`` maps worker id -> behaviour model
        (missing workers default to diligent)."""
        self.config = config
        self._workers = list(workers)
        self._behaviors = dict(behaviors)
        self._requesters = list(requesters)
        self._task_factory = task_factory
        self._default_behavior = DiligentBehavior()

    def run(self) -> SessionResult:
        config = self.config
        rng = random.Random(config.seed)
        arrival_rng = spawn(rng, "arrivals")
        churn_rng = spawn(rng, "churn")
        cancel_rng = spawn(rng, "cancel")
        auditor = StreamingAuditEngine() if config.live_audit else None
        platform = CrowdsourcingPlatform(
            visibility=config.visibility,
            review_policy=config.review_policy,
            pricing=config.pricing,
            seed=rng.randrange(2**31),
            auditor=auditor,
            trace_store=config.make_trace_store(),
        )
        transparency = config.transparency or _NoTransparency()
        assigner = config.assigner
        satisfaction: dict[str, float] = {}
        for requester in self._requesters:
            platform.register_requester(requester)
        for worker in self._workers:
            platform.register_worker(worker)
            satisfaction[worker.worker_id] = 1.0

        stats: list[RoundStats] = []
        round_audits: list[AuditReport] = []
        for round_index in range(config.rounds):
            round_stats = self._run_round(
                round_index, platform, assigner, transparency, satisfaction,
                arrival_rng, churn_rng, cancel_rng,
            )
            stats.append(round_stats)
            if auditor is not None:
                round_audits.append(auditor.snapshot())
            platform.clock.tick(1)
        return SessionResult(
            trace=platform.trace,
            rounds=tuple(stats),
            final_satisfaction=dict(satisfaction),
            initial_workers=len(self._workers),
            round_audits=tuple(round_audits),
        )

    # ------------------------------------------------------------------

    def _run_round(
        self,
        round_index: int,
        platform: CrowdsourcingPlatform,
        assigner: Assigner | None,
        transparency: TransparencyEnforcer,
        satisfaction: dict[str, float],
        arrival_rng: random.Random,
        churn_rng: random.Random,
        cancel_rng: random.Random,
    ) -> RoundStats:
        config = self.config
        # 1. Post this round's tasks.
        for task in self._task_factory(round_index, arrival_rng):
            platform.post_task(task)

        # 2. Browse: every active worker sees their (policy-filtered) view.
        active = platform.active_workers
        visible: dict[str, list[Task]] = {}
        for worker in active:
            visible[worker.worker_id] = platform.browse(worker.worker_id)

        # 3. Assign.  With an assigner, build the instance from the
        # *union* of visible tasks (the assigner is platform-side); with
        # none, workers self-select from their own view.
        pairs: list[tuple[str, str]] = []
        if assigner is not None and active:
            task_pool: dict[str, Task] = {}
            for tasks in visible.values():
                for task in tasks:
                    task_pool[task.task_id] = task
            if task_pool:
                instance = AssignmentInstance(
                    workers=tuple(active),
                    tasks=tuple(task_pool.values()),
                    capacity=config.capacity,
                )
                result = assigner.assign(instance, arrival_rng)
                visible_sets = {
                    wid: {t.task_id for t in tasks} for wid, tasks in visible.items()
                }
                for pair in result.pairs:
                    # An assigner cannot hand a worker a task their view hid.
                    if pair.task_id in visible_sets.get(pair.worker_id, set()):
                        pairs.append((pair.worker_id, pair.task_id))
                        platform.assign(pair.worker_id, pair.task_id, assigner.name)
        else:
            for worker in active:
                options = sorted(
                    visible[worker.worker_id],
                    key=lambda t: (-t.reward, t.task_id),
                )
                for task in options[: config.capacity]:
                    pairs.append((worker.worker_id, task.task_id))
                    platform.assign(worker.worker_id, task.task_id, "self")

        # 4. Work, with optional mid-work cancellation, then review+pay.
        outcomes: dict[str, list[str]] = {w.worker_id: [] for w in active}
        submissions = 0
        acceptances = 0
        quality_sum = 0.0
        paid_total = 0.0
        for worker_id, task_id in pairs:
            if task_id not in {t.task_id for t in platform.open_tasks}:
                continue  # cancelled earlier this round
            platform.start_work(worker_id, task_id)
            if config.cancel_probability and bernoulli(
                cancel_rng, config.cancel_probability
            ):
                platform.cancel_task(task_id, reason="quota reached")
                outcomes[worker_id].append("interrupted")
                continue
            behavior = self._behaviors.get(worker_id, self._default_behavior)
            behavior = _satisfaction_scaled(behavior, satisfaction.get(worker_id, 1.0))
            contribution, accepted, amount = platform.process_contribution(
                worker_id, task_id, behavior
            )
            submissions += 1
            quality_sum += contribution.quality or 0.0
            paid_total += amount
            if accepted:
                acceptances += 1
                outcomes[worker_id].append("paid" if amount > 0 else "unpaid_accepted")
            else:
                review = platform.trace.reviews_by_contribution()[
                    contribution.contribution_id
                ]
                outcomes[worker_id].append(
                    "rejected_feedback" if review.feedback else "rejected_silent"
                )

        # 4b. Settle payments whose contractual delay has elapsed.
        platform.settle_due_payments()

        # 5. Adaptive assigners learn from this round's review outcomes.
        observe = getattr(assigner, "observe", None)
        if callable(observe):
            observe(platform.trace)

        # 6. Disclosures per the platform's transparency policy.
        transparency.apply_round(platform)

        # 7. Satisfaction update and churn.
        departures = 0
        tau = max(0.0, min(1.0, transparency.coverage))
        opacity_scale = 1.0 - _OPACITY_MITIGATION * tau
        for worker in active:
            wid = worker.worker_id
            events = outcomes.get(wid, [])
            delta = 0.0
            if not events:
                delta += _DELTA_IDLE * opacity_scale
            for outcome in events:
                if outcome == "paid":
                    delta += _DELTA_PAID
                elif outcome == "unpaid_accepted":
                    delta += _DELTA_UNPAID_ACCEPTED
                elif outcome == "rejected_feedback":
                    delta += _DELTA_REJECT_FEEDBACK
                elif outcome == "rejected_silent":
                    delta += _DELTA_REJECT_SILENT * opacity_scale
                elif outcome == "interrupted":
                    delta += _DELTA_INTERRUPTED
            satisfaction[wid] = max(0.0, min(1.0, satisfaction[wid] + delta))
            churn = config.base_churn + max(
                0.0, config.satisfaction_threshold - satisfaction[wid]
            )
            if bernoulli(churn_rng, min(1.0, churn)):
                platform.depart_worker(wid, reason="dissatisfied")
                departures += 1

        remaining_active = len(platform.active_workers)
        mean_quality = quality_sum / submissions if submissions else 0.0
        active_satisfaction = [
            satisfaction[w.worker_id] for w in platform.active_workers
        ]
        mean_satisfaction = (
            sum(active_satisfaction) / len(active_satisfaction)
            if active_satisfaction
            else 0.0
        )
        # Expire this round's unclaimed tasks so pools do not grow unboundedly.
        for task in platform.open_tasks:
            platform.close_task(task.task_id)
        return RoundStats(
            round_index=round_index,
            active_workers=remaining_active,
            departures=departures,
            assignments=len(pairs),
            submissions=submissions,
            acceptances=acceptances,
            mean_quality=mean_quality,
            total_paid=paid_total,
            mean_satisfaction=mean_satisfaction,
        )


class _ScaledBehavior:
    """Wraps a behaviour, scaling its quality by worker satisfaction."""

    def __init__(self, inner: BehaviorModel, scale: float) -> None:
        self._inner = inner
        self._scale = scale
        self.name = f"{inner.name}*{scale:.2f}"

    def produce(self, worker: Worker, task: Task, rng: random.Random) -> WorkProduct:
        product = self._inner.produce(worker, task, rng)
        return WorkProduct(
            payload=product.payload,
            quality=max(0.0, min(1.0, product.quality * self._scale)),
            work_time=product.work_time,
        )


def _satisfaction_scaled(behavior: BehaviorModel, satisfaction: float) -> BehaviorModel:
    """Quality scales with morale: ``0.5 + 0.5 x satisfaction``."""
    return _ScaledBehavior(behavior, 0.5 + 0.5 * satisfaction)
