"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one type to handle any library failure.  Subsystems
raise the most specific subclass that applies.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class EntityError(ReproError):
    """A task, worker, or requester is malformed or inconsistent."""


class UnknownEntityError(EntityError):
    """An identifier does not resolve to a registered entity."""


class VocabularyMismatchError(EntityError):
    """Two skill vectors were combined despite different vocabularies."""


class TraceError(ReproError):
    """A platform trace is malformed or violates event-ordering rules."""


class UnknownBackendError(TraceError, ValueError):
    """An unknown trace-store backend name was requested.

    Doubles as :class:`ValueError` so callers validating user input
    (CLI flags, config files) can catch the conventional type without
    importing the library hierarchy.
    """


class QueryError(TraceError):
    """A trace query is malformed (bad filter, unknown field/kind)."""


class IngestError(TraceError):
    """A live-ingestion source or runner hit an unrecoverable condition
    (corrupt export record, truncated/rotated source file, mismatched
    destination)."""


class CheckpointError(IngestError):
    """An ingest resume token is missing, half-written, or inconsistent
    with the destination store.  Raised instead of silently re-ingesting
    from zero — the operator decides whether to repair or start over."""


class ForensicsError(TraceError):
    """A store forensics operation (verify/repair) cannot proceed at
    all — the path is not a recognisable trace store, or the repair
    destination is unusable.  Corruption *inside* a recognisable store
    is never an exception: it becomes findings (verify) or manifest
    entries (repair)."""


class ReportError(ReproError):
    """A report cannot be rendered or exported — unknown format name,
    malformed document, or sink I/O failure."""


class ServiceError(ReproError):
    """Base class for audit-service failures.

    Subclasses carry the HTTP status code the service layer maps them
    to (``status``), so routers raise domain errors and the dispatch
    envelope turns them into responses uniformly.
    """

    status: int = 500


class BadRequestError(ServiceError):
    """A service request is malformed: missing/ill-typed body fields,
    unparseable parameters, or an unsupported option value."""

    status = 400


class UnknownTenantError(ServiceError):
    """A request addressed a tenant the service does not host."""

    status = 404


class TenantExistsError(ServiceError):
    """A tenant-create request named an already-registered tenant."""

    status = 409


class TenantClosedError(ServiceError):
    """A data operation addressed a tenant whose store is closed.
    Reopen it first (``POST /tenants/{name}/open``)."""

    status = 409


class ServiceClientError(ReproError):
    """The service client received an error response (or no response).

    ``status`` is the HTTP status code (0 when the request never got a
    response — connection refused, timeout)."""

    def __init__(self, message: str, status: int = 0) -> None:
        super().__init__(message)
        self.status = status


class AssignmentError(ReproError):
    """A task-assignment algorithm received an infeasible instance."""


class CompensationError(ReproError):
    """A compensation scheme was asked to price an invalid contribution."""


class PolicyError(ReproError):
    """Base class for transparency-policy errors."""


class PolicySyntaxError(PolicyError):
    """The transparency DSL source text could not be parsed."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class PolicySemanticsError(PolicyError):
    """The policy parsed but refers to unknown fields or subjects."""


class AuditError(ReproError):
    """The audit engine was configured inconsistently."""


class SimulationError(ReproError):
    """The platform simulator reached an invalid state."""
