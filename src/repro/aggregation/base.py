"""Aggregator protocol and answer collection."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

from repro.core.events import ContributionSubmitted
from repro.core.trace import PlatformTrace


@dataclass(frozen=True)
class TaskAnswers:
    """All answers one task received: (worker_id, payload) pairs."""

    task_id: str
    answers: tuple[tuple[str, object], ...]

    def payloads(self) -> list[object]:
        return [payload for _, payload in self.answers]

    def workers(self) -> list[str]:
        return [worker_id for worker_id, _ in self.answers]

    def __len__(self) -> int:
        return len(self.answers)


class Aggregator(Protocol):
    """Combines a task's redundant answers into one (or None)."""

    name: str

    def aggregate(self, answers: TaskAnswers) -> object | None: ...


def collect_answers(trace: PlatformTrace) -> dict[str, TaskAnswers]:
    """Group every submitted payload by task.

    A worker who answered the same task several times keeps only their
    latest answer (platforms treat resubmission as replacement).
    """
    latest: dict[str, dict[str, object]] = {}
    for event in trace.of_kind(ContributionSubmitted):
        contribution = event.contribution
        latest.setdefault(contribution.task_id, {})[
            contribution.worker_id
        ] = contribution.payload
    return {
        task_id: TaskAnswers(
            task_id=task_id,
            answers=tuple(sorted(by_worker.items())),
        )
        for task_id, by_worker in latest.items()
    }


def normalize_payload(payload: object) -> object:
    """A hashable, comparison-stable form of an answer payload."""
    if isinstance(payload, list):
        return tuple(payload)
    if isinstance(payload, float):
        return round(payload, 6)
    return payload
