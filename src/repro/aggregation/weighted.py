"""Reliability-weighted voting.

Each worker's vote carries the log-odds weight ``log(p / (1 - p))`` of
their estimated accuracy ``p`` — the optimal per-vote weight for
independent one-coin workers (the insight behind KOS message-passing
[11]).  Workers without an estimate get the prior accuracy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping

from repro.aggregation.base import TaskAnswers, normalize_payload

#: Accuracies are clipped into this open interval so log-odds stay finite.
_EPSILON = 1e-3


def log_odds(accuracy: float) -> float:
    """The optimal vote weight for a worker of the given accuracy."""
    clipped = min(1.0 - _EPSILON, max(_EPSILON, accuracy))
    return math.log(clipped / (1.0 - clipped))


@dataclass(frozen=True)
class WeightedVote:
    """Log-odds weighted plurality."""

    reliability: Mapping[str, float] = field(default_factory=dict)
    prior_accuracy: float = 0.7
    name: str = "weighted"

    def __post_init__(self) -> None:
        if not 0.0 < self.prior_accuracy < 1.0:
            raise ValueError("prior_accuracy must be in (0, 1)")

    def weight_for(self, worker_id: str) -> float:
        accuracy = self.reliability.get(worker_id, self.prior_accuracy)
        return log_odds(accuracy)

    def aggregate(self, answers: TaskAnswers) -> object | None:
        if not answers.answers:
            return None
        scores: dict[object, float] = {}
        for worker_id, payload in answers.answers:
            key = normalize_payload(payload)
            scores[key] = scores.get(key, 0.0) + self.weight_for(worker_id)
        # Deterministic tie-break on repr, like MajorityVote.
        best_score = max(scores.values())
        tied = sorted(
            (payload for payload, score in scores.items()
             if abs(score - best_score) < 1e-12),
            key=repr,
        )
        return tied[0]
