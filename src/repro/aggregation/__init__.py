"""Crowd-answer aggregation.

Redundant task assignment (the KOS budget-optimal scheme [11], the
spam countermeasures of Vuurens et al. [20]) only pays off if the
platform can *aggregate* the redundant answers into one reliable
result.  This package provides the standard aggregators:

* :class:`MajorityVote` — unweighted plurality;
* :class:`WeightedVote` — reliability-weighted (log-odds) voting;
* :class:`OneCoinEM` — Dawid-Skene-style EM on the one-coin model,
  jointly estimating worker accuracies and true answers with no
  supervision.

All share the :class:`Aggregator` protocol and the
:func:`aggregate_trace` driver that rolls a whole trace up to one
answer per task.
"""

from repro.aggregation.base import Aggregator, TaskAnswers, collect_answers
from repro.aggregation.em import OneCoinEM
from repro.aggregation.majority import MajorityVote
from repro.aggregation.redundancy import (
    empirical_accuracy_curve,
    majority_error_bound,
)
from repro.aggregation.weighted import WeightedVote

__all__ = [
    "Aggregator",
    "MajorityVote",
    "OneCoinEM",
    "TaskAnswers",
    "WeightedVote",
    "aggregate_trace",
    "collect_answers",
    "empirical_accuracy_curve",
    "majority_error_bound",
]


def aggregate_trace(aggregator: Aggregator, trace) -> dict[str, object]:
    """One aggregated answer per task with >= 1 contribution."""
    answers = collect_answers(trace)
    results: dict[str, object] = {}
    for task_id, task_answers in answers.items():
        aggregated = aggregator.aggregate(task_answers)
        if aggregated is not None:
            results[task_id] = aggregated
    return results
