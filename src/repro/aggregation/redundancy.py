"""Redundancy/accuracy trade-off curves (the KOS budget question [11]).

Budget-optimal allocation asks: given workers of accuracy ``p``, how
many redundant answers buy a target reliability?  This module provides
both the Chernoff-style analytic bound and an empirical curve from
simulated voting — the E9 ablation compares them and the aggregators.
"""

from __future__ import annotations

import math
import random
from typing import Sequence

from repro.aggregation.base import TaskAnswers
from repro.aggregation.majority import MajorityVote


def majority_error_bound(worker_accuracy: float, redundancy: int) -> float:
    """Chernoff upper bound on majority-vote error.

    ``exp(-2 k (p - 1/2)^2)`` for ``k`` i.i.d. voters of accuracy
    ``p > 0.5``; capped at 1.0.
    """
    if not 0.5 < worker_accuracy <= 1.0:
        raise ValueError("bound requires accuracy in (0.5, 1]")
    if redundancy < 1:
        raise ValueError("redundancy must be >= 1")
    margin = worker_accuracy - 0.5
    return min(1.0, math.exp(-2.0 * redundancy * margin * margin))


def simulate_majority_accuracy(
    worker_accuracy: float,
    redundancy: int,
    n_tasks: int,
    rng: random.Random,
    n_labels: int = 4,
) -> float:
    """Empirical majority-vote accuracy over simulated label tasks."""
    if not 0.0 <= worker_accuracy <= 1.0:
        raise ValueError("accuracy must be in [0, 1]")
    if redundancy < 1 or n_tasks < 1:
        raise ValueError("redundancy and n_tasks must be >= 1")
    labels = [chr(ord("A") + i) for i in range(n_labels)]
    vote = MajorityVote(break_ties=False)
    correct = 0
    for task_index in range(n_tasks):
        truth = labels[task_index % n_labels]
        wrong = [label for label in labels if label != truth]
        answers = []
        for voter in range(redundancy):
            if rng.random() < worker_accuracy:
                answers.append((f"w{voter}", truth))
            else:
                answers.append((f"w{voter}", rng.choice(wrong)))
        result = vote.aggregate(
            TaskAnswers(task_id=f"t{task_index}", answers=tuple(answers))
        )
        if result == truth:
            correct += 1
    return correct / n_tasks


def empirical_accuracy_curve(
    worker_accuracy: float,
    redundancies: Sequence[int],
    n_tasks: int = 500,
    seed: int = 0,
) -> dict[int, float]:
    """Majority accuracy at each redundancy level (the E9 'figure')."""
    rng = random.Random(seed)
    return {
        redundancy: simulate_majority_accuracy(
            worker_accuracy, redundancy, n_tasks, rng
        )
        for redundancy in redundancies
    }
