"""Unweighted majority (plurality) vote."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.aggregation.base import TaskAnswers, normalize_payload


@dataclass(frozen=True)
class MajorityVote:
    """Plurality vote; ties resolve deterministically or abstain.

    ``break_ties`` selects the lexicographically smallest of the tied
    answers (reproducible); with ``break_ties=False`` a tie aggregates
    to ``None`` (abstention), which callers can route to an expert.
    """

    break_ties: bool = True
    name: str = "majority"

    def aggregate(self, answers: TaskAnswers) -> object | None:
        if not answers.answers:
            return None
        counts = Counter(normalize_payload(p) for p in answers.payloads())
        ranked = counts.most_common()
        top_count = ranked[0][1]
        tied = sorted(
            (payload for payload, count in ranked if count == top_count),
            key=repr,
        )
        if len(tied) > 1 and not self.break_ties:
            return None
        return tied[0]
