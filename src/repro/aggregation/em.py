"""One-coin Dawid-Skene EM: unsupervised accuracy + answer estimation.

The one-coin model: worker ``w`` answers any task correctly with a
single accuracy ``p_w``.  EM alternates:

* **E-step** — posterior over each task's true answer given current
  accuracies (log-odds weighted voting, soft);
* **M-step** — re-estimate each worker's accuracy as their expected
  agreement with the posteriors.

This is the classical unsupervised alternative to gold questions and
is the estimator budget-optimal allocation presumes [11].
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

from repro.aggregation.base import TaskAnswers, normalize_payload

_EPSILON = 1e-3


@dataclass(frozen=True)
class OneCoinEM:
    """EM on the one-coin annotator model over categorical answers."""

    iterations: int = 20
    prior_accuracy: float = 0.7
    name: str = "one_coin_em"

    def __post_init__(self) -> None:
        if self.iterations < 1:
            raise ValueError("iterations must be >= 1")
        if not 0.0 < self.prior_accuracy < 1.0:
            raise ValueError("prior_accuracy must be in (0, 1)")

    # ------------------------------------------------------------------

    def fit(
        self, tasks: Mapping[str, TaskAnswers]
    ) -> tuple[dict[str, object], dict[str, float]]:
        """Jointly estimate (answers per task, accuracy per worker)."""
        # Normalize once; collect label spaces per task.
        votes: dict[str, list[tuple[str, object]]] = {
            task_id: [
                (worker_id, normalize_payload(payload))
                for worker_id, payload in answers.answers
            ]
            for task_id, answers in tasks.items()
            if answers.answers
        }
        workers = sorted({w for vs in votes.values() for w, _ in vs})
        accuracy = {w: self.prior_accuracy for w in workers}
        posteriors: dict[str, dict[object, float]] = {}
        for _ in range(self.iterations):
            posteriors = self._e_step(votes, accuracy)
            accuracy = self._m_step(votes, posteriors, accuracy)
        answers = {
            task_id: max(
                sorted(posterior, key=repr), key=lambda a: posterior[a]
            )
            for task_id, posterior in posteriors.items()
        }
        return answers, accuracy

    def aggregate(self, answers: TaskAnswers) -> object | None:
        """Single-task aggregation (protocol compliance): with one task
        EM reduces to prior-weighted majority."""
        if not answers.answers:
            return None
        estimated, _ = self.fit({answers.task_id: answers})
        return estimated.get(answers.task_id)

    # ------------------------------------------------------------------

    def _e_step(
        self,
        votes: dict[str, list[tuple[str, object]]],
        accuracy: dict[str, float],
    ) -> dict[str, dict[object, float]]:
        posteriors: dict[str, dict[object, float]] = {}
        for task_id, task_votes in votes.items():
            labels = sorted({payload for _, payload in task_votes}, key=repr)
            # Uniform wrong-label mass over the other observed labels.
            n_alternatives = max(1, len(labels) - 1)
            log_scores = {}
            for label in labels:
                total = 0.0
                for worker_id, payload in task_votes:
                    p = min(1.0 - _EPSILON, max(_EPSILON, accuracy[worker_id]))
                    if payload == label:
                        total += math.log(p)
                    else:
                        total += math.log((1.0 - p) / n_alternatives)
                log_scores[label] = total
            peak = max(log_scores.values())
            unnormalized = {
                label: math.exp(score - peak)
                for label, score in log_scores.items()
            }
            normalizer = sum(unnormalized.values())
            posteriors[task_id] = {
                label: value / normalizer
                for label, value in unnormalized.items()
            }
        return posteriors

    def _m_step(
        self,
        votes: dict[str, list[tuple[str, object]]],
        posteriors: dict[str, dict[object, float]],
        previous: dict[str, float],
    ) -> dict[str, float]:
        agreement: dict[str, float] = {w: 0.0 for w in previous}
        count: dict[str, int] = {w: 0 for w in previous}
        for task_id, task_votes in votes.items():
            posterior = posteriors[task_id]
            for worker_id, payload in task_votes:
                agreement[worker_id] += posterior.get(payload, 0.0)
                count[worker_id] += 1
        # Laplace-smoothed toward the prior so single-task workers do
        # not saturate to 0/1.
        smoothing = 1.0
        return {
            worker_id: (
                (agreement[worker_id] + smoothing * self.prior_accuracy)
                / (count[worker_id] + smoothing)
            )
            for worker_id in previous
        }
