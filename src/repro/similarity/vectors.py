"""Similarity over Boolean vectors and attribute mappings.

Cosine similarity is the measure the paper names for skill vectors
(Axiom 2); Jaccard is provided as an alternative.  Attribute-mapping
similarity supports Axiom 1's comparison of ``A_w`` and ``C_w``.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

from repro.core.entities import SkillVector


def cosine_similarity(left: Sequence[float], right: Sequence[float]) -> float:
    """Cosine similarity of two numeric vectors, clipped to ``[0, 1]``.

    Two zero vectors are defined as identical (1.0); a zero vector
    against a non-zero vector scores 0.0.
    """
    if len(left) != len(right):
        raise ValueError(
            f"vectors have different dimensions: {len(left)} vs {len(right)}"
        )
    dot = sum(a * b for a, b in zip(left, right))
    norm_left = math.sqrt(sum(a * a for a in left))
    norm_right = math.sqrt(sum(b * b for b in right))
    if norm_left == 0.0 and norm_right == 0.0:
        return 1.0
    if norm_left == 0.0 or norm_right == 0.0:
        return 0.0
    return max(0.0, min(1.0, dot / (norm_left * norm_right)))


def jaccard_similarity(left: Sequence[bool], right: Sequence[bool]) -> float:
    """Jaccard similarity of two Boolean vectors (empty/empty = 1.0)."""
    if len(left) != len(right):
        raise ValueError(
            f"vectors have different dimensions: {len(left)} vs {len(right)}"
        )
    intersection = sum(a and b for a, b in zip(left, right))
    union = sum(a or b for a, b in zip(left, right))
    return 1.0 if union == 0 else intersection / union


def skill_cosine(left: SkillVector, right: SkillVector) -> float:
    """Cosine similarity of two skill vectors (the Axiom 2 measure)."""
    return cosine_similarity(left.as_floats(), right.as_floats())


def skill_jaccard(left: SkillVector, right: SkillVector) -> float:
    """Jaccard similarity of two skill vectors."""
    return jaccard_similarity(left.bits, right.bits)


def attribute_overlap_similarity(
    left: Mapping[str, object],
    right: Mapping[str, object],
    numeric_tolerance: float = 0.0,
) -> float:
    """Fraction of shared attribute keys holding (near-)equal values.

    Keys present in only one mapping count as disagreements — a worker
    who declares an attribute the other withholds is *not* similar on
    it.  Numeric values compare within ``numeric_tolerance`` (absolute).
    Two empty mappings are identical (1.0).
    """
    keys = set(left) | set(right)
    if not keys:
        return 1.0
    agreements = 0
    for key in keys:
        if key not in left or key not in right:
            continue
        a, b = left[key], right[key]
        both_numeric = isinstance(a, (int, float)) and isinstance(b, (int, float))
        # bool is an int subclass; treat bools as categorical, not numeric.
        if isinstance(a, bool) or isinstance(b, bool):
            both_numeric = False
        if both_numeric:
            if abs(float(a) - float(b)) <= numeric_tolerance:
                agreements += 1
        elif a == b:
            agreements += 1
    return agreements / len(keys)
