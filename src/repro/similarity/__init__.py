"""Similarity measures used by the fairness axioms.

The paper leaves "similar" deliberately open: "Similarity can be
platform-dependent and ranges from perfect equality to threshold-based
similarity" (Axiom 1), "Skill similarity can be computed using different
measures such as cosine similarity" (Axiom 2), and for contributions
"n-grams could be used [4] ... for ranked lists ... Discounted
Cumulative Gain [10]" (Axiom 3).  This package provides each of those
measures behind one protocol so axiom checkers take the measure as a
parameter.
"""

from repro.similarity.base import (
    Similarity,
    SimilarityThreshold,
    exact_equality,
    similar,
)
from repro.similarity.contributions import ContributionSimilarity
from repro.similarity.numeric import (
    absolute_tolerance_similarity,
    relative_tolerance_similarity,
    reward_comparability,
)
from repro.similarity.ranking import dcg, kendall_tau_similarity, ndcg, ranked_list_similarity
from repro.similarity.text import ngram_profile, ngram_similarity
from repro.similarity.vectors import (
    attribute_overlap_similarity,
    cosine_similarity,
    jaccard_similarity,
    skill_cosine,
    skill_jaccard,
)

__all__ = [
    "ContributionSimilarity",
    "Similarity",
    "SimilarityThreshold",
    "absolute_tolerance_similarity",
    "attribute_overlap_similarity",
    "cosine_similarity",
    "dcg",
    "exact_equality",
    "jaccard_similarity",
    "kendall_tau_similarity",
    "ndcg",
    "ngram_profile",
    "ngram_similarity",
    "ranked_list_similarity",
    "relative_tolerance_similarity",
    "reward_comparability",
    "similar",
    "skill_cosine",
    "skill_jaccard",
]
