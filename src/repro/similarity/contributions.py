"""Kind-aware contribution similarity (Axiom 3).

Axiom 3 compares contributions of two workers on the same task, with a
measure that "depend[s] on the nature of those contributions".  A
:class:`ContributionSimilarity` dispatches on the task kind:

* ``label`` / categorical payloads → exact equality;
* ``text`` payloads → n-gram profile cosine (Damashek [4]);
* ``ranking`` payloads → symmetric nDCG [10];
* numeric payloads → relative tolerance.

Unknown kinds fall back on exact equality, the strictest judgement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from repro.core.entities import Contribution
from repro.similarity.base import exact_equality
from repro.similarity.numeric import relative_tolerance_similarity
from repro.similarity.ranking import ranked_list_similarity
from repro.similarity.text import ngram_similarity


def _text_measure(left: object, right: object) -> float:
    return ngram_similarity(str(left), str(right))


def _ranking_measure(left: object, right: object) -> float:
    if not isinstance(left, Sequence) or not isinstance(right, Sequence):
        return exact_equality(left, right)
    return ranked_list_similarity(list(left), list(right))


def _numeric_measure(left: object, right: object) -> float:
    if not isinstance(left, (int, float)) or not isinstance(right, (int, float)):
        return exact_equality(left, right)
    return relative_tolerance_similarity(float(left), float(right))


_DEFAULT_MEASURES: dict[str, Callable[[object, object], float]] = {
    "label": exact_equality,
    "text": _text_measure,
    "ranking": _ranking_measure,
    "numeric": _numeric_measure,
}


@dataclass(frozen=True)
class ContributionSimilarity:
    """Similarity of two contributions to the *same* task.

    ``measures`` maps a task kind to a payload similarity; kinds not in
    the map use exact equality.  Extend by passing extra measures.
    """

    measures: Mapping[str, Callable[[object, object], float]] = field(
        default_factory=lambda: dict(_DEFAULT_MEASURES)
    )

    def measure_for(self, kind: str) -> Callable[[object, object], float]:
        """The payload measure used for a task kind."""
        return self.measures.get(kind, exact_equality)

    def __call__(
        self, left: Contribution, right: Contribution, kind: str = "label"
    ) -> float:
        if left.task_id != right.task_id:
            raise ValueError(
                "contribution similarity is defined only for the same task "
                f"({left.task_id} vs {right.task_id})"
            )
        return self.measure_for(kind)(left.payload, right.payload)

    def payloads(self, left: object, right: object, kind: str = "label") -> float:
        """Similarity of two raw payloads of the given kind."""
        return self.measure_for(kind)(left, right)
