"""Numeric similarity: tolerances and reward comparability.

Axiom 2 asks whether two tasks "offer comparable rewards ``d_ti`` and
``d_tj``"; :func:`reward_comparability` makes that judgement continuous
so it can feed a :class:`repro.similarity.base.SimilarityThreshold`.
"""

from __future__ import annotations


def absolute_tolerance_similarity(left: float, right: float, tolerance: float = 0.0) -> float:
    """1.0 when ``|left - right| <= tolerance``, decaying linearly to 0
    at twice the tolerance; with ``tolerance == 0`` this is exact
    equality on floats."""
    if tolerance < 0:
        raise ValueError(f"tolerance must be non-negative, got {tolerance}")
    gap = abs(left - right)
    if tolerance == 0.0:
        return 1.0 if gap == 0.0 else 0.0
    if gap <= tolerance:
        return 1.0
    if gap >= 2 * tolerance:
        return 0.0
    return 1.0 - (gap - tolerance) / tolerance


def relative_tolerance_similarity(left: float, right: float, tolerance: float = 0.1) -> float:
    """Similarity based on relative gap ``|l - r| / max(|l|, |r|)``.

    Returns 1.0 when the relative gap is within ``tolerance``, then
    decays linearly, reaching 0 at three times the tolerance — values
    whose gap triples the allowance are simply not comparable.  Two
    zeros are identical.  A zero tolerance is exact equality.
    """
    if tolerance < 0:
        raise ValueError(f"tolerance must be non-negative, got {tolerance}")
    scale = max(abs(left), abs(right))
    if scale == 0.0:
        return 1.0
    gap = abs(left - right) / scale
    if tolerance == 0.0:
        return 1.0 if gap == 0.0 else 0.0
    if gap <= tolerance:
        return 1.0
    if gap >= 3 * tolerance:
        return 0.0
    return 1.0 - (gap - tolerance) / (2 * tolerance)


def reward_comparability(left: float, right: float, tolerance: float = 0.1) -> float:
    """Are two task rewards comparable (Axiom 2)?

    A thin, intention-revealing wrapper over relative tolerance: rewards
    of 0.10 and 0.11 are comparable at the default 10 % tolerance;
    0.10 and 0.50 are not.
    """
    if left < 0 or right < 0:
        raise ValueError("rewards must be non-negative")
    return relative_tolerance_similarity(left, right, tolerance)
