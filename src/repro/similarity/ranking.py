"""Ranked-list similarity: DCG/nDCG [10] and Kendall tau.

Axiom 3 suggests Discounted Cumulative Gain for ranked-list
contributions.  We treat one list as the reference relevance ordering
and compute the nDCG of the other against it; the symmetrized version
(:func:`ranked_list_similarity`) averages both directions so the
measure is a proper similarity.
"""

from __future__ import annotations

import math
from typing import Hashable, Sequence


def dcg(relevances: Sequence[float]) -> float:
    """Discounted cumulative gain of a relevance sequence.

    Uses the classic Jarvelin-Kekalainen formulation
    ``sum(rel_i / log2(i + 1))`` with 1-based positions.
    """
    return sum(
        rel / math.log2(position + 1)
        for position, rel in enumerate(relevances, start=1)
    )


def ndcg(relevances: Sequence[float]) -> float:
    """Normalized DCG: DCG divided by the DCG of the ideal ordering."""
    if not relevances:
        return 1.0
    if any(rel < 0 for rel in relevances):
        raise ValueError("relevances must be non-negative")
    ideal = dcg(sorted(relevances, reverse=True))
    if ideal == 0.0:
        return 1.0
    return dcg(relevances) / ideal


def _ndcg_of_list_against_reference(
    candidate: Sequence[Hashable], reference: Sequence[Hashable]
) -> float:
    """nDCG of ``candidate`` using graded relevance from ``reference``.

    An item at position ``i`` (0-based) of the reference list of length
    ``k`` has relevance ``k - i``; items absent from the reference have
    relevance 0.
    """
    k = len(reference)
    relevance = {item: k - i for i, item in enumerate(reference)}
    gains = [float(relevance.get(item, 0)) for item in candidate]
    ideal = dcg(sorted(relevance.values(), reverse=True))
    if ideal == 0.0:
        return 1.0 if not gains or all(g == 0 for g in gains) else 0.0
    return min(1.0, dcg(gains) / ideal)


def ranked_list_similarity(
    left: Sequence[Hashable], right: Sequence[Hashable]
) -> float:
    """Symmetric nDCG similarity of two ranked lists, in [0, 1].

    1.0 for identical lists; near 0 for disjoint lists.  This is the
    Axiom 3 measure for ranked-list contributions.
    """
    if not left and not right:
        return 1.0
    forward = _ndcg_of_list_against_reference(left, right)
    backward = _ndcg_of_list_against_reference(right, left)
    return (forward + backward) / 2.0


def kendall_tau_similarity(
    left: Sequence[Hashable], right: Sequence[Hashable]
) -> float:
    """Kendall-tau-based similarity of two rankings of the same items.

    Only the items common to both lists are compared; the tau distance
    (fraction of discordant pairs) is mapped to ``1 - distance``.  Lists
    sharing fewer than two items score 1.0 if equal, else 0.5 (no
    ordering evidence either way).
    """
    common = [item for item in left if item in set(right)]
    if len(common) < 2:
        return 1.0 if list(left) == list(right) else 0.5
    right_pos = {item: i for i, item in enumerate(right)}
    discordant = 0
    total = 0
    for i in range(len(common)):
        for j in range(i + 1, len(common)):
            total += 1
            if right_pos[common[i]] > right_pos[common[j]]:
                discordant += 1
    return 1.0 - discordant / total
