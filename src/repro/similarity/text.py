"""N-gram text similarity (Damashek [4]).

Axiom 3 compares textual contributions; the paper points to n-gram
profiles: "for textual contributions, n-grams could be used [4]".  We
implement Damashek-style character n-gram profiles compared by cosine
similarity, which is language-independent and robust to small edits.
"""

from __future__ import annotations

import math
from collections import Counter


def ngram_profile(text: str, n: int = 3, normalize_case: bool = True) -> Counter:
    """Character n-gram frequency profile of ``text``.

    Whitespace runs collapse to single spaces so formatting differences
    do not dominate.  Texts shorter than ``n`` produce a profile of the
    whole (padded) text, so very short strings still compare sensibly.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    cleaned = " ".join(text.split())
    if normalize_case:
        cleaned = cleaned.lower()
    if not cleaned:
        return Counter()
    if len(cleaned) < n:
        return Counter({cleaned: 1})
    return Counter(cleaned[i : i + n] for i in range(len(cleaned) - n + 1))


def _cosine(left: Counter, right: Counter) -> float:
    if not left and not right:
        return 1.0
    if not left or not right:
        return 0.0
    shared = set(left) & set(right)
    dot = sum(left[g] * right[g] for g in shared)
    norm_left = math.sqrt(sum(c * c for c in left.values()))
    norm_right = math.sqrt(sum(c * c for c in right.values()))
    return max(0.0, min(1.0, dot / (norm_left * norm_right)))


def ngram_similarity(left: str, right: str, n: int = 3) -> float:
    """Cosine similarity of the two texts' n-gram profiles, in [0, 1]."""
    return _cosine(ngram_profile(left, n), ngram_profile(right, n))
