"""Similarity protocol and threshold wrapper.

A *similarity* is any callable mapping two objects to a score in
``[0, 1]`` (1 = identical).  A :class:`SimilarityThreshold` turns a
similarity into the Boolean "similar enough" judgement the axioms use,
making the paper's "perfect equality to threshold-based similarity"
spectrum a single parameter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol, TypeVar, runtime_checkable

T = TypeVar("T", contravariant=True)


@runtime_checkable
class Similarity(Protocol[T]):
    """Callable mapping two values to a similarity score in ``[0, 1]``."""

    def __call__(self, left: T, right: T) -> float: ...


def exact_equality(left: object, right: object) -> float:
    """1.0 when the values are equal, else 0.0 (the strictest measure)."""
    return 1.0 if left == right else 0.0


@dataclass(frozen=True)
class SimilarityThreshold:
    """Boolean "similar enough" judgement: ``score >= threshold``.

    ``threshold=1.0`` recovers perfect equality; lower thresholds give
    the threshold-based similarity the paper mentions.
    """

    measure: Callable[[object, object], float]
    threshold: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.threshold <= 1.0:
            raise ValueError(f"threshold must be in [0, 1], got {self.threshold}")

    def __call__(self, left: object, right: object) -> bool:
        return self.measure(left, right) >= self.threshold

    def score(self, left: object, right: object) -> float:
        """The underlying continuous score."""
        return self.measure(left, right)


def similar(
    left: object,
    right: object,
    measure: Callable[[object, object], float] = exact_equality,
    threshold: float = 1.0,
) -> bool:
    """Convenience one-shot threshold judgement."""
    return SimilarityThreshold(measure, threshold)(left, right)
