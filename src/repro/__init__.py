"""repro — reproduction of "Fairness and Transparency in Crowdsourcing".

(Borromeo, Laurent, Toyama, Amer-Yahia; EDBT 2017.)

The library has three layers:

1. **Substrate** — an event-sourced crowdsourcing market simulator
   (:mod:`repro.platform`), task-assignment algorithms
   (:mod:`repro.assignment`), compensation strategies
   (:mod:`repro.compensation`), malice detectors (:mod:`repro.malice`),
   similarity measures (:mod:`repro.similarity`), and synthetic
   workloads (:mod:`repro.workloads`).
2. **Core contribution** — the paper's seven fairness/transparency
   axioms as executable trace checkers plus the audit engine
   (:mod:`repro.core`), and the declarative transparency language with
   its full toolchain (:mod:`repro.transparency`).
3. **Validation** — the objective measures of Section 4
   (:mod:`repro.metrics`) and the experiment harness
   (:mod:`repro.experiments`, runnable via ``python -m repro``).

Quickstart::

    from repro import audit_scenario
    report = audit_scenario("biased_visibility")
    print(*report.summary_lines(), sep="\\n")
"""

from repro.core import (
    AuditEngine,
    AuditReport,
    Contribution,
    PlatformTrace,
    Requester,
    SkillVector,
    SkillVocabulary,
    Task,
    Violation,
    Worker,
    default_registry,
)
from repro.errors import ReproError
from repro.transparency import TransparencyPolicy, parse_policy

__version__ = "1.0.0"

__all__ = [
    "AuditEngine",
    "AuditReport",
    "Contribution",
    "PlatformTrace",
    "ReproError",
    "Requester",
    "SkillVector",
    "SkillVocabulary",
    "Task",
    "TransparencyPolicy",
    "Violation",
    "Worker",
    "audit_scenario",
    "default_registry",
    "parse_policy",
    "__version__",
]


def audit_scenario(name: str, seed: int = 0) -> AuditReport:
    """Build a named Section 3.1 scenario and audit it.

    A one-call tour of the library: ``name`` is one of the scenario
    builders in :mod:`repro.workloads.scenarios` (e.g. ``"clean"``,
    ``"biased_visibility"``, ``"survey_cancellation"``).
    """
    from repro.workloads import scenarios as scenario_module

    builder = getattr(scenario_module, f"{name}_scenario", None)
    if builder is None:
        available = sorted(
            attr[: -len("_scenario")]
            for attr in dir(scenario_module)
            if attr.endswith("_scenario")
        )
        raise ReproError(
            f"unknown scenario {name!r}; available: {available}"
        )
    scenario = builder(seed=seed)
    return AuditEngine().audit(scenario.trace)
