"""Task stream generation.

Streams produce batches of tasks per round with controlled skill
requirements, reward distributions, kinds, and gold answers — the knobs
the experiments sweep.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.entities import SkillVocabulary, Task

#: Reward tiers (low, mid, premium) used by the default stream.
_REWARD_TIERS: tuple[float, ...] = (0.05, 0.10, 0.50)


def uniform_tasks(
    count: int,
    vocabulary: SkillVocabulary,
    requester_id: str = "r0001",
    reward: float = 0.1,
    skills: tuple[str, ...] = (),
    kind: str = "label",
    prefix: str = "t",
    start_index: int = 1,
    gold: bool = True,
) -> list[Task]:
    """``count`` identical-spec tasks (comparable under Axiom 2)."""
    tasks = []
    for index in range(count):
        task_id = f"{prefix}{start_index + index:04d}"
        tasks.append(
            Task(
                task_id=task_id,
                requester_id=requester_id,
                required_skills=vocabulary.vector(skills),
                reward=reward,
                kind=kind,
                gold_answer="A" if gold and kind == "label" else None,
            )
        )
    return tasks


def task_batch(
    count: int,
    vocabulary: SkillVocabulary,
    rng: random.Random,
    requester_ids: tuple[str, ...] = ("r0001",),
    kinds: tuple[str, ...] = ("label",),
    skills_per_task: int = 2,
    reward_tiers: tuple[float, ...] = _REWARD_TIERS,
    prefix: str = "t",
    start_index: int = 1,
    gold_fraction: float = 0.5,
) -> list[Task]:
    """A heterogeneous batch: random skills, tiered rewards, mixed kinds."""
    if count < 0:
        raise ValueError("count must be >= 0")
    tasks: list[Task] = []
    n_skills = min(skills_per_task, len(vocabulary))
    for index in range(count):
        task_id = f"{prefix}{start_index + index:04d}"
        kind = kinds[index % len(kinds)]
        skills = tuple(rng.sample(vocabulary.keywords, n_skills))
        reward = rng.choice(reward_tiers)
        gold = None
        if kind == "label" and rng.random() < gold_fraction:
            gold = rng.choice(("A", "B", "C", "D"))
        tasks.append(
            Task(
                task_id=task_id,
                requester_id=requester_ids[index % len(requester_ids)],
                required_skills=vocabulary.vector(skills),
                reward=reward,
                kind=kind,
                duration=1 + index % 3,
                gold_answer=gold,
            )
        )
    return tasks


@dataclass
class TaskStream:
    """A stateful per-round task factory for :class:`repro.platform.Session`.

    Calling the stream with ``(round_index, rng)`` returns that round's
    batch with globally unique ids.
    """

    vocabulary: SkillVocabulary
    tasks_per_round: int = 30
    requester_ids: tuple[str, ...] = ("r0001",)
    kinds: tuple[str, ...] = ("label",)
    skills_per_task: int = 2
    reward_tiers: tuple[float, ...] = _REWARD_TIERS
    gold_fraction: float = 0.5
    _next_index: int = field(default=1, init=False)

    def __call__(self, round_index: int, rng: random.Random) -> list[Task]:
        batch = task_batch(
            count=self.tasks_per_round,
            vocabulary=self.vocabulary,
            rng=rng,
            requester_ids=self.requester_ids,
            kinds=self.kinds,
            skills_per_task=self.skills_per_task,
            reward_tiers=self.reward_tiers,
            start_index=self._next_index,
            gold_fraction=self.gold_fraction,
        )
        self._next_index += len(batch)
        return batch
