"""Section 3.1 scenario builders: labelled positives for the audit.

Each builder scripts a small platform run that *injects* one of the
paper's discrimination/opacity stories and returns a
:class:`Scenario` — the trace plus the axioms it is expected to
violate.  The E4 benchmark feeds scenarios to the audit engine and
scores each checker's precision/recall; the clean scenario is the
negative control (no checker may fire).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.compensation.discriminatory import AttributeBiasedScheme
from repro.core.axiom_transparency import (
    REQUESTER_MANDATED_FIELDS,
    WORKER_MANDATED_FIELDS,
    requester_subject,
    worker_subject,
)
from repro.core.entities import Requester, Task
from repro.core.trace import PlatformTrace
from repro.platform.behavior import DiligentBehavior, SpammerBehavior
from repro.platform.market import CrowdsourcingPlatform
from repro.platform.review import BiasedReview, QualityThresholdReview
from repro.platform.visibility import (
    BiasedVisibility,
    RequesterThrottledVisibility,
    ShowAllVisibility,
)
from repro.workloads.skills import standard_vocabulary
from repro.workloads.tasks import uniform_tasks
from repro.workloads.workers import homogeneous_population


@dataclass(frozen=True)
class Scenario:
    """A labelled audit test case."""

    name: str
    trace: PlatformTrace
    violated_axioms: frozenset[int]
    description: str = ""


def _transparent_requester(requester_id: str = "r0001") -> Requester:
    return Requester(
        requester_id=requester_id,
        name=f"requester {requester_id}",
        hourly_wage=6.0,
        payment_delay=10,
        recruitment_criteria="any qualified worker",
        rejection_criteria="quality below 0.5",
    )


def _disclose_requester(platform: CrowdsourcingPlatform, requester: Requester) -> None:
    subject = requester_subject(requester.requester_id)
    for field_name in REQUESTER_MANDATED_FIELDS:
        platform.disclose(subject, field_name, getattr(requester, field_name))


def _disclose_workers(platform: CrowdsourcingPlatform) -> None:
    for worker_id, worker in platform.workers.items():
        subject = worker_subject(worker_id)
        for field_name in WORKER_MANDATED_FIELDS:
            if field_name in worker.computed:
                platform.disclose(
                    subject, field_name, worker.computed[field_name],
                    audience_worker_id=worker_id,
                )


def _flag_low_quality_workers(platform: CrowdsourcingPlatform) -> None:
    """Flag every worker whose mean quality is low (platform doing its
    Axiom 4 duty)."""
    for worker_id, worker in platform.workers.items():
        quality = worker.computed.get("mean_quality")
        if isinstance(quality, (int, float)) and float(quality) <= 0.35:
            platform.flag_malice(worker_id, detector="quality_floor",
                                 score=1.0 - float(quality))


def _standard_setup(
    platform: CrowdsourcingPlatform, n_workers: int = 6
) -> tuple[Requester, list]:
    vocabulary = standard_vocabulary()
    requester = _transparent_requester()
    platform.register_requester(requester)
    workers = homogeneous_population(
        n_workers, vocabulary, skills=("survey", "data_entry"),
        declared={"group": "blue"},
    )
    for worker in workers:
        platform.register_worker(worker)
    return requester, workers


def clean_scenario(seed: int = 0, rounds: int = 3, n_workers: int = 6) -> Scenario:
    """A fully fair, fully transparent platform: zero violations expected.

    The scenario is built to give every axiom *non-vacuous* work: all
    workers browse at the same tick (Axiom 1 comparisons), two identical
    requesters post comparable tasks (Axiom 2 comparisons), and each
    task is answered by two workers who, when both correct, must be
    paid equally (Axiom 3 comparisons).
    """
    platform = CrowdsourcingPlatform(
        visibility=ShowAllVisibility(),
        review_policy=QualityThresholdReview(threshold=0.3),
        seed=seed,
    )
    vocabulary = standard_vocabulary()
    first = _transparent_requester("r0001")
    second = _transparent_requester("r0002")
    platform.register_requester(first)
    platform.register_requester(second)
    _disclose_requester(platform, first)
    _disclose_requester(platform, second)
    workers = homogeneous_population(
        n_workers, vocabulary, skills=("survey", "data_entry"),
        declared={"group": "blue"},
    )
    for worker in workers:
        platform.register_worker(worker)
    behavior = DiligentBehavior()
    next_task = 1
    for _ in range(rounds):
        # One task per worker pair, alternating requesters; posted and
        # browsed within a single tick so views are simultaneous.
        n_tasks = max(1, len(workers) // 2)
        tasks = []
        for offset in range(n_tasks):
            requester_id = "r0001" if offset % 2 == 0 else "r0002"
            tasks.extend(
                uniform_tasks(
                    1, vocabulary, requester_id, reward=0.1,
                    skills=("survey",), start_index=next_task + offset,
                )
            )
        next_task += n_tasks
        for task in tasks:
            platform.post_task(task)
        for worker in workers:
            platform.browse(worker.worker_id)
        # Two workers answer each task, then the task closes.
        for offset, task in enumerate(tasks):
            pair = (workers[2 * offset % len(workers)],
                    workers[(2 * offset + 1) % len(workers)])
            for worker in pair:
                platform.assign(worker.worker_id, task.task_id, "script")
                platform.start_work(worker.worker_id, task.task_id)
                platform.process_contribution(
                    worker.worker_id, task.task_id, behavior
                )
            platform.close_task(task.task_id)
        platform.clock.tick(1)
    _disclose_workers(platform)
    _flag_low_quality_workers(platform)
    return Scenario(
        name="clean",
        trace=platform.trace,
        violated_axioms=frozenset(),
        description="fair assignment, fair pay, transparent everything",
    )


def biased_visibility_scenario(seed: int = 0, n_workers: int = 6) -> Scenario:
    """Axiom 1 injection: identical workers, but one group is hidden the
    premium tasks (Sweeney-style ad discrimination)."""
    platform = CrowdsourcingPlatform(
        visibility=BiasedVisibility(
            attribute="group", disadvantaged_value="green", reward_ceiling=0.2
        ),
        seed=seed,
    )
    vocabulary = standard_vocabulary()
    requester = _transparent_requester()
    platform.register_requester(requester)
    _disclose_requester(platform, requester)
    blue = homogeneous_population(
        n_workers // 2, vocabulary, skills=("survey",),
        declared={"group": "blue"}, prefix="wb",
    )
    green = homogeneous_population(
        n_workers - n_workers // 2, vocabulary, skills=("survey",),
        declared={"group": "green"}, prefix="wg",
    )
    for worker in blue + green:
        platform.register_worker(worker)
    cheap = uniform_tasks(3, vocabulary, requester.requester_id, reward=0.05,
                          skills=("survey",), start_index=1)
    premium = uniform_tasks(3, vocabulary, requester.requester_id, reward=0.5,
                            skills=("survey",), start_index=4)
    for task in cheap + premium:
        platform.post_task(task)
    for worker in blue + green:
        platform.browse(worker.worker_id)
    _disclose_workers(platform)
    return Scenario(
        name="biased_visibility",
        trace=platform.trace,
        violated_axioms=frozenset({1}),
        description="premium tasks hidden from one demographic group",
    )


def requester_throttled_scenario(seed: int = 0, n_workers: int = 4) -> Scenario:
    """Axiom 2 injection: one requester's comparable tasks suppressed
    from every browse view."""
    platform = CrowdsourcingPlatform(
        visibility=RequesterThrottledVisibility(
            hidden_requesters=frozenset({"r0002"})
        ),
        seed=seed,
    )
    vocabulary = standard_vocabulary()
    favored = _transparent_requester("r0001")
    throttled = _transparent_requester("r0002")
    platform.register_requester(favored)
    platform.register_requester(throttled)
    _disclose_requester(platform, favored)
    _disclose_requester(platform, throttled)
    workers = homogeneous_population(
        n_workers, vocabulary, skills=("survey",), declared={"group": "blue"}
    )
    for worker in workers:
        platform.register_worker(worker)
    # Identical specs, different requesters -> comparable under Axiom 2.
    for task in uniform_tasks(2, vocabulary, "r0001", reward=0.1,
                              skills=("survey",), start_index=1):
        platform.post_task(task)
    for task in uniform_tasks(2, vocabulary, "r0002", reward=0.1,
                              skills=("survey",), start_index=3):
        platform.post_task(task)
    for worker in workers:
        platform.browse(worker.worker_id)
    _disclose_workers(platform)
    return Scenario(
        name="requester_throttled",
        trace=platform.trace,
        violated_axioms=frozenset({2}),
        description="one requester's comparable tasks shown to nobody",
    )


def unequal_pay_scenario(seed: int = 0, n_workers: int = 4) -> Scenario:
    """Axiom 3 injection: same task, same contribution, half pay for the
    targeted workers (collaborative-task scenario)."""
    vocabulary = standard_vocabulary()
    underpaid = frozenset(
        f"w{i + 1:04d}" for i in range(n_workers) if i % 2 == 1
    )
    platform = CrowdsourcingPlatform(
        review_policy=QualityThresholdReview(threshold=0.0),
        pricing=AttributeBiasedScheme(underpaid_workers=underpaid,
                                      bias_fraction=0.5),
        seed=seed,
    )
    requester, workers = _standard_setup(platform, n_workers)
    _disclose_requester(platform, requester)
    task = Task(
        task_id="t0001",
        requester_id=requester.requester_id,
        required_skills=vocabulary.vector(("survey",)),
        reward=0.4,
        kind="label",
        gold_answer="A",
    )
    platform.post_task(task)
    behavior = DiligentBehavior(base_quality=1.0)
    for worker in workers:
        platform.browse(worker.worker_id)
        platform.assign(worker.worker_id, task.task_id, "script")
        platform.start_work(worker.worker_id, task.task_id)
        platform.process_contribution(worker.worker_id, task.task_id, behavior)
    _disclose_workers(platform)
    return Scenario(
        name="unequal_pay",
        trace=platform.trace,
        violated_axioms=frozenset({3}),
        description="identical answers to one task paid unequally",
    )


def wrongful_rejection_scenario(seed: int = 0, n_workers: int = 6) -> Scenario:
    """Axiom 3 + 6 injection: biased review wrongfully rejects good work
    from one group, silently."""
    platform = CrowdsourcingPlatform(
        review_policy=BiasedReview(
            attribute="group", disadvantaged_value="green",
            rejection_probability=1.0, threshold=0.2,
        ),
        seed=seed,
    )
    vocabulary = standard_vocabulary()
    requester = _transparent_requester()
    platform.register_requester(requester)
    _disclose_requester(platform, requester)
    blue = homogeneous_population(
        n_workers // 2, vocabulary, skills=("survey",),
        declared={"group": "blue"}, prefix="wb",
    )
    green = homogeneous_population(
        n_workers - n_workers // 2, vocabulary, skills=("survey",),
        declared={"group": "green"}, prefix="wg",
    )
    for worker in blue + green:
        platform.register_worker(worker)
    task = Task(
        task_id="t0001",
        requester_id=requester.requester_id,
        required_skills=vocabulary.vector(("survey",)),
        reward=0.3,
        kind="label",
        gold_answer="A",
    )
    platform.post_task(task)
    behavior = DiligentBehavior(base_quality=1.0)
    for worker in blue + green:
        platform.browse(worker.worker_id)
        platform.start_work(worker.worker_id, task.task_id)
        platform.process_contribution(worker.worker_id, task.task_id, behavior)
    _disclose_workers(platform)
    return Scenario(
        name="wrongful_rejection",
        trace=platform.trace,
        violated_axioms=frozenset({3, 6}),
        description="good work from one group rejected without feedback",
    )


def bonus_reneging_scenario(seed: int = 0) -> Scenario:
    """Axiom 3 injection: a promised bonus never paid."""
    platform = CrowdsourcingPlatform(seed=seed)
    requester, workers = _standard_setup(platform, 2)
    _disclose_requester(platform, requester)
    kept, cheated = workers[0], workers[1]
    platform.promise_bonus(requester.requester_id, kept.worker_id, 0.5,
                           condition="5-task streak")
    platform.promise_bonus(requester.requester_id, cheated.worker_id, 0.5,
                           condition="5-task streak")
    platform.clock.tick(5)
    platform.pay_bonus(requester.requester_id, kept.worker_id, 0.5)
    _disclose_workers(platform)
    return Scenario(
        name="bonus_reneging",
        trace=platform.trace,
        violated_axioms=frozenset({3}),
        description="one of two promised bonuses never paid",
    )


def undetected_malice_scenario(seed: int = 0, n_tasks: int = 8) -> Scenario:
    """Axiom 4 injection: a spammer works undisturbed, never flagged."""
    platform = CrowdsourcingPlatform(
        review_policy=QualityThresholdReview(threshold=0.0),  # nothing caught
        seed=seed,
    )
    vocabulary = standard_vocabulary()
    requester = _transparent_requester()
    platform.register_requester(requester)
    _disclose_requester(platform, requester)
    workers = homogeneous_population(
        2, vocabulary, skills=("survey",), declared={"group": "blue"}
    )
    for worker in workers:
        platform.register_worker(worker)
    honest, spammer = workers[0], workers[1]
    tasks = uniform_tasks(n_tasks, vocabulary, requester.requester_id,
                          reward=0.1, skills=("survey",))
    for task in tasks:
        platform.post_task(task)
    diligent = DiligentBehavior(base_quality=0.95)
    spam = SpammerBehavior()
    for task in tasks:
        for worker, behavior in ((honest, diligent), (spammer, spam)):
            platform.browse(worker.worker_id)
            platform.start_work(worker.worker_id, task.task_id)
            platform.process_contribution(worker.worker_id, task.task_id, behavior)
    _disclose_workers(platform)
    # Deliberately NOT flagging the spammer: that is the violation.
    return Scenario(
        name="undetected_malice",
        trace=platform.trace,
        violated_axioms=frozenset({4}),
        description="spammer's garbage accepted and never flagged",
    )


def survey_cancellation_scenario(seed: int = 0, n_workers: int = 5) -> Scenario:
    """Axiom 5 injection: the survey-quota story — requester cancels a
    task while workers are mid-completion."""
    platform = CrowdsourcingPlatform(seed=seed)
    requester, workers = _standard_setup(platform, n_workers)
    _disclose_requester(platform, requester)
    vocabulary = standard_vocabulary()
    task = Task(
        task_id="t0001",
        requester_id=requester.requester_id,
        required_skills=vocabulary.vector(("survey",)),
        reward=0.2,
        duration=5,
    )
    platform.post_task(task)
    behavior = DiligentBehavior()
    # First worker finishes; quota reached; the rest are cut off mid-task.
    finisher, rest = workers[0], workers[1:]
    for worker in workers:
        platform.browse(worker.worker_id)
        platform.start_work(worker.worker_id, task.task_id)
    platform.process_contribution(finisher.worker_id, task.task_id, behavior)
    platform.cancel_task(task.task_id, reason="target responses reached")
    _disclose_workers(platform)
    return Scenario(
        name="survey_cancellation",
        trace=platform.trace,
        violated_axioms=frozenset({5}),
        description="task cancelled while workers were mid-completion",
    )


def opaque_requester_scenario(seed: int = 0) -> Scenario:
    """Axiom 6 injection: requester discloses none of the mandated
    working conditions."""
    platform = CrowdsourcingPlatform(seed=seed)
    requester, workers = _standard_setup(platform, 2)
    # No _disclose_requester call: that is the violation.
    _disclose_workers(platform)
    return Scenario(
        name="opaque_requester",
        trace=platform.trace,
        violated_axioms=frozenset({6}),
        description="no working conditions ever disclosed",
    )


def opaque_platform_scenario(seed: int = 0, n_tasks: int = 3) -> Scenario:
    """Axiom 7 injection: workers build history but the platform never
    shows them their own computed attributes."""
    platform = CrowdsourcingPlatform(
        review_policy=QualityThresholdReview(threshold=0.3), seed=seed
    )
    requester, workers = _standard_setup(platform, 2)
    _disclose_requester(platform, requester)
    vocabulary = standard_vocabulary()
    tasks = uniform_tasks(n_tasks, vocabulary, requester.requester_id,
                          reward=0.1, skills=("survey",))
    behavior = DiligentBehavior()
    for task in tasks:
        platform.post_task(task)
        for worker in workers:
            platform.browse(worker.worker_id)
            platform.start_work(worker.worker_id, task.task_id)
            platform.process_contribution(worker.worker_id, task.task_id, behavior)
        platform.close_task(task.task_id)
    # No _disclose_workers call: that is the violation.
    return Scenario(
        name="opaque_platform",
        trace=platform.trace,
        violated_axioms=frozenset({7}),
        description="computed attributes never shown to workers",
    )


def corrupt_reputation_scenario(seed: int = 0, n_tasks: int = 4) -> Scenario:
    """Axiom 1 injection via unfairly derived ``C_w`` (Section 3.3.1).

    Visibility is perfectly equal, but the platform publishes
    acceptance ratios that diverge from their own recorded derivation —
    the "fairness of deriving computed attributes" failure the paper
    singles out.  The Axiom 1 checker's derivation audit must fire even
    though no browse view ever differed.
    """
    platform = CrowdsourcingPlatform(
        review_policy=QualityThresholdReview(threshold=0.3),
        corrupt_computed_attributes=True,
        seed=seed,
    )
    requester, workers = _standard_setup(platform, 2)
    _disclose_requester(platform, requester)
    vocabulary = standard_vocabulary()
    behavior = DiligentBehavior()
    tasks = uniform_tasks(n_tasks, vocabulary, requester.requester_id,
                          reward=0.1, skills=("survey",))
    for task in tasks:
        platform.post_task(task)
        for worker in workers:
            platform.browse(worker.worker_id)
        for worker in workers:
            platform.start_work(worker.worker_id, task.task_id)
            platform.process_contribution(worker.worker_id, task.task_id,
                                          behavior)
        platform.close_task(task.task_id)
        platform.clock.tick(1)
    _disclose_workers(platform)
    return Scenario(
        name="corrupt_reputation",
        trace=platform.trace,
        violated_axioms=frozenset({1}),
        description="published acceptance ratios diverge from derivation",
    )


def late_payment_scenario(seed: int = 0, n_workers: int = 3) -> Scenario:
    """Axiom 6 injection: payments arrive far later than the requester's
    declared payment delay (the 'delayed payment' abuse of [2, 17])."""
    from repro.compensation.discriminatory import DelayedPaymentScheme

    platform = CrowdsourcingPlatform(
        review_policy=QualityThresholdReview(threshold=0.3),
        pricing=DelayedPaymentScheme(delay_ticks=30),
        seed=seed,
    )
    requester, workers = _standard_setup(platform, n_workers)
    _disclose_requester(platform, requester)  # declares payment_delay=10
    vocabulary = standard_vocabulary()
    behavior = DiligentBehavior()
    tasks = uniform_tasks(n_workers, vocabulary, requester.requester_id,
                          reward=0.2, skills=("survey",))
    for worker, task in zip(workers, tasks):
        platform.post_task(task)
        platform.browse(worker.worker_id)
        platform.start_work(worker.worker_id, task.task_id)
        platform.process_contribution(worker.worker_id, task.task_id, behavior)
        platform.close_task(task.task_id)
    # The contractual delay elapses, then payments settle late.
    platform.clock.tick(31)
    platform.settle_due_payments()
    _disclose_workers(platform)
    return Scenario(
        name="late_payment",
        trace=platform.trace,
        violated_axioms=frozenset({6}),
        description="payments settle after the declared payment delay",
    )


def all_scenarios(seed: int = 0) -> list[Scenario]:
    """Every labelled scenario, clean control first."""
    return [
        clean_scenario(seed),
        biased_visibility_scenario(seed),
        requester_throttled_scenario(seed),
        unequal_pay_scenario(seed),
        wrongful_rejection_scenario(seed),
        bonus_reneging_scenario(seed),
        undetected_malice_scenario(seed),
        survey_cancellation_scenario(seed),
        opaque_requester_scenario(seed),
        opaque_platform_scenario(seed),
        corrupt_reputation_scenario(seed),
        late_payment_scenario(seed),
    ]
