"""Synthetic workload generation.

Everything an experiment needs to populate a platform: skill
vocabularies, worker populations with demographic groups and behaviour
mixes, task streams, and ready-made *scenario* builders that replay the
Section 3.1 discrimination and opacity stories so the audit benchmarks
(E4) have labelled positives and negatives.
"""

from repro.workloads.skills import standard_vocabulary, vocabulary
from repro.workloads.tasks import TaskStream, task_batch, uniform_tasks
from repro.workloads.workers import PopulationSpec, population, worker

__all__ = [
    "PopulationSpec",
    "TaskStream",
    "population",
    "standard_vocabulary",
    "task_batch",
    "uniform_tasks",
    "vocabulary",
    "worker",
]
