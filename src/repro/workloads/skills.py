"""Skill vocabulary generation.

The paper's skill keywords "may be interpreted as expected workers'
interests or qualifications"; the standard vocabulary mixes both kinds
(task capabilities such as translation, interests such as sports).
"""

from __future__ import annotations

from repro.core.entities import SkillVocabulary

#: A realistic microtask skill/interest vocabulary.
STANDARD_KEYWORDS: tuple[str, ...] = (
    "image_recognition",
    "sentiment_analysis",
    "translation",
    "transcription",
    "text_summarization",
    "data_entry",
    "survey",
    "categorization",
    "proofreading",
    "audio_tagging",
    "local_knowledge",
    "sports",
)


def standard_vocabulary() -> SkillVocabulary:
    """The default 12-keyword vocabulary used across experiments."""
    return SkillVocabulary(STANDARD_KEYWORDS)


def vocabulary(size: int) -> SkillVocabulary:
    """A synthetic vocabulary of ``size`` keywords (skill_0, skill_1...).

    Used by scaling benchmarks where vocabulary dimension is a swept
    parameter.
    """
    if size < 1:
        raise ValueError("vocabulary size must be >= 1")
    return SkillVocabulary(tuple(f"skill_{i}" for i in range(size)))
