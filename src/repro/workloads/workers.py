"""Worker population generation.

Populations are drawn with controlled demographic structure so parity
metrics (disparate impact between groups) have ground truth to work
against: each worker gets a ``group`` declared attribute from
``group_values`` (e.g. two demographic groups), a location, a skill
vector of ``skills_per_worker`` keywords, and a behaviour assignment
from a mix (e.g. 40 % spammers to replicate Vuurens et al. [20]).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.attributes import ComputedAttributes, DeclaredAttributes
from repro.core.entities import SkillVocabulary, Worker
from repro.platform.behavior import BehaviorModel, behavior_named
from repro.platform.rng import weighted_choice

#: Locations assigned round-robin-ishly; values are arbitrary labels.
_LOCATIONS: tuple[str, ...] = ("us", "in", "ph", "de", "br", "jp")


@dataclass(frozen=True)
class PopulationSpec:
    """Parameters of a synthetic worker population."""

    size: int = 100
    group_attribute: str = "group"
    group_values: tuple[str, ...] = ("blue", "green")
    group_weights: tuple[float, ...] = ()
    skills_per_worker: int = 3
    behavior_mix: dict[str, float] = field(
        default_factory=lambda: {"diligent": 0.6, "sloppy": 0.4}
    )
    include_location: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError("population size must be >= 0")
        if self.group_weights and len(self.group_weights) != len(self.group_values):
            raise ValueError("group_weights must match group_values in length")
        if not self.behavior_mix:
            raise ValueError("behavior_mix must be non-empty")


def worker(
    worker_id: str,
    vocabulary: SkillVocabulary,
    skills: tuple[str, ...] = (),
    declared: dict | None = None,
) -> Worker:
    """A single worker with empty computed attributes (a new account)."""
    return Worker(
        worker_id=worker_id,
        declared=DeclaredAttributes(declared or {}),
        computed=ComputedAttributes(),
        skills=vocabulary.vector(skills),
    )


def population(
    spec: PopulationSpec, vocabulary: SkillVocabulary
) -> tuple[list[Worker], dict[str, BehaviorModel]]:
    """Draw a population; returns (workers, behaviour assignment).

    Workers within the same *cohort* (same group, same skill draw seed
    bucket) are attribute-similar by construction, which gives Axiom 1
    checkers genuine similar pairs to compare.
    """
    rng = random.Random(spec.seed)
    weights = (
        dict(zip(spec.group_values, spec.group_weights))
        if spec.group_weights
        else {value: 1.0 for value in spec.group_values}
    )
    workers: list[Worker] = []
    behaviors: dict[str, BehaviorModel] = {}
    n_skills = min(spec.skills_per_worker, len(vocabulary))
    for index in range(spec.size):
        worker_id = f"w{index + 1:04d}"
        group = weighted_choice(rng, weights)
        declared: dict = {spec.group_attribute: group}
        if spec.include_location:
            declared["location"] = _LOCATIONS[index % len(_LOCATIONS)]
        # Skill draw: start offset keyed to index so cohorts of nearby
        # indices share skills (contiguous blocks are similar).
        start = (index * n_skills // max(1, spec.size // 4)) % len(vocabulary)
        skills = tuple(
            vocabulary.keywords[(start + j) % len(vocabulary)]
            for j in range(n_skills)
        )
        workers.append(worker(worker_id, vocabulary, skills, declared))
        behaviors[worker_id] = behavior_named(
            weighted_choice(rng, dict(spec.behavior_mix))
        )
    return workers, behaviors


def homogeneous_population(
    size: int,
    vocabulary: SkillVocabulary,
    skills: tuple[str, ...],
    declared: dict | None = None,
    prefix: str = "w",
) -> list[Worker]:
    """``size`` identical workers (maximally similar pairs).

    The sharpest possible Axiom 1 test population: every pair is
    similar under any threshold, so every visibility difference is a
    violation.
    """
    return [
        worker(f"{prefix}{index + 1:04d}", vocabulary, skills, dict(declared or {}))
        for index in range(size)
    ]
