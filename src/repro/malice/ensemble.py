"""Ensemble detection: weighted combination of the single signals.

Each base detector covers a different evasion: gold catches anyone
wrong (but needs seeded questions), agreement needs redundancy, timing
only catches the hurried.  The ensemble averages the available scores
per worker, weighting each detector; a worker scored by no detector is
omitted.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.trace import PlatformTrace
from repro.malice.agreement import AgreementDetector
from repro.malice.base import Detector
from repro.malice.gold_standard import GoldStandardDetector
from repro.malice.timing import TimingDetector


def _default_members() -> tuple[tuple[Detector, float], ...]:
    return (
        (GoldStandardDetector(), 1.0),
        (AgreementDetector(), 1.0),
        (TimingDetector(), 0.5),
    )


@dataclass(frozen=True)
class EnsembleDetector:
    """Weighted mean of member suspicions (over members with evidence)."""

    members: tuple[tuple[Detector, float], ...] = field(
        default_factory=_default_members
    )
    name: str = "ensemble"

    def __post_init__(self) -> None:
        if not self.members:
            raise ValueError("ensemble needs at least one member")
        if any(weight <= 0 for _, weight in self.members):
            raise ValueError("member weights must be positive")

    def score_workers(self, trace: PlatformTrace) -> dict[str, float]:
        weighted_sum: dict[str, float] = {}
        weight_total: dict[str, float] = {}
        for detector, weight in self.members:
            for worker_id, score in detector.score_workers(trace).items():
                weighted_sum[worker_id] = (
                    weighted_sum.get(worker_id, 0.0) + weight * score
                )
                weight_total[worker_id] = weight_total.get(worker_id, 0.0) + weight
        return {
            worker_id: weighted_sum[worker_id] / weight_total[worker_id]
            for worker_id in weighted_sum
        }
